#!/usr/bin/env bash
# Fail if a new parallel host/sim orchestration pair appears outside the
# mlm-exec adapter discipline.
#
# The execution layer (crates/mlm-exec) owns the chunk schedule; host and
# sim code are thin backend adapters driven by `mlm_exec::drive` (or, for
# sorting, interpreters of one `mlm_exec::SortPlan`). Before the layer
# existed, each subsystem grew a hand-rolled host implementation and a
# parallel sim lowering, and the two drifted. This check keeps that split
# from coming back:
#
#  * every directory holding both a `host*.rs` and a `sim*.rs` is a
#    "dual-impl pair";
#  * a pair is acceptable only if BOTH files reference `mlm_exec` (they
#    are adapters over the shared orchestrator), or the pair is on the
#    explicit allowlist below;
#  * the allowlist names the pairs that predate the layer or ride it
#    transitively — do not extend it for new code; write a Backend
#    adapter instead.
#
# Run from anywhere: `scripts/check_no_dual_impl.sh`. CI runs it in the
# clippy job, next to the lint pass that keeps the adapters warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pairs allowed to omit direct mlm_exec references, with the reason:
#   mlm-stream  — legacy streaming benchmark, pre-dates the layer (its
#                 host/sim split is frozen; port tracked in ROADMAP.md)
#   mlm-serve   — rides the layer transitively: host jobs call
#                 mlm_core::pipeline::host, replay calls sim::build_program
#   mlm-cluster — rides the layer transitively: both sides call
#                 mlm_core::sort, which interprets one mlm_exec SortPlan
allow_dirs=(
  "crates/mlm-stream/src"
  "crates/mlm-serve/src"
  "crates/mlm-cluster/src"
)

# Individual files exempt from the pair heuristic, with the reason:
#   sim_bench.rs — benchmarks the knl-sim event engine itself (optimized
#                  vs reference loop → BENCH_sim_engine.json); it lowers
#                  nothing from host code, and the host_*.rs next to it
#                  is an unrelated experiment binary.
allow_files=(
  "crates/mlm-bench/src/bin/sim_bench.rs"
)

is_allowed_file() {
  local f="$1"
  for a in "${allow_files[@]}"; do
    [ "$f" = "$a" ] && return 0
  done
  return 1
}

is_allowed() {
  local dir="$1"
  for a in "${allow_dirs[@]}"; do
    [ "$dir" = "$a" ] && return 0
  done
  return 1
}

fail=0
# knl-sim is the simulator itself, not a lowering of host code; its file
# names (sim_*.rs etc.) are not dual-impl pairs.
dirs=$(find crates examples tests -name '*.rs' -not -path 'crates/knl-sim/*' \
  | xargs -r -n1 dirname | sort -u)

for dir in $dirs; do
  hosts=""
  sims=""
  # Exempt files do not count toward forming a pair.
  for f in $(find "$dir" -maxdepth 1 -name 'host*.rs' | sort); do
    is_allowed_file "$f" || hosts="$hosts $f"
  done
  for f in $(find "$dir" -maxdepth 1 -name 'sim*.rs' | sort); do
    is_allowed_file "$f" || sims="$sims $f"
  done
  [ -n "${hosts// /}" ] && [ -n "${sims// /}" ] || continue

  if is_allowed "$dir"; then
    continue
  fi

  for f in $hosts $sims; do
    if ! grep -q 'mlm_exec' "$f"; then
      echo "error: ${f} is half of a host/sim pair in ${dir} but never references mlm_exec" >&2
      echo "       write it as a Backend adapter over mlm_exec::drive (see crates/mlm-core/src/pipeline/)" >&2
      fail=1
    fi
  done
done

# Second discipline, since the plan layer went workload-generic: the
# WorkloadPlan IR has exactly one home. Workload families add a lowering
# inside crates/mlm-exec/src (plan_pipeline for pipeline shapes,
# SortPlan::to_workload_plan for the sort family, the fuzzer's buggy
# constructions for regression seeds); every other crate only *consumes*
# plans — walking nodes, matching on PlanKind — never assembles them.
# A `PlanNode {` literal outside mlm-exec is a workload module growing a
# private schedule the static verifier and the fuzz corpus never see:
# exactly the dual-impl drift this script exists to block, one layer up.
producers=$(grep -rl 'PlanNode {' --include='*.rs' crates tests examples \
  | grep -v '^crates/mlm-exec/src/' || true)
if [ -n "$producers" ]; then
  for f in $producers; do
    echo "error: ${f} constructs WorkloadPlan nodes outside the plan layer" >&2
    echo "       add the workload's lowering in crates/mlm-exec/src (see plan_pipeline" >&2
    echo "       and SortPlan::to_workload_plan) so the verifier and fuzzer cover it" >&2
  done
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "New host/sim pairs must adapt the shared execution layer, not re-implement the schedule." >&2
  echo "If the pair genuinely rides the layer transitively, say how in the allowlist in this script." >&2
  exit 1
fi
echo "check_no_dual_impl: every host/sim pair rides the mlm-exec execution layer"
echo "check_no_dual_impl: every WorkloadPlan producer lives in the plan layer"
