#!/usr/bin/env bash
# Fail if any `unsafe` in first-party code lacks a `// SAFETY:` comment.
#
# Every `unsafe` block or impl in crates/, examples/ and tests/ must be
# annotated with a `// SAFETY:` comment on the same line or in the
# contiguous comment block directly above it (multi-line justifications
# are encouraged), stating the invariant that makes the operation sound.
# Vendored stand-ins under vendor/ are exempt (they mirror upstream code).
#
# Run from anywhere: `scripts/check_unsafe.sh`. CI runs it in the verify job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
matches=$(grep -rn --include='*.rs' -E '\bunsafe\b' crates examples tests \
  | grep -vE ':[0-9]+:\s*(//|\*)' \
  | cut -d: -f1,2 || true)

while IFS=: read -r file line; do
  [ -n "$file" ] || continue
  # Accept SAFETY: on the unsafe line itself, or anywhere in the
  # contiguous run of comment lines directly above it.
  if ! awk -v n="$line" '
    NR <= n { buf[NR] = $0 }
    END {
      if (buf[n] ~ /SAFETY:/) { found = 1 }
      for (i = n - 1; i >= 1; i--) {
        if (buf[i] !~ /^[[:space:]]*(\/\/|\/\*|\*)/) break
        if (buf[i] ~ /SAFETY:/) { found = 1; break }
      }
      exit !found
    }' "$file"; then
    echo "error: undocumented unsafe at ${file}:${line} — add a // SAFETY: comment" >&2
    fail=1
  fi
done <<<"$matches"

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "Document why each unsafe operation is sound (see host.rs for examples)." >&2
  exit 1
fi
echo "check_unsafe: every unsafe site is SAFETY-annotated"
