//! The real-thread fleet host: a long-running dispatcher thread driving
//! per-node worker pools over the dataflow stage pools.
//!
//! Same placement code, same admission code, real execution: the
//! dispatcher thread owns every node's [`CapacityBroker`] and ready
//! queue, places the submission stream with [`place`], admits per node
//! with the shared [`select_candidate`] pass, and hands admitted jobs to
//! that node's worker pool, which runs them on
//! [`run_host_pipeline_dataflow`] with tuner-sized stage pools. Workers
//! report completions over a channel; the dispatcher releases the broker
//! reservation and admits the next job.
//!
//! **Decision equivalence with the virtual-time mode.** Wall clocks are
//! not virtual clocks, so the two modes can only be compared on
//! timing-independent decisions: the whole submission batch is placed (in
//! job order) *before* serving starts, mirroring the virtual-time
//! dispatcher placing all due arrivals before completions, and each
//! node's admission order is fixed by the queue discipline. Under FIFO
//! with strict jobs, the canonical projection
//! ([`crate::decision::decision_digest`]) is therefore identical between
//! the two modes — the equivalence the test suite asserts on the demo
//! trace. (Fair-share aging and stealing are virtual-time refinements the
//! host mode does not implement; the wall clock makes their trigger
//! points nondeterministic.)
//!
//! [`CapacityBroker`]: mlm_serve::CapacityBroker
//! [`select_candidate`]: mlm_serve::select_candidate
//! [`run_host_pipeline_dataflow`]: mlm_core::pipeline::host::run_host_pipeline_dataflow

use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel;
use knl_sim::MemLevel;
use mlm_core::pipeline::host::{run_host_pipeline_dataflow, HostStagePools, KernelCtx};
use mlm_core::{PipelineSpec, Placement, ThreadSplit};
use mlm_serve::{
    charge_credit, predicted_makespan, profile, select_candidate, AdmitOutcome, CapacityBroker,
    DeadlineClass, JobId, Policy, N_CLASSES,
};

use crate::config::FleetConfig;
use crate::decision::Decision;
use crate::placement::{place, PlacementView};

/// One host fleet job: spec plus the data to stream through it.
#[derive(Debug)]
pub struct FleetHostJob {
    /// Job identifier.
    pub id: JobId,
    /// Latency class (drives fair-share admission).
    pub class: DeadlineClass,
    /// Strict-HBW: never spill this job's ring to DDR.
    pub strict: bool,
    /// Pipeline geometry; pool sizes are re-derived per admission.
    pub spec: PipelineSpec,
    /// Input elements.
    pub data: Vec<i64>,
}

/// Host fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetHostConfig {
    /// Fleet shape and policies (stealing and fair aging are ignored —
    /// virtual-time refinements; see the module docs).
    pub fleet: FleetConfig,
    /// Host threads each node divides among its co-resident jobs.
    pub host_threads: usize,
    /// Worker threads per node pool (concurrent jobs per node).
    pub workers: usize,
}

/// Outcome of one served host fleet job.
#[derive(Debug)]
pub struct FleetHostResult {
    /// Job identifier.
    pub id: JobId,
    /// Node that ran it.
    pub node: usize,
    /// Pool split the tuner assigned.
    pub split: ThreadSplit,
    /// Where the broker placed the ring reservation.
    pub buffer_level: MemLevel,
    /// Wall-clock duration of the pipeline run.
    pub wall: Duration,
    /// Output elements.
    pub data: Vec<i64>,
}

/// Everything a host fleet run produces.
#[derive(Debug)]
pub struct FleetHostOutcome {
    /// Per-job results, sorted by job id.
    pub results: Vec<FleetHostResult>,
    /// Jobs no node could ever fit.
    pub rejected: Vec<JobId>,
    /// The dispatcher's decision log.
    pub decisions: Vec<Decision>,
}

/// The dispatcher's per-node state: broker + queue + credit, the host
/// mirror of `NodeSim`'s admission-relevant fields.
struct HostNode {
    broker: CapacityBroker,
    spill: bool,
    machine: knl_sim::machine::MachineConfig,
    // Parallel vectors over jobs placed on this node.
    est: Vec<f64>,
    ids: Vec<JobId>,
    classes: Vec<DeadlineClass>,
    spill_ok: Vec<bool>,
    global: Vec<usize>,
    ready: Vec<usize>, // node-local indices, placement order
    credit: [f64; N_CLASSES],
    running: usize,
    work_tx: channel::Sender<Work>,
}

impl PlacementView for HostNode {
    fn can_take(&self, spec: &PipelineSpec, strict: bool) -> bool {
        self.broker.can_ever_fit_job(spec, !strict)
    }
    fn fits_now(&self, spec: &PipelineSpec, strict: bool) -> bool {
        let f = crate::placement::ring_footprint(spec);
        f == 0 || f <= self.broker.hbw_headroom() || (!strict && self.spill)
    }
    fn hbw_headroom(&self) -> u64 {
        self.broker.hbw_headroom()
    }
    fn queued_strict_bytes(&self) -> u64 {
        self.broker.queued_strict_bytes()
    }
    fn reserved_mcdram(&self) -> u64 {
        self.broker.reserved_mcdram()
    }
    fn budget(&self) -> u64 {
        self.broker.budget()
    }
}

/// A job handed to a node's worker pool.
struct Work {
    node: usize,
    local: usize,
    spec: PipelineSpec,
    split: ThreadSplit,
    data: Vec<i64>,
    kernel: fn(&mut [i64], KernelCtx),
}

/// A completion reported back to the dispatcher.
struct Done {
    node: usize,
    local: usize,
    wall: Duration,
    data: Vec<i64>,
}

/// Serve `jobs` across the fleet, applying `kernel` to every compute
/// slice. Blocks until the fleet drains; the dispatcher itself runs on
/// its own thread for the whole call.
pub fn fleet_serve_host(
    cfg: &FleetHostConfig,
    jobs: Vec<FleetHostJob>,
    kernel: fn(&mut [i64], KernelCtx),
) -> Result<FleetHostOutcome, String> {
    cfg.fleet.validate()?;
    if cfg.workers == 0 {
        return Err("need at least one worker per node".into());
    }
    for j in &jobs {
        j.spec
            .validate()
            .map_err(|e| format!("job {}: {e}", j.id))?;
        j.spec
            .validate_elem_size(std::mem::size_of::<i64>())
            .map_err(|e| format!("job {}: {e}", j.id))?;
        let need = (j.data.len() * std::mem::size_of::<i64>()) as u64;
        if need != j.spec.total_bytes {
            return Err(format!(
                "job {}: data is {need} B but spec says {} B",
                j.id, j.spec.total_bytes
            ));
        }
    }

    // Per-node worker pools, all reporting into one completion channel.
    let (done_tx, done_rx) = channel::unbounded::<Done>();
    let mut worker_handles = Vec::new();
    let mut nodes: Vec<HostNode> = Vec::with_capacity(cfg.fleet.nodes.len());
    for nc in &cfg.fleet.nodes {
        let (work_tx, work_rx) = channel::unbounded::<Work>();
        for _ in 0..cfg.workers {
            let rx = work_rx.clone();
            let tx = done_tx.clone();
            worker_handles.push(thread::spawn(move || {
                while let Ok(w) = rx.recv() {
                    let pools = HostStagePools::new(w.split.p_in, w.split.p_comp, w.split.p_out);
                    let mut out = vec![0i64; w.data.len()];
                    let t = Instant::now();
                    run_host_pipeline_dataflow(&pools, &w.spec, &w.data, &mut out, w.kernel);
                    // A hung-up dispatcher just means the run already
                    // failed; don't double-panic the worker.
                    let _ = tx.send(Done {
                        node: w.node,
                        local: w.local,
                        wall: t.elapsed(),
                        data: out,
                    });
                }
            }));
        }
        nodes.push(HostNode {
            broker: CapacityBroker::new(&nc.machine, nc.mcdram_budget, nc.spill),
            spill: nc.spill,
            machine: nc.machine.clone(),
            est: Vec::new(),
            ids: Vec::new(),
            classes: Vec::new(),
            spill_ok: Vec::new(),
            global: Vec::new(),
            ready: Vec::new(),
            credit: [0.0; N_CLASSES],
            running: 0,
            work_tx,
        });
    }
    drop(done_tx);

    // The dispatcher thread: place the whole submission stream, then
    // admit/complete until drained.
    let placement = cfg.fleet.placement;
    let policy = cfg.fleet.policy;
    let host_threads = cfg.host_threads;
    let dispatcher = thread::spawn(move || -> Result<FleetHostOutcome, String> {
        let mut decisions: Vec<Decision> = Vec::new();
        let mut rejected: Vec<JobId> = Vec::new();
        let mut pending: Vec<Option<FleetHostJob>> = Vec::new();

        // Phase 1: placement, in submission order.
        for (g, j) in jobs.into_iter().enumerate() {
            match place(&nodes, placement, &j.spec, j.strict) {
                Some(n) => {
                    decisions.push(Decision::Placed { job: j.id, node: n });
                    let node = &mut nodes[n];
                    let local = node.ids.len();
                    node.est.push(predicted_makespan(&j.spec, &node.machine));
                    node.ids.push(j.id);
                    node.classes.push(j.class);
                    node.spill_ok.push(!j.strict);
                    node.global.push(g);
                    node.ready.push(local);
                    if j.strict {
                        node.broker
                            .note_strict_queued(crate::placement::ring_footprint(&j.spec));
                    }
                }
                None => {
                    decisions.push(Decision::Rejected { job: j.id });
                    rejected.push(j.id);
                }
            }
            pending.push(Some(j));
        }

        // Phase 2: serve. One admission pass per node, then block on a
        // completion, release, repeat.
        let mut results: Vec<FleetHostResult> = Vec::new();
        let mut meta: std::collections::HashMap<
            (usize, usize),
            (Option<mlm_memkind::Reservation>, ThreadSplit, MemLevel),
        > = std::collections::HashMap::new();
        loop {
            for (ni, node) in nodes.iter_mut().enumerate() {
                admit_node(
                    ni,
                    node,
                    policy,
                    host_threads,
                    &mut pending,
                    &mut decisions,
                    &mut meta,
                    kernel,
                )?;
            }
            let queued: usize = nodes.iter().map(|n| n.ready.len()).sum();
            let running: usize = nodes.iter().map(|n| n.running).sum();
            if running == 0 {
                if queued == 0 {
                    break;
                }
                return Err(format!(
                    "host fleet stuck with {queued} jobs queued and none running"
                ));
            }
            let done = done_rx
                .recv()
                .map_err(|_| "worker channels closed unexpectedly".to_string())?;
            let node = &mut nodes[done.node];
            node.running -= 1;
            let (reservation, split, level) = meta
                .remove(&(done.node, done.local))
                .expect("completion for unknown job");
            if let Some(res) = &reservation {
                node.broker.release(res).map_err(|e| e.to_string())?;
            }
            results.push(FleetHostResult {
                id: node.ids[done.local],
                node: done.node,
                split,
                buffer_level: level,
                wall: done.wall,
                data: done.data,
            });
        }

        // Drop the work channels so the pools drain and exit.
        drop(nodes);
        results.sort_by_key(|r| r.id);
        Ok(FleetHostOutcome {
            results,
            rejected,
            decisions,
        })
    });

    let outcome = dispatcher
        .join()
        .map_err(|_| "dispatcher thread panicked".to_string())?;
    for h in worker_handles {
        h.join().map_err(|_| "worker thread panicked".to_string())?;
    }
    outcome
}

/// One admission pass over `node`'s queue — the host-side twin of
/// `NodeSim::admit` (same candidate selection, same broker calls, same
/// credit charge; no backfill aging, which needs virtual time).
#[allow(clippy::too_many_arguments)]
fn admit_node(
    ni: usize,
    node: &mut HostNode,
    policy: Policy,
    host_threads: usize,
    pending: &mut [Option<FleetHostJob>],
    decisions: &mut Vec<Decision>,
    meta: &mut std::collections::HashMap<
        (usize, usize),
        (Option<mlm_memkind::Reservation>, ThreadSplit, MemLevel),
    >,
    kernel: fn(&mut [i64], KernelCtx),
) -> Result<(), String> {
    let mut blocked = [false; N_CLASSES];
    loop {
        let pos = select_candidate(
            policy,
            &node.ready,
            &node.est,
            &node.ids,
            &node.classes,
            &node.credit,
            &blocked,
        );
        let Some(pos) = pos else { break };
        let local = node.ready[pos];
        let g = node.global[local];
        let spec = pending[g].as_ref().expect("job not yet run").spec.clone();
        match node.broker.try_admit_job(&spec, node.spill_ok[local])? {
            AdmitOutcome::Admitted(reservation) => {
                node.ready.remove(pos);
                if !node.spill_ok[local] {
                    node.broker
                        .note_strict_dequeued(crate::placement::ring_footprint(&spec));
                }
                let level = reservation
                    .as_ref()
                    .map(|r| r.level())
                    .unwrap_or(MemLevel::Ddr);
                let effective = if level == MemLevel::Ddr && spec.placement == Placement::Hbw {
                    Placement::Ddr
                } else {
                    spec.placement
                };
                let budget = (host_threads / (node.running + 1)).max(3);
                let split = profile(&spec, effective, &node.machine, budget, true)?.split;
                decisions.push(Decision::Admitted {
                    job: node.ids[local],
                    node: ni,
                    level,
                });
                charge_credit(
                    policy,
                    &mut node.credit,
                    node.classes[local],
                    node.est[local],
                );
                meta.insert((ni, local), (reservation, split, level));
                node.running += 1;
                let job = pending[g].take().expect("job taken twice");
                let mut spec2 = job.spec;
                spec2.p_in = split.p_in;
                spec2.p_out = split.p_out;
                spec2.p_comp = split.p_comp;
                node.work_tx
                    .send(Work {
                        node: ni,
                        local,
                        spec: spec2,
                        split,
                        data: job.data,
                        kernel,
                    })
                    .map_err(|_| "node worker pool hung up".to_string())?;
            }
            AdmitOutcome::Busy => match policy {
                Policy::Fifo | Policy::Sjf => break,
                Policy::FairShare => {
                    blocked[node.classes[local].index()] = true;
                    if blocked.iter().all(|&b| b) {
                        break;
                    }
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FleetConfig, PlacementPolicy};
    use knl_sim::machine::{MachineConfig, MemMode};
    use mlm_core::Workload;

    const MIB: u64 = 1 << 20;

    fn kernel(slice: &mut [i64], ctx: KernelCtx) {
        for (i, x) in slice.iter_mut().enumerate() {
            *x = x.wrapping_mul(3) ^ (ctx.global_offset + i) as i64;
        }
    }

    fn spec(total: u64, chunk: u64) -> PipelineSpec {
        PipelineSpec {
            total_bytes: total,
            chunk_bytes: chunk,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn input(n: usize, salt: i64) -> Vec<i64> {
        (0..n as i64).map(|i| i * 7 + salt).collect()
    }

    fn reference(mut data: Vec<i64>) -> Vec<i64> {
        for (i, x) in data.iter_mut().enumerate() {
            *x = x.wrapping_mul(3) ^ i as i64;
        }
        data
    }

    #[test]
    fn fleet_host_serves_every_job_and_spreads_strict_load() {
        let n = (MIB / 8) as usize; // 1 MiB per job
        let jobs: Vec<FleetHostJob> = (0..6)
            .map(|i| FleetHostJob {
                id: i,
                class: DeadlineClass::Standard,
                strict: true,
                spec: spec(MIB, MIB / 4),
                data: input(n, i as i64),
            })
            .collect();
        let mut fleet =
            FleetConfig::homogeneous(MachineConfig::knl_7250(MemMode::Flat), 2, 2 * MIB, false);
        fleet.placement = PlacementPolicy::LeastLoaded;
        let cfg = FleetHostConfig {
            fleet,
            host_threads: 8,
            workers: 2,
        };
        let out = fleet_serve_host(&cfg, jobs, kernel).unwrap();
        assert!(out.rejected.is_empty());
        assert_eq!(out.results.len(), 6);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.buffer_level, MemLevel::Mcdram);
            assert_eq!(r.data, reference(input(n, i as i64)), "job {i} corrupted");
        }
        // Least-loaded sees queued strict bytes, so the batch spreads.
        let used: std::collections::HashSet<usize> = out.results.iter().map(|r| r.node).collect();
        assert_eq!(used.len(), 2, "strict batch should use both nodes");
    }

    #[test]
    fn fleet_host_rejects_rings_no_node_fits() {
        let big_n = (8 * MIB / 8) as usize;
        let jobs = vec![
            FleetHostJob {
                id: 0,
                class: DeadlineClass::Standard,
                strict: true,
                spec: spec(8 * MIB, 4 * MIB), // 12 MiB ring > 2 MiB budgets
                data: input(big_n, 0),
            },
            FleetHostJob {
                id: 1,
                class: DeadlineClass::Standard,
                strict: true,
                spec: spec(MIB, MIB / 4),
                data: input((MIB / 8) as usize, 1),
            },
        ];
        let fleet =
            FleetConfig::homogeneous(MachineConfig::knl_7250(MemMode::Flat), 2, 2 * MIB, false);
        let cfg = FleetHostConfig {
            fleet,
            host_threads: 8,
            workers: 1,
        };
        let out = fleet_serve_host(&cfg, jobs, kernel).unwrap();
        assert_eq!(out.rejected, vec![0]);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].id, 1);
    }
}
