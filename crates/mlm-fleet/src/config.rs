//! Fleet configuration: per-node capacity, placement policy, stealing.

use knl_sim::machine::MachineConfig;
use knl_sim::GIB;
use mlm_cluster::ClusterConfig;
use mlm_serve::{Policy, ServeConfig};

/// One node's serving capacity.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's machine model (buses, threads, memory capacities).
    pub machine: MachineConfig,
    /// MCDRAM bytes this node's broker may hand out (clamped to
    /// addressable; heterogeneous fleets mix 8 and 16 GiB budgets).
    pub mcdram_budget: u64,
    /// `HBW_PREFERRED` semantics for non-strict jobs: spill their rings to
    /// DDR instead of queueing when MCDRAM is full.
    pub spill: bool,
}

impl NodeConfig {
    /// A node serving `machine` with the given budget and spill policy.
    pub fn new(machine: MachineConfig, mcdram_budget: u64, spill: bool) -> Self {
        NodeConfig {
            machine,
            mcdram_budget,
            spill,
        }
    }

    /// The single-node [`ServeConfig`] this node runs under the fleet's
    /// shared queueing policy.
    pub fn serve_config(&self, policy: Policy, retune: bool, fair_aging: f64) -> ServeConfig {
        ServeConfig {
            machine: self.machine.clone(),
            policy,
            mcdram_budget: self.mcdram_budget,
            spill: self.spill,
            retune,
            fair_aging,
        }
    }
}

/// How the dispatcher picks a node for each arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// First node (by id) whose capacity fits the job right now; falls
    /// back to the first feasible node when none does.
    FirstFit,
    /// Node with the *least* MCDRAM headroom that still fits the ring —
    /// tightest fit, so big strict rings keep finding big holes elsewhere.
    /// Falls back to the node with the smallest strict backlog.
    BestFitHbw,
    /// Node with the lowest MCDRAM load (reserved + queued strict bytes,
    /// normalised by budget) — classic spreading.
    LeastLoaded,
}

impl PlacementPolicy {
    /// Every policy, for sweeps.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFitHbw,
        PlacementPolicy::LeastLoaded,
    ];

    /// Stable label for CSV/report output.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::BestFitHbw => "best-fit-hbw",
            PlacementPolicy::LeastLoaded => "least-loaded",
        }
    }
}

/// Configuration for one fleet serving run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The nodes, in placement id order.
    pub nodes: Vec<NodeConfig>,
    /// Per-node queueing policy (shared by every node).
    pub policy: Policy,
    /// Dispatcher placement policy.
    pub placement: PlacementPolicy,
    /// Cross-node work stealing for straggler queues.
    pub steal: bool,
    /// Interconnect model pricing stolen-job migration (ring bytes over
    /// the link plus latency). `None` makes stealing free.
    pub cluster: Option<ClusterConfig>,
    /// Re-run the Eqs. 1–5 optimiser per job as co-residency changes.
    pub retune: bool,
    /// Fair-share starvation bound, per node (see
    /// [`ServeConfig::fair_aging`]).
    pub fair_aging: f64,
}

impl FleetConfig {
    /// A homogeneous fleet of `n` identical nodes.
    pub fn homogeneous(machine: MachineConfig, n: usize, mcdram_budget: u64, spill: bool) -> Self {
        FleetConfig {
            nodes: (0..n)
                .map(|_| NodeConfig::new(machine.clone(), mcdram_budget, spill))
                .collect(),
            policy: Policy::Fifo,
            placement: PlacementPolicy::FirstFit,
            steal: false,
            cluster: None,
            retune: true,
            fair_aging: f64::INFINITY,
        }
    }

    /// A heterogeneous fleet alternating 8 and 16 GiB MCDRAM budgets
    /// (even node ids get 16 GiB, odd get 8), the mixed-capacity shape the
    /// fleet study sweeps.
    pub fn mixed_8_16(machine: MachineConfig, n: usize, spill: bool) -> Self {
        let mut cfg = FleetConfig::homogeneous(machine, n, 16 * GIB, spill);
        for (i, node) in cfg.nodes.iter_mut().enumerate() {
            node.mcdram_budget = if i % 2 == 0 { 16 * GIB } else { 8 * GIB };
        }
        cfg
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("fleet needs at least one node".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            n.machine.validate().map_err(|e| format!("node {i}: {e}"))?;
        }
        if let Some(c) = &self.cluster {
            c.validate().map_err(|e| format!("cluster: {e}"))?;
        }
        if self.fair_aging <= 0.0 || self.fair_aging.is_nan() {
            return Err("fair_aging must be positive (INFINITY disables)".into());
        }
        Ok(())
    }
}
