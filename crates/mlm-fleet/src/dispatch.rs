//! The virtual-time fleet dispatcher: N [`NodeSim`]s behind a placement
//! layer, with cross-node work stealing.
//!
//! Each event time, in this order (a strict superset of the single-node
//! `serve` loop, so a 1-node fleet with stealing off executes exactly the
//! same operations as [`mlm_serve::serve`]):
//!
//! 1. **arrivals** — place each due job on a node ([`place`]) or reject
//!    it when no node could ever fit its ring,
//! 2. **migration deliveries** — stolen jobs whose transfer finished join
//!    their thief's queue,
//! 3. **completions** — per node, release reservations and record jobs,
//! 4. **stealing** — idle nodes lift a queued job from the most
//!    backlogged queue (never its head) if it fits right now; the move
//!    pays the interconnect price when a [`ClusterConfig`] is set,
//! 5. **admission** — per node, the shared policy pass,
//! 6. **advance** — re-tune, re-arbitrate buses, jump to the next event.
//!
//! Everything is pure arithmetic over the trace: same fleet, same trace,
//! bit-identical outcome — which is what lets CI hard-fail on placement
//! decision drift.
//!
//! [`ClusterConfig`]: mlm_cluster::ClusterConfig

use mlm_cluster::ClusterConfig;
use mlm_core::PipelineSpec;
use mlm_serve::stats::percentile;
use mlm_serve::{FleetStats, JobRecord, JobRequest, NodeSim, Rejection, DONE_EPS};

use crate::config::FleetConfig;
use crate::decision::Decision;
use crate::placement::{place, ring_footprint, PlacementView};
use crate::trace::FleetJob;

/// Everything a fleet serving run produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-job outcomes across all nodes, sorted by job id.
    pub records: Vec<JobRecord>,
    /// Jobs no node could ever fit.
    pub rejections: Vec<Rejection>,
    /// The dispatcher's decision log, in decision order.
    pub decisions: Vec<Decision>,
    /// Fleet-wide summary (high-water = max over nodes).
    pub fleet: FleetStats,
    /// Per-node summaries, indexed by node id.
    pub per_node: Vec<FleetStats>,
    /// p99 end-to-end latency over strict-HBW jobs only — the metric
    /// placement policies compete on.
    pub strict_p99: f64,
    /// Work-steal moves performed.
    pub steals: usize,
}

/// A [`NodeSim`] is a placement view through its broker.
impl PlacementView for NodeSim {
    fn can_take(&self, spec: &PipelineSpec, strict: bool) -> bool {
        self.can_ever_fit(spec, strict)
    }
    fn fits_now(&self, spec: &PipelineSpec, strict: bool) -> bool {
        NodeSim::fits_now(self, spec, strict)
    }
    fn hbw_headroom(&self) -> u64 {
        self.broker().hbw_headroom()
    }
    fn queued_strict_bytes(&self) -> u64 {
        self.broker().queued_strict_bytes()
    }
    fn reserved_mcdram(&self) -> u64 {
        self.broker().reserved_mcdram()
    }
    fn budget(&self) -> u64 {
        self.broker().budget()
    }
}

/// A stolen job in flight over the interconnect.
struct Migration {
    ready_at: f64,
    to: usize,
    job: JobRequest,
    strict: bool,
}

/// Seconds to move a stolen job's ring between nodes.
fn migration_cost(cluster: Option<&ClusterConfig>, spec: &PipelineSpec) -> f64 {
    match cluster {
        Some(c) => ring_footprint(spec) as f64 / c.link_bandwidth + c.link_latency,
        None => 0.0,
    }
}

/// Serve a fleet trace (any order; sorted internally by arrival).
pub fn fleet_serve(cfg: &FleetConfig, jobs: &[FleetJob]) -> Result<FleetOutcome, String> {
    cfg.validate()?;
    for j in jobs {
        j.req
            .spec
            .validate()
            .map_err(|e| format!("job {}: {e}", j.req.id))?;
        if !(j.req.arrival.is_finite() && j.req.arrival >= 0.0) {
            return Err(format!(
                "job {}: bad arrival time {}",
                j.req.id, j.req.arrival
            ));
        }
    }

    let mut nodes: Vec<NodeSim> = cfg
        .nodes
        .iter()
        .map(|n| NodeSim::new(n.serve_config(cfg.policy, cfg.retune, cfg.fair_aging)))
        .collect::<Result<_, _>>()?;

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .req
            .arrival
            .total_cmp(&jobs[b].req.arrival)
            .then(jobs[a].req.id.cmp(&jobs[b].req.id))
    });

    let mut next_arrival = 0usize;
    let mut migrating: Vec<Migration> = Vec::new();
    let mut decisions: Vec<Decision> = Vec::new();
    let mut rejections: Vec<Rejection> = Vec::new();
    let mut steals = 0usize;
    let mut now = 0.0f64;

    loop {
        // 1. Arrivals due at or before `now`: place or reject.
        while next_arrival < order.len() && jobs[order[next_arrival]].req.arrival <= now + DONE_EPS
        {
            let j = &jobs[order[next_arrival]];
            next_arrival += 1;
            match place(&nodes, cfg.placement, &j.req.spec, j.strict) {
                Some(n) => {
                    decisions.push(Decision::Placed {
                        job: j.req.id,
                        node: n,
                    });
                    let ok = nodes[n].submit(j.req.clone(), j.strict);
                    debug_assert!(ok, "placement chose an infeasible node");
                }
                None => {
                    decisions.push(Decision::Rejected { job: j.req.id });
                    rejections.push(Rejection {
                        id: j.req.id,
                        reason: format!(
                            "buffer ring of {} B fits no node's budget",
                            ring_footprint(&j.req.spec)
                        ),
                    });
                }
            }
        }

        // 2. Migration deliveries (stable order: initiation order).
        let mut m = 0;
        while m < migrating.len() {
            if migrating[m].ready_at <= now + DONE_EPS {
                let mig = migrating.remove(m);
                let ok = nodes[mig.to].submit(mig.job, mig.strict);
                debug_assert!(ok, "steal chose an infeasible thief");
            } else {
                m += 1;
            }
        }

        // 3. Completions, freeing capacity before stealing and admission.
        for node in &mut nodes {
            node.complete_due(now)?;
        }

        // 4. Work stealing: each idle node may lift one queued job this
        // event, from the most backlogged donor queue, skipping the
        // donor's head (it is next in line there). The stolen job must
        // both be feasible on the thief and fit its capacity *right now*
        // — stealing into a wait would only reorder queues.
        if cfg.steal {
            for t in 0..nodes.len() {
                if nodes[t].queue_len() != 0 {
                    continue;
                }
                let mut donors: Vec<usize> = (0..nodes.len())
                    .filter(|&d| d != t && nodes[d].queue_len() >= 2)
                    .collect();
                donors.sort_by_key(|&d| (std::cmp::Reverse(nodes[d].queue_len()), d));
                'thief: for d in donors {
                    for pos in 1..nodes[d].queue_len() {
                        let (job, strict) = nodes[d].queued_at(pos);
                        if nodes[t].can_ever_fit(&job.spec, strict)
                            && nodes[t].fits_now(&job.spec, strict)
                        {
                            let (job, strict) = nodes[d].steal_at(pos);
                            decisions.push(Decision::Stolen {
                                job: job.id,
                                from: d,
                                to: t,
                            });
                            steals += 1;
                            let transfer = migration_cost(cfg.cluster.as_ref(), &job.spec);
                            if transfer <= 0.0 {
                                let ok = nodes[t].submit(job, strict);
                                debug_assert!(ok);
                            } else {
                                migrating.push(Migration {
                                    ready_at: now + transfer,
                                    to: t,
                                    job,
                                    strict,
                                });
                            }
                            break 'thief;
                        }
                    }
                }
            }
        }

        // 5. Admission per node, in node order.
        for (ni, node) in nodes.iter_mut().enumerate() {
            for adm in node.admit(now)? {
                decisions.push(Decision::Admitted {
                    job: adm.id,
                    node: ni,
                    level: adm.level,
                });
            }
        }

        // 6. Termination.
        if next_arrival >= order.len()
            && migrating.is_empty()
            && nodes.iter().all(|n| n.is_drained())
        {
            break;
        }

        // 7. Re-tune and re-arbitrate each node, then advance to the
        // earliest event anywhere in the fleet.
        for node in &mut nodes {
            node.retune_and_allocate()?;
        }
        let mut t_next = f64::INFINITY;
        for node in &nodes {
            t_next = t_next.min(node.next_completion(now));
        }
        if next_arrival < order.len() {
            t_next = t_next.min(jobs[order[next_arrival]].req.arrival);
        }
        for mig in &migrating {
            t_next = t_next.min(mig.ready_at);
        }
        if !t_next.is_finite() {
            let queued: usize = nodes.iter().map(|n| n.queue_len()).sum();
            let running: usize = nodes.iter().map(|n| n.running_len()).sum();
            return Err(format!(
                "fleet stuck at t={now}: {queued} queued, {running} running, nothing can progress"
            ));
        }
        for node in &mut nodes {
            node.advance(now, t_next);
        }
        now = t_next;
    }

    // Collect per-node and fleet-wide statistics.
    let mut per_node = Vec::with_capacity(nodes.len());
    let mut records: Vec<JobRecord> = Vec::new();
    let mut hwm_max = 0u64;
    for node in nodes {
        let hwm = node.broker().high_water();
        hwm_max = hwm_max.max(hwm);
        let mut recs = node.into_records();
        recs.sort_by_key(|r| r.id);
        per_node.push(FleetStats::from_records(&recs, 0, hwm));
        records.extend(recs);
    }
    records.sort_by_key(|r| r.id);
    let fleet = FleetStats::from_records(&records, rejections.len(), hwm_max);

    // Strict-HBW tail latency: the placement-policy scoreboard.
    let strict_ids: std::collections::HashSet<u64> =
        jobs.iter().filter(|j| j.strict).map(|j| j.req.id).collect();
    let mut strict_lat: Vec<f64> = records
        .iter()
        .filter(|r| strict_ids.contains(&r.id))
        .map(|r| r.latency())
        .collect();
    strict_lat.sort_by(f64::total_cmp);
    let strict_p99 = percentile(&strict_lat, 0.99);

    Ok(FleetOutcome {
        records,
        rejections,
        decisions,
        fleet,
        per_node,
        strict_p99,
        steals,
    })
}
