//! The dispatcher's decision log: what was placed where, admitted when,
//! stolen by whom — the sequence both serving modes must agree on.
//!
//! The virtual-time and real-thread modes cannot agree on *timing* (one
//! runs a model, the other a wall clock), so equivalence is defined over
//! the canonical projection that is timing-independent:
//!
//! * the global **placement sequence** — `Placed`/`Rejected` in submission
//!   order (both modes decide placements in submission order, before the
//!   decision can be influenced by a completion), and
//! * each node's **admission sequence** — per-node order is fixed by the
//!   queue discipline, even though the global interleaving across nodes
//!   depends on which node's job happens to finish first.
//!
//! [`decision_digest`] hashes exactly that projection, so equal digests ⇔
//! equal canonical decision sequences.

use knl_sim::MemLevel;
use mlm_serve::JobId;

/// One dispatcher decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The job was routed to a node's queue at submission.
    Placed {
        /// Job id.
        job: JobId,
        /// Target node.
        node: usize,
    },
    /// No node could ever fit the job's ring; refused at submission.
    Rejected {
        /// Job id.
        job: JobId,
    },
    /// A node's broker reserved the job's ring and it started.
    Admitted {
        /// Job id.
        job: JobId,
        /// Node that admitted it.
        node: usize,
        /// Memory level of the ring reservation.
        level: MemLevel,
    },
    /// An idle node stole the job from a backlogged node's queue.
    Stolen {
        /// Job id.
        job: JobId,
        /// Donor node.
        from: usize,
        /// Thief node.
        to: usize,
    },
}

/// The global placement/rejection subsequence, in decision order.
pub fn placement_sequence(decisions: &[Decision]) -> Vec<Decision> {
    decisions
        .iter()
        .filter(|d| matches!(d, Decision::Placed { .. } | Decision::Rejected { .. }))
        .copied()
        .collect()
}

/// `node`'s admission subsequence `(job, level)`, in decision order.
pub fn admission_sequence(decisions: &[Decision], node: usize) -> Vec<(JobId, MemLevel)> {
    decisions
        .iter()
        .filter_map(|d| match d {
            Decision::Admitted {
                job,
                node: n,
                level,
            } if *n == node => Some((*job, *level)),
            _ => None,
        })
        .collect()
}

fn fnv1a(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a digest of the canonical decision projection: the placement
/// sequence, then each node's admission sequence in node order. Two runs
/// with equal digests made the same placements and the same per-node
/// admissions (with the same memory levels) — the drift signal
/// `fleet_study --check` hard-fails on.
pub fn decision_digest(decisions: &[Decision], nodes: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in placement_sequence(decisions) {
        match d {
            Decision::Placed { job, node } => {
                fnv1a(&mut h, 1);
                fnv1a(&mut h, job);
                fnv1a(&mut h, node as u64);
            }
            Decision::Rejected { job } => {
                fnv1a(&mut h, 2);
                fnv1a(&mut h, job);
            }
            _ => unreachable!("placement_sequence filters to Placed/Rejected"),
        }
    }
    for n in 0..nodes {
        fnv1a(&mut h, 3);
        for (job, level) in admission_sequence(decisions, n) {
            fnv1a(&mut h, job);
            fnv1a(&mut h, matches!(level, MemLevel::Mcdram) as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_where_it_must_be() {
        let a = vec![
            Decision::Placed { job: 0, node: 0 },
            Decision::Placed { job: 1, node: 1 },
            Decision::Admitted {
                job: 0,
                node: 0,
                level: MemLevel::Mcdram,
            },
            Decision::Admitted {
                job: 1,
                node: 1,
                level: MemLevel::Mcdram,
            },
        ];
        // Swapping the cross-node admission interleaving does not change
        // the canonical digest (per-node sequences are unchanged)...
        let mut b = a.clone();
        b.swap(2, 3);
        assert_eq!(decision_digest(&a, 2), decision_digest(&b, 2));
        // ...but swapping the placement order does.
        let mut c = a.clone();
        c.swap(0, 1);
        assert_ne!(decision_digest(&a, 2), decision_digest(&c, 2));
        // And so does moving an admission to a different node.
        let mut d = a;
        d[2] = Decision::Admitted {
            job: 0,
            node: 1,
            level: MemLevel::Mcdram,
        };
        assert_ne!(decision_digest(&c, 2), decision_digest(&d, 2));
    }

    #[test]
    fn projections_filter_correctly() {
        let ds = vec![
            Decision::Placed { job: 7, node: 1 },
            Decision::Stolen {
                job: 7,
                from: 1,
                to: 0,
            },
            Decision::Admitted {
                job: 7,
                node: 0,
                level: MemLevel::Ddr,
            },
            Decision::Rejected { job: 8 },
        ];
        assert_eq!(
            placement_sequence(&ds),
            vec![
                Decision::Placed { job: 7, node: 1 },
                Decision::Rejected { job: 8 }
            ]
        );
        assert_eq!(admission_sequence(&ds, 0), vec![(7, MemLevel::Ddr)]);
        assert!(admission_sequence(&ds, 1).is_empty());
    }
}
