//! # mlm-fleet — MCDRAM-aware multi-node serving
//!
//! The paper tunes one KNL node's 16 GiB of MCDRAM; this crate shards
//! [`mlm_serve`] across a fleet of them. A dispatcher owns N per-node
//! capacity brokers and answers the fleet-level question the single-node
//! scheduler cannot: *which node* should a job's buffer ring live on?
//!
//! * **Placement** ([`placement`]) — strict-HBW jobs are packed onto
//!   nodes whose MCDRAM budget fits their ring (first-fit,
//!   best-fit-by-HBW-headroom, or least-loaded); `HBW_PREFERRED` jobs may
//!   ride spill-capable, DDR-rich nodes instead. A job no node could ever
//!   fit is rejected at submission — the fleet mirror of the broker's
//!   `can_ever_fit`.
//! * **Per-node serving** — every node runs the exact single-node state
//!   machine ([`mlm_serve::NodeSim`]), so a 1-node fleet is bit-identical
//!   to [`mlm_serve::serve`] by construction.
//! * **Work stealing** ([`dispatch`]) — idle nodes lift queued jobs from
//!   straggler queues, paying the interconnect price
//!   ([`mlm_cluster::ClusterConfig`]) to migrate the ring.
//! * **Two execution modes** — the virtual-time dispatcher
//!   ([`fleet_serve`]) prices million-job traces deterministically; the
//!   real-thread host mode ([`fleet_serve_host`]) runs the same
//!   placement/admission code as a long-running dispatcher thread over
//!   per-node worker pools. Their decision sequences agree on the
//!   canonical projection ([`decision::decision_digest`]).
//! * **Fleet traces** ([`trace`]) — per-node SplitMix64 streams (stable
//!   under node-count changes) with arrival skew and a strict-HBW
//!   fraction, merged into million-job fleet workloads.

pub mod config;
pub mod decision;
pub mod dispatch;
pub mod host;
pub mod placement;
pub mod trace;

pub use config::{FleetConfig, NodeConfig, PlacementPolicy};
pub use decision::{admission_sequence, decision_digest, placement_sequence, Decision};
pub use dispatch::{fleet_serve, FleetOutcome};
pub use host::{
    fleet_serve_host, FleetHostConfig, FleetHostJob, FleetHostOutcome, FleetHostResult,
};
pub use placement::{place, ring_footprint, PlacementView};
pub use trace::{fleet_trace, FleetJob, FleetTraceConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::{MachineConfig, MemMode};
    use knl_sim::GIB;
    use mlm_serve::trace::TraceConfig;
    use mlm_serve::Policy;

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn small_trace(nodes: usize, per_node: usize, seed: u64) -> Vec<FleetJob> {
        fleet_trace(&FleetTraceConfig::new(
            TraceConfig::new(machine(), 0, 2.0, seed),
            nodes,
            per_node,
        ))
    }

    #[test]
    fn fleet_serve_is_deterministic() {
        let cfg = {
            let mut c = FleetConfig::mixed_8_16(machine(), 4, true);
            c.placement = PlacementPolicy::BestFitHbw;
            c.steal = true;
            c.cluster = Some(mlm_cluster::ClusterConfig::omnipath(4));
            c
        };
        let jobs = small_trace(4, 60, 11);
        let a = fleet_serve(&cfg, &jobs).unwrap();
        let b = fleet_serve(&cfg, &jobs).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(
            decision_digest(&a.decisions, 4),
            decision_digest(&b.decisions, 4)
        );
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.finish.to_bits(), y.finish.to_bits());
        }
    }

    #[test]
    fn every_job_is_placed_admitted_or_rejected_exactly_once() {
        for placement in PlacementPolicy::ALL {
            let mut cfg = FleetConfig::homogeneous(machine(), 3, 8 * GIB, false);
            cfg.placement = placement;
            cfg.policy = Policy::Sjf;
            let jobs = small_trace(3, 50, 5);
            let out = fleet_serve(&cfg, &jobs).unwrap();
            assert_eq!(
                out.records.len() + out.rejections.len(),
                jobs.len(),
                "{placement:?}"
            );
            // Each completed job was placed once and admitted once.
            for r in &out.records {
                let placed = out
                    .decisions
                    .iter()
                    .filter(|d| matches!(d, Decision::Placed { job, .. } if *job == r.id))
                    .count();
                let admitted = out
                    .decisions
                    .iter()
                    .filter(|d| matches!(d, Decision::Admitted { job, .. } if *job == r.id))
                    .count();
                assert_eq!((placed, admitted), (1, 1), "job {}", r.id);
            }
        }
    }

    #[test]
    fn strict_elephants_are_rejected_only_when_no_node_fits() {
        // 6 GiB strict ring: fits a 16 GiB node, not an 8 GiB one.
        let mut jobs = small_trace(2, 20, 3);
        for j in &mut jobs {
            j.strict = true;
        }
        let hetero = FleetConfig {
            nodes: vec![
                NodeConfig::new(machine(), 4 * GIB, false),
                NodeConfig::new(machine(), 16 * GIB, false),
            ],
            ..FleetConfig::homogeneous(machine(), 2, 16 * GIB, false)
        };
        let out = fleet_serve(&hetero, &jobs).unwrap();
        // The 16 GiB node keeps everything feasible.
        assert!(out.rejections.is_empty());
        // Shrink both nodes to 4 GiB: big rings now bounce.
        let tiny = FleetConfig::homogeneous(machine(), 2, 4 * GIB, false);
        let out = fleet_serve(&tiny, &jobs).unwrap();
        for r in &out.rejections {
            let job = jobs.iter().find(|j| j.req.id == r.id).unwrap();
            assert!(ring_footprint(&job.req.spec) > 4 * GIB);
        }
        // And every non-rejected job still completes.
        assert_eq!(out.records.len() + out.rejections.len(), jobs.len());
    }

    #[test]
    fn work_stealing_rescues_stragglers() {
        // A batch of strict 6 GiB rings all arriving at t=0: first-fit
        // places the whole batch on node 0 (reservations only move at
        // admission, so its headroom still looks open), node 0 admits one
        // at a time, and nodes 1..3 sit idle. Stealing lets them lift the
        // queued jobs over the interconnect; queue wait collapses.
        use mlm_core::{PipelineSpec, Placement, Workload};
        use mlm_serve::{DeadlineClass, JobRequest};
        let spec = PipelineSpec {
            total_bytes: 32 * GIB,
            chunk_bytes: 2 * GIB,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 2,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        };
        let jobs: Vec<FleetJob> = (0..8)
            .map(|i| FleetJob {
                req: JobRequest::new(i, 0.0, DeadlineClass::Standard, spec.clone()),
                strict: true,
                origin: 0,
            })
            .collect();
        let mut cfg = FleetConfig::homogeneous(machine(), 4, 8 * GIB, false);
        cfg.placement = PlacementPolicy::FirstFit;
        let no_steal = fleet_serve(&cfg, &jobs).unwrap();
        cfg.steal = true;
        cfg.cluster = Some(mlm_cluster::ClusterConfig::omnipath(4));
        let steal = fleet_serve(&cfg, &jobs).unwrap();
        assert!(steal.steals > 0, "expected steals on a first-fit pileup");
        assert!(
            steal.fleet.mean_queue_wait < no_steal.fleet.mean_queue_wait,
            "stealing must cut mean queue wait: {} vs {}",
            steal.fleet.mean_queue_wait,
            no_steal.fleet.mean_queue_wait
        );
        // Stealing never over-commits a node: every node's high-water mark
        // respects its budget.
        for (ni, stats) in steal.per_node.iter().enumerate() {
            assert!(
                stats.mcdram_high_water <= 8 * GIB,
                "node {ni} over budget: {}",
                stats.mcdram_high_water
            );
        }
    }
}
