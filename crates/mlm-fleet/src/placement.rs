//! MCDRAM-aware node selection, shared by both serving modes.
//!
//! Placement happens once per job, at submission, against a snapshot of
//! every node's broker state. The policies only read the
//! [`PlacementView`] trait, which both the virtual-time [`NodeSim`]
//! wrapper and the host dispatcher's node state implement — so the two
//! modes run the *same* placement code, which is what makes their decision
//! sequences comparable at all.
//!
//! [`NodeSim`]: mlm_serve::NodeSim

use mlm_core::{PipelineSpec, Placement};
use mlm_serve::RING_SLOTS;

use crate::config::PlacementPolicy;

/// The broker-state snapshot a placement policy may consult.
pub trait PlacementView {
    /// Could this node *ever* run the job (ring ≤ some reachable level)?
    fn can_take(&self, spec: &PipelineSpec, strict: bool) -> bool;
    /// Could the job start right now (ring ≤ current MCDRAM headroom, or a
    /// DDR spill is allowed)?
    fn fits_now(&self, spec: &PipelineSpec, strict: bool) -> bool;
    /// MCDRAM bytes currently unreserved.
    fn hbw_headroom(&self) -> u64;
    /// Ring bytes of strict jobs queued behind this node.
    fn queued_strict_bytes(&self) -> u64;
    /// MCDRAM bytes currently reserved.
    fn reserved_mcdram(&self) -> u64;
    /// The node's MCDRAM budget.
    fn budget(&self) -> u64;
}

/// MCDRAM bytes the job's ring would pin (zero for DDR/implicit jobs).
pub fn ring_footprint(spec: &PipelineSpec) -> u64 {
    match spec.placement {
        Placement::Hbw => spec.buffer_footprint(RING_SLOTS),
        Placement::Ddr | Placement::Implicit => 0,
    }
}

/// MCDRAM pressure: reserved plus queued strict backlog, relative to
/// budget. Budget-0 nodes (cache mode) count as fully loaded.
fn load<V: PlacementView>(node: &V) -> f64 {
    (node
        .reserved_mcdram()
        .saturating_add(node.queued_strict_bytes())) as f64
        / node.budget().max(1) as f64
}

/// Pick a node for the job, or `None` when no node could ever fit it (the
/// fleet-level mirror of `can_ever_fit`: such jobs are rejected at
/// submission, never queued). Deterministic: every tie breaks toward the
/// lower node id.
pub fn place<V: PlacementView>(
    nodes: &[V],
    policy: PlacementPolicy,
    spec: &PipelineSpec,
    strict: bool,
) -> Option<usize> {
    let feasible: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].can_take(spec, strict))
        .collect();
    if feasible.is_empty() {
        return None;
    }
    let footprint = ring_footprint(spec);
    match policy {
        PlacementPolicy::FirstFit => Some(
            feasible
                .iter()
                .copied()
                .find(|&i| nodes[i].fits_now(spec, strict))
                .unwrap_or(feasible[0]),
        ),
        PlacementPolicy::BestFitHbw => feasible
            .iter()
            .copied()
            .filter(|&i| footprint <= nodes[i].hbw_headroom() && nodes[i].fits_now(spec, strict))
            .min_by(|&a, &b| {
                (nodes[a].hbw_headroom() - footprint)
                    .cmp(&(nodes[b].hbw_headroom() - footprint))
                    .then(a.cmp(&b))
            })
            .or_else(|| {
                // Nothing fits in MCDRAM right now: queue behind the node
                // with the smallest strict backlog (biggest budget breaks
                // ties, so giant rings wait where they can actually run).
                feasible.iter().copied().min_by(|&a, &b| {
                    nodes[a]
                        .queued_strict_bytes()
                        .cmp(&nodes[b].queued_strict_bytes())
                        .then(nodes[b].budget().cmp(&nodes[a].budget()))
                        .then(a.cmp(&b))
                })
            }),
        PlacementPolicy::LeastLoaded => feasible
            .iter()
            .copied()
            .min_by(|&a, &b| load(&nodes[a]).total_cmp(&load(&nodes[b])).then(a.cmp(&b))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlm_core::Workload;

    struct Fake {
        headroom: u64,
        queued: u64,
        reserved: u64,
        budget: u64,
        spill: bool,
    }

    impl PlacementView for Fake {
        fn can_take(&self, spec: &PipelineSpec, strict: bool) -> bool {
            let f = ring_footprint(spec);
            f <= self.budget || (!strict && self.spill)
        }
        fn fits_now(&self, spec: &PipelineSpec, strict: bool) -> bool {
            let f = ring_footprint(spec);
            f <= self.headroom || (!strict && self.spill)
        }
        fn hbw_headroom(&self) -> u64 {
            self.headroom
        }
        fn queued_strict_bytes(&self) -> u64 {
            self.queued
        }
        fn reserved_mcdram(&self) -> u64 {
            self.reserved
        }
        fn budget(&self) -> u64 {
            self.budget
        }
    }

    const GIB: u64 = 1 << 30;

    fn spec(chunk: u64) -> PipelineSpec {
        PipelineSpec {
            total_bytes: 32 * GIB,
            chunk_bytes: chunk,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 2,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn node(headroom: u64, queued: u64, budget: u64) -> Fake {
        Fake {
            headroom,
            queued,
            reserved: budget - headroom,
            budget,
            spill: false,
        }
    }

    #[test]
    fn first_fit_takes_lowest_id_that_fits_now() {
        // 6 GiB ring; node 0 is full, node 1 has room.
        let nodes = [node(0, 0, 16 * GIB), node(8 * GIB, 0, 16 * GIB)];
        assert_eq!(
            place(&nodes, PlacementPolicy::FirstFit, &spec(2 * GIB), true),
            Some(1)
        );
        // Nothing fits now: first feasible node wins.
        let full = [node(0, 0, 16 * GIB), node(0, 0, 16 * GIB)];
        assert_eq!(
            place(&full, PlacementPolicy::FirstFit, &spec(2 * GIB), true),
            Some(0)
        );
    }

    #[test]
    fn best_fit_packs_tightest_and_falls_back_by_backlog() {
        // 6 GiB ring; headrooms 7 and 12 GiB: best-fit picks the 7.
        let nodes = [node(12 * GIB, 0, 16 * GIB), node(7 * GIB, 0, 16 * GIB)];
        assert_eq!(
            place(&nodes, PlacementPolicy::BestFitHbw, &spec(2 * GIB), true),
            Some(1)
        );
        // Nothing fits now: least strict backlog wins.
        let full = [
            node(0, 9 * GIB, 16 * GIB),
            node(0, 3 * GIB, 16 * GIB),
            node(0, 6 * GIB, 16 * GIB),
        ];
        assert_eq!(
            place(&full, PlacementPolicy::BestFitHbw, &spec(2 * GIB), true),
            Some(1)
        );
    }

    #[test]
    fn least_loaded_normalises_by_budget() {
        // Node 0: 8/16 GiB loaded (0.5). Node 1: 3/8 GiB loaded (0.375).
        let nodes = [node(8 * GIB, 0, 16 * GIB), node(5 * GIB, 0, 8 * GIB)];
        assert_eq!(
            place(&nodes, PlacementPolicy::LeastLoaded, &spec(GIB / 2), true),
            Some(1)
        );
    }

    #[test]
    fn infeasible_everywhere_is_rejected() {
        // 6 GiB ring, 4 GiB budgets, strict: no node can ever fit it.
        let nodes = [node(4 * GIB, 0, 4 * GIB), node(4 * GIB, 0, 4 * GIB)];
        assert_eq!(
            place(&nodes, PlacementPolicy::FirstFit, &spec(2 * GIB), true),
            None
        );
        // Non-strict with a spill node: feasible again.
        let spilly = [Fake {
            headroom: 0,
            queued: 0,
            reserved: 4 * GIB,
            budget: 4 * GIB,
            spill: true,
        }];
        assert_eq!(
            place(&spilly, PlacementPolicy::FirstFit, &spec(2 * GIB), false),
            Some(0)
        );
    }
}
