//! Fleet-scale trace generation: per-node SplitMix64 streams, merged.
//!
//! A fleet trace is the union of one bounded-Pareto heavy-tailed stream
//! per node ([`mlm_serve::heavy_tailed_trace`]), each drawn from its own
//! seeded SplitMix64 whose seed depends only on `(fleet seed, node id)` —
//! *not* on the node count. Growing a 4-node study to 16 nodes leaves the
//! first four nodes' job streams bit-identical, so `fleet_study.csv`
//! deltas across node counts are pure scheduling effects, and the CSV is
//! byte-reproducible in CI.
//!
//! Two knobs distinguish a fleet trace from N independent single-node
//! traces: a per-node arrival-rate **skew** (low-discrepancy weights in
//! `[1−skew, 1+skew]`, so some nodes' tenants are hotter than others —
//! total λ still scales with the node count), and a **strict fraction**
//! (jobs that demand `HBW` rather than `HBW_PREFERRED` semantics, the
//! population placement policies fight over).

use mlm_core::workload::SplitMix64;
use mlm_serve::trace::{heavy_tailed_trace, TraceConfig};
use mlm_serve::JobRequest;

/// A job in a fleet trace.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// The job (id, arrival, class, spec). Ids are `0..jobs` in merged
    /// arrival order.
    pub req: JobRequest,
    /// Strict-HBW: the ring must live in MCDRAM (queue for it) even on a
    /// spill-capable node. Non-strict jobs are `HBW_PREFERRED`.
    pub strict: bool,
    /// The node whose tenant stream generated this job (skew bookkeeping;
    /// the dispatcher is free to place it anywhere).
    pub origin: usize,
}

/// Parameters of a fleet trace.
#[derive(Debug, Clone)]
pub struct FleetTraceConfig {
    /// Per-node stream template. `base.jobs` is the job count *per node*;
    /// `base.arrival_rate` the per-node base rate; `base.seed` the fleet
    /// seed every per-node stream is derived from.
    pub base: TraceConfig,
    /// Number of per-node streams.
    pub nodes: usize,
    /// Arrival-rate skew in `[0, 1)`: node weights spread over
    /// `[1−skew, 1+skew]` by a golden-ratio low-discrepancy sequence.
    pub skew: f64,
    /// Fraction of jobs that are strict-HBW.
    pub strict_frac: f64,
}

impl FleetTraceConfig {
    /// A fleet trace over `nodes` streams of `jobs_per_node` jobs each.
    pub fn new(base: TraceConfig, nodes: usize, jobs_per_node: usize) -> Self {
        let mut base = base;
        base.jobs = jobs_per_node;
        FleetTraceConfig {
            base,
            nodes,
            skew: 0.3,
            strict_frac: 0.35,
        }
    }
}

/// The seed of node `i`'s stream: depends only on the fleet seed and `i`,
/// decorrelated through one SplitMix64 step.
fn node_seed(fleet_seed: u64, i: usize) -> u64 {
    SplitMix64::new(fleet_seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Node `i`'s arrival-rate weight in `[1−skew, 1+skew]`, by the
/// golden-ratio sequence (depends only on `i`, never on the node count).
fn skew_weight(skew: f64, i: usize) -> f64 {
    const PHI_FRAC: f64 = 0.618_033_988_749_894_9;
    let u = ((i + 1) as f64 * PHI_FRAC).fract();
    1.0 + skew * (2.0 * u - 1.0)
}

/// Uniform in `[0, 1)` from the top 53 bits of one draw.
fn u01(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generate the merged fleet trace. Jobs are sorted by arrival (ties by
/// origin node, then by position in the origin stream) and re-numbered
/// `0..total` in that order.
pub fn fleet_trace(cfg: &FleetTraceConfig) -> Vec<FleetJob> {
    assert!(cfg.nodes > 0, "fleet trace needs at least one node stream");
    assert!(
        (0.0..1.0).contains(&cfg.skew),
        "skew must be in [0, 1), got {}",
        cfg.skew
    );
    assert!(
        (0.0..=1.0).contains(&cfg.strict_frac),
        "strict_frac must be in [0, 1], got {}",
        cfg.strict_frac
    );
    let mut merged: Vec<(f64, usize, u64, JobRequest, bool)> =
        Vec::with_capacity(cfg.nodes * cfg.base.jobs);
    for i in 0..cfg.nodes {
        let seed = node_seed(cfg.base.seed, i);
        let node_cfg = TraceConfig {
            seed,
            arrival_rate: cfg.base.arrival_rate * skew_weight(cfg.skew, i),
            ..cfg.base.clone()
        };
        // Strictness comes from a separate salted stream so it never
        // perturbs the arrival/size draws.
        let mut strict_rng = SplitMix64::new(seed ^ 0x5712_C7F1_EE75_0A11);
        for req in heavy_tailed_trace(&node_cfg) {
            let strict = u01(&mut strict_rng) < cfg.strict_frac;
            merged.push((req.arrival, i, req.id, req, strict));
        }
    }
    merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    merged
        .into_iter()
        .enumerate()
        .map(|(gid, (_, origin, _, mut req, strict))| {
            req.id = gid as u64;
            FleetJob {
                req,
                strict,
                origin,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::{MachineConfig, MemMode};

    fn cfg(nodes: usize, per_node: usize, seed: u64) -> FleetTraceConfig {
        FleetTraceConfig::new(
            TraceConfig::new(MachineConfig::knl_7250(MemMode::Flat), 0, 2.0, seed),
            nodes,
            per_node,
        )
    }

    #[test]
    fn per_node_streams_are_stable_under_node_count_changes() {
        let four = fleet_trace(&cfg(4, 100, 9));
        let sixteen = fleet_trace(&cfg(16, 100, 9));
        // Every job from origin streams 0..4 appears identically (spec,
        // arrival, class, strictness) in the 16-node trace; only global
        // ids differ.
        let key = |j: &FleetJob| {
            (
                j.origin,
                j.req.arrival.to_bits(),
                j.req.spec.total_bytes,
                j.req.class,
                j.strict,
            )
        };
        let small: Vec<_> = four.iter().map(key).collect();
        let big: Vec<_> = sixteen.iter().filter(|j| j.origin < 4).map(key).collect();
        assert_eq!(small, big);
    }

    #[test]
    fn stencil_frac_flows_into_every_node_stream() {
        use mlm_core::Workload;
        // The fleet template clones the serve-side TraceConfig per node,
        // so the mixed-workload knob reaches every origin stream.
        let mut c = cfg(3, 150, 5);
        c.base.stencil_frac = 0.5;
        let jobs = fleet_trace(&c);
        for origin in 0..3 {
            assert!(
                jobs.iter().any(|j| j.origin == origin
                    && matches!(j.req.spec.workload, Workload::Stencil { .. })),
                "node {origin} drew no stencil jobs"
            );
            assert!(
                jobs.iter()
                    .any(|j| j.origin == origin && j.req.spec.workload == Workload::Map),
                "node {origin} drew no map jobs"
            );
        }
        for j in &jobs {
            j.req.spec.validate().unwrap();
        }
    }

    #[test]
    fn trace_is_deterministic_merged_and_skewed() {
        let a = fleet_trace(&cfg(4, 200, 3));
        let b = fleet_trace(&cfg(4, 200, 3));
        assert_eq!(a.len(), 800);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.req.id, y.req.id);
            assert_eq!(x.req.arrival.to_bits(), y.req.arrival.to_bits());
            assert_eq!(x.strict, y.strict);
            assert_eq!(x.origin, y.origin);
        }
        // Sorted by arrival, ids sequential.
        for (i, w) in a.windows(2).enumerate() {
            assert!(w[1].req.arrival >= w[0].req.arrival);
            assert_eq!(w[0].req.id, i as u64);
        }
        // Skew: per-origin makespans differ, so hot streams pack more
        // jobs early. Weights stay within [1 - skew, 1 + skew].
        for i in 0..16 {
            let w = skew_weight(0.3, i);
            assert!((0.7..=1.3).contains(&w), "weight {w} out of range");
        }
        // Both strict and preferred jobs occur at the default fraction.
        let strict = a.iter().filter(|j| j.strict).count();
        assert!(strict > 100 && strict < 700, "strict count {strict}");
    }
}
