//! # mlm-memkind — a memkind-style heap manager for the simulated node
//!
//! On real KNL hardware, flat-mode MCDRAM is reached through the
//! [memkind](http://memkind.github.io/memkind/) library (`hbw_malloc()` et
//! al., Cantalupo et al., SAND2015-1862C). This crate reproduces that
//! interface surface over the simulated machine of [`knl_sim`]: named
//! allocation *kinds* with distinct placement policies, per-level capacity
//! accounting, and the fallback semantics that make `HBW_PREFERRED`
//! different from strict `HBW`.
//!
//! Allocations return [`SimAllocation`] handles carrying concrete simulated
//! address ranges, which is what lets the cache model observe direct-mapped
//! aliasing between co-resident arrays.
//!
//! ```
//! use knl_sim::machine::{MachineConfig, MemMode};
//! use mlm_memkind::{Kind, MemKind};
//!
//! let mk = MemKind::new(&MachineConfig::knl_7250(MemMode::Flat));
//! let a = mk.malloc(Kind::Hbw, 1 << 30).unwrap();
//! assert_eq!(a.region().level, knl_sim::MemLevel::Mcdram);
//! mk.free(a);
//! ```

use std::collections::BTreeMap;

use knl_sim::alloc::{Region, RegionAllocator};
use knl_sim::machine::MachineConfig;
use knl_sim::{MemLevel, SimError};
use parking_lot::Mutex;

/// Allocation kind, mirroring memkind's partition names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Ordinary DDR allocation (`MEMKIND_DEFAULT`).
    Default,
    /// Strict high-bandwidth allocation (`MEMKIND_HBW`): fails when the
    /// addressable MCDRAM is exhausted.
    Hbw,
    /// Preferred high-bandwidth allocation (`MEMKIND_HBW_PREFERRED`): falls
    /// back to DDR when MCDRAM is exhausted — the behaviour `numactl
    /// --preferred` gives whole applications, which is how Li et al. ran
    /// their flat-mode experiments (paper §2.4).
    HbwPreferred,
}

// Transitional shims (kept one release): the unified placement vocabulary
// lives in `mlm_exec`; `Kind` remains the memkind-facing spelling.
impl From<mlm_exec::Placement> for Kind {
    /// The allocation kind a pipeline's chunk buffers need. Strict `Hbw`
    /// matches the paper's setup (a spilled buffer ring would defeat the
    /// chunking); implicit cache mode owns no buffers, so its spelling —
    /// like plain DDR — is an ordinary default allocation.
    fn from(p: mlm_exec::Placement) -> Self {
        match p {
            mlm_exec::Placement::Hbw => Kind::Hbw,
            mlm_exec::Placement::Ddr | mlm_exec::Placement::Implicit => Kind::Default,
        }
    }
}

impl From<Kind> for mlm_exec::Placement {
    /// The buffer placement an allocation kind implies. Both HBW flavours
    /// *ask* for MCDRAM ([`Kind::HbwPreferred`] may land elsewhere, but
    /// that is a runtime outcome, not a placement request).
    fn from(k: Kind) -> Self {
        match k {
            Kind::Hbw | Kind::HbwPreferred => mlm_exec::Placement::Hbw,
            Kind::Default => mlm_exec::Placement::Ddr,
        }
    }
}

/// A live simulated allocation. Free it with [`MemKind::free`]; dropping it
/// without freeing leaks simulated capacity (tracked, like a real leak).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimAllocation {
    region: Region,
    kind: Kind,
    serial: u64,
}

impl SimAllocation {
    /// The simulated address range backing this allocation.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The kind it was requested with (not necessarily where it landed —
    /// see [`SimAllocation::level`]).
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The level the allocation actually landed in.
    pub fn level(&self) -> MemLevel {
        self.region.level
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.region.size
    }
}

/// A live capacity reservation. Created by [`MemKind::try_reserve`],
/// returned with [`MemKind::release`].
///
/// A reservation is an accounting claim, not an address range: it shrinks
/// what [`MemKind::reservable`] reports so an admission controller can
/// promise capacity to a job *before* the job allocates its actual buffers
/// (which still go through [`MemKind::malloc`]). This is the broker-side
/// half of the `hbw_malloc` story: real memkind has no reserve call, so
/// multi-tenant KNL schedulers layered exactly this bookkeeping on top.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Reservation {
    level: MemLevel,
    kind: Kind,
    bytes: u64,
    serial: u64,
}

impl Reservation {
    /// The level whose capacity this reservation holds (for
    /// [`Kind::HbwPreferred`] this may be [`MemLevel::Ddr`] — the
    /// fallback).
    pub fn level(&self) -> MemLevel {
        self.level
    }

    /// The kind the reservation was requested with.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// Reserved bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

struct Inner {
    ddr: RegionAllocator,
    mcdram: RegionAllocator,
    next_serial: u64,
    live: usize,
    /// Live reservations by serial: (level, bytes). A `BTreeMap` keeps the
    /// iteration (and thus any diagnostic output) deterministic.
    reservations: BTreeMap<u64, (MemLevel, u64)>,
    reserved: [u64; 2],
}

impl Inner {
    fn reserved(&self, level: MemLevel) -> u64 {
        self.reserved[level.index()]
    }

    fn reservable(&self, level: MemLevel) -> u64 {
        let avail = match level {
            MemLevel::Ddr => self.ddr.available(),
            MemLevel::Mcdram => self.mcdram.available(),
        };
        avail.saturating_sub(self.reserved(level))
    }
}

/// The heap manager: one per simulated machine.
pub struct MemKind {
    inner: Mutex<Inner>,
}

impl MemKind {
    /// Build a manager for `cfg`. In cache mode the MCDRAM partition has
    /// zero capacity and all `Hbw` requests fail (as strict `hbw_malloc`
    /// does on a cache-mode KNL); in hybrid mode it has the flat share.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemKind {
            inner: Mutex::new(Inner {
                ddr: RegionAllocator::new(MemLevel::Ddr, cfg.ddr_capacity),
                mcdram: RegionAllocator::new(MemLevel::Mcdram, cfg.addressable_mcdram()),
                next_serial: 0,
                live: 0,
                reservations: BTreeMap::new(),
                reserved: [0; 2],
            }),
        }
    }

    /// Allocate `size` bytes with the given kind's policy.
    pub fn malloc(&self, kind: Kind, size: u64) -> Result<SimAllocation, SimError> {
        self.memalign(kind, size, 1)
    }

    /// Variant of [`Self::malloc`] with an alignment requirement
    /// (`hbw_posix_memalign`).
    pub fn memalign(&self, kind: Kind, size: u64, align: u64) -> Result<SimAllocation, SimError> {
        let mut g = self.inner.lock();
        let region = match kind {
            Kind::Default => g.ddr.alloc_aligned(size, align)?,
            Kind::Hbw => g.mcdram.alloc_aligned(size, align)?,
            Kind::HbwPreferred => match g.mcdram.alloc_aligned(size, align) {
                Ok(r) => r,
                Err(SimError::OutOfMemory { .. }) => g.ddr.alloc_aligned(size, align)?,
                Err(e) => return Err(e),
            },
        };
        let serial = g.next_serial;
        g.next_serial += 1;
        g.live += 1;
        Ok(SimAllocation {
            region,
            kind,
            serial,
        })
    }

    /// Release an allocation back to its level.
    pub fn free(&self, alloc: SimAllocation) {
        let mut g = self.inner.lock();
        match alloc.region.level {
            MemLevel::Ddr => g.ddr.free(alloc.region),
            MemLevel::Mcdram => g.mcdram.free(alloc.region),
        }
        g.live -= 1;
    }

    /// Bytes still allocatable in the given level (`hbw_verify` analogue).
    pub fn available(&self, level: MemLevel) -> u64 {
        let g = self.inner.lock();
        match level {
            MemLevel::Ddr => g.ddr.available(),
            MemLevel::Mcdram => g.mcdram.available(),
        }
    }

    /// True if strict HBW allocation is possible at all
    /// (`hbw_check_available`).
    pub fn hbw_available(&self) -> bool {
        self.inner.lock().mcdram.capacity() > 0
    }

    /// Number of live (unfreed) allocations.
    pub fn live_allocations(&self) -> usize {
        self.inner.lock().live
    }

    /// Reserve `bytes` of capacity under the given kind's placement policy
    /// without allocating an address range.
    ///
    /// [`Kind::Hbw`] reserves strictly from MCDRAM and fails with
    /// [`SimError::OutOfMemory`] when the unreserved MCDRAM capacity is
    /// exhausted; [`Kind::HbwPreferred`] falls back to a DDR reservation in
    /// that case (mirroring `HBW_PREFERRED` allocation fallback);
    /// [`Kind::Default`] reserves from DDR. Reservations stack with live
    /// allocations: both shrink [`Self::reservable`], but a reservation
    /// does not block [`Self::malloc`] — the reserving job is expected to
    /// allocate into its own claim.
    pub fn try_reserve(&self, kind: Kind, bytes: u64) -> Result<Reservation, SimError> {
        if bytes == 0 {
            return Err(SimError::BadOp("reservation of zero bytes".into()));
        }
        let mut g = self.inner.lock();
        let level = match kind {
            Kind::Default => {
                Self::claim(&g, MemLevel::Ddr, bytes)?;
                MemLevel::Ddr
            }
            Kind::Hbw => {
                Self::claim(&g, MemLevel::Mcdram, bytes)?;
                MemLevel::Mcdram
            }
            Kind::HbwPreferred => match Self::claim(&g, MemLevel::Mcdram, bytes) {
                Ok(()) => MemLevel::Mcdram,
                Err(SimError::OutOfMemory { .. }) => {
                    Self::claim(&g, MemLevel::Ddr, bytes)?;
                    MemLevel::Ddr
                }
                Err(e) => return Err(e),
            },
        };
        let serial = g.next_serial;
        g.next_serial += 1;
        g.reserved[level.index()] += bytes;
        g.reservations.insert(serial, (level, bytes));
        Ok(Reservation {
            level,
            kind,
            bytes,
            serial,
        })
    }

    fn claim(g: &Inner, level: MemLevel, bytes: u64) -> Result<(), SimError> {
        let free = g.reservable(level);
        if bytes > free {
            return Err(SimError::OutOfMemory {
                level,
                requested: bytes,
                available: free,
            });
        }
        Ok(())
    }

    /// Return a reservation's capacity to its level.
    ///
    /// Fails with [`SimError::BadOp`] when the reservation is not live —
    /// i.e. on a double release (reservations are `Clone` for bookkeeping,
    /// so the type system alone cannot rule that out, and silently
    /// tolerating it would corrupt the broker's balance).
    pub fn release(&self, r: &Reservation) -> Result<(), SimError> {
        let mut g = self.inner.lock();
        match g.reservations.remove(&r.serial) {
            Some((level, bytes)) => {
                debug_assert_eq!((level, bytes), (r.level, r.bytes));
                g.reserved[level.index()] -= bytes;
                Ok(())
            }
            None => Err(SimError::BadOp(format!(
                "double release of reservation #{} ({} bytes of {:?})",
                r.serial, r.bytes, r.level
            ))),
        }
    }

    /// Bytes currently held by live reservations in `level`.
    pub fn reserved(&self, level: MemLevel) -> u64 {
        self.inner.lock().reserved(level)
    }

    /// Bytes still reservable in `level`: the allocator's availability
    /// minus live reservations.
    pub fn reservable(&self, level: MemLevel) -> u64 {
        self.inner.lock().reservable(level)
    }

    /// Number of live reservations (the broker's balance; zero after a
    /// full drain).
    pub fn live_reservations(&self) -> usize {
        self.inner.lock().reservations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;
    use knl_sim::GIB;

    fn flat() -> MemKind {
        MemKind::new(&MachineConfig::knl_7250(MemMode::Flat))
    }

    #[test]
    fn default_kind_lands_in_ddr() {
        let mk = flat();
        let a = mk.malloc(Kind::Default, GIB).unwrap();
        assert_eq!(a.level(), MemLevel::Ddr);
        assert_eq!(a.size(), GIB);
        mk.free(a);
        assert_eq!(mk.live_allocations(), 0);
    }

    #[test]
    fn hbw_lands_in_mcdram_and_respects_capacity() {
        let mk = flat();
        let a = mk.malloc(Kind::Hbw, 10 * GIB).unwrap();
        assert_eq!(a.level(), MemLevel::Mcdram);
        // 16 GiB total; 10 used; 8 more must fail strictly.
        let err = mk.malloc(Kind::Hbw, 8 * GIB).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfMemory {
                level: MemLevel::Mcdram,
                ..
            }
        ));
        mk.free(a);
        assert!(mk.malloc(Kind::Hbw, 16 * GIB).is_ok());
    }

    #[test]
    fn hbw_preferred_falls_back_to_ddr() {
        let mk = flat();
        let big = mk.malloc(Kind::Hbw, 16 * GIB).unwrap();
        let b = mk.malloc(Kind::HbwPreferred, GIB).unwrap();
        assert_eq!(b.level(), MemLevel::Ddr, "fallback after MCDRAM exhausted");
        assert_eq!(b.kind(), Kind::HbwPreferred);
        mk.free(big);
        mk.free(b);
        let c = mk.malloc(Kind::HbwPreferred, GIB).unwrap();
        assert_eq!(c.level(), MemLevel::Mcdram, "MCDRAM again once free");
        mk.free(c);
    }

    #[test]
    fn cache_mode_has_no_hbw() {
        let mk = MemKind::new(&MachineConfig::knl_7250(MemMode::Cache));
        assert!(!mk.hbw_available());
        assert!(mk.malloc(Kind::Hbw, 1).is_err());
        // Preferred degrades to DDR.
        let a = mk.malloc(Kind::HbwPreferred, GIB).unwrap();
        assert_eq!(a.level(), MemLevel::Ddr);
        mk.free(a);
    }

    #[test]
    fn hybrid_mode_exposes_partial_hbw() {
        let mk = MemKind::new(&MachineConfig::knl_7250(MemMode::Hybrid {
            cache_fraction: 0.5,
        }));
        assert!(mk.hbw_available());
        assert_eq!(mk.available(MemLevel::Mcdram), 8 * GIB);
        let a = mk.malloc(Kind::Hbw, 8 * GIB).unwrap();
        assert!(mk.malloc(Kind::Hbw, 1).is_err());
        mk.free(a);
    }

    #[test]
    fn memalign_respects_alignment() {
        let mk = flat();
        let _pad = mk.malloc(Kind::Hbw, 3).unwrap();
        let a = mk.memalign(Kind::Hbw, 100, 4096).unwrap();
        assert_eq!(a.region().addr % 4096, 0);
        mk.free(a);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mk = flat();
        let a = mk.malloc(Kind::Default, GIB).unwrap();
        let b = mk.malloc(Kind::Default, GIB).unwrap();
        let (ra, rb) = (a.region(), b.region());
        assert!(ra.end() <= rb.addr || rb.end() <= ra.addr);
        mk.free(a);
        mk.free(b);
    }

    #[test]
    fn available_tracks_usage() {
        let mk = flat();
        let before = mk.available(MemLevel::Ddr);
        let a = mk.malloc(Kind::Default, 5 * GIB).unwrap();
        assert_eq!(mk.available(MemLevel::Ddr), before - 5 * GIB);
        mk.free(a);
        assert_eq!(mk.available(MemLevel::Ddr), before);
    }

    #[test]
    fn allocations_are_distinguishable() {
        // Two same-shaped allocations must not compare equal (serial differs).
        let mk = flat();
        let a = mk.malloc(Kind::Default, 64).unwrap();
        mk.free(a.clone());
        let b = mk.malloc(Kind::Default, 64).unwrap();
        assert_ne!(a, b);
        mk.free(b);
    }

    #[test]
    fn zero_size_rejected() {
        let mk = flat();
        assert!(mk.malloc(Kind::Default, 0).is_err());
    }

    #[test]
    fn reserve_exhaustion_is_strict_for_hbw() {
        let mk = flat();
        let a = mk.try_reserve(Kind::Hbw, 10 * GIB).unwrap();
        assert_eq!(a.level(), MemLevel::Mcdram);
        assert_eq!(mk.reservable(MemLevel::Mcdram), 6 * GIB);
        let err = mk.try_reserve(Kind::Hbw, 8 * GIB).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfMemory {
                level: MemLevel::Mcdram,
                requested,
                available,
            } if requested == 8 * GIB && available == 6 * GIB
        ));
        mk.release(&a).unwrap();
        assert!(mk.try_reserve(Kind::Hbw, 16 * GIB).is_ok());
    }

    #[test]
    fn reserve_preferred_falls_back_to_ddr() {
        let mk = flat();
        let big = mk.try_reserve(Kind::Hbw, 15 * GIB).unwrap();
        let b = mk.try_reserve(Kind::HbwPreferred, 4 * GIB).unwrap();
        assert_eq!(b.level(), MemLevel::Ddr, "fallback once MCDRAM is claimed");
        assert_eq!(b.kind(), Kind::HbwPreferred);
        assert_eq!(mk.reserved(MemLevel::Ddr), 4 * GIB);
        mk.release(&big).unwrap();
        mk.release(&b).unwrap();
        let c = mk.try_reserve(Kind::HbwPreferred, 4 * GIB).unwrap();
        assert_eq!(c.level(), MemLevel::Mcdram, "MCDRAM again after release");
        mk.release(&c).unwrap();
    }

    #[test]
    fn double_release_is_rejected() {
        let mk = flat();
        let r = mk.try_reserve(Kind::Hbw, GIB).unwrap();
        mk.release(&r).unwrap();
        let err = mk.release(&r).unwrap_err();
        assert!(matches!(err, SimError::BadOp(msg) if msg.contains("double release")));
        // The failed release must not disturb the balance.
        assert_eq!(mk.reserved(MemLevel::Mcdram), 0);
        assert_eq!(mk.live_reservations(), 0);
    }

    #[test]
    fn reservations_stack_with_allocations() {
        let mk = flat();
        let alloc = mk.malloc(Kind::Hbw, 6 * GIB).unwrap();
        // 10 GiB of unallocated MCDRAM remain; reservations claim from it.
        let r = mk.try_reserve(Kind::Hbw, 8 * GIB).unwrap();
        assert_eq!(mk.reservable(MemLevel::Mcdram), 2 * GIB);
        assert!(mk.try_reserve(Kind::Hbw, 3 * GIB).is_err());
        // A reservation is accounting only: the claiming job can still
        // malloc its buffers into the claim.
        let buf = mk.malloc(Kind::Hbw, 8 * GIB).unwrap();
        assert_eq!(buf.level(), MemLevel::Mcdram);
        mk.free(alloc);
        mk.free(buf);
        mk.release(&r).unwrap();
        assert_eq!(mk.reservable(MemLevel::Mcdram), 16 * GIB);
    }

    #[test]
    fn reserve_balance_returns_to_zero_after_drain() {
        let mk = flat();
        let rs: Vec<Reservation> = (0..8)
            .map(|_| mk.try_reserve(Kind::HbwPreferred, 3 * GIB).unwrap())
            .collect();
        // 16 GiB MCDRAM holds five 3-GiB claims; the rest spill to DDR.
        assert_eq!(mk.reserved(MemLevel::Mcdram), 15 * GIB);
        assert_eq!(mk.reserved(MemLevel::Ddr), 9 * GIB);
        assert_eq!(mk.live_reservations(), 8);
        for r in &rs {
            mk.release(r).unwrap();
        }
        assert_eq!(mk.live_reservations(), 0);
        assert_eq!(mk.reserved(MemLevel::Mcdram), 0);
        assert_eq!(mk.reserved(MemLevel::Ddr), 0);
    }

    #[test]
    fn zero_byte_reservation_rejected() {
        let mk = flat();
        assert!(mk.try_reserve(Kind::Hbw, 0).is_err());
    }
}
