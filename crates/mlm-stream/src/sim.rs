//! Simulated STREAM: verify the virtual machine's buses deliver their
//! configured bandwidth (the simulator's analogue of the paper's Table 2).

use knl_sim::machine::MachineConfig;
use knl_sim::ops::{Access, OpKind, Place, Program};
use knl_sim::{MemLevel, Simulator};

use crate::{StreamKernel, StreamResult};

/// Simulate one STREAM kernel with `threads` uncapped threads hammering
/// the given level and return the achieved bandwidth, which should equal
/// the configured bus bandwidth once `threads` is large enough.
pub fn sim_kernel(
    machine: &MachineConfig,
    level: MemLevel,
    kernel: StreamKernel,
    n: usize,
    threads: usize,
) -> Result<StreamResult, knl_sim::SimError> {
    assert!(n > 0 && threads > 0);
    let total = kernel.traffic_bytes(n);
    let place = match level {
        MemLevel::Ddr => Place::Ddr,
        MemLevel::Mcdram => Place::Mcdram,
    };
    // Reads vs writes per STREAM's counting: Copy/Scale are 1R+1W,
    // Add/Triad are 2R+1W.
    let (r_words, w_words) = match kernel {
        StreamKernel::Copy | StreamKernel::Scale => (1u64, 1u64),
        StreamKernel::Add | StreamKernel::Triad => (2u64, 1u64),
    };
    let words = r_words + w_words;

    let mut prog = Program::new(threads);
    for t in 0..threads {
        let share = total / threads as u64 + u64::from((t as u64) < total % threads as u64);
        if share == 0 {
            continue;
        }
        let read = share * r_words / words;
        let write = share - read;
        // Effectively uncapped per-thread rate: the bus is the limiter.
        prog.push(
            t,
            OpKind::Stream {
                accesses: vec![Access::read(place, read), Access::write(place, write)],
                rate_cap: 1e15,
            },
            &[],
        );
    }
    let report = Simulator::new(machine.clone()).run(&prog)?;
    Ok(StreamResult {
        kernel,
        bytes: total,
        seconds: report.makespan,
        bandwidth: total as f64 / report.makespan.max(1e-30),
    })
}

/// Simulated Table 2: `(DDR_max, MCDRAM_max)` as STREAM Triad would
/// measure them on the simulated node.
pub fn sim_table2(
    machine: &MachineConfig,
    threads: usize,
) -> Result<(f64, f64), knl_sim::SimError> {
    let n = 100_000_000;
    let ddr = sim_kernel(machine, MemLevel::Ddr, StreamKernel::Triad, n, threads)?;
    let mcd = if machine.addressable_mcdram() > 0 {
        sim_kernel(machine, MemLevel::Mcdram, StreamKernel::Triad, n, threads)?.bandwidth
    } else {
        // Cache mode: measure through the cache on a resident working set.
        machine.effective_mcdram_bandwidth()
    };
    Ok((ddr.bandwidth, mcd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;
    use knl_sim::GB;

    #[test]
    fn sim_stream_saturates_configured_bandwidth() {
        let m = MachineConfig::knl_7250(MemMode::Flat);
        for kernel in StreamKernel::ALL {
            let r = sim_kernel(&m, MemLevel::Ddr, kernel, 50_000_000, 64).unwrap();
            assert!(
                (r.bandwidth - 90.0 * GB).abs() / (90.0 * GB) < 1e-9,
                "{:?}: {} GB/s",
                kernel,
                r.bandwidth / GB
            );
            let r = sim_kernel(&m, MemLevel::Mcdram, kernel, 50_000_000, 64).unwrap();
            assert!((r.bandwidth - 400.0 * GB).abs() / (400.0 * GB) < 1e-9);
        }
    }

    #[test]
    fn single_thread_cannot_saturate_if_capped_resources_scale() {
        // One uncapped thread still saturates (no per-thread cap here);
        // this documents that sim STREAM measures the bus, not the thread.
        let m = MachineConfig::knl_7250(MemMode::Flat);
        let r = sim_kernel(&m, MemLevel::Ddr, StreamKernel::Copy, 1_000_000, 1).unwrap();
        assert!((r.bandwidth - 90.0 * GB).abs() / (90.0 * GB) < 1e-9);
    }

    #[test]
    fn sim_table2_matches_paper_for_knl_preset() {
        let m = MachineConfig::knl_7250(MemMode::Flat);
        let (ddr, mcd) = sim_table2(&m, 68).unwrap();
        assert!((ddr - 90.0 * GB).abs() < 1e-3 * GB);
        assert!((mcd - 400.0 * GB).abs() < 1e-3 * GB);
    }

    #[test]
    fn cache_mode_reports_effective_mcdram_bandwidth() {
        let m = MachineConfig::knl_7250(MemMode::Cache);
        let (_, mcd) = sim_table2(&m, 68).unwrap();
        assert!(mcd < 400.0 * GB, "cache-mode efficiency applies");
    }
}
