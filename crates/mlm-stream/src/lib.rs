//! # mlm-stream — STREAM (McCalpin) bandwidth kernels
//!
//! The paper's Table 2 derives `DDR_max` and `MCDRAM_max` from the STREAM
//! benchmark. This crate provides both directions of that measurement:
//!
//! * [`host`] — the four classic kernels (Copy, Scale, Add, Triad) run with
//!   real threads over real arrays, used by `mlm-bench --bin calibrate` to
//!   characterise the host machine;
//! * [`sim`] — the same kernels lowered to [`knl_sim`] ops, used as a
//!   sanity check that the simulated buses deliver exactly their configured
//!   bandwidth (the simulator's "Table 2").

pub mod host;
pub mod sim;

use serde::{Deserialize, Serialize};

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 2 words of traffic per element.
    Copy,
    /// `b[i] = q * c[i]` — 2 words.
    Scale,
    /// `c[i] = a[i] + b[i]` — 3 words.
    Add,
    /// `a[i] = b[i] + q * c[i]` — 3 words.
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's canonical order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// Memory traffic in bytes for one iteration over `n` `f64` elements,
    /// using STREAM's own counting rules.
    pub fn traffic_bytes(&self, n: usize) -> u64 {
        let words = match self {
            StreamKernel::Copy | StreamKernel::Scale => 2,
            StreamKernel::Add | StreamKernel::Triad => 3,
        };
        words * 8 * n as u64
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }
}

/// One measured (or simulated) bandwidth figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// Which kernel.
    pub kernel: StreamKernel,
    /// Traffic counted, in bytes.
    pub bytes: u64,
    /// Best-iteration time in seconds.
    pub seconds: f64,
    /// `bytes / seconds`.
    pub bandwidth: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counting_matches_stream_rules() {
        assert_eq!(StreamKernel::Copy.traffic_bytes(1000), 16_000);
        assert_eq!(StreamKernel::Scale.traffic_bytes(1000), 16_000);
        assert_eq!(StreamKernel::Add.traffic_bytes(1000), 24_000);
        assert_eq!(StreamKernel::Triad.traffic_bytes(1000), 24_000);
    }

    #[test]
    fn names_are_canonical() {
        let names: Vec<&str> = StreamKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["Copy", "Scale", "Add", "Triad"]);
    }
}
