//! Native STREAM: measure the host machine's sustainable bandwidth.

use parsort::pool::{split_range, WorkPool};

use crate::{StreamKernel, StreamResult};

/// STREAM's scalar constant.
const Q: f64 = 3.0;

/// Run one kernel `iters` times over `n`-element arrays with every pool
/// thread and report the best iteration (STREAM's methodology).
///
/// # Panics
/// Panics if `n == 0` or `iters == 0`.
pub fn run_kernel(pool: &WorkPool, kernel: StreamKernel, n: usize, iters: usize) -> StreamResult {
    assert!(n > 0 && iters > 0);
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];

    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = std::time::Instant::now();
        match kernel {
            StreamKernel::Copy => {
                stream_zip(pool, &a, &mut c, |x, out| *out = x);
            }
            StreamKernel::Scale => {
                stream_zip(pool, &c, &mut b, |x, out| *out = Q * x);
            }
            StreamKernel::Add => {
                stream_zip2(pool, &a, &b, &mut c, |x, y, out| *out = x + y);
            }
            StreamKernel::Triad => {
                // a = b + q*c : write into `a`.
                stream_zip2(pool, &b, &c, &mut a, |x, y, out| *out = x + Q * y);
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    // Defeat dead-code elimination across iterations.
    std::hint::black_box((&a, &b, &c));

    let bytes = kernel.traffic_bytes(n);
    StreamResult {
        kernel,
        bytes,
        seconds: best,
        bandwidth: bytes as f64 / best.max(1e-12),
    }
}

/// Run all four kernels (STREAM's canonical sweep).
pub fn run_all(pool: &WorkPool, n: usize, iters: usize) -> Vec<StreamResult> {
    StreamKernel::ALL
        .iter()
        .map(|&k| run_kernel(pool, k, n, iters))
        .collect()
}

fn stream_zip<F>(pool: &WorkPool, src: &[f64], dst: &mut [f64], f: F)
where
    F: Fn(f64, &mut f64) + Send + Sync,
{
    let len = src.len();
    let parts = pool.threads().min(len);
    let mut rest = dst;
    let mut tasks = Vec::with_capacity(parts);
    for t in 0..parts {
        let (s, e) = split_range(len, parts, t);
        let (head, tail) = rest.split_at_mut(e - s);
        rest = tail;
        let src_part = &src[s..e];
        let f = &f;
        tasks.push(move || {
            for (x, out) in src_part.iter().zip(head.iter_mut()) {
                f(*x, out);
            }
        });
    }
    pool.scoped(tasks);
}

fn stream_zip2<F>(pool: &WorkPool, s1: &[f64], s2: &[f64], dst: &mut [f64], f: F)
where
    F: Fn(f64, f64, &mut f64) + Send + Sync,
{
    let len = s1.len();
    let parts = pool.threads().min(len);
    let mut rest = dst;
    let mut tasks = Vec::with_capacity(parts);
    for t in 0..parts {
        let (s, e) = split_range(len, parts, t);
        let (head, tail) = rest.split_at_mut(e - s);
        rest = tail;
        let (p1, p2) = (&s1[s..e], &s2[s..e]);
        let f = &f;
        tasks.push(move || {
            for ((x, y), out) in p1.iter().zip(p2.iter()).zip(head.iter_mut()) {
                f(*x, *y, out);
            }
        });
    }
    pool.scoped(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_correct_values() {
        let pool = WorkPool::new(2);
        let n = 10_000;
        // Copy: c = a = 1.0
        let r = run_kernel(&pool, StreamKernel::Copy, n, 2);
        assert!(r.bandwidth > 0.0);
        assert_eq!(r.bytes, 16 * n as u64);

        // End-to-end value check with a hand-rolled pipeline.
        let mut a = vec![1.0f64; 8];
        let b = vec![2.0f64; 8];
        let c = vec![4.0f64; 8];
        stream_zip2(&pool, &b, &c, &mut a, |x, y, out| *out = x + 3.0 * y);
        assert!(a.iter().all(|&v| v == 14.0));
    }

    #[test]
    fn run_all_reports_four_kernels() {
        let pool = WorkPool::new(2);
        let results = run_all(&pool, 4096, 2);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.seconds > 0.0);
            assert!(r.bandwidth.is_finite() && r.bandwidth > 0.0);
        }
        // Add/Triad move 1.5x the bytes of Copy/Scale.
        assert_eq!(results[2].bytes, results[0].bytes * 3 / 2);
    }

    #[test]
    #[should_panic]
    fn zero_elements_rejected() {
        let pool = WorkPool::new(1);
        run_kernel(&pool, StreamKernel::Copy, 0, 1);
    }
}
