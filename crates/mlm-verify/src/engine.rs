//! The lint gate: build and run simulator programs only for specs the
//! linter accepts.
//!
//! [`checked_program`] is the verified front door to
//! [`mlm_core::pipeline::sim::build_program`]: it runs the full lint
//! registry first and refuses to lower a spec with any error-level
//! finding. [`run_checked`] goes one step further and executes the
//! program. The bench harness (`mlm-bench`) routes its experiment specs
//! through this gate so a mis-configured sweep fails with a diagnostic
//! instead of a panic deep inside the engine — or, worse, a silently
//! wrong experiment.

use std::fmt;

use knl_sim::error::SimError;
use knl_sim::ops::Program;
use knl_sim::report::SimReport;
use knl_sim::Simulator;

use crate::diag::LintReport;
use crate::lint::{lint_target, VerifyTarget};

/// Why a checked build or run did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The linter found error-level problems; the spec was never lowered.
    Rejected(LintReport),
    /// The linter passed but lowering the spec failed (a linter gap —
    /// worth a new lint).
    Lowering(String),
    /// The simulator itself failed.
    Sim(SimError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Rejected(report) => {
                writeln!(f, "spec rejected by the linter:")?;
                write!(f, "{report}")
            }
            VerifyError::Lowering(msg) => write!(f, "spec passed lints but failed to lower: {msg}"),
            VerifyError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

/// Lint the target, statically verify the schedule it would emit, and —
/// when clean of errors — lower it to a simulator [`Program`]. Returns
/// the full report (V-series lints plus G-series graph diagnostics) so
/// callers can still surface warnings.
pub fn checked_program(target: &VerifyTarget<'_>) -> Result<(Program, LintReport), VerifyError> {
    let mut report = lint_target(target);
    if report.has_errors() {
        return Err(VerifyError::Rejected(report));
    }
    // Field-level lints passed; now prove the emitted schedule itself
    // (race/deadlock/occupancy, G001–G006) against this machine's
    // addressable MCDRAM. A spec the recorder cannot even drive is a
    // linter gap, same as a lowering failure.
    let graph_report = crate::graph::graph_report_for(target.spec, target.machine)
        .map_err(VerifyError::Lowering)?;
    report
        .diagnostics
        .extend(crate::graph::report_diagnostics(&graph_report));
    if report.has_errors() {
        return Err(VerifyError::Rejected(report));
    }
    let prog =
        mlm_core::pipeline::sim::build_program(target.spec).map_err(VerifyError::Lowering)?;
    Ok((prog, report))
}

/// Lint, lower, and execute the target on its machine.
pub fn run_checked(target: &VerifyTarget<'_>) -> Result<(SimReport, LintReport), VerifyError> {
    let (prog, report) = checked_program(target)?;
    let sim = Simulator::try_new(target.machine.clone())?;
    let r = sim.run_checked(&prog)?;
    Ok((r, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::{MachineConfig, MemMode};
    use mlm_core::pipeline::{PipelineSpec, Placement, Workload};

    fn spec() -> PipelineSpec {
        PipelineSpec {
            total_bytes: 6 << 20,
            chunk_bytes: 2 << 20,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 2e9,
            copy_rate: 1e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn clean_spec_builds_and_runs() {
        let s = spec();
        let m = MachineConfig::tiny(MemMode::Flat);
        let target = VerifyTarget::new(&s, &m);
        let (report, lints) = run_checked(&target).expect("clean spec must run");
        assert!(report.makespan > 0.0);
        assert!(!lints.has_errors());
    }

    #[test]
    fn error_spec_is_rejected_before_lowering() {
        let mut s = spec();
        s.chunk_bytes = 0; // V000 territory
        let m = MachineConfig::tiny(MemMode::Flat);
        let target = VerifyTarget::new(&s, &m);
        match checked_program(&target) {
            Err(VerifyError::Rejected(report)) => assert!(report.has_errors()),
            other => panic!("zero chunk must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn hbw_spec_on_cache_machine_is_rejected() {
        // The class of mistake the gate exists for: a placement the
        // machine's memory mode cannot satisfy would panic inside the
        // engine; the gate catches it with a diagnostic instead.
        let s = spec();
        let m = MachineConfig::tiny(MemMode::Cache);
        let target = VerifyTarget::new(&s, &m);
        match run_checked(&target) {
            Err(VerifyError::Rejected(report)) => {
                assert!(report.error_ids().contains(&"V003"), "{report}");
            }
            other => panic!("Hbw-on-cache must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn capability_starved_backend_is_rejected() {
        // The machine is fine; the *backend* chosen to execute the spec
        // cannot place flat-MCDRAM buffers. checked_program must refuse
        // before lowering, exactly as mlm_exec::drive would at run time.
        let s = spec();
        let m = MachineConfig::tiny(MemMode::Flat);
        let target = VerifyTarget::new(&s, &m).with_backend(mlm_exec::Capabilities::cache_mode());
        match checked_program(&target) {
            Err(VerifyError::Rejected(report)) => {
                assert!(report.error_ids().contains(&"V010"), "{report}");
            }
            other => panic!("capability mismatch must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn rejected_error_renders_diagnostics() {
        let mut s = spec();
        s.p_in = 0;
        s.p_out = 0;
        s.p_comp = 0;
        let m = MachineConfig::tiny(MemMode::Flat);
        let err = checked_program(&VerifyTarget::new(&s, &m)).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("rejected by the linter"), "{text}");
        assert!(text.contains("error["), "{text}");
    }
}
