//! A small explicit-state model checker.
//!
//! Protocols are expressed as [`Model`]s — explicit transition systems with
//! a hashable state, enumerable successor actions, and invariants — and
//! [`check`] explores every reachable interleaving by iterative DFS with a
//! seen-state set (state hashing). Three properties are checked on every
//! state:
//!
//! * **invariant violations** — the model's own safety predicate
//!   (mutual-exclusion of buffer owners, no `unreachable!` message, …);
//! * **deadlock-freedom** — a state with no enabled action must satisfy
//!   [`Model::is_terminal`] (a legitimate end state), otherwise some
//!   process is blocked forever (a lost wakeup parks a coordinator with no
//!   one left to notify — exactly a deadlock in this formulation);
//! * **termination reachability** — at least one terminal state must be
//!   reached (a vacuous model that deadlocks at step 0 cannot pass by
//!   exploring nothing).
//!
//! A simple partial-order reduction is available: a model may nominate one
//! enabled action as *safe* ([`Model::safe_action`]) — an action that
//! commutes with every other enabled action, cannot be disabled by them,
//! and strictly increases some progress measure (no cycles of safe
//! actions). When one exists the checker explores only it, collapsing
//! interleavings that differ only in the order of independent steps. The
//! burden of proof is on the model; the default nominates nothing and the
//! exploration is fully exhaustive.
//!
//! Counterexamples are concrete: a violation carries the action trace from
//! the initial state, rendered by [`CheckReport::render_trace`].

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// A protocol expressed as an explicit transition system.
pub trait Model {
    /// Global state. Keep it small: it is cloned and hashed per transition.
    type State: Clone + Eq + Hash;
    /// Transition label, used in counterexample traces.
    type Action: Clone + fmt::Debug;

    /// Human-readable model name for reports.
    fn name(&self) -> String;

    /// The single initial state.
    fn initial(&self) -> Self::State;

    /// All enabled actions in `state` with their successor states.
    fn actions(&self, state: &Self::State) -> Vec<(Self::Action, Self::State)>;

    /// Is `state` a legitimate end state (all processes done/aborted)?
    fn is_terminal(&self, state: &Self::State) -> bool;

    /// Safety predicate checked on every reachable state.
    fn invariant(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// Partial-order reduction hook: the index into `actions` of one
    /// *safe* action (commutes with all other enabled actions, cannot be
    /// disabled by them, strictly increases a progress measure), or `None`
    /// to expand everything.
    fn safe_action(
        &self,
        _state: &Self::State,
        _actions: &[(Self::Action, Self::State)],
    ) -> Option<usize> {
        None
    }
}

/// Why a check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation<A> {
    /// A non-terminal state with no enabled action (a process waits
    /// forever — deadlock or lost wakeup).
    Deadlock { trace: Vec<A> },
    /// The model's invariant rejected a reachable state.
    Invariant { message: String, trace: Vec<A> },
    /// The exploration hit [`CheckOptions::max_states`] before finishing.
    StateSpaceExceeded { limit: usize },
}

impl<A: fmt::Debug> fmt::Display for Violation<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { trace } => {
                write!(f, "deadlock after {} steps", trace.len())
            }
            Violation::Invariant { message, trace } => {
                write!(
                    f,
                    "invariant violated after {} steps: {message}",
                    trace.len()
                )
            }
            Violation::StateSpaceExceeded { limit } => {
                write!(f, "state space exceeded the {limit}-state limit")
            }
        }
    }
}

/// Exploration limits and switches.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Abort (as a [`Violation::StateSpaceExceeded`]) beyond this many
    /// distinct states. A verification that silently truncates is not a
    /// verification.
    pub max_states: usize,
    /// Honour [`Model::safe_action`] nominations.
    pub partial_order_reduction: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 20_000_000,
            partial_order_reduction: true,
        }
    }
}

/// Result of exploring one model.
#[derive(Debug, Clone)]
pub struct CheckReport<A> {
    /// The model's name.
    pub model: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-seen states).
    pub transitions: usize,
    /// Distinct terminal states reached.
    pub terminal_states: usize,
    /// The first violation found, if any. `None` = the model verified.
    pub violation: Option<Violation<A>>,
}

impl<A: fmt::Debug> CheckReport<A> {
    /// Did the model verify?
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Render the counterexample trace (if any) one action per line.
    pub fn render_trace(&self) -> String {
        let trace = match &self.violation {
            Some(Violation::Deadlock { trace }) | Some(Violation::Invariant { trace, .. }) => trace,
            _ => return String::new(),
        };
        trace
            .iter()
            .enumerate()
            .map(|(i, a)| format!("  {i:>3}. {a:?}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl<A: fmt::Debug> fmt::Display for CheckReport<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.violation {
            None => write!(
                f,
                "{}: verified ({} states, {} transitions, {} terminal)",
                self.model, self.states, self.transitions, self.terminal_states
            ),
            Some(v) => write!(
                f,
                "{}: FAILED after {} states: {v}",
                self.model, self.states
            ),
        }
    }
}

/// One frame of the iterative DFS: the successors of a state plus which of
/// them have been explored.
struct Frame<M: Model> {
    succs: Vec<(M::Action, M::State)>,
    next: usize,
}

/// Exhaustively explore `model` and report.
pub fn check<M: Model>(model: &M, opts: CheckOptions) -> CheckReport<M::Action> {
    let mut report = CheckReport {
        model: model.name(),
        states: 0,
        transitions: 0,
        terminal_states: 0,
        violation: None,
    };

    let init = model.initial();
    let mut seen: HashSet<M::State> = HashSet::new();
    seen.insert(init.clone());
    report.states = 1;

    if let Err(message) = model.invariant(&init) {
        report.violation = Some(Violation::Invariant {
            message,
            trace: Vec::new(),
        });
        return report;
    }

    // DFS stack: the trace of actions taken so far lives in `path`;
    // `frames[i]` enumerates the successors of the state reached by
    // `path[..i]`.
    let mut frames: Vec<Frame<M>> = vec![expand(model, &init, opts, &mut report)];
    let mut path: Vec<M::Action> = Vec::new();

    if frames[0].succs.is_empty() {
        if model.is_terminal(&init) {
            report.terminal_states = 1;
        } else {
            report.violation = Some(Violation::Deadlock { trace: Vec::new() });
        }
        return report;
    }

    while let Some(frame) = frames.last_mut() {
        if frame.next >= frame.succs.len() {
            frames.pop();
            path.pop();
            continue;
        }
        let (action, state) = frame.succs[frame.next].clone();
        frame.next += 1;
        report.transitions += 1;

        if !seen.insert(state.clone()) {
            continue;
        }
        report.states += 1;
        if report.states > opts.max_states {
            report.violation = Some(Violation::StateSpaceExceeded {
                limit: opts.max_states,
            });
            return report;
        }

        path.push(action);
        if let Err(message) = model.invariant(&state) {
            report.violation = Some(Violation::Invariant {
                message,
                trace: path.clone(),
            });
            return report;
        }

        let next = expand(model, &state, opts, &mut report);
        if next.succs.is_empty() {
            if model.is_terminal(&state) {
                report.terminal_states += 1;
            } else {
                report.violation = Some(Violation::Deadlock {
                    trace: path.clone(),
                });
                return report;
            }
            path.pop();
        } else {
            frames.push(next);
        }
    }

    if report.terminal_states == 0 {
        // Cannot happen for well-formed finite models (some maximal path
        // ends, and its end is terminal or we returned Deadlock above) —
        // but a model whose every path cycles forever would get here.
        report.violation = Some(Violation::Deadlock { trace: Vec::new() });
    }
    report
}

fn expand<M: Model>(
    model: &M,
    state: &M::State,
    opts: CheckOptions,
    _report: &mut CheckReport<M::Action>,
) -> Frame<M> {
    let mut succs = model.actions(state);
    if opts.partial_order_reduction && succs.len() > 1 {
        if let Some(i) = model.safe_action(state, &succs) {
            debug_assert!(i < succs.len());
            succs = vec![succs.swap_remove(i)];
        }
    }
    Frame { succs, next: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counters 0..=n, incremented in any interleaving: (n+1)^2 states.
    struct TwoCounters {
        n: u8,
        /// If set, state (b, b) for b = bomb is declared invalid.
        bomb: Option<u8>,
        /// If set, counter 1 refuses to move past this value while counter
        /// 0 is behind it — manufactures a deadlock.
        stuck_at: Option<u8>,
    }

    impl Model for TwoCounters {
        type State = (u8, u8);
        type Action = (usize, u8);

        fn name(&self) -> String {
            "two-counters".into()
        }
        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }
        fn actions(&self, s: &(u8, u8)) -> Vec<((usize, u8), (u8, u8))> {
            let mut out = Vec::new();
            if s.0 < self.n {
                out.push(((0, s.0 + 1), (s.0 + 1, s.1)));
            }
            if s.1 < self.n {
                let blocked = self.stuck_at.is_some_and(|v| s.1 >= v && s.0 < v);
                if !blocked {
                    out.push(((1, s.1 + 1), (s.0, s.1 + 1)));
                }
            }
            out
        }
        fn is_terminal(&self, s: &(u8, u8)) -> bool {
            *s == (self.n, self.n)
        }
        fn invariant(&self, s: &(u8, u8)) -> Result<(), String> {
            if let Some(b) = self.bomb {
                if *s == (b, b) {
                    return Err(format!("hit the bomb state ({b}, {b})"));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn explores_full_product_space() {
        let m = TwoCounters {
            n: 4,
            bomb: None,
            stuck_at: None,
        };
        let r = check(&m, CheckOptions::default());
        assert!(r.ok(), "{r}");
        assert_eq!(r.states, 25);
        assert_eq!(r.terminal_states, 1);
        // Interior states have two successors each.
        assert_eq!(r.transitions, 2 * 4 * 5);
    }

    #[test]
    fn finds_invariant_violation_with_trace() {
        let m = TwoCounters {
            n: 4,
            bomb: Some(2),
            stuck_at: None,
        };
        let r = check(&m, CheckOptions::default());
        match &r.violation {
            Some(Violation::Invariant { message, trace }) => {
                assert!(message.contains("bomb"));
                assert_eq!(trace.len(), 4, "shortest path to (2,2) has 4 steps");
                assert!(!r.render_trace().is_empty());
            }
            other => panic!("expected invariant violation, got {other:?}"),
        }
    }

    #[test]
    fn finds_manufactured_deadlock() {
        // Counter 1 cannot pass 2 until counter 0 reaches 2 — fine; but
        // make the gate impossible: counter 1 stuck at 0 until counter 0
        // reaches 5 (> n), so (n, 0..) states where... actually gate at 5
        // blocks counter 1 forever; the run deadlocks at (4, 0)? No:
        // counter 0 can still reach n=4 and stops; counter 1 is blocked
        // (0 >= 0? stuck_at=0 means s.1 >= 0 && s.0 < 0 — never). Use a
        // gate value above n so s.0 < v always holds.
        let m = TwoCounters {
            n: 4,
            bomb: None,
            stuck_at: Some(3),
        };
        // Here counter 1 blocks at 3 until counter 0 reaches 3 — which it
        // always eventually can, so no deadlock.
        let r = check(&m, CheckOptions::default());
        assert!(r.ok(), "{r}");

        let m = TwoCounters {
            n: 4,
            bomb: None,
            stuck_at: Some(5),
        };
        // stuck_at=5: s.1 >= 5 never true (max 4), so no block... the gate
        // only engages at s.1 >= 5 which cannot happen; still ok.
        let r = check(&m, CheckOptions::default());
        assert!(r.ok(), "{r}");
    }

    /// A model that genuinely deadlocks: one process must take a step that
    /// is never enabled.
    struct AlwaysStuck;
    impl Model for AlwaysStuck {
        type State = u8;
        type Action = u8;
        fn name(&self) -> String {
            "always-stuck".into()
        }
        fn initial(&self) -> u8 {
            0
        }
        fn actions(&self, s: &u8) -> Vec<(u8, u8)> {
            if *s == 0 {
                vec![(1, 1)]
            } else {
                Vec::new() // state 1 has no successors and is not terminal
            }
        }
        fn is_terminal(&self, s: &u8) -> bool {
            *s == 2
        }
    }

    #[test]
    fn reports_deadlock_with_trace() {
        let r = check(&AlwaysStuck, CheckOptions::default());
        match &r.violation {
            Some(Violation::Deadlock { trace }) => assert_eq!(trace.len(), 1),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn state_limit_aborts_loudly() {
        let m = TwoCounters {
            n: 200,
            bomb: None,
            stuck_at: None,
        };
        let r = check(
            &m,
            CheckOptions {
                max_states: 100,
                partial_order_reduction: false,
            },
        );
        assert!(matches!(
            r.violation,
            Some(Violation::StateSpaceExceeded { limit: 100 })
        ));
    }

    /// POR: nominating counter 0's step as safe collapses the grid to one
    /// staircase path.
    struct Reduced(TwoCounters);
    impl Model for Reduced {
        type State = (u8, u8);
        type Action = (usize, u8);
        fn name(&self) -> String {
            "two-counters-por".into()
        }
        fn initial(&self) -> (u8, u8) {
            self.0.initial()
        }
        fn actions(&self, s: &(u8, u8)) -> Vec<((usize, u8), (u8, u8))> {
            self.0.actions(s)
        }
        fn is_terminal(&self, s: &(u8, u8)) -> bool {
            self.0.is_terminal(s)
        }
        fn safe_action(&self, _s: &(u8, u8), actions: &[((usize, u8), (u8, u8))]) -> Option<usize> {
            // The two counters are fully independent, so any enabled
            // action is safe.
            if actions.is_empty() {
                None
            } else {
                Some(0)
            }
        }
    }

    #[test]
    fn partial_order_reduction_shrinks_state_count() {
        let inner = |por| {
            let m = Reduced(TwoCounters {
                n: 6,
                bomb: None,
                stuck_at: None,
            });
            check(
                &m,
                CheckOptions {
                    max_states: 1_000_000,
                    partial_order_reduction: por,
                },
            )
        };
        let full = inner(false);
        let reduced = inner(true);
        assert!(full.ok() && reduced.ok());
        assert_eq!(full.states, 49);
        assert_eq!(reduced.states, 13, "one staircase: 2n+1 states");
        assert_eq!(reduced.terminal_states, 1);
    }
}
