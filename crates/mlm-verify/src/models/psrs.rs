//! Model of the `mlm-cluster` PSRS message protocol.
//!
//! Mirrors `mlm-cluster/src/host.rs`: every node samples and sends its
//! sample to node 0; node 0 gathers, computes splitters, and broadcasts
//! them; every node partitions and sends `Partition` + `Done` to each
//! peer; every node then drains partitions until it has a `Done` from all
//! peers.
//!
//! Channels are modeled as one FIFO per `(sender, receiver)` pair with a
//! nondeterministic receive choice among non-empty queues — exactly the
//! guarantee an mpsc inbox gives (per-sender order preserved, cross-sender
//! order arbitrary).
//!
//! The protocol has a race the types don't show: node 0 broadcasts
//! splitters one peer at a time, so a fast peer can finish partitioning
//! and deliver `Partition`/`Done` to a slow peer *before* the slow peer
//! has received its own splitters. [`PsrsVariant::Defer`] (the code since
//! the dataflow-pipeline fix) pushes such early messages onto a deferred
//! queue and replays them during the drain; it verifies.
//! [`PsrsVariant::Strict`] (the seed's original code) treats them as
//! `unreachable!` and panics — the checker reproduces that race as a
//! failing invariant with a counterexample trace. Note the race needs at
//! least three nodes: with two, the only splitter recipient is also the
//! only exchanger, and per-channel FIFO alone rules the reorder out.

use crate::check::Model;

/// The four message kinds of the protocol, payload-free: the race is in
/// the ordering, not the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    /// A node's sample, addressed to node 0.
    Samples,
    /// The global splitters, broadcast by node 0.
    Splitters,
    /// One partition of a peer's local data.
    Partition,
    /// The sending peer has finished its exchange.
    Done,
}

/// Where one node is in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodePc {
    /// Sampling local data.
    Sampling,
    /// Node 0 only: collecting `Samples` (own sample counted).
    Gather { got: u8 },
    /// Node 0 only: sending `Splitters` to peer `next`.
    Broadcast { next: u8 },
    /// Waiting for `Splitters` from node 0. Early exchange messages are
    /// deferred (or, in the strict variant, fatal).
    WaitSplit { def_parts: u8, def_dones: u8 },
    /// Sending `Partition` + `Done` to each peer; `sent` is a bitmask.
    Exchange {
        sent: u8,
        def_parts: u8,
        def_dones: u8,
    },
    /// Draining partitions until `Done` from every peer.
    Drain { parts: u8, dones: u8 },
    /// Sorted; out of the protocol.
    NodeDone,
}

/// Global state: node program counters plus the channel contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PsrsState {
    nodes: Vec<NodePc>,
    /// `queues[s * n + r]` = in-flight messages from `s` to `r`, FIFO.
    queues: Vec<Vec<Msg>>,
    /// Set when the strict variant hits its `unreachable!`.
    panicked: Option<&'static str>,
}

/// Transition labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsrsAction {
    /// Node 0 counted its own sample.
    LocalSample,
    /// Node sent its sample to node 0.
    SendSamples(u8),
    /// Node 0 sent splitters to the peer.
    SendSplitters(u8),
    /// `(from, to)`: sent `Partition` then `Done` on one channel.
    SendPartition(u8, u8),
    /// `(receiver, sender)`: receiver popped the head of the channel
    /// from sender.
    Recv(u8, u8),
}

/// Which early-message discipline to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsrsVariant {
    /// Early exchange messages go to a deferred queue, replayed in the
    /// drain — the code as shipped. Verifies.
    Defer,
    /// Early exchange messages are `unreachable!` — the seed's original
    /// code. The checker finds the race.
    Strict,
}

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct PsrsModel {
    /// Cluster size (the paper's Omni-Path testbed uses up to 8).
    pub nodes: u8,
    /// Early-message discipline.
    pub variant: PsrsVariant,
}

impl PsrsModel {
    /// The shipped deferring protocol.
    pub fn shipped(nodes: u8) -> Self {
        PsrsModel {
            nodes,
            variant: PsrsVariant::Defer,
        }
    }

    fn q(&self, s: u8, r: u8) -> usize {
        s as usize * self.nodes as usize + r as usize
    }

    fn peers(&self) -> u8 {
        self.nodes - 1
    }

    /// Handle receiver `i` popping `msg`; returns the updated pc, or a
    /// panic message when the variant's receive loop would hit
    /// `unreachable!`.
    fn deliver(&self, pc: NodePc, msg: Msg) -> Result<NodePc, &'static str> {
        match (pc, msg) {
            // Node 0's gather loop.
            (NodePc::Gather { got }, Msg::Samples) => Ok(NodePc::Gather { got: got + 1 }),
            (NodePc::Gather { .. }, Msg::Splitters) => {
                Err("splitters are broadcast by node 0, never sent to it")
            }
            // Unreachable in practice (peers exchange only after receiving
            // splitters, which node 0 sends after the gather). The defer
            // arm drops the message; were the assumption ever wrong, the
            // missing Done would surface as a drain deadlock.
            (NodePc::Gather { got }, Msg::Partition | Msg::Done) => match self.variant {
                PsrsVariant::Defer => Ok(NodePc::Gather { got }),
                PsrsVariant::Strict => Err("exchange message during sample gather"),
            },
            // Non-zero nodes waiting for splitters.
            (
                NodePc::WaitSplit {
                    def_parts,
                    def_dones,
                },
                Msg::Splitters,
            ) => Ok(NodePc::Exchange {
                sent: 0,
                def_parts,
                def_dones,
            }),
            (NodePc::WaitSplit { .. }, Msg::Samples) => Err("samples are addressed to node 0"),
            (
                NodePc::WaitSplit {
                    def_parts,
                    def_dones,
                },
                m,
            ) => match self.variant {
                PsrsVariant::Defer => Ok(match m {
                    Msg::Partition => NodePc::WaitSplit {
                        def_parts: def_parts + 1,
                        def_dones,
                    },
                    _ => NodePc::WaitSplit {
                        def_parts,
                        def_dones: def_dones + 1,
                    },
                }),
                PsrsVariant::Strict => Err("partition exchange message before splitters"),
            },
            // The drain.
            (NodePc::Drain { parts, dones }, Msg::Partition) => Ok(NodePc::Drain {
                parts: parts + 1,
                dones,
            }),
            (NodePc::Drain { parts, dones }, Msg::Done) => Ok(NodePc::Drain {
                parts,
                dones: dones + 1,
            }),
            (NodePc::Drain { .. }, Msg::Samples | Msg::Splitters) => {
                Err("sampling finished before the exchange")
            }
            // Sampling / Broadcast / Exchange / NodeDone never receive.
            _ => unreachable!("receive action generated for a non-receiving pc"),
        }
    }
}

impl Model for PsrsModel {
    type State = PsrsState;
    type Action = PsrsAction;

    fn name(&self) -> String {
        format!("psrs({:?}, nodes={})", self.variant, self.nodes)
    }

    fn initial(&self) -> PsrsState {
        PsrsState {
            nodes: vec![NodePc::Sampling; self.nodes as usize],
            queues: vec![Vec::new(); self.nodes as usize * self.nodes as usize],
            panicked: None,
        }
    }

    fn actions(&self, s: &PsrsState) -> Vec<(PsrsAction, PsrsState)> {
        if s.panicked.is_some() {
            return Vec::new(); // the invariant has already condemned this state
        }
        let n = self.nodes;
        let mut out = Vec::new();
        for i in 0..n {
            let pc = s.nodes[i as usize];
            match pc {
                NodePc::Sampling => {
                    let mut st = s.clone();
                    if i == 0 {
                        st.nodes[0] = NodePc::Gather { got: 1 };
                        out.push((PsrsAction::LocalSample, st));
                    } else {
                        st.queues[self.q(i, 0)].push(Msg::Samples);
                        st.nodes[i as usize] = NodePc::WaitSplit {
                            def_parts: 0,
                            def_dones: 0,
                        };
                        out.push((PsrsAction::SendSamples(i), st));
                    }
                }
                NodePc::Broadcast { next } => {
                    let mut st = s.clone();
                    st.queues[self.q(0, next)].push(Msg::Splitters);
                    st.nodes[0] = if next + 1 == n {
                        NodePc::Exchange {
                            sent: 0,
                            def_parts: 0,
                            def_dones: 0,
                        }
                    } else {
                        NodePc::Broadcast { next: next + 1 }
                    };
                    out.push((PsrsAction::SendSplitters(next), st));
                }
                NodePc::Exchange {
                    sent,
                    def_parts,
                    def_dones,
                } => {
                    for j in 0..n {
                        if j == i || sent & (1 << j) != 0 {
                            continue;
                        }
                        let mut st = s.clone();
                        st.queues[self.q(i, j)].push(Msg::Partition);
                        st.queues[self.q(i, j)].push(Msg::Done);
                        let sent = sent | (1 << j);
                        st.nodes[i as usize] = if sent.count_ones() as u8 == self.peers() {
                            NodePc::Drain {
                                parts: def_parts,
                                dones: def_dones,
                            }
                        } else {
                            NodePc::Exchange {
                                sent,
                                def_parts,
                                def_dones,
                            }
                        };
                        out.push((PsrsAction::SendPartition(i, j), st));
                    }
                }
                NodePc::Gather { .. } | NodePc::WaitSplit { .. } | NodePc::Drain { .. } => {
                    // Receive: nondeterministically pop the head of any
                    // non-empty incoming channel (the mpsc merge).
                    for j in 0..n {
                        let qi = self.q(j, i);
                        if s.queues[qi].is_empty() {
                            continue;
                        }
                        let msg = s.queues[qi][0];
                        let mut st = s.clone();
                        st.queues[qi].remove(0);
                        match self.deliver(pc, msg) {
                            Ok(next) => st.nodes[i as usize] = next,
                            Err(why) => st.panicked = Some(why),
                        }
                        // Post-receive phase advances that need no message.
                        if let NodePc::Gather { got } = st.nodes[0] {
                            if i == 0 && got == n {
                                st.nodes[0] = NodePc::Broadcast { next: 1 };
                            }
                        }
                        if let NodePc::Drain { dones, .. } = st.nodes[i as usize] {
                            if dones == self.peers() {
                                st.nodes[i as usize] = NodePc::NodeDone;
                            }
                        }
                        out.push((PsrsAction::Recv(i, j), st));
                    }
                }
                NodePc::NodeDone => {}
            }
        }
        out
    }

    fn is_terminal(&self, s: &PsrsState) -> bool {
        s.nodes.iter().all(|pc| *pc == NodePc::NodeDone)
    }

    fn invariant(&self, s: &PsrsState) -> Result<(), String> {
        if let Some(why) = s.panicked {
            return Err(format!("protocol hit unreachable!: {why}"));
        }
        // A finished node must have drained its channels: per-channel FIFO
        // puts every peer's Partition before its Done, so nothing can
        // remain once all Dones are counted.
        for i in 0..self.nodes {
            if s.nodes[i as usize] == NodePc::NodeDone {
                for j in 0..self.nodes {
                    if !s.queues[self.q(j, i)].is_empty() {
                        return Err(format!(
                            "node {i} finished with messages still queued from node {j}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn safe_action(
        &self,
        _state: &PsrsState,
        actions: &[(PsrsAction, PsrsState)],
    ) -> Option<usize> {
        // A send only appends to one channel: it commutes with every other
        // enabled action, cannot be disabled, and strictly increases the
        // total number of messages ever sent.
        actions.iter().position(|(a, _)| {
            matches!(
                a,
                PsrsAction::LocalSample
                    | PsrsAction::SendSamples(_)
                    | PsrsAction::SendSplitters(_)
                    | PsrsAction::SendPartition(..)
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, CheckOptions, Violation};

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn deferring_protocol_verifies() {
        // The acceptance geometry: at least 3 nodes.
        for n in 2..=3u8 {
            let r = check(&PsrsModel::shipped(n), opts());
            assert!(r.ok(), "nodes={n}: {r}\n{}", r.render_trace());
            assert_eq!(r.terminal_states, 1, "nodes={n}");
        }
    }

    #[test]
    #[ignore = "4-node exhaustion takes ~40s in debug; run with --ignored"]
    fn deferring_protocol_verifies_four_nodes() {
        let r = check(&PsrsModel::shipped(4), opts());
        assert!(r.ok(), "{r}\n{}", r.render_trace());
        assert_eq!(r.terminal_states, 1);
    }

    #[test]
    fn strict_variant_reproduces_the_seed_race() {
        let m = PsrsModel {
            nodes: 3,
            variant: PsrsVariant::Strict,
        };
        let r = check(&m, opts());
        match &r.violation {
            Some(Violation::Invariant { message, .. }) => {
                assert!(
                    message.contains("before splitters"),
                    "wrong violation: {message}"
                );
            }
            other => panic!("strict PSRS must hit the race, got {other:?}"),
        }
        // The counterexample must show a partition send overtaking the
        // splitter delivery.
        let trace = r.render_trace();
        assert!(trace.contains("SendPartition"), "trace:\n{trace}");
    }

    #[test]
    fn strict_variant_needs_three_nodes() {
        // With two nodes the only exchange peer of node 1 is node 0,
        // which is never in WaitSplit, and channel FIFO protects node 1:
        // the strict variant is actually safe at n=2 (which is why the
        // seed's tests never caught it).
        let m = PsrsModel {
            nodes: 2,
            variant: PsrsVariant::Strict,
        };
        let r = check(&m, opts());
        assert!(r.ok(), "{r}\n{}", r.render_trace());
    }

    #[test]
    fn race_survives_partial_order_reduction() {
        let m = PsrsModel {
            nodes: 3,
            variant: PsrsVariant::Strict,
        };
        for por in [false, true] {
            let r = check(
                &m,
                CheckOptions {
                    partial_order_reduction: por,
                    ..opts()
                },
            );
            assert!(
                matches!(r.violation, Some(Violation::Invariant { .. })),
                "por={por}: {r}"
            );
        }
    }

    #[test]
    fn por_shrinks_the_defer_state_space() {
        let m = PsrsModel::shipped(3);
        let full = check(
            &m,
            CheckOptions {
                partial_order_reduction: false,
                ..opts()
            },
        );
        let reduced = check(&m, opts());
        assert!(full.ok() && reduced.ok());
        assert!(
            reduced.states < full.states,
            "POR should prune send interleavings: {} vs {}",
            reduced.states,
            full.states
        );
    }
}
