//! Transition-system models of the repository's concurrency protocols.
//!
//! Each module models one protocol at the granularity where its bugs live:
//!
//! * [`ring`] — the dataflow host pipeline's three-slot buffer ring at
//!   *phase* granularity (`Empty → Filled → Computed`), including worker
//!   fan-out and panic poisoning. Verifies deadlock-freedom, exclusive
//!   buffer ownership, the in-flight bound, and that poisoning drains all
//!   coordinators.
//! * [`condvar`] — the same ring at *mutex/condvar* granularity, where
//!   lost-wakeup bugs are expressible. The model of the code as written
//!   verifies; three deliberately buggy variants (poison without taking
//!   the slot locks, `notify_one` instead of `notify_all`, wait without
//!   re-checking the predicate) fail, proving the checker can see the
//!   whole bug class.
//! * [`psrs`] — the `mlm-cluster` PSRS message protocol (splitter
//!   broadcast / partition exchange / deferred-message drain). The
//!   deferring protocol verifies; the pre-PR-2 strict variant (treat early
//!   exchange messages as `unreachable!`) reproduces the seed race as a
//!   failing check.

pub mod condvar;
pub mod psrs;
pub mod ring;
