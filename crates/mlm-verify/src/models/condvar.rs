//! Mutex/condvar-granularity model of the buffer-ring synchronization.
//!
//! The phase-level [`super::ring`] model treats `await_phase`/`publish` as
//! atomic. This model opens them up to the granularity where lost-wakeup
//! bugs live, mirroring `mlm-core/src/pipeline/host.rs`:
//!
//! * `await_phase`: lock the slot mutex, check the poison flag, check the
//!   predicate; if false, *park* — an atomic release-the-lock-and-wait, the
//!   window every condvar bug exploits — and on wakeup re-acquire the lock
//!   and re-check from the top.
//! * `publish`: lock the slot mutex, set the new `(phase, chunk)`,
//!   `notify_all`, unlock.
//! * `poison`: store the flag, then take *each* slot's lock and
//!   `notify_all` under it. Taking the lock is what closes the window: a
//!   coordinator that checked the flag and is about to park still holds
//!   the lock, so the poisoner's notify cannot slip in between.
//!
//! [`CvVariant::Correct`] models the code as written and verifies. Three
//! deliberately broken variants each fail, demonstrating the checker sees
//! the whole bug class:
//!
//! * [`CvVariant::PoisonSkipLock`] — poison notifies *without* taking the
//!   slot locks. The notify can fire inside a coordinator's
//!   checked-flag-but-not-yet-parked window; the coordinator then parks
//!   forever. Detected as a deadlock.
//! * [`CvVariant::NotifyOne`] — publish wakes one waiter instead of all.
//!   Copy-in waiting `Empty(c + slots)` and copy-out waiting `Computed(c)`
//!   park on the *same* slot condvar (`c` and `c + slots` share a slot),
//!   so the single token can be consumed by the waiter whose predicate is
//!   still false. Detected as a deadlock.
//! * [`CvVariant::NoRecheck`] — a woken coordinator claims the slot
//!   without re-checking the predicate. A `notify_all` meant for the
//!   *other* waiter on the same condvar makes it work on a slot in the
//!   wrong phase. Detected as an ownership-invariant violation.

use crate::check::Model;
use crate::models::ring::{Phase, Stage};

/// Which synchronization discipline to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvVariant {
    /// The code as written: `notify_all`, predicate re-check loops, poison
    /// takes every slot lock before notifying.
    Correct,
    /// Poison stores the flag and notifies without taking the slot locks.
    PoisonSkipLock,
    /// `publish` uses `notify_one`.
    NotifyOne,
    /// A woken waiter proceeds without re-checking the predicate.
    NoRecheck,
}

/// What one coordinator is doing, at lock granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CvCoord {
    /// About to lock its slot and run the `await_phase` check.
    Idle,
    /// Checked (flag clear, predicate false); still holds the slot lock,
    /// about to park. This is the lost-wakeup window.
    Prepark,
    /// Parked on the slot condvar. Holds no lock; only a notify (or a
    /// spurious wakeup, if budgeted) can move it.
    Parked,
    /// Woken; contending to re-acquire the slot lock.
    Relock,
    /// Owns the slot's current phase; doing the stage's work unlocked.
    Work,
    /// Finished every chunk.
    Done,
    /// Unwound (panicked, or observed poison).
    Aborted,
    /// Panicked; walking the slots to notify waiters. `next` is the next
    /// slot to notify.
    Poisoning { next: u8 },
}

/// Global state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CvState {
    /// `(phase, chunk)` per slot. Lock holders and parked sets are
    /// derivable: coordinator `i` at `Prepark` holds the lock of slot
    /// `chunk[i] % slots`; at `Parked` it is parked on that slot's cv.
    slots: Vec<(Phase, u8)>,
    coords: [CvCoord; 3],
    chunk: [u8; 3],
    poisoned: bool,
    /// Remaining spurious-wakeup budget (0 = deterministic wakeups only).
    spurious_left: u8,
}

impl CvState {
    fn slot_of(&self, stage: Stage, slots: usize) -> usize {
        self.chunk[stage_index(stage)] as usize % slots
    }

    /// True iff some coordinator holds `slot`'s mutex persistently (i.e.
    /// sits in the check-to-park window).
    fn locked(&self, slot: usize, slots: usize) -> bool {
        Stage::ALL.iter().any(|&s| {
            self.coords[stage_index(s)] == CvCoord::Prepark && self.slot_of(s, slots) == slot
        })
    }

    /// Stages currently parked on `slot`'s condvar.
    fn parked_on(&self, slot: usize, slots: usize) -> Vec<Stage> {
        Stage::ALL
            .iter()
            .copied()
            .filter(|&s| {
                self.coords[stage_index(s)] == CvCoord::Parked && self.slot_of(s, slots) == slot
            })
            .collect()
    }
}

fn stage_index(s: Stage) -> usize {
    match s {
        Stage::CopyIn => 0,
        Stage::Compute => 1,
        Stage::CopyOut => 2,
    }
}

fn wanted(stage: Stage) -> Phase {
    match stage {
        Stage::CopyIn => Phase::Empty,
        Stage::Compute => Phase::Filled,
        Stage::CopyOut => Phase::Computed,
    }
}

/// Transition labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvAction {
    /// Acquired the slot lock and ran the `await_phase` check for a chunk.
    LockCheck(Stage, u8),
    /// Released the lock and parked on the slot condvar (atomic).
    Park(Stage),
    /// Woken coordinator claimed the slot without re-checking
    /// ([`CvVariant::NoRecheck`] only).
    ClaimNoRecheck(Stage, u8),
    /// Finished the stage work for the chunk, locked the slot, published
    /// the next phase, notified, unlocked.
    Publish(Stage, u8),
    /// The stage's work panicked; the poison flag is now set.
    Panic(Stage, u8),
    /// The poisoner notified one slot's waiters (under the slot lock in
    /// [`CvVariant::Correct`], without it in
    /// [`CvVariant::PoisonSkipLock`]).
    PoisonNotify(u8),
    /// A parked coordinator woke spuriously.
    Spurious(Stage),
}

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CondvarModel {
    /// Buffer slots (the implementation uses 3).
    pub slots: usize,
    /// Chunks to stream.
    pub chunks: u8,
    /// Synchronization discipline under test.
    pub variant: CvVariant,
    /// Inject a panic in this stage's work on this chunk.
    pub panic_at: Option<(Stage, u8)>,
    /// Total spurious wakeups the adversary may inject.
    pub spurious_budget: u8,
}

impl CondvarModel {
    /// The shipped discipline, no faults.
    pub fn correct(slots: usize, chunks: u8) -> Self {
        CondvarModel {
            slots,
            chunks,
            variant: CvVariant::Correct,
            panic_at: None,
            spurious_budget: 0,
        }
    }

    /// Wake every parked waiter of `slot` (they move to `Relock`).
    fn wake_all(&self, s: &mut CvState, slot: usize) {
        for st in s.parked_on(slot, self.slots) {
            s.coords[stage_index(st)] = CvCoord::Relock;
        }
    }
}

impl Model for CondvarModel {
    type State = CvState;
    type Action = CvAction;

    fn name(&self) -> String {
        format!(
            "condvar({:?}, slots={}, chunks={}, panic={:?}, spurious={})",
            self.variant, self.slots, self.chunks, self.panic_at, self.spurious_budget
        )
    }

    fn initial(&self) -> CvState {
        CvState {
            slots: (0..self.slots).map(|i| (Phase::Empty, i as u8)).collect(),
            coords: [if self.chunks == 0 {
                CvCoord::Done
            } else {
                CvCoord::Idle
            }; 3],
            chunk: [0; 3],
            poisoned: false,
            spurious_left: self.spurious_budget,
        }
    }

    fn actions(&self, s: &CvState) -> Vec<(CvAction, CvState)> {
        let mut out = Vec::new();
        for stage in Stage::ALL {
            let i = stage_index(stage);
            let c = s.chunk[i];
            let k = c as usize % self.slots;
            match s.coords[i] {
                CvCoord::Done | CvCoord::Aborted => {}
                CvCoord::Idle | CvCoord::Relock => {
                    if s.locked(k, self.slots) {
                        continue; // blocked on the mutex
                    }
                    if s.coords[i] == CvCoord::Relock && self.variant == CvVariant::NoRecheck {
                        // Bug: proceed straight to the work body on wakeup.
                        let mut n = s.clone();
                        n.coords[i] = CvCoord::Work;
                        out.push((CvAction::ClaimNoRecheck(stage, c), n));
                        continue;
                    }
                    // Atomic lock + check. Order matches await_phase: the
                    // poison flag is re-checked under the lock first.
                    let mut n = s.clone();
                    if s.poisoned {
                        n.coords[i] = CvCoord::Aborted;
                    } else if s.slots[k] == (wanted(stage), c) {
                        n.coords[i] = CvCoord::Work; // guard dropped, work unlocked
                    } else {
                        n.coords[i] = CvCoord::Prepark; // still holding the lock
                    }
                    out.push((CvAction::LockCheck(stage, c), n));
                }
                CvCoord::Prepark => {
                    // Atomic release + park: Condvar::wait.
                    let mut n = s.clone();
                    n.coords[i] = CvCoord::Parked;
                    out.push((CvAction::Park(stage), n));
                }
                CvCoord::Parked => {
                    if s.spurious_left > 0 {
                        let mut n = s.clone();
                        n.spurious_left -= 1;
                        n.coords[i] = CvCoord::Relock;
                        out.push((CvAction::Spurious(stage), n));
                    }
                }
                CvCoord::Work => {
                    if self.panic_at == Some((stage, c)) && !s.poisoned {
                        // Unwinding sets the flag before any notify.
                        let mut n = s.clone();
                        n.poisoned = true;
                        n.coords[i] = CvCoord::Poisoning { next: 0 };
                        out.push((CvAction::Panic(stage, c), n));
                        continue; // the injected panic always fires
                    }
                    if s.locked(k, self.slots) {
                        continue; // publish blocked on the mutex
                    }
                    // Atomic lock + set + notify + unlock: publish.
                    let mut n = s.clone();
                    n.slots[k] = match stage {
                        Stage::CopyOut => (Phase::Empty, c + self.slots as u8),
                        Stage::CopyIn => (Phase::Filled, c),
                        Stage::Compute => (Phase::Computed, c),
                    };
                    let next = c + 1;
                    n.chunk[i] = next;
                    n.coords[i] = if next >= self.chunks {
                        CvCoord::Done
                    } else {
                        CvCoord::Idle
                    };
                    if self.variant == CvVariant::NotifyOne {
                        // One successor per waiter the token could go to.
                        let parked = n.parked_on(k, self.slots);
                        if parked.is_empty() {
                            out.push((CvAction::Publish(stage, c), n));
                        } else {
                            for st in parked {
                                let mut m = n.clone();
                                m.coords[stage_index(st)] = CvCoord::Relock;
                                out.push((CvAction::Publish(stage, c), m));
                            }
                        }
                    } else {
                        self.wake_all(&mut n, k);
                        out.push((CvAction::Publish(stage, c), n));
                    }
                }
                CvCoord::Poisoning { next } => {
                    let slot = next as usize;
                    if self.variant != CvVariant::PoisonSkipLock && s.locked(slot, self.slots) {
                        continue; // waits for the slot lock, as the code does
                    }
                    let mut n = s.clone();
                    self.wake_all(&mut n, slot);
                    n.coords[i] = if slot + 1 == self.slots {
                        CvCoord::Aborted
                    } else {
                        CvCoord::Poisoning { next: next + 1 }
                    };
                    out.push((CvAction::PoisonNotify(next), n));
                }
            }
        }
        out
    }

    fn is_terminal(&self, s: &CvState) -> bool {
        s.coords
            .iter()
            .all(|c| matches!(c, CvCoord::Done | CvCoord::Aborted))
            && (s.poisoned || s.coords.iter().all(|c| matches!(c, CvCoord::Done)))
    }

    fn invariant(&self, s: &CvState) -> Result<(), String> {
        let mut owner: Vec<Option<Stage>> = vec![None; self.slots];
        for stage in Stage::ALL {
            let i = stage_index(stage);
            if s.coords[i] != CvCoord::Work {
                continue;
            }
            let c = s.chunk[i];
            let k = c as usize % self.slots;
            if let Some(prev) = owner[k] {
                return Err(format!(
                    "slot {k} owned by both {prev:?} and {stage:?} — data race"
                ));
            }
            owner[k] = Some(stage);
            if s.slots[k] != (wanted(stage), c) {
                return Err(format!(
                    "{stage:?} entered its work body for chunk {c} but slot {k} reads {:?} — \
                     the predicate was not re-checked after wakeup",
                    s.slots[k]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, CheckOptions, Violation};

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn shipped_discipline_verifies() {
        let r = check(&CondvarModel::correct(3, 4), opts());
        assert!(r.ok(), "{r}\n{}", r.render_trace());
        assert_eq!(r.terminal_states, 1);
    }

    #[test]
    fn shipped_discipline_survives_spurious_wakeups() {
        // The re-check loop makes spurious wakeups harmless.
        let mut m = CondvarModel::correct(3, 3);
        m.spurious_budget = 2;
        let r = check(&m, opts());
        assert!(r.ok(), "{r}\n{}", r.render_trace());
    }

    #[test]
    fn shipped_poison_protocol_drains_everyone() {
        for stage in Stage::ALL {
            for chunk in 0..3u8 {
                let mut m = CondvarModel::correct(3, 3);
                m.panic_at = Some((stage, chunk));
                let r = check(&m, opts());
                assert!(r.ok(), "panic {stage:?}/{chunk}: {r}\n{}", r.render_trace());
            }
        }
    }

    #[test]
    fn poison_without_slot_locks_loses_a_wakeup() {
        // The exact window host.rs's poison() comment claims to close:
        // a coordinator between its flag check and its park misses the
        // only notify it will ever get.
        let m = CondvarModel {
            slots: 3,
            chunks: 3,
            variant: CvVariant::PoisonSkipLock,
            panic_at: Some((Stage::Compute, 0)),
            spurious_budget: 0,
        };
        let r = check(&m, opts());
        assert!(
            matches!(r.violation, Some(Violation::Deadlock { .. })),
            "skipping the locks must lose a wakeup: {r}"
        );
    }

    #[test]
    fn notify_one_starves_the_second_waiter() {
        // Copy-in (waiting Empty(c+3)) and copy-out (waiting Computed(c))
        // park on the same slot condvar; notify_one can hand the token to
        // the waiter whose predicate is still false.
        let m = CondvarModel {
            slots: 3,
            chunks: 4,
            variant: CvVariant::NotifyOne,
            panic_at: None,
            spurious_budget: 0,
        };
        let r = check(&m, opts());
        assert!(
            matches!(r.violation, Some(Violation::Deadlock { .. })),
            "notify_one must deadlock with two waiters per condvar: {r}"
        );
    }

    #[test]
    fn skipping_the_recheck_corrupts_ownership() {
        let m = CondvarModel {
            slots: 3,
            chunks: 4,
            variant: CvVariant::NoRecheck,
            panic_at: None,
            spurious_budget: 0,
        };
        let r = check(&m, opts());
        match &r.violation {
            Some(Violation::Invariant { message, .. }) => {
                assert!(
                    message.contains("not re-checked"),
                    "unexpected invariant message: {message}"
                );
            }
            other => panic!("no-recheck must violate slot ownership, got {other:?}"),
        }
    }

    #[test]
    fn counterexample_traces_are_replayable() {
        let m = CondvarModel {
            slots: 3,
            chunks: 4,
            variant: CvVariant::NotifyOne,
            panic_at: None,
            spurious_budget: 0,
        };
        let r = check(&m, opts());
        let trace = r.render_trace();
        assert!(
            trace.contains("Publish"),
            "deadlock trace should show the publish steps:\n{trace}"
        );
    }
}
