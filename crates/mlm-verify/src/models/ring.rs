//! Phase-level model of the dataflow host pipeline's buffer ring.
//!
//! Mirrors `mlm-core/src/pipeline/host.rs`: three stage coordinators
//! (copy-in, compute, copy-out) walk the chunk sequence, synchronizing
//! only through a ring of `slots` buffers whose per-slot state machine is
//! `Empty(c) → Filled(c) → Computed(c) → Empty(c + slots)`. Each
//! coordinator fans a chunk's work out to `workers` pool workers and can
//! only publish the next phase once every worker has finished (the
//! `StagePool::scoped` barrier).
//!
//! Blocking is modeled by enabledness: a coordinator whose awaited
//! `(phase, chunk)` has not been published simply has no enabled action,
//! so a protocol that can strand a coordinator shows up as a checker
//! deadlock. Poisoning is modeled after the real code: a panicking stage
//! sets the poison flag, and every *waiting* coordinator may observe it
//! and abort instead of acquiring its slot.
//!
//! Verified properties:
//!
//! * deadlock-freedom (every blocked coordinator is eventually unblocked);
//! * exclusive buffer ownership (no two stages ever work on one slot);
//! * the in-flight bound (copy-in never runs more than `slots` chunks
//!   ahead of copy-out);
//! * poison drain (with a panicking stage, every execution still
//!   terminates with all coordinators done or aborted — nobody waits on a
//!   phase that will never come).

use crate::check::Model;

/// The three pipeline stages, in ring order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Fills a slot (`Empty(c)` → works → publishes `Filled(c)`).
    CopyIn,
    /// Transforms a slot (`Filled(c)` → works → publishes `Computed(c)`).
    Compute,
    /// Drains a slot (`Computed(c)` → works → publishes `Empty(c+slots)`).
    CopyOut,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::CopyIn, Stage::Compute, Stage::CopyOut];

    fn index(self) -> usize {
        match self {
            Stage::CopyIn => 0,
            Stage::Compute => 1,
            Stage::CopyOut => 2,
        }
    }
}

/// Per-slot phase, as in the implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Free for copy-in of its `chunk`.
    Empty,
    /// Holds the input of `chunk`.
    Filled,
    /// Holds the output of `chunk`.
    Computed,
}

/// What one coordinator is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Coord {
    /// Waiting for its slot to reach the awaited phase for `chunk`.
    Waiting,
    /// Fanned out to the stage pool; `remaining` workers still running.
    Working { remaining: u8 },
    /// Finished every chunk.
    Done,
    /// Observed poison (or panicked) and unwound.
    Aborted,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingState {
    /// `(phase, chunk)` per slot.
    slots: Vec<(Phase, u8)>,
    /// Coordinator status per stage.
    coords: [Coord; 3],
    /// Next chunk each stage will process.
    chunk: [u8; 3],
    /// Set once any stage panics.
    poisoned: bool,
}

/// Transition labels (the counterexample vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingAction {
    /// Stage acquired its awaited `(phase, chunk)` and fanned out work.
    Acquire(Stage, u8),
    /// One pool worker of the stage finished.
    WorkerFinish(Stage, u8),
    /// Stage published the slot's next phase and advanced.
    Publish(Stage, u8),
    /// The stage's kernel/copy panicked, poisoning the ring.
    Panic(Stage, u8),
    /// A waiting stage observed poison and unwound.
    AbortOnPoison(Stage),
}

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct RingModel {
    /// Buffer slots in the ring (the implementation uses 3).
    pub slots: usize,
    /// Chunks to stream.
    pub chunks: u8,
    /// Pool workers per stage (the `scoped` fan-out width).
    pub workers: u8,
    /// Inject a panic: this stage's work on this chunk may panic instead
    /// of finishing, exercising the poisoning protocol.
    pub panic_at: Option<(Stage, u8)>,
}

impl RingModel {
    /// The ring as shipped: 3 slots, no injected panic.
    pub fn shipped(chunks: u8, workers: u8) -> Self {
        RingModel {
            slots: 3,
            chunks,
            workers,
            panic_at: None,
        }
    }

    fn wanted(&self, stage: Stage) -> Phase {
        match stage {
            Stage::CopyIn => Phase::Empty,
            Stage::Compute => Phase::Filled,
            Stage::CopyOut => Phase::Computed,
        }
    }

    fn published(&self, stage: Stage) -> Phase {
        match stage {
            Stage::CopyIn => Phase::Filled,
            Stage::Compute => Phase::Computed,
            Stage::CopyOut => Phase::Empty,
        }
    }
}

impl Model for RingModel {
    type State = RingState;
    type Action = RingAction;

    fn name(&self) -> String {
        format!(
            "ring(slots={}, chunks={}, workers={}, panic={:?})",
            self.slots, self.chunks, self.workers, self.panic_at
        )
    }

    fn initial(&self) -> RingState {
        RingState {
            slots: (0..self.slots).map(|i| (Phase::Empty, i as u8)).collect(),
            coords: [if self.chunks == 0 {
                Coord::Done
            } else {
                Coord::Waiting
            }; 3],
            chunk: [0; 3],
            poisoned: false,
        }
    }

    fn actions(&self, s: &RingState) -> Vec<(RingAction, RingState)> {
        let mut out = Vec::new();
        for stage in Stage::ALL {
            let i = stage.index();
            let c = s.chunk[i];
            match s.coords[i] {
                Coord::Done | Coord::Aborted => {}
                Coord::Waiting => {
                    // The real coordinator re-checks the poison flag under
                    // the slot lock before parking and after every wakeup.
                    if s.poisoned {
                        let mut n = s.clone();
                        n.coords[i] = Coord::Aborted;
                        out.push((RingAction::AbortOnPoison(stage), n));
                        continue;
                    }
                    let k = c as usize % self.slots;
                    if s.slots[k] == (self.wanted(stage), c) {
                        let mut n = s.clone();
                        n.coords[i] = Coord::Working {
                            remaining: self.workers,
                        };
                        out.push((RingAction::Acquire(stage, c), n));
                    }
                }
                Coord::Working { remaining } => {
                    if self.panic_at == Some((stage, c)) && !s.poisoned {
                        // The panic unwinds through `coordinate`, which
                        // poisons the ring and wakes every waiter.
                        let mut n = s.clone();
                        n.poisoned = true;
                        n.coords[i] = Coord::Aborted;
                        out.push((RingAction::Panic(stage, c), n));
                    }
                    if remaining > 0 {
                        let mut n = s.clone();
                        n.coords[i] = Coord::Working {
                            remaining: remaining - 1,
                        };
                        out.push((RingAction::WorkerFinish(stage, c), n));
                    } else {
                        let k = c as usize % self.slots;
                        let mut n = s.clone();
                        n.slots[k] = match stage {
                            Stage::CopyOut => (Phase::Empty, c + self.slots as u8),
                            _ => (self.published(stage), c),
                        };
                        let next = c + 1;
                        n.chunk[i] = next;
                        n.coords[i] = if next >= self.chunks {
                            Coord::Done
                        } else {
                            Coord::Waiting
                        };
                        out.push((RingAction::Publish(stage, c), n));
                    }
                }
            }
        }
        out
    }

    fn is_terminal(&self, s: &RingState) -> bool {
        s.coords
            .iter()
            .all(|c| matches!(c, Coord::Done | Coord::Aborted))
            // Without poison, aborting is not a legitimate end.
            && (s.poisoned || s.coords.iter().all(|c| matches!(c, Coord::Done)))
    }

    fn invariant(&self, s: &RingState) -> Result<(), String> {
        // Exclusive ownership: no two stages working on the same slot.
        let mut owner: Vec<Option<Stage>> = vec![None; self.slots];
        for stage in Stage::ALL {
            let i = stage.index();
            if matches!(s.coords[i], Coord::Working { .. }) {
                let k = s.chunk[i] as usize % self.slots;
                if let Some(prev) = owner[k] {
                    return Err(format!(
                        "slot {k} owned by both {prev:?} and {stage:?} — data race"
                    ));
                }
                owner[k] = Some(stage);
                // The owner's claim must still be visible in the slot.
                if s.slots[k] != (self.wanted(stage), s.chunk[i]) {
                    return Err(format!(
                        "{stage:?} works on slot {k} but the slot reads {:?}",
                        s.slots[k]
                    ));
                }
            }
        }
        // In-flight bound: copy-in never runs more than `slots` chunks
        // ahead of copy-out.
        let ahead = s.chunk[Stage::CopyIn.index()] as i32 - s.chunk[Stage::CopyOut.index()] as i32;
        if ahead > self.slots as i32 {
            return Err(format!(
                "copy-in is {ahead} chunks ahead of copy-out with only {} slots",
                self.slots
            ));
        }
        Ok(())
    }

    fn safe_action(
        &self,
        _state: &RingState,
        actions: &[(RingAction, RingState)],
    ) -> Option<usize> {
        // A worker finishing only decrements its own stage's counter: it
        // commutes with every other enabled action, cannot be disabled,
        // and strictly decreases total remaining work — a safe action.
        actions
            .iter()
            .position(|(a, _)| matches!(a, RingAction::WorkerFinish(..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, CheckOptions, Violation};

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn shipped_ring_verifies_acceptance_geometry() {
        // The acceptance criterion: >= 2 workers per stage, >= 4 chunks.
        let r = check(&RingModel::shipped(4, 2), opts());
        assert!(r.ok(), "{r}\n{}", r.render_trace());
        assert_eq!(r.terminal_states, 1, "one all-Done end state");
        assert!(
            r.states > 100,
            "nontrivial interleaving space: {}",
            r.states
        );
    }

    #[test]
    fn shipped_ring_verifies_across_geometries() {
        for chunks in 1..=6u8 {
            for workers in 1..=3u8 {
                let r = check(&RingModel::shipped(chunks, workers), opts());
                assert!(r.ok(), "chunks={chunks} workers={workers}: {r}");
            }
        }
    }

    #[test]
    fn fewer_slots_still_deadlock_free_but_serialized() {
        // 1 and 2 slots serialize the pipeline but never deadlock — this
        // is why the V004 lint reports a warning, not an error, for
        // shallow dataflow rings.
        for slots in 1..=2usize {
            let m = RingModel {
                slots,
                chunks: 4,
                workers: 2,
                panic_at: None,
            };
            let r = check(&m, opts());
            assert!(r.ok(), "slots={slots}: {r}");
        }
    }

    #[test]
    fn poisoning_drains_all_coordinators() {
        // Whatever stage panics at whatever chunk, every interleaving must
        // end with all three coordinators done or aborted — no one left
        // waiting on a phase that will never be published.
        for stage in Stage::ALL {
            for chunk in 0..4u8 {
                let m = RingModel {
                    slots: 3,
                    chunks: 4,
                    workers: 2,
                    panic_at: Some((stage, chunk)),
                };
                let r = check(&m, opts());
                assert!(
                    r.ok(),
                    "panic at {stage:?}/{chunk}: {r}\n{}",
                    r.render_trace()
                );
                assert!(r.terminal_states > 1, "panic and clean paths both end");
            }
        }
    }

    #[test]
    fn broken_publish_order_is_caught() {
        // Regression shape: a ring whose copy-out recycles the slot for
        // the *same* chunk (forgetting the +slots advance) strands
        // copy-in, which waits for Empty(c+3) forever.
        struct Broken(RingModel);
        impl Model for Broken {
            type State = RingState;
            type Action = RingAction;
            fn name(&self) -> String {
                "ring-broken-recycle".into()
            }
            fn initial(&self) -> RingState {
                self.0.initial()
            }
            fn actions(&self, s: &RingState) -> Vec<(RingAction, RingState)> {
                let mut acts = self.0.actions(s);
                for (a, n) in &mut acts {
                    if let RingAction::Publish(Stage::CopyOut, c) = a {
                        // Recycle for chunk c, not c + slots: stale chunk id.
                        n.slots[*c as usize % self.0.slots] = (Phase::Empty, *c);
                    }
                }
                acts
            }
            fn is_terminal(&self, s: &RingState) -> bool {
                self.0.is_terminal(s)
            }
        }
        let r = check(&Broken(RingModel::shipped(5, 1)), opts());
        assert!(
            matches!(r.violation, Some(Violation::Deadlock { .. })),
            "stale recycle must deadlock: {r}"
        );
    }

    #[test]
    fn por_preserves_the_verdict() {
        let m = RingModel::shipped(4, 3);
        let full = check(
            &m,
            CheckOptions {
                partial_order_reduction: false,
                ..opts()
            },
        );
        let reduced = check(&m, opts());
        assert!(full.ok() && reduced.ok());
        assert!(
            reduced.states <= full.states,
            "POR must not grow the space: {} vs {}",
            reduced.states,
            full.states
        );
    }

    #[test]
    fn zero_chunks_is_immediately_terminal() {
        let r = check(&RingModel::shipped(0, 2), opts());
        assert!(r.ok());
        assert_eq!(r.states, 1);
    }
}
