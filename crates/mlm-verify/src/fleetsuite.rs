//! The `mlm-verify fleet` battery: dynamic invariant checks over the
//! fleet dispatcher (`mlm-fleet`), the runtime complement of the V011
//! placement-feasibility lint.
//!
//! Where the lint battery vets one *plan*, this battery runs the actual
//! virtual-time dispatcher over small fleet traces and checks the
//! invariants every policy combination must uphold:
//!
//! * **conservation** — every submitted job either completes exactly once
//!   or is rejected at submission, and each completed job carries exactly
//!   one placement and one admission decision;
//! * **capacity** — no node's MCDRAM high-water mark ever exceeds its
//!   budget, with or without work stealing (a steal that over-commits the
//!   thief would show up here);
//! * **determinism** — re-running a configuration reproduces the decision
//!   log bit-for-bit (the property CI's drift gate relies on);
//! * **mode equivalence** — the virtual-time and real-thread host
//!   dispatchers produce the same canonical decision sequence on the demo
//!   batch (the projection [`mlm_fleet::decision_digest`] defines).
//!
//! Like the other batteries, the suite is data: the CLI, CI, and the
//! crate's tests all execute the same cases.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::GIB;
use mlm_core::pipeline::host::KernelCtx;
use mlm_core::{PipelineSpec, Placement, Workload};
use mlm_fleet::{
    decision_digest, fleet_serve, fleet_serve_host, fleet_trace, Decision, FleetConfig,
    FleetHostConfig, FleetHostJob, FleetJob, FleetTraceConfig, PlacementPolicy,
};
use mlm_serve::trace::TraceConfig;
use mlm_serve::{DeadlineClass, JobRequest, Policy};
use serde::Serialize;

/// One fleet battery case.
#[derive(Debug, Serialize)]
pub struct FleetCase {
    /// Human-readable case name.
    pub name: String,
    /// Did every invariant hold?
    pub ok: bool,
    /// What was checked (and what failed, when `!ok`).
    pub detail: String,
}

fn machine() -> MachineConfig {
    MachineConfig::knl_7250(MemMode::Flat)
}

fn small_trace(nodes: usize, per_node: usize, seed: u64) -> Vec<FleetJob> {
    fleet_trace(&FleetTraceConfig::new(
        TraceConfig::new(machine(), 0, 2.0, seed),
        nodes,
        per_node,
    ))
}

/// Check the dispatcher invariants for one configuration.
fn invariant_case(name: String, cfg: &FleetConfig, jobs: &[FleetJob]) -> FleetCase {
    let mut failures = Vec::new();
    match (fleet_serve(cfg, jobs), fleet_serve(cfg, jobs)) {
        (Ok(a), Ok(b)) => {
            if a.records.len() + a.rejections.len() != jobs.len() {
                failures.push(format!(
                    "conservation: {} records + {} rejections != {} jobs",
                    a.records.len(),
                    a.rejections.len(),
                    jobs.len()
                ));
            }
            for r in &a.records {
                let placed = a
                    .decisions
                    .iter()
                    .filter(|d| matches!(d, Decision::Placed { job, .. } if *job == r.id))
                    .count();
                let admitted = a
                    .decisions
                    .iter()
                    .filter(|d| matches!(d, Decision::Admitted { job, .. } if *job == r.id))
                    .count();
                if (placed, admitted) != (1, 1) {
                    failures.push(format!(
                        "job {}: placed {placed}×, admitted {admitted}×",
                        r.id
                    ));
                    break;
                }
            }
            for (ni, (stats, node)) in a.per_node.iter().zip(&cfg.nodes).enumerate() {
                let cap = node.mcdram_budget.min(node.machine.addressable_mcdram());
                if stats.mcdram_high_water > cap {
                    failures.push(format!(
                        "node {ni}: high-water {} exceeds budget {cap}",
                        stats.mcdram_high_water
                    ));
                }
            }
            let (da, db) = (
                decision_digest(&a.decisions, cfg.nodes.len()),
                decision_digest(&b.decisions, cfg.nodes.len()),
            );
            if da != db || a.decisions != b.decisions {
                failures.push(format!("nondeterministic decisions: {da:#x} vs {db:#x}"));
            }
        }
        (Err(e), _) | (_, Err(e)) => failures.push(format!("fleet_serve failed: {e}")),
    }
    FleetCase {
        name,
        ok: failures.is_empty(),
        detail: if failures.is_empty() {
            format!(
                "{} jobs: conservation, per-node budget, decision determinism",
                jobs.len()
            )
        } else {
            failures.join("; ")
        },
    }
}

fn demo_spec(total: u64, chunk: u64) -> PipelineSpec {
    PipelineSpec {
        total_bytes: total,
        chunk_bytes: chunk,
        p_in: 1,
        p_out: 1,
        p_comp: 2,
        compute_passes: 1,
        compute_rate: 6.78e9,
        copy_rate: 4.8e9,
        placement: Placement::Hbw,
        lockstep: false,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn demo_kernel(slice: &mut [i64], _ctx: KernelCtx) {
    for x in slice.iter_mut() {
        *x = x.wrapping_mul(3);
    }
}

/// The demo batch both serving modes must decide identically: strict
/// FIFO jobs, all submitted up front, on a two-node fleet.
fn equivalence_case() -> FleetCase {
    const MIB: u64 = 1 << 20;
    let n = (MIB / 8) as usize;
    let mut fleet = FleetConfig::homogeneous(machine(), 2, 2 * MIB, false);
    fleet.placement = PlacementPolicy::LeastLoaded;
    fleet.policy = Policy::Fifo;

    let vt_jobs: Vec<FleetJob> = (0..6)
        .map(|i| FleetJob {
            req: JobRequest::new(i, 0.0, DeadlineClass::Standard, demo_spec(MIB, MIB / 4)),
            strict: true,
            origin: 0,
        })
        .collect();
    let host_jobs: Vec<FleetHostJob> = (0..6)
        .map(|i| FleetHostJob {
            id: i,
            class: DeadlineClass::Standard,
            strict: true,
            spec: demo_spec(MIB, MIB / 4),
            data: (0..n as i64).map(|x| x * 7 + i as i64).collect(),
        })
        .collect();

    let host_cfg = FleetHostConfig {
        fleet: fleet.clone(),
        host_threads: 8,
        workers: 2,
    };
    let (ok, detail) = match (
        fleet_serve(&fleet, &vt_jobs),
        fleet_serve_host(&host_cfg, host_jobs, demo_kernel),
    ) {
        (Ok(vt), Ok(host)) => {
            let dv = decision_digest(&vt.decisions, 2);
            let dh = decision_digest(&host.decisions, 2);
            if dv == dh {
                (
                    true,
                    format!("vt and host decision digests agree: {dv:#018x}"),
                )
            } else {
                (
                    false,
                    format!("decision digests diverge: vt {dv:#018x}, host {dh:#018x}"),
                )
            }
        }
        (Err(e), _) => (false, format!("virtual-time mode failed: {e}")),
        (_, Err(e)) => (false, format!("host mode failed: {e}")),
    };
    FleetCase {
        name: "vt/host decision equivalence on the demo batch".into(),
        ok,
        detail,
    }
}

/// Run the whole fleet battery.
pub fn run_fleet_suite() -> Vec<FleetCase> {
    let mut out = Vec::new();
    let jobs = small_trace(4, 50, 7);
    for placement in PlacementPolicy::ALL {
        for steal in [false, true] {
            let mut cfg = FleetConfig::mixed_8_16(machine(), 4, true);
            cfg.placement = placement;
            cfg.policy = Policy::Sjf;
            cfg.steal = steal;
            if steal {
                cfg.cluster = Some(mlm_cluster::ClusterConfig::omnipath(4));
            }
            out.push(invariant_case(
                format!(
                    "invariants: {} on mixed 8/16 GiB ×4, steal={}",
                    placement.label(),
                    if steal { "on" } else { "off" }
                ),
                &cfg,
                &jobs,
            ));
        }
    }

    // Heterogeneous feasibility: strict elephants run only where they fit.
    let mut cfg = FleetConfig::homogeneous(machine(), 2, 4 * GIB, false);
    cfg.nodes[1].mcdram_budget = 16 * GIB;
    cfg.placement = PlacementPolicy::BestFitHbw;
    let mut big = small_trace(2, 30, 13);
    for j in &mut big {
        j.strict = true;
    }
    out.push(invariant_case(
        "invariants: strict jobs on a 4/16 GiB fleet".into(),
        &cfg,
        &big,
    ));

    out.push(equivalence_case());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_suite_passes() {
        for case in run_fleet_suite() {
            assert!(case.ok, "{}: {}", case.name, case.detail);
        }
    }

    #[test]
    fn fleet_suite_covers_every_policy_and_both_modes() {
        let names: Vec<String> = run_fleet_suite().into_iter().map(|c| c.name).collect();
        for label in ["first-fit", "best-fit-hbw", "least-loaded"] {
            assert!(
                names.iter().filter(|n| n.contains(label)).count() >= 2,
                "missing steal on/off coverage for {label}"
            );
        }
        assert!(names.iter().any(|n| n.contains("equivalence")));
    }
}
