//! Static verification for the out-of-core pipeline workspace.
//!
//! The runtime crates (`mlm-core`, `mlm-cluster`, `knl-sim`) execute and
//! simulate the paper's multi-level-memory pipelines; this crate checks
//! them *before* anything runs, at four layers:
//!
//! 1. **Spec linting** ([`lint`], [`diag`]) — a registry of lints
//!    validates a [`mlm_core::pipeline::PipelineSpec`] against the machine
//!    it will run on: chunk geometry vs element size, buffer ring vs
//!    MCDRAM capacity, placement vs memory mode, pool sizes vs hardware
//!    threads, and rate sanity against the paper's §3.2 performance model.
//!    Findings are structured [`diag::Diagnostic`]s (stable id, severity,
//!    field-level context, suggested fix). [`engine::checked_program`]
//!    turns error-level findings into hard rejections in front of the
//!    simulator.
//!
//! 2. **Schedule model checking** ([`check`], [`models`]) — the host
//!    pipeline's buffer-ring protocol and the cluster's PSRS message
//!    protocol, expressed as explicit transition systems and explored
//!    exhaustively (DFS, state hashing, partial-order reduction) for
//!    deadlock-freedom, exclusive buffer ownership, poison drain, and
//!    protocol-order invariants. Deliberately broken variants — the
//!    seed's PSRS race, poison-without-locks, `notify_one`, missing
//!    predicate re-checks — are kept as regression models that must keep
//!    failing.
//!
//! 3. **Static graph verification** ([`graph`], over
//!    [`mlm_exec::graph`]) — the analyzer consumes the exact dependency
//!    DAG `drive()` emits and *proves*, over every linearization at once,
//!    that the schedule is race-free (G001), deadlock-free (G002), and
//!    within MCDRAM/ring occupancy bounds (G003/G004), plus dead-token
//!    and unreachable-node hygiene (G005/G006). Findings are the same
//!    structured [`diag::Diagnostic`]s as the lints, carrying
//!    counterexample traces (`mlm-verify graph`).
//!
//! 4. **Schedule fuzzing** ([`fuzzsuite`], over [`mlm_exec::fuzz`]) — the
//!    complement of the proofs: seed-controlled adversarial execution of
//!    the *actual* schedule `drive()` issues, sweeping every placement
//!    and schedule mode plus committed must-fail regression seeds that
//!    mirror the model battery at the `drive()` level (`mlm-verify fuzz`).
//!
//! 5. **Fleet battery** ([`fleetsuite`], over [`mlm_fleet`]) — dynamic
//!    invariant checks on the multi-node dispatcher: job conservation,
//!    per-node MCDRAM budget respect under work stealing, decision-log
//!    determinism across reruns, and virtual-time/host decision
//!    equivalence on the demo batch (`mlm-verify fleet`). The V011 lint
//!    is the static face of the same contract: a job the dispatcher would
//!    reject at submission fails the plan before anything runs.
//!
//! What the checker proves is bounded: it verifies the *protocol* for
//! concrete small geometries (3-slot ring, up to a handful of chunks and
//! workers; 2–4 cluster nodes), not the Rust implementation itself, and
//! state counts grow combinatorially with those parameters. The models
//! are kept line-for-line close to `host.rs` so a protocol change there
//! should be mirrored here — the [`suite`] ties the two together in CI
//! via `cargo run -p mlm-verify -- check-all`.

pub mod check;
pub mod diag;
pub mod engine;
pub mod fleetsuite;
pub mod fuzzsuite;
pub mod graph;
pub mod lint;
pub mod models;
pub mod suite;

pub use check::{check, CheckOptions, CheckReport, Model, Violation};
pub use diag::{Context, Diagnostic, LintReport, Severity};
pub use engine::{checked_program, run_checked, VerifyError};
pub use fleetsuite::{run_fleet_suite, FleetCase};
pub use lint::{lint_target, FleetTarget, Lint, LintRegistry, VerifyTarget, RING_SLOTS};
