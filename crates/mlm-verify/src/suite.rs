//! The `check-all` battery: the canonical paper configuration, a gallery
//! of known-bad specs, and every protocol model — each with its expected
//! verdict.
//!
//! The suite is data, not a binary, so the CLI (`mlm-verify check-all`),
//! CI, and the crate's own tests all execute exactly the same checks. A
//! *passing* suite means: the paper spec lints clean, every known-bad
//! spec is rejected by the lint that owns its bug class, every shipped
//! protocol verifies exhaustively, and every regression model (the
//! pre-dataflow-fix PSRS race, the three condvar disciplines the ring
//! must not use) still fails.

use knl_sim::machine::{MachineConfig, MemMode};
use mlm_core::pipeline::{PipelineSpec, Placement, Workload};

use crate::check::{check, CheckOptions, Model};
use crate::diag::LintReport;
use crate::lint::{lint_target, VerifyTarget};
use crate::models::condvar::{CondvarModel, CvVariant};
use crate::models::psrs::{PsrsModel, PsrsVariant};
use crate::models::ring::{RingModel, Stage};

/// The pipeline configuration the paper's §4 out-of-core experiments use:
/// a KNL 7250 streaming 8 GiB of DDR data through 1 GiB MCDRAM buffers
/// with 8-thread copy pools and a 64-thread compute pool.
pub fn paper_spec() -> PipelineSpec {
    PipelineSpec {
        total_bytes: 8 << 30,
        chunk_bytes: 1 << 30,
        p_in: 8,
        p_out: 8,
        p_comp: 64,
        compute_passes: 4,
        compute_rate: 6.78e9,
        copy_rate: 4.8e9,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    }
}

/// The machine the paper ran on, in flat mode.
pub fn paper_machine() -> MachineConfig {
    MachineConfig::knl_7250(MemMode::Flat)
}

/// One lint check of the suite.
pub struct LintCase {
    /// Human-readable name of the case.
    pub name: &'static str,
    /// The lint id that must fire at error level; `None` means the spec
    /// must lint clean.
    pub expect_error: Option<&'static str>,
    /// What the linter actually said.
    pub report: LintReport,
}

impl LintCase {
    /// Did the linter meet the expectation?
    pub fn ok(&self) -> bool {
        match self.expect_error {
            None => !self.report.has_errors(),
            Some(id) => self.report.error_ids().contains(&id),
        }
    }
}

/// Lint the canonical spec and the known-bad gallery.
///
/// Each bad spec represents a distinct mistake class: degenerate geometry,
/// misaligned chunks, buffers that overflow MCDRAM, a placement the memory
/// mode cannot satisfy, thread oversubscription, and non-finite rates.
pub fn run_lint_suite() -> Vec<LintCase> {
    let machine = paper_machine();
    let mut out = Vec::new();

    let spec = paper_spec();
    out.push(LintCase {
        name: "paper spec on KNL 7250 (flat)",
        expect_error: None,
        report: lint_target(&VerifyTarget::new(&spec, &machine)),
    });

    let mut s = paper_spec();
    s.p_comp = 0;
    out.push(LintCase {
        name: "no compute threads",
        expect_error: Some("V000"),
        report: lint_target(&VerifyTarget::new(&s, &machine)),
    });

    let mut s = paper_spec();
    s.chunk_bytes = (1 << 30) + 3;
    out.push(LintCase {
        name: "chunk not a multiple of the element size",
        expect_error: Some("V001"),
        report: lint_target(&VerifyTarget::new(&s, &machine)),
    });

    let mut s = paper_spec();
    s.chunk_bytes = 8 << 30;
    out.push(LintCase {
        name: "ring of chunks overflows MCDRAM",
        expect_error: Some("V002"),
        report: lint_target(&VerifyTarget::new(&s, &machine)),
    });

    let s = paper_spec();
    let cache_machine = MachineConfig::knl_7250(MemMode::Cache);
    out.push(LintCase {
        name: "Hbw placement on a cache-mode machine",
        expect_error: Some("V003"),
        report: lint_target(&VerifyTarget::new(&s, &cache_machine)),
    });

    let mut s = paper_spec();
    s.p_comp = 512;
    out.push(LintCase {
        name: "thread oversubscription",
        expect_error: Some("V005"),
        report: lint_target(&VerifyTarget::new(&s, &machine)),
    });

    let mut s = paper_spec();
    s.copy_rate = f64::NAN;
    out.push(LintCase {
        name: "NaN copy rate",
        expect_error: Some("V006"),
        report: lint_target(&VerifyTarget::new(&s, &machine)),
    });

    // Six paper specs at once want 6 × 3 GiB of buffer rings from a
    // 16 GiB MCDRAM — an over-admitted co-schedule the serving broker
    // must never produce.
    let s = paper_spec();
    let others: Vec<PipelineSpec> = (0..5).map(|_| paper_spec()).collect();
    out.push(LintCase {
        name: "concurrent job set oversubscribes MCDRAM",
        expect_error: Some("V009"),
        report: lint_target(&VerifyTarget::new(&s, &machine).with_co_scheduled(&others)),
    });

    // The paper spec is fine on the flat *machine*, but the selected
    // *backend* only offers cache-mode capabilities: the execution layer
    // would refuse it, so the linter must too.
    let s = paper_spec();
    out.push(LintCase {
        name: "Hbw placement on a cache-mode backend",
        expect_error: Some("V010"),
        report: lint_target(
            &VerifyTarget::new(&s, &machine).with_backend(mlm_exec::Capabilities::cache_mode()),
        ),
    });

    // A 12 GiB strict ring clears every single-node lint on a 16 GiB
    // machine, yet fits no node of an all-8-GiB fleet: the dispatcher
    // would bounce it at submission, so the plan must fail statically.
    let mut s = paper_spec();
    s.chunk_bytes = 4 << 30;
    s.total_bytes = 32 << 30;
    let small_fleet = vec![
        mlm_fleet::NodeConfig::new(machine.clone(), 8 << 30, false),
        mlm_fleet::NodeConfig::new(machine.clone(), 8 << 30, false),
    ];
    out.push(LintCase {
        name: "strict ring fits no node of the fleet",
        expect_error: Some("V011"),
        report: lint_target(&VerifyTarget::new(&s, &machine).with_fleet(&small_fleet, true)),
    });

    // A stencil whose executor ring is the map family's three slots:
    // stage-in would overwrite a halo a neighbour's compute still reads.
    // The geometry is otherwise flawless, so only the halo/dependency
    // lint can catch it.
    let mut s = paper_spec();
    s.workload = Workload::Stencil {
        halo_bytes: 1 << 20,
    };
    let mut shallow = VerifyTarget::new(&s, &machine);
    shallow.buffer_slots = 3;
    out.push(LintCase {
        name: "stencil on a three-slot ring",
        expect_error: Some("V012"),
        report: lint_target(&shallow),
    });

    // The paper spec's 3 GiB ring is feasible on the mixed 8/16 GiB
    // fleet the fleet study sweeps.
    let s = paper_spec();
    let mixed = mlm_fleet::FleetConfig::mixed_8_16(machine.clone(), 4, false).nodes;
    out.push(LintCase {
        name: "paper spec on the mixed 8/16 GiB fleet",
        expect_error: None,
        report: lint_target(&VerifyTarget::new(&s, &machine).with_fleet(&mixed, true)),
    });

    out
}

/// One model check of the suite.
pub struct ModelRun {
    /// The model's self-description.
    pub name: String,
    /// States explored.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Rendered violation, when one was found.
    pub violation: Option<String>,
    /// True for regression models that exist to fail.
    pub expect_violation: bool,
}

impl ModelRun {
    /// Did the checker meet the expectation?
    pub fn ok(&self) -> bool {
        self.violation.is_some() == self.expect_violation
    }
}

fn run_one<M: Model>(model: &M, expect_violation: bool) -> ModelRun {
    let r = check(model, CheckOptions::default());
    ModelRun {
        name: model.name(),
        states: r.states,
        transitions: r.transitions,
        violation: r.violation.as_ref().map(|v| format!("{v:?}")),
        expect_violation,
    }
}

/// Exhaustively check every protocol model.
///
/// Shipped protocols (must verify): the 3-slot ring at phase and at
/// condvar granularity, with and without an injected panic, and the
/// deferring PSRS exchange on 3 nodes. Regression models (must fail): the
/// strict PSRS variant — the seed's race, fixed by the deferred-message
/// drain — and the three broken condvar disciplines.
pub fn run_model_suite() -> Vec<ModelRun> {
    model_suite(true)
}

/// Names and expectations of the suite's models, without running the
/// (comparatively expensive) exhaustive checks.
pub fn model_catalog() -> Vec<(String, bool)> {
    model_suite(false)
        .into_iter()
        .map(|r| (r.name, r.expect_violation))
        .collect()
}

fn model_suite(run: bool) -> Vec<ModelRun> {
    fn one<M: Model>(run: bool, model: &M, expect_violation: bool) -> ModelRun {
        if run {
            run_one(model, expect_violation)
        } else {
            ModelRun {
                name: model.name(),
                states: 0,
                transitions: 0,
                violation: None,
                expect_violation,
            }
        }
    }
    vec![
        // Shipped protocols.
        one(run, &RingModel::shipped(4, 2), false),
        one(
            run,
            &RingModel {
                slots: 3,
                chunks: 4,
                workers: 2,
                panic_at: Some((Stage::Compute, 1)),
            },
            false,
        ),
        one(run, &CondvarModel::correct(3, 4), false),
        one(
            run,
            &CondvarModel {
                panic_at: Some((Stage::Compute, 0)),
                ..CondvarModel::correct(3, 3)
            },
            false,
        ),
        one(run, &PsrsModel::shipped(3), false),
        // Regression models: each must still fail.
        one(
            run,
            &PsrsModel {
                nodes: 3,
                variant: PsrsVariant::Strict,
            },
            true,
        ),
        one(
            run,
            &CondvarModel {
                variant: CvVariant::PoisonSkipLock,
                panic_at: Some((Stage::Compute, 0)),
                ..CondvarModel::correct(3, 3)
            },
            true,
        ),
        one(
            run,
            &CondvarModel {
                variant: CvVariant::NotifyOne,
                ..CondvarModel::correct(3, 4)
            },
            true,
        ),
        one(
            run,
            &CondvarModel {
                variant: CvVariant::NoRecheck,
                ..CondvarModel::correct(3, 4)
            },
            true,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_suite_meets_every_expectation() {
        for case in run_lint_suite() {
            assert!(
                case.ok(),
                "{}: expected {:?}, got:\n{}",
                case.name,
                case.expect_error,
                case.report
            );
        }
    }

    #[test]
    fn lint_suite_rejects_at_least_five_classes() {
        let distinct: std::collections::BTreeSet<_> = run_lint_suite()
            .iter()
            .filter_map(|c| c.expect_error)
            .collect();
        assert!(distinct.len() >= 5, "only {distinct:?}");
    }

    #[test]
    fn catalog_matches_the_suite() {
        let names: Vec<_> = run_model_suite().into_iter().map(|r| r.name).collect();
        let catalog: Vec<_> = model_catalog().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, catalog);
    }

    #[test]
    fn model_suite_meets_every_expectation() {
        for run in run_model_suite() {
            assert!(
                run.ok(),
                "{}: expect_violation={}, violation={:?}",
                run.name,
                run.expect_violation,
                run.violation
            );
        }
    }
}
