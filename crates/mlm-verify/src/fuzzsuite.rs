//! The schedule-fuzzing battery: clean corpus sweeps plus committed
//! must-fail regression seeds.
//!
//! The model checker ([`crate::check`]) explores hand-built models of the
//! ring/condvar/PSRS protocols; [`mlm_exec::fuzz`] adversarially executes
//! the *actual* schedule `drive()` issues. This module ties the two
//! together the same way [`crate::suite`] does for models:
//!
//! * [`run_fuzz_corpus`] sweeps the default corpus (every placement and
//!   schedule mode, [`Construction::Correct`], no faults) over N seeds per
//!   case — any finding is a real orchestrator bug and fails CI;
//! * [`regression_seeds`] are the five committed must-fail seeds: one
//!   per model-checker regression model mirrored at the `drive()` level,
//!   plus the stencil family's dropped-halo-edge class. Each carries the
//!   seed that found it and the shrunk decision trace
//!   ([`FuzzRegression::shrunk`], all ≤ 20 decisions);
//!   [`run_fuzz_regressions`] asserts that the buggy construction still
//!   reproduces the violation *and* that the identical trace runs clean
//!   under [`Construction::Correct`] — if either stops being true, the
//!   fuzzer has lost the bug class.
//!
//! The traces were discovered with the `fuzz_exec` harness
//! (`fuzz_exec --construction notify-one ...`) and shrunk automatically;
//! see EXPERIMENTS.md for reproducing one from scratch.

use mlm_exec::fuzz::{
    corpus_spec, corpus_stencil_spec, default_corpus, fuzz_case, replay, Construction, FaultPlan,
    Finding, FuzzCase, Outcome, Violation,
};
use mlm_exec::{Placement, Stage};

/// A committed fuzz regression: a buggy executor construction, the seed
/// that first exposed it, and the shrunk replay trace.
#[derive(Debug, Clone)]
pub struct FuzzRegression {
    /// Stable name, mirroring the model-checker regression it shadows.
    pub name: &'static str,
    /// The model-checker regression this is the `drive()`-level analogue
    /// of (for cross-referencing `mlm-verify models` output).
    pub mirrors: &'static str,
    /// The case (spec + buggy construction + faults) that must fail.
    pub case: FuzzCase,
    /// Seed whose adversarial schedule first exposed the violation.
    pub seed: u64,
    /// Shrunk decision trace; replaying it reproduces the violation.
    pub shrunk: Vec<u32>,
    /// Expected violation class ([`Violation::kind`]).
    pub expect_kind: &'static str,
}

/// Outcome of running one fuzz regression.
#[derive(Debug, Clone)]
pub struct FuzzRegressionRun {
    /// The regression's stable name.
    pub name: &'static str,
    /// What the buggy construction produced on the committed trace.
    pub buggy_violation: Option<String>,
    /// Whether the violation matched the expected class.
    pub caught: bool,
    /// Whether the same trace runs clean under the correct construction.
    pub clean_on_correct: bool,
    /// Trace length (must stay ≤ 20 to remain a useful regression).
    pub trace_len: usize,
}

impl FuzzRegressionRun {
    /// True when the regression still does its job.
    pub fn ok(&self) -> bool {
        self.caught && self.clean_on_correct && self.trace_len <= 20
    }
}

/// The five committed must-fail seeds: the model checker's regression
/// battery mirrored at the `drive()` schedule level, plus the stencil
/// family's dropped-halo-edge class (which has no model-checker
/// counterpart — the halo edges exist only in the generic plan IR).
/// Seeds and traces were found by `fuzz_exec` and shrunk; they are data,
/// not code — if a schedule change invalidates one, re-run
/// `fuzz_exec --construction <name>` and commit the new trace.
pub fn regression_seeds() -> Vec<FuzzRegression> {
    let dataflow = || corpus_spec(256, Placement::Hbw, false);
    let lockstep = || corpus_spec(256, Placement::Hbw, true);
    vec![
        // Pre-PR-2 PSRS race analogue: drop the copy-out → copy-in
        // buffer-recycling edges and a later chunk's copy-in lands on a
        // slot still holding live data.
        FuzzRegression {
            name: "fuzz-regression: dropped recycling edge clobbers a live slot",
            mirrors: "psrs exchange (strict receive order) — pre-PR-2 race",
            case: FuzzCase {
                name: "hbw-dataflow-4".into(),
                spec: dataflow(),
                construction: Construction::DropRecycleDep,
                faults: FaultPlan::NONE,
            },
            seed: 0,
            shrunk: vec![3],
            expect_kind: "slot-clash",
        },
        // PoisonSkipLock: after a kernel panic the executor keeps
        // scheduling the panicked chunk's dependents; the copy-out
        // touches the poisoned slot instead of being cancelled.
        FuzzRegression {
            name: "fuzz-regression: poison ignored, dependent touches poisoned slot",
            mirrors: "condvar regression PoisonSkipLock",
            case: FuzzCase {
                name: "hbw-dataflow-4".into(),
                spec: dataflow(),
                construction: Construction::PoisonSkipLock,
                faults: FaultPlan {
                    kernel_panic: Some(1),
                    ..FaultPlan::NONE
                },
            },
            seed: 0,
            shrunk: vec![],
            expect_kind: "poison-touched",
        },
        // NotifyOne: a barrier completion wakes only its first waiter;
        // the rest of the step starves.
        FuzzRegression {
            name: "fuzz-regression: notify-one wakeup starves later waiters",
            mirrors: "condvar regression NotifyOne",
            case: FuzzCase {
                name: "hbw-lockstep-4".into(),
                spec: lockstep(),
                construction: Construction::NotifyOne,
                faults: FaultPlan::NONE,
            },
            seed: 0,
            shrunk: vec![],
            expect_kind: "deadlock",
        },
        // NoRecheck: a barrier becomes runnable on its first dependency's
        // completion without rechecking the rest; the next step opens
        // while the previous one is still in flight.
        FuzzRegression {
            name: "fuzz-regression: missing predicate recheck opens the step early",
            mirrors: "condvar regression NoRecheck",
            case: FuzzCase {
                name: "hbw-lockstep-4".into(),
                spec: lockstep(),
                construction: Construction::NoRecheck,
                faults: FaultPlan::NONE,
            },
            seed: 0,
            shrunk: vec![0, 0, 1, 1, 1, 2],
            expect_kind: "slot-clash",
        },
        // DropHaloDep: the stencil compute no longer waits for its right
        // neighbour's stage-in; the adversarial schedule runs it first
        // and the kernel folds a missing halo into the output. Lockstep
        // stencils are immune (barriers order every step), so the
        // committed case is dataflow.
        FuzzRegression {
            name: "fuzz-regression: dropped halo edge folds stale neighbour data",
            mirrors: "stencil halo exchange — no model-checker counterpart",
            case: FuzzCase {
                name: "stencil-dataflow-4".into(),
                spec: corpus_stencil_spec(256, false),
                construction: Construction::DropHaloDep,
                faults: FaultPlan::NONE,
            },
            seed: 0,
            shrunk: vec![0, 0, 3],
            expect_kind: "wrong-output",
        },
    ]
}

/// Run every committed regression seed: replay the shrunk trace on the
/// buggy construction (must reproduce the expected violation class) and
/// on [`Construction::Correct`] (must run clean).
pub fn run_fuzz_regressions() -> Vec<FuzzRegressionRun> {
    regression_seeds()
        .into_iter()
        .map(|reg| {
            let buggy = replay(&reg.case, &reg.shrunk)
                .expect("committed regression case must be driveable");
            let caught = buggy
                .outcome
                .violation()
                .is_some_and(|v| v.kind() == reg.expect_kind);
            let mut correct_case = reg.case.clone();
            correct_case.construction = Construction::Correct;
            let clean = replay(&correct_case, &reg.shrunk)
                .expect("committed regression case must be driveable");
            // With the poison fault still injected, "clean" means the
            // correct construction drains the poison instead of touching
            // the slot.
            let clean_on_correct = !matches!(clean.outcome, Outcome::Violation(_));
            FuzzRegressionRun {
                name: reg.name,
                buggy_violation: buggy.outcome.violation().map(Violation::to_string),
                caught,
                clean_on_correct,
                trace_len: reg.shrunk.len(),
            }
        })
        .collect()
}

/// Sweep the clean default corpus with `seeds` adversarial schedules per
/// case. Returns every finding (shrunk); an empty vector is a pass.
pub fn run_fuzz_corpus(seeds: u64) -> Vec<Finding> {
    default_corpus()
        .iter()
        .flat_map(|case| fuzz_case(case, 0, seeds).expect("corpus cases are driveable"))
        .collect()
}

/// The corpus the sweep covers, for `mlm-verify list`-style output:
/// `(case name, nodes are correct-construction, faults injected)`.
pub fn fuzz_catalog() -> Vec<String> {
    default_corpus().into_iter().map(|c| c.name).collect()
}

/// Sanity anchor for the suite: the regression battery must reference
/// all five construction classes, both schedule modes, and both workload
/// families.
pub fn regression_coverage_is_complete() -> bool {
    let regs = regression_seeds();
    let classes: std::collections::BTreeSet<&str> =
        regs.iter().map(|r| r.case.construction.name()).collect();
    let has_lockstep = regs.iter().any(|r| r.case.spec.lockstep);
    let has_dataflow = regs.iter().any(|r| !r.case.spec.lockstep);
    let has_fault = regs.iter().any(|r| r.case.faults.kernel_panic.is_some());
    let has_stencil = regs
        .iter()
        .any(|r| matches!(r.case.spec.workload, mlm_exec::Workload::Stencil { .. }));
    classes.len() == 5 && has_lockstep && has_dataflow && has_fault && has_stencil && {
        // Keep the Stage type in the public signature space honest: the
        // fault taxonomy addresses actions by (stage, chunk).
        let _ = Stage::Compute;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_regressions_still_bite_and_pass_on_main() {
        for run in run_fuzz_regressions() {
            assert!(
                run.ok(),
                "{}: caught={} clean_on_correct={} trace_len={} ({:?})",
                run.name,
                run.caught,
                run.clean_on_correct,
                run.trace_len,
                run.buggy_violation
            );
        }
    }

    #[test]
    fn regression_battery_covers_all_five_classes() {
        assert!(regression_coverage_is_complete());
    }

    #[test]
    fn small_corpus_sweep_is_clean() {
        // The full 1000-seed sweep is the CI `fuzz` job; keep the unit
        // test fast but real.
        let findings = run_fuzz_corpus(25);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
