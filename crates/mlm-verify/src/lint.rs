//! The static spec linter: a [`Lint`] trait, a [`LintRegistry`], and the
//! built-in lints.
//!
//! Lints validate a [`VerifyTarget`] — a [`PipelineSpec`] paired with the
//! [`MachineConfig`] it is meant to run on, plus the host-side facts the
//! spec alone does not carry (element size, buffer-ring depth, an optional
//! [`ClusterConfig`]) — *before* anything executes. This is the static
//! counterpart of the paper's analytic model (§3.2, Eqs. 1–5): the model
//! predicts pipeline behaviour from the spec, and the lints reject or flag
//! the configurations for which that prediction is a panic, a deadlock, or
//! silently destroyed throughput.
//!
//! Every lint has a stable id (`V0xx`); error-level findings are what
//! [`crate::engine::checked_program`] rejects. To add a lint, implement
//! [`Lint`] and register it in [`LintRegistry::with_builtin_lints`] (and
//! add a case to the CLI's known-bad battery so CI proves it fires).

use knl_sim::machine::MachineConfig;
use mlm_cluster::ClusterConfig;
use mlm_core::{ModelParams, PipelineSpec, Placement, Workload};
use mlm_exec::Capabilities;
use mlm_fleet::NodeConfig;
use mlm_serve::CapacityBroker;

use crate::diag::{Diagnostic, LintReport, Severity};

/// Number of buffer slots the chunk schedule rotates over — re-exported
/// from the execution layer ([`mlm_exec::drive`] owns the constant every
/// backend executes).
pub use mlm_exec::RING_SLOTS;

/// Everything the linter sees about one planned run.
#[derive(Debug, Clone)]
pub struct VerifyTarget<'a> {
    /// The pipeline spec to vet.
    pub spec: &'a PipelineSpec,
    /// The machine the spec will run (or be simulated) on.
    pub machine: &'a MachineConfig,
    /// Host element size in bytes (`size_of::<T>()` of the data the host
    /// backend will stream). The simulator does not care, but the host
    /// backend panics on mis-aligned chunk geometry.
    pub elem_bytes: usize,
    /// Buffer-ring depth of the executor. [`RING_SLOTS`] for both in-tree
    /// schedulers.
    pub buffer_slots: usize,
    /// Cluster configuration when the run is distributed.
    pub cluster: Option<&'a ClusterConfig>,
    /// Specs of jobs planned to run *concurrently* with `spec` on the same
    /// node (a serving-mode co-resident set). Empty for single-job runs.
    pub co_scheduled: &'a [PipelineSpec],
    /// Placement capabilities of the backend selected to execute the spec.
    /// Defaults to [`Capabilities::all`] (the host adapters and the full
    /// simulator emulate every placement); narrow it with
    /// [`VerifyTarget::with_backend`] when targeting a mode-restricted
    /// backend so V010 can reject unexecutable placements statically.
    pub backend: Capabilities,
    /// The fleet the spec is planned to be dispatched onto, when the run
    /// is fleet-serving mode (`mlm-fleet`). `None` for single-node runs.
    pub fleet: Option<FleetTarget<'a>>,
}

/// The fleet a spec is planned for: per-node capacities plus the job's
/// spill semantics, enough for V011 to mirror the dispatcher's
/// submission-time feasibility check.
#[derive(Debug, Clone, Copy)]
pub struct FleetTarget<'a> {
    /// Per-node capacities, in placement id order.
    pub nodes: &'a [NodeConfig],
    /// Strict-HBW: the job's ring must live in MCDRAM even on a
    /// spill-capable node (`HBW` rather than `HBW_PREFERRED` semantics).
    pub strict: bool,
}

impl<'a> VerifyTarget<'a> {
    /// A target with the in-tree executors' defaults: 8-byte elements
    /// (`i64`/`u64` keys, as every workload in this repo uses) and the
    /// spec's own ring depth — [`RING_SLOTS`] for chunk-local workloads,
    /// one deeper for stencils, matching what both in-tree schedulers
    /// allocate.
    pub fn new(spec: &'a PipelineSpec, machine: &'a MachineConfig) -> Self {
        VerifyTarget {
            spec,
            machine,
            elem_bytes: 8,
            buffer_slots: spec.ring_slots(),
            cluster: None,
            co_scheduled: &[],
            backend: Capabilities::all(),
            fleet: None,
        }
    }

    /// Declare the fleet this spec will be dispatched onto (V011 checks
    /// its placement feasibility at plan time).
    pub fn with_fleet(mut self, nodes: &'a [NodeConfig], strict: bool) -> Self {
        self.fleet = Some(FleetTarget { nodes, strict });
        self
    }

    /// Declare the capability set of the backend that will execute this
    /// spec (e.g. [`Capabilities::cache_mode`] for a cache-mode adapter).
    pub fn with_backend(mut self, backend: Capabilities) -> Self {
        self.backend = backend;
        self
    }

    /// Attach a cluster config.
    pub fn with_cluster(mut self, cluster: &'a ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Declare jobs co-scheduled with this spec (serving mode).
    pub fn with_co_scheduled(mut self, others: &'a [PipelineSpec]) -> Self {
        self.co_scheduled = others;
        self
    }

    /// The §3.2 model parameters implied by this machine + spec.
    pub fn model_params(&self) -> ModelParams {
        ModelParams {
            b_copy: self.spec.total_bytes as f64,
            ddr_max: self.machine.ddr_bandwidth,
            mcdram_max: self.machine.effective_mcdram_bandwidth(),
            s_copy: self.spec.copy_rate,
            s_comp: self.spec.compute_rate,
            total_threads: self.machine.total_threads(),
        }
    }
}

/// One spec check. Implementations are stateless and cheap: a lint must
/// never execute the spec, only reason about it.
pub trait Lint {
    /// Stable id, e.g. `V002`. Never reuse ids.
    fn id(&self) -> &'static str;
    /// Kebab-case name, e.g. `mcdram-fit`.
    fn name(&self) -> &'static str;
    /// One-line description for `mlm-verify list`.
    fn description(&self) -> &'static str;
    /// Examine `target`, pushing findings into `out`.
    fn check(&self, target: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lints.
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
}

impl LintRegistry {
    /// An empty registry (for tools that assemble their own set).
    pub fn new() -> Self {
        LintRegistry { lints: Vec::new() }
    }

    /// The full built-in set, in id order.
    pub fn with_builtin_lints() -> Self {
        let mut r = LintRegistry::new();
        r.register(Box::new(SpecValidity));
        r.register(Box::new(ChunkGeometry));
        r.register(Box::new(McdramFit));
        r.register(Box::new(ModePlacement));
        r.register(Box::new(BufferDeadlock));
        r.register(Box::new(ThreadOversubscription));
        r.register(Box::new(BandwidthSanity));
        r.register(Box::new(ChunkCount));
        r.register(Box::new(ClusterSanity));
        r.register(Box::new(ConcurrentMcdramFit));
        r.register(Box::new(BackendCapability));
        r.register(Box::new(FleetPlacementFeasibility));
        r.register(Box::new(StencilHaloFeasibility));
        r
    }

    /// Add a lint at the end of the run order.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// The registered lints.
    pub fn lints(&self) -> &[Box<dyn Lint>] {
        &self.lints
    }

    /// Run every lint over `target`.
    pub fn run(&self, target: &VerifyTarget<'_>) -> LintReport {
        let mut report = LintReport::default();
        for lint in &self.lints {
            lint.check(target, &mut report.diagnostics);
        }
        report
    }
}

impl Default for LintRegistry {
    fn default() -> Self {
        LintRegistry::with_builtin_lints()
    }
}

/// Lint a target with the built-in registry.
pub fn lint_target(target: &VerifyTarget<'_>) -> LintReport {
    LintRegistry::with_builtin_lints().run(target)
}

// ---------------------------------------------------------------------------
// Built-in lints
// ---------------------------------------------------------------------------

/// V000: the runtime's own validity checks, surfaced statically.
///
/// Everything `PipelineSpec::validate` / `MachineConfig::validate` would
/// reject at run time (inside an `expect`, i.e. as a panic) is reported
/// here as a structured error instead. This is what makes the linter a
/// superset of the runtime's rejections.
struct SpecValidity;

impl Lint for SpecValidity {
    fn id(&self) -> &'static str {
        "V000"
    }
    fn name(&self) -> &'static str {
        "spec-validity"
    }
    fn description(&self) -> &'static str {
        "spec/machine fail their own runtime validation (would panic at run start)"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        if let Err(msg) = t.spec.validate() {
            out.push(
                Diagnostic::new(self.id(), self.name(), Severity::Error, msg)
                    .with_context("spec.total_bytes", t.spec.total_bytes)
                    .with_context("spec.chunk_bytes", t.spec.chunk_bytes)
                    .with_context(
                        "spec.pools",
                        format!(
                            "p_in={} p_out={} p_comp={}",
                            t.spec.p_in, t.spec.p_out, t.spec.p_comp
                        ),
                    ),
            );
        }
        if let Err(e) = t.machine.validate() {
            out.push(Diagnostic::new(
                self.id(),
                self.name(),
                Severity::Error,
                format!("machine config invalid: {e}"),
            ));
        }
    }
}

/// V001: chunk geometry vs host element size.
struct ChunkGeometry;

impl Lint for ChunkGeometry {
    fn id(&self) -> &'static str {
        "V001"
    }
    fn name(&self) -> &'static str {
        "chunk-geometry"
    }
    fn description(&self) -> &'static str {
        "chunk_bytes must be a positive multiple of the host element size"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        if t.spec.chunk_bytes == 0 {
            return; // V000 already rejects; avoid a duplicate cascade.
        }
        if let Err(msg) = t.spec.validate_elem_size(t.elem_bytes) {
            let elem = t.elem_bytes.max(1) as u64;
            let rounded = (t.spec.chunk_bytes / elem).max(1) * elem;
            out.push(
                Diagnostic::new(self.id(), self.name(), Severity::Error, msg)
                    .with_context("spec.chunk_bytes", t.spec.chunk_bytes)
                    .with_context("target.elem_bytes", t.elem_bytes)
                    .with_suggestion(format!(
                        "round chunk_bytes to a multiple of the element size, e.g. {rounded}"
                    )),
            );
        }
    }
}

/// V002: the resident buffers must fit MCDRAM.
///
/// Peng et al.'s hybrid-memory study (PAPERS.md) shows misconfigured
/// placement/geometry silently destroys throughput; here it is worse — a
/// flat-mode allocation that exceeds MCDRAM fails outright on real
/// memkind, and in cache mode a chunk larger than the cache thrashes
/// every pass (the paper's Fig. 5 cliff).
struct McdramFit;

impl Lint for McdramFit {
    fn id(&self) -> &'static str {
        "V002"
    }
    fn name(&self) -> &'static str {
        "mcdram-fit"
    }
    fn description(&self) -> &'static str {
        "ring buffers (slots x chunk_bytes) must fit addressable MCDRAM; cache-mode chunks must fit the cache"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        match t.spec.placement {
            Placement::Hbw => {
                let addressable = t.machine.addressable_mcdram();
                if addressable == 0 {
                    return; // V003's finding; don't double-report.
                }
                let resident = t.spec.buffer_footprint(t.buffer_slots);
                if resident > addressable {
                    let bufs = (t.buffer_slots as u64).saturating_mul(t.spec.buffers_per_slot());
                    let max_chunk = addressable / bufs.max(1);
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            self.name(),
                            Severity::Error,
                            format!(
                                "{bufs} chunk buffers ({} slots x {} per slot) of {} bytes \
                                 need {resident} bytes of MCDRAM but only {addressable} are \
                                 addressable",
                                t.buffer_slots,
                                t.spec.buffers_per_slot(),
                                t.spec.chunk_bytes
                            ),
                        )
                        .with_context("spec.chunk_bytes", t.spec.chunk_bytes)
                        .with_context("target.buffer_slots", t.buffer_slots)
                        .with_context("machine.addressable_mcdram", addressable)
                        .with_suggestion(format!("shrink chunk_bytes to at most {max_chunk}")),
                    );
                }
            }
            Placement::Implicit => {
                let cache = t.machine.effective_cache_capacity();
                if cache > 0 && t.spec.chunk_bytes > cache {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            self.name(),
                            Severity::Warning,
                            format!(
                                "implicit-mode chunk of {} bytes exceeds the {cache}-byte \
                                 MCDRAM cache; every compute pass re-streams from DDR \
                                 (paper Fig. 5 cliff)",
                                t.spec.chunk_bytes
                            ),
                        )
                        .with_context("spec.chunk_bytes", t.spec.chunk_bytes)
                        .with_context("machine.effective_cache_capacity", cache)
                        .with_suggestion(format!("shrink chunk_bytes to at most {cache}")),
                    );
                }
            }
            Placement::Ddr => {}
        }
    }
}

/// V003: placement vs the machine's MCDRAM mode.
struct ModePlacement;

impl Lint for ModePlacement {
    fn id(&self) -> &'static str {
        "V003"
    }
    fn name(&self) -> &'static str {
        "mode-placement"
    }
    fn description(&self) -> &'static str {
        "buffer placement must be addressable/cacheable in the machine's MCDRAM mode"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        match t.spec.placement {
            Placement::Hbw if t.machine.addressable_mcdram() == 0 => {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        self.name(),
                        Severity::Error,
                        "spec places buffers in flat MCDRAM but the machine mode exposes \
                         no addressable MCDRAM (the engine would fail with \
                         LevelNotAddressable)"
                            .into(),
                    )
                    .with_context("spec.placement", "Hbw")
                    .with_context("machine.mode", format!("{:?}", t.machine.mode))
                    .with_suggestion(
                        "boot the machine in Flat/Hybrid mode, or use Placement::Implicit",
                    ),
                );
            }
            Placement::Implicit if !t.machine.mode.has_cache() => {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        self.name(),
                        Severity::Warning,
                        "implicit cache-mode spec on a machine with no MCDRAM cache: \
                         every access is plain DDR, so the experiment measures nothing \
                         the spec intends"
                            .into(),
                    )
                    .with_context("spec.placement", "Implicit")
                    .with_context("machine.mode", format!("{:?}", t.machine.mode)),
                );
            }
            _ => {}
        }
    }
}

/// V004: stage count vs buffer-slot deadlock/serialization potential.
///
/// The lockstep schedule touches three distinct buffers per step (copy-in
/// of chunk `s`, compute on `s-1`, copy-out of `s-2`); with fewer slots
/// two stages would alias one buffer inside a single step — a data race on
/// the host, wrong traffic in the simulator. The dataflow ring stays
/// deadlock-free at any depth >= 1 (the phase-model checker proves this),
/// but below three slots the three stages can never all be in flight, so
/// the schedule silently degenerates toward serial execution.
struct BufferDeadlock;

impl Lint for BufferDeadlock {
    fn id(&self) -> &'static str {
        "V004"
    }
    fn name(&self) -> &'static str {
        "buffer-deadlock"
    }
    fn description(&self) -> &'static str {
        "buffer slots vs pipeline stages: lockstep needs 3 rotating buffers; fewer serializes dataflow"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        if t.spec.placement == Placement::Implicit {
            return; // no copy stages, no ring
        }
        if t.buffer_slots == 0 {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Error,
                    "zero buffer slots: no stage can ever run".into(),
                )
                .with_context("target.buffer_slots", 0usize),
            );
            return;
        }
        if t.buffer_slots < RING_SLOTS {
            let (severity, message) = if t.spec.lockstep {
                (
                    Severity::Error,
                    format!(
                        "lockstep steps touch {RING_SLOTS} distinct buffers (in s, comp s-1, \
                         out s-2) but only {} slots exist: two stages would alias one \
                         buffer within a step",
                        t.buffer_slots
                    ),
                )
            } else {
                (
                    Severity::Warning,
                    format!(
                        "dataflow ring with {} slot(s) cannot keep all {RING_SLOTS} stages \
                         in flight; the pipeline degenerates toward serial execution",
                        t.buffer_slots
                    ),
                )
            };
            out.push(
                Diagnostic::new(self.id(), self.name(), severity, message)
                    .with_context("target.buffer_slots", t.buffer_slots)
                    .with_context("spec.lockstep", t.spec.lockstep)
                    .with_suggestion(format!("use {RING_SLOTS} buffer slots")),
            );
        }
    }
}

/// V005: thread budget vs the machine's hardware threads.
struct ThreadOversubscription;

impl Lint for ThreadOversubscription {
    fn id(&self) -> &'static str {
        "V005"
    }
    fn name(&self) -> &'static str {
        "thread-oversubscription"
    }
    fn description(&self) -> &'static str {
        "p_in + p_out + p_comp must not exceed the machine's hardware threads"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        let want = t.spec.threads();
        let have = t.machine.total_threads();
        if want > have {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Error,
                    format!(
                        "spec occupies {want} threads but the machine has {have}: \
                         pools would time-share cores and the per-thread rate model \
                         (S_copy/S_comp) no longer holds"
                    ),
                )
                .with_context(
                    "spec.pools",
                    format!(
                        "p_in={} p_out={} p_comp={}",
                        t.spec.p_in, t.spec.p_out, t.spec.p_comp
                    ),
                )
                .with_context("machine.total_threads", have)
                .with_suggestion(format!("shrink the pools to at most {have} threads total")),
            );
        } else if want == have && have > 1 {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "spec occupies all {have} hardware threads; the paper left \
                         16 of 272 for the OS (ran with 256)"
                    ),
                )
                .with_context("spec.threads", want),
            );
        }
    }
}

/// V006: bandwidth sanity against the §3.2 model (Eqs. 1–5).
struct BandwidthSanity;

impl Lint for BandwidthSanity {
    fn id(&self) -> &'static str {
        "V006"
    }
    fn name(&self) -> &'static str {
        "bandwidth-sanity"
    }
    fn description(&self) -> &'static str {
        "per-thread rates must be finite and consistent with the machine; flags DDR-saturated copy pools and MCDRAM-starved compute"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        let spec = t.spec;
        // Non-finite rates slip through PipelineSpec::validate's `<= 0.0`
        // comparisons on some historic versions; reject them loudly here
        // regardless.
        for (field, v) in [
            ("spec.compute_rate", spec.compute_rate),
            ("spec.copy_rate", spec.copy_rate),
        ] {
            if !v.is_finite() {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        self.name(),
                        Severity::Error,
                        format!("{field} is not finite ({v}); the bandwidth arbiter would stall"),
                    )
                    .with_context(field, v),
                );
            }
        }
        if spec.validate().is_err() || !spec.copy_rate.is_finite() || !spec.compute_rate.is_finite()
        {
            return; // the model below needs a well-formed spec
        }
        if spec.placement == Placement::Implicit {
            return; // no copy pools to reason about
        }

        let m = t.model_params();
        // Eq. 3: copy pool past DDR saturation — extra copy threads move
        // no more bytes, they only steal compute threads.
        let copy_demand = (spec.p_in + spec.p_out) as f64 * spec.copy_rate;
        if copy_demand > m.ddr_max {
            let sat = (m.ddr_max / spec.copy_rate).floor() as usize;
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "copy pools demand {copy_demand:.3e} B/s of DDR but the machine \
                         peaks at {:.3e} B/s (Eq. 3 saturated): threads beyond ~{sat} \
                         copy threads are wasted",
                        m.ddr_max
                    ),
                )
                .with_context("spec.p_in + spec.p_out", spec.p_in + spec.p_out)
                .with_context("machine.ddr_bandwidth", format!("{:.3e}", m.ddr_max))
                .with_suggestion(format!(
                    "total copy threads near {sat} saturate DDR; give the rest to p_comp"
                )),
            );
        }
        // Eq. 5: compute starvation — copy traffic alone saturates MCDRAM
        // and the leftover share for compute is zero.
        let c_comp = m.c_comp(spec.p_comp, spec.p_in, spec.p_out);
        if c_comp <= 0.0 {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Error,
                    format!(
                        "copy traffic alone saturates MCDRAM ({:.3e} B/s): Eq. 5 leaves \
                         the compute pool a rate of 0 — the pipeline would never finish \
                         a compute pass",
                        m.mcdram_max
                    ),
                )
                .with_context("spec.p_in + spec.p_out", spec.p_in + spec.p_out)
                .with_context(
                    "machine.effective_mcdram_bandwidth",
                    format!("{:.3e}", m.mcdram_max),
                )
                .with_suggestion("reduce copy threads or copy_rate"),
            );
        }
        // Per-thread rates faster than the machine's measured single-thread
        // capability: the simulation answers a question about a machine
        // that does not exist.
        if spec.copy_rate > t.machine.per_thread_copy_bw * (1.0 + 1e-9) {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "spec.copy_rate {:.3e} exceeds the machine's measured per-thread \
                         copy bandwidth {:.3e} (Table 2 S_copy)",
                        spec.copy_rate, t.machine.per_thread_copy_bw
                    ),
                )
                .with_context("spec.copy_rate", format!("{:.3e}", spec.copy_rate))
                .with_context(
                    "machine.per_thread_copy_bw",
                    format!("{:.3e}", t.machine.per_thread_copy_bw),
                ),
            );
        }
        if spec.compute_rate > t.machine.per_thread_compute_bw * (1.0 + 1e-9) {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "spec.compute_rate {:.3e} exceeds the machine's measured per-thread \
                         compute bandwidth {:.3e} (Table 2 S_comp)",
                        spec.compute_rate, t.machine.per_thread_compute_bw
                    ),
                )
                .with_context("spec.compute_rate", format!("{:.3e}", spec.compute_rate))
                .with_context(
                    "machine.per_thread_compute_bw",
                    format!("{:.3e}", t.machine.per_thread_compute_bw),
                ),
            );
        }
    }
}

/// V007: chunk count vs pipeline fill.
struct ChunkCount;

impl Lint for ChunkCount {
    fn id(&self) -> &'static str {
        "V007"
    }
    fn name(&self) -> &'static str {
        "chunk-count"
    }
    fn description(&self) -> &'static str {
        "fewer than 3 chunks never fills the pipeline; overlap (and Eq. 1) does not apply"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        if t.spec.placement == Placement::Implicit
            || t.spec.total_bytes == 0
            || t.spec.chunk_bytes == 0
        {
            return;
        }
        let n = t.spec.n_chunks();
        if n < RING_SLOTS {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Info,
                    format!(
                        "only {n} chunk(s): the three stages never all overlap, so the \
                         model's max(T_copy, T_comp) (Eq. 1) over-predicts throughput"
                    ),
                )
                .with_context("spec.n_chunks", n)
                .with_suggestion("shrink chunk_bytes if steady-state overlap matters"),
            );
        }
    }
}

/// V008: cluster configuration sanity.
struct ClusterSanity;

impl Lint for ClusterSanity {
    fn id(&self) -> &'static str {
        "V008"
    }
    fn name(&self) -> &'static str {
        "cluster-sanity"
    }
    fn description(&self) -> &'static str {
        "cluster config must validate; flags links faster than node memory"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(c) = t.cluster else { return };
        if let Err(msg) = c.validate() {
            out.push(
                Diagnostic::new(self.id(), self.name(), Severity::Error, msg)
                    .with_context("cluster.nodes", c.nodes)
                    .with_context("cluster.link_bandwidth", c.link_bandwidth)
                    .with_context("cluster.link_latency", c.link_latency),
            );
            return;
        }
        if c.link_bandwidth > t.machine.ddr_bandwidth {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "link bandwidth {:.3e} B/s exceeds the node's DDR bandwidth \
                         {:.3e} B/s: the exchange would be memory-bound, which no \
                         KNL-era interconnect achieves",
                        c.link_bandwidth, t.machine.ddr_bandwidth
                    ),
                )
                .with_context(
                    "cluster.link_bandwidth",
                    format!("{:.3e}", c.link_bandwidth),
                )
                .with_context(
                    "machine.ddr_bandwidth",
                    format!("{:.3e}", t.machine.ddr_bandwidth),
                ),
            );
        }
        if c.nodes > 1 && c.link_latency > 1e-3 {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "link latency {}s is three orders of magnitude above \
                         Omni-Path-class fabrics (~2us)",
                        c.link_latency
                    ),
                )
                .with_context("cluster.link_latency", c.link_latency),
            );
        }
    }
}

/// V009: aggregate MCDRAM footprint of a co-scheduled job set.
///
/// Each job individually may pass V002, yet a serving-mode co-resident set
/// can still oversubscribe MCDRAM: every flat-placement job pins its own
/// ring of `buffer_slots` chunk buffers, and real memkind fails the
/// `hbw_malloc` of whichever tenant loses the race. A capacity broker
/// (`mlm-serve`) enforces this dynamically; this lint catches it at plan
/// time.
struct ConcurrentMcdramFit;

impl Lint for ConcurrentMcdramFit {
    fn id(&self) -> &'static str {
        "V009"
    }
    fn name(&self) -> &'static str {
        "concurrent-mcdram-fit"
    }
    fn description(&self) -> &'static str {
        "aggregate buffer rings of co-scheduled jobs must fit addressable MCDRAM"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        if t.co_scheduled.is_empty() {
            return; // single-job runs are V002's territory
        }
        let addressable = t.machine.addressable_mcdram();
        if addressable == 0 {
            return; // V003's finding
        }
        // Only flat-MCDRAM placements pin MCDRAM; DDR and cache-mode jobs
        // contribute nothing to the budget.
        let footprint = |s: &PipelineSpec| match s.placement {
            Placement::Hbw => s.buffer_footprint(t.buffer_slots),
            Placement::Ddr | Placement::Implicit => 0,
        };
        let mine = footprint(t.spec);
        let total: u64 = t
            .co_scheduled
            .iter()
            .map(footprint)
            .fold(mine, u64::saturating_add);
        if total > addressable {
            let jobs = 1 + t.co_scheduled.len();
            let fair = addressable / jobs as u64;
            let max_chunk = fair / t.buffer_slots.max(1) as u64;
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Error,
                    format!(
                        "{jobs} co-scheduled jobs pin {total} bytes of MCDRAM buffer rings \
                         ({} slots each) but only {addressable} are addressable: some \
                         tenant's hbw_malloc must fail",
                        t.buffer_slots
                    ),
                )
                .with_context("co_scheduled.jobs", jobs)
                .with_context("aggregate.footprint", total)
                .with_context("machine.addressable_mcdram", addressable)
                .with_suggestion(format!(
                    "admit fewer jobs at once (e.g. via the mlm-serve capacity broker), \
                     or shrink each job's chunk_bytes to at most {max_chunk}"
                )),
            );
        }
    }
}

/// V010: spec placement vs the selected backend's capability set.
///
/// V003 asks whether the *machine* can satisfy the placement; this lint
/// asks whether the *backend adapter* chosen to execute the spec can.
/// `mlm_exec::drive` refuses such a spec at run time; V010 raises the
/// same mismatch statically, so a plan (e.g. a serving schedule pinned to
/// a cache-mode replay backend) fails before anything executes.
/// Flat-MCDRAM placement on a cache-mode backend is the canonical hard
/// diagnostic.
struct BackendCapability;

impl Lint for BackendCapability {
    fn id(&self) -> &'static str {
        "V010"
    }
    fn name(&self) -> &'static str {
        "backend-capability"
    }
    fn description(&self) -> &'static str {
        "spec placement must be executable on the selected backend's capability set"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        if t.backend.supports(t.spec.placement) {
            return;
        }
        let (missing, suggestion) = match t.spec.placement {
            Placement::Hbw => (
                "flat-addressable MCDRAM",
                "select a flat-mode backend, or use Placement::Implicit on this one",
            ),
            Placement::Ddr => (
                "DDR-resident chunk buffers",
                "select a backend that can place buffers in DDR",
            ),
            Placement::Implicit => (
                "an MCDRAM cache in front of DDR",
                "select a cache-mode backend, or place buffers explicitly",
            ),
        };
        out.push(
            Diagnostic::new(
                self.id(),
                self.name(),
                Severity::Error,
                format!(
                    "spec placement {:?} needs {missing}, which the selected backend \
                     does not offer (drive() would refuse the spec at run time)",
                    t.spec.placement
                ),
            )
            .with_context("spec.placement", format!("{:?}", t.spec.placement))
            .with_context(
                "backend.capabilities",
                format!(
                    "flat_mcdram={} ddr_buffers={} mcdram_cache={}",
                    t.backend.flat_mcdram, t.backend.ddr_buffers, t.backend.mcdram_cache
                ),
            )
            .with_suggestion(suggestion),
        );
    }
}

/// V011: fleet placement feasibility.
///
/// A fleet dispatcher (`mlm-fleet`) rejects at submission any job whose
/// buffer ring no node could *ever* fit — the fleet-level mirror of the
/// single-node broker's `can_ever_fit`. This lint raises the same verdict
/// at plan time: a strict-HBW ring larger than every node's MCDRAM budget
/// (with no spill escape hatch) will never run, so the plan should fail
/// before the trace is generated. The check delegates to the same
/// [`CapacityBroker`] predicate the dispatcher consults, so the two can
/// never drift.
struct FleetPlacementFeasibility;

impl Lint for FleetPlacementFeasibility {
    fn id(&self) -> &'static str {
        "V011"
    }
    fn name(&self) -> &'static str {
        "fleet-placement-feasibility"
    }
    fn description(&self) -> &'static str {
        "a fleet-dispatched job's buffer ring must be feasible on at least one node"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(fleet) = &t.fleet else { return };
        if fleet.nodes.is_empty() {
            return; // FleetConfig::validate rejects empty fleets outright
        }
        if t.spec.placement != Placement::Hbw {
            return; // only MCDRAM rings compete for node budgets
        }
        let footprint = t.spec.buffer_footprint(t.buffer_slots);
        if footprint == 0 {
            return;
        }
        let feasible = fleet.nodes.iter().any(|n| {
            CapacityBroker::new(&n.machine, n.mcdram_budget, n.spill)
                .can_ever_fit_job(t.spec, !fleet.strict)
        });
        if feasible {
            return;
        }
        let max_budget = fleet
            .nodes
            .iter()
            .map(|n| n.mcdram_budget.min(n.machine.addressable_mcdram()))
            .max()
            .unwrap_or(0);
        let max_chunk = max_budget / t.buffer_slots.max(1) as u64;
        let semantics = if fleet.strict { "strict-HBW" } else { "HBW" };
        out.push(
            Diagnostic::new(
                self.id(),
                self.name(),
                Severity::Error,
                format!(
                    "{semantics} buffer ring of {footprint} bytes ({} slots) fits no node \
                     of the {}-node fleet (largest usable MCDRAM budget: {max_budget} \
                     bytes): the dispatcher rejects this job at submission",
                    t.buffer_slots,
                    fleet.nodes.len()
                ),
            )
            .with_context("spec.ring_footprint", footprint)
            .with_context("fleet.nodes", fleet.nodes.len())
            .with_context("fleet.max_mcdram_budget", max_budget)
            .with_suggestion(format!(
                "shrink chunk_bytes to at most {max_chunk}, relax the job to \
                 HBW_PREFERRED (spill-ok) on a spill-capable node, or add a node \
                 with a larger MCDRAM budget"
            )),
        );
    }
}

/// V012: stencil halo/dependency feasibility.
///
/// The stencil family adds two spec-level hazards no chunk-local lint
/// sees. First, halo geometry: `PipelineSpec::validate` rejects a halo
/// as wide as the chunk outright, but a halo that is merely *large* is
/// legal and quietly inverts the traffic balance — every interior chunk
/// re-reads both neighbours' boundary bytes, so past `2 x halo >= chunk`
/// the pipeline moves more halo bytes than payload bytes and Eqs. 1–5
/// stop favouring staging at all; a halo that is not a whole number of
/// host elements panics the host backend's slice carving. Second,
/// inter-chunk dependency edges vs the buffer ring: a stencil compute on
/// chunk `c` reads the staged buffers of `c-1`, `c`, and `c+1` while
/// stage-in fills a fourth slot, so a ring shallower than the spec's
/// [`ring_slots`](PipelineSpec::ring_slots) lets the fill overwrite a
/// halo some neighbour's compute still has to read — a data race the
/// graph verifier (G001) would catch per-schedule, raised here from the
/// spec alone.
struct StencilHaloFeasibility;

impl Lint for StencilHaloFeasibility {
    fn id(&self) -> &'static str {
        "V012"
    }
    fn name(&self) -> &'static str {
        "stencil-halo-feasibility"
    }
    fn description(&self) -> &'static str {
        "stencil halos must be whole elements, narrow relative to the chunk, and backed by enough buffer slots for the inter-chunk edges"
    }
    fn check(&self, t: &VerifyTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Workload::Stencil { halo_bytes } = t.spec.workload else {
            return;
        };
        if t.spec.validate().is_err() {
            return; // V000 already rejects (halo >= chunk, implicit staging)
        }
        let elem = t.elem_bytes as u64;
        if elem > 0 && halo_bytes % elem != 0 {
            let rounded = (halo_bytes / elem).max(1) * elem;
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Error,
                    format!(
                        "halo of {halo_bytes} bytes is not a whole number of {elem}-byte \
                         elements: the host backend cannot carve the neighbour views and \
                         panics at run start"
                    ),
                )
                .with_context("spec.workload.halo_bytes", halo_bytes)
                .with_context("target.elem_bytes", t.elem_bytes)
                .with_suggestion(format!(
                    "round halo_bytes to a multiple of the element size, e.g. {rounded}"
                )),
            );
        }
        let need = t.spec.ring_slots();
        if t.buffer_slots < need {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Error,
                    format!(
                        "stencil inter-chunk edges need {need} buffer slots (compute on \
                         chunk c reads the staged buffers of c-1, c, and c+1 while \
                         stage-in fills a fourth) but the executor ring has {}: the fill \
                         would overwrite a halo a neighbour still reads (the per-schedule \
                         G001 race, refuted from the spec alone)",
                        t.buffer_slots
                    ),
                )
                .with_context("target.buffer_slots", t.buffer_slots)
                .with_context("spec.ring_slots", need)
                .with_suggestion(format!("use {need} buffer slots for stencil workloads")),
            );
        }
        if 2 * halo_bytes >= t.spec.chunk_bytes {
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.name(),
                    Severity::Warning,
                    format!(
                        "interior chunks re-read {} halo bytes against a {}-byte payload: \
                         neighbour traffic matches or exceeds the chunk's own, so the \
                         staged pipeline's copy/compute balance (Eqs. 1-5) no longer \
                         favours staging",
                        2 * halo_bytes,
                        t.spec.chunk_bytes
                    ),
                )
                .with_context("spec.workload.halo_bytes", halo_bytes)
                .with_context("spec.chunk_bytes", t.spec.chunk_bytes)
                .with_suggestion("grow chunk_bytes or shrink the halo until 2 x halo < chunk"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;

    fn knl() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn good_spec() -> PipelineSpec {
        PipelineSpec {
            total_bytes: 8 << 30,
            chunk_bytes: 1 << 30,
            p_in: 8,
            p_out: 8,
            p_comp: 64,
            compute_passes: 4,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn ids(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.id).collect()
    }

    #[test]
    fn paper_like_spec_is_clean() {
        let machine = knl();
        let spec = good_spec();
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn v000_degenerate_spec() {
        let machine = knl();
        let mut spec = good_spec();
        spec.p_comp = 0;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(ids(&report).contains(&"V000"));
        assert!(report.has_errors());
    }

    #[test]
    fn v001_misaligned_chunk() {
        let machine = knl();
        let mut spec = good_spec();
        spec.chunk_bytes = (1 << 30) + 3;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert_eq!(report.error_ids(), vec!["V001"]);
        let d = report.errors().next().unwrap();
        assert!(d.suggestion.is_some());
        assert!(!d.context.is_empty());
    }

    #[test]
    fn v002_buffers_exceed_mcdram() {
        let machine = knl();
        let mut spec = good_spec();
        spec.chunk_bytes = 8 << 30; // 3 slots x 8 GiB > 16 GiB
        spec.total_bytes = 64 << 30;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V002"));
    }

    #[test]
    fn v002_implicit_chunk_thrashes_cache_is_warning() {
        let machine = MachineConfig::knl_7250(MemMode::Cache);
        let mut spec = good_spec();
        spec.placement = Placement::Implicit;
        spec.p_in = 0;
        spec.p_out = 0;
        spec.chunk_bytes = 32 << 30;
        spec.total_bytes = 64 << 30;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(!report.has_errors());
        assert!(ids(&report).contains(&"V002"));
    }

    #[test]
    fn v003_hbw_in_cache_mode() {
        let machine = MachineConfig::knl_7250(MemMode::Cache);
        let spec = good_spec();
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V003"));
        // V002 must stay quiet: no addressable MCDRAM is V003's finding.
        assert!(!ids(&report).contains(&"V002"));
    }

    #[test]
    fn v004_lockstep_with_two_slots() {
        let machine = knl();
        let spec = good_spec();
        let mut t = VerifyTarget::new(&spec, &machine);
        t.buffer_slots = 2;
        let report = lint_target(&t);
        assert!(report.error_ids().contains(&"V004"));
    }

    #[test]
    fn v004_dataflow_with_two_slots_is_warning() {
        let machine = knl();
        let mut spec = good_spec();
        spec.lockstep = false;
        let mut t = VerifyTarget::new(&spec, &machine);
        t.buffer_slots = 2;
        let report = lint_target(&t);
        assert!(!report.has_errors());
        assert!(ids(&report).contains(&"V004"));
    }

    #[test]
    fn v005_oversubscription() {
        let machine = knl();
        let mut spec = good_spec();
        spec.p_comp = 300; // 8 + 8 + 300 > 272
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V005"));
    }

    #[test]
    fn v005_full_occupancy_is_warning() {
        let machine = knl();
        let mut spec = good_spec();
        spec.p_comp = 272 - 16;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(!report.has_errors(), "{report}");
        assert!(ids(&report).contains(&"V005"));
    }

    #[test]
    fn v006_nan_rate_is_error() {
        let machine = knl();
        let mut spec = good_spec();
        spec.copy_rate = f64::NAN;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V006"));
    }

    #[test]
    fn v006_ddr_saturated_copy_pool_warns() {
        let machine = knl();
        let mut spec = good_spec();
        spec.p_in = 32;
        spec.p_out = 32; // 64 x 4.8 GB/s = 307 GB/s >> 90 GB/s
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(!report.has_errors(), "{report}");
        assert!(ids(&report).contains(&"V006"));
    }

    #[test]
    fn v007_single_chunk_info() {
        let machine = knl();
        let mut spec = good_spec();
        spec.total_bytes = spec.chunk_bytes;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(!report.has_errors());
        assert!(ids(&report).contains(&"V007"));
    }

    #[test]
    fn v008_cluster_checks() {
        let machine = knl();
        let spec = good_spec();
        let bad = ClusterConfig {
            nodes: 0,
            link_bandwidth: 12.5e9,
            link_latency: 2e-6,
        };
        let report = lint_target(&VerifyTarget::new(&spec, &machine).with_cluster(&bad));
        assert!(report.error_ids().contains(&"V008"));

        let fast = ClusterConfig {
            nodes: 4,
            link_bandwidth: 500e9,
            link_latency: 2e-6,
        };
        let report = lint_target(&VerifyTarget::new(&spec, &machine).with_cluster(&fast));
        assert!(!report.has_errors());
        assert!(ids(&report).contains(&"V008"));
    }

    #[test]
    fn v009_concurrent_set_oversubscribes_mcdram() {
        let machine = knl();
        let spec = good_spec(); // 3 GiB ring: individually fine (16 GiB)
                                // Five more identical tenants: 6 x 3 GiB = 18 GiB > 16 GiB.
        let others = vec![good_spec(); 5];
        let report = lint_target(&VerifyTarget::new(&spec, &machine).with_co_scheduled(&others));
        assert!(report.error_ids().contains(&"V009"));
        let d = report
            .errors()
            .find(|d| d.id == "V009")
            .expect("V009 diagnostic");
        assert!(d.suggestion.is_some());
        // V002 stays quiet: each job alone fits.
        assert!(!ids(&report).contains(&"V002"));
    }

    #[test]
    fn v009_fitting_set_is_clean() {
        let machine = knl();
        let spec = good_spec();
        let others = vec![good_spec(); 4]; // 5 x 3 GiB = 15 GiB <= 16 GiB
        let report = lint_target(&VerifyTarget::new(&spec, &machine).with_co_scheduled(&others));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn v009_only_counts_flat_placements() {
        let machine = knl();
        let spec = good_spec();
        // Lots of co-scheduled jobs, but none pin MCDRAM.
        let mut ddr = good_spec();
        ddr.placement = Placement::Ddr;
        let mut implicit = good_spec();
        implicit.placement = Placement::Implicit;
        implicit.p_in = 0;
        implicit.p_out = 0;
        let others = vec![ddr, implicit.clone(), implicit];
        let report = lint_target(&VerifyTarget::new(&spec, &machine).with_co_scheduled(&others));
        assert!(!ids(&report).contains(&"V009"), "{report}");
    }

    #[test]
    fn v010_hbw_on_cache_mode_backend() {
        // Flat machine, so V003 stays quiet: the *backend*, not the
        // machine, is what cannot execute the placement.
        let machine = knl();
        let spec = good_spec();
        let report = lint_target(
            &VerifyTarget::new(&spec, &machine).with_backend(Capabilities::cache_mode()),
        );
        assert!(report.error_ids().contains(&"V010"));
        assert!(!ids(&report).contains(&"V003"));
    }

    #[test]
    fn v010_implicit_on_flat_mode_backend() {
        let machine = MachineConfig::knl_7250(MemMode::Cache);
        let mut spec = good_spec();
        spec.placement = Placement::Implicit;
        spec.p_in = 0;
        spec.p_out = 0;
        let report = lint_target(
            &VerifyTarget::new(&spec, &machine).with_backend(Capabilities::flat_mode()),
        );
        assert!(report.error_ids().contains(&"V010"));
    }

    #[test]
    fn v010_quiet_on_fully_capable_backend() {
        let machine = knl();
        let spec = good_spec();
        let report =
            lint_target(&VerifyTarget::new(&spec, &machine).with_backend(Capabilities::all()));
        assert!(!ids(&report).contains(&"V010"), "{report}");
    }

    fn stencil_spec(halo_bytes: u64) -> PipelineSpec {
        let mut s = good_spec();
        s.workload = Workload::Stencil { halo_bytes };
        s
    }

    #[test]
    fn v012_well_formed_stencil_is_clean() {
        let machine = knl();
        let spec = stencil_spec(1 << 20);
        // The default target picks up the spec's own 4-slot ring, and the
        // doubled in/out buffers still fit MCDRAM: no findings at all.
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn v012_shallow_ring_is_an_error() {
        let machine = knl();
        let spec = stencil_spec(1 << 20);
        let mut t = VerifyTarget::new(&spec, &machine);
        t.buffer_slots = 3; // the map family's ring: one slot short
        let report = lint_target(&t);
        assert!(report.error_ids().contains(&"V012"), "{report}");
        let d = report
            .errors()
            .find(|d| d.id == "V012")
            .expect("V012 diagnostic");
        assert!(d.suggestion.is_some());
    }

    #[test]
    fn v012_misaligned_halo_is_an_error() {
        let machine = knl();
        let spec = stencil_spec((1 << 20) + 4); // not a whole 8-byte element
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V012"), "{report}");
    }

    #[test]
    fn v012_dominant_halo_is_a_warning() {
        let machine = knl();
        let spec = stencil_spec(good_spec().chunk_bytes / 2); // 2 x halo == chunk
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(!report.has_errors(), "{report}");
        assert!(ids(&report).contains(&"V012"));
    }

    #[test]
    fn v012_defers_invalid_specs_to_v000() {
        let machine = knl();
        let spec = stencil_spec(good_spec().chunk_bytes); // halo >= chunk
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V000"));
        assert!(!report.error_ids().contains(&"V012"), "{report}");
    }

    #[test]
    fn v002_counts_the_stencil_double_buffers() {
        let machine = knl();
        // 3 GiB chunks x 4 slots x 2 buffers = 24 GiB > 16 GiB MCDRAM,
        // where the same geometry as a map workload (3 slots x 1) fits.
        let mut spec = stencil_spec(1 << 20);
        spec.chunk_bytes = 3 << 30;
        spec.total_bytes = 24 << 30;
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        assert!(report.error_ids().contains(&"V002"), "{report}");
        let mut map = good_spec();
        map.chunk_bytes = 3 << 30;
        map.total_bytes = 24 << 30;
        let report = lint_target(&VerifyTarget::new(&map, &machine));
        assert!(!ids(&report).contains(&"V002"), "{report}");
    }

    #[test]
    fn registry_lists_builtin_lints() {
        let r = LintRegistry::with_builtin_lints();
        let ids: Vec<&str> = r.lints().iter().map(|l| l.id()).collect();
        assert_eq!(
            ids,
            vec![
                "V000", "V001", "V002", "V003", "V004", "V005", "V006", "V007", "V008", "V009",
                "V010", "V011", "V012"
            ]
        );
        // Ids are unique and every lint has a description.
        for l in r.lints() {
            assert!(!l.description().is_empty());
            assert!(!l.name().is_empty());
        }
    }

    #[test]
    fn at_least_five_distinct_error_classes() {
        // The acceptance criterion: five distinct invalid-spec classes,
        // each rejected with its own lint id.
        let machine = knl();
        let cache_machine = MachineConfig::knl_7250(MemMode::Cache);

        let mut degenerate = good_spec();
        degenerate.total_bytes = 0;
        let mut misaligned = good_spec();
        misaligned.chunk_bytes += 1;
        let mut oversized = good_spec();
        oversized.chunk_bytes = 8 << 30;
        oversized.total_bytes = 64 << 30;
        let mut oversubscribed = good_spec();
        oversubscribed.p_comp = 1000;
        let mut nan_rate = good_spec();
        nan_rate.compute_rate = f64::INFINITY;

        let cases: Vec<(&PipelineSpec, &MachineConfig, &str)> = vec![
            (&degenerate, &machine, "V000"),
            (&misaligned, &machine, "V001"),
            (&oversized, &machine, "V002"),
            (good_spec_static(), &cache_machine, "V003"),
            (&oversubscribed, &machine, "V005"),
            (&nan_rate, &machine, "V006"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (spec, m, want) in cases {
            let report = lint_target(&VerifyTarget::new(spec, m));
            assert!(
                report.error_ids().contains(&want),
                "expected {want} for spec, got {:?}",
                report.error_ids()
            );
            seen.insert(want);
        }
        assert!(seen.len() >= 5);
    }

    fn good_spec_static() -> &'static PipelineSpec {
        use std::sync::OnceLock;
        static SPEC: OnceLock<PipelineSpec> = OnceLock::new();
        SPEC.get_or_init(good_spec)
    }

    #[test]
    fn v011_fires_only_when_no_fleet_node_fits() {
        const GIB: u64 = 1 << 30;
        // 12 GiB ring (4 GiB chunks × 3 slots): fine on one machine's
        // 16 GiB MCDRAM (no V002), infeasible on 8 GiB fleet budgets.
        let mut s = good_spec();
        s.chunk_bytes = 4 * GIB;
        s.total_bytes = 32 * GIB;
        let small = vec![
            NodeConfig::new(knl(), 8 * GIB, false),
            NodeConfig::new(knl(), 8 * GIB, false),
        ];
        let report = lint_target(&VerifyTarget::new(&s, &knl()).with_fleet(&small, true));
        assert_eq!(report.error_ids(), vec!["V011"]);

        // One 16 GiB node makes the fleet feasible again.
        let mixed = vec![
            NodeConfig::new(knl(), 8 * GIB, false),
            NodeConfig::new(knl(), 16 * GIB, false),
        ];
        let report = lint_target(&VerifyTarget::new(&s, &knl()).with_fleet(&mixed, true));
        assert!(!ids(&report).contains(&"V011"));

        // So does relaxing the job to spill-ok on a spill-capable node.
        let spilly = vec![NodeConfig::new(knl(), 8 * GIB, true)];
        let report = lint_target(&VerifyTarget::new(&s, &knl()).with_fleet(&spilly, false));
        assert!(!ids(&report).contains(&"V011"));
        // ... but a strict job cannot use the spill escape hatch.
        let report = lint_target(&VerifyTarget::new(&s, &knl()).with_fleet(&spilly, true));
        assert!(report.error_ids().contains(&"V011"));

        // Single-node (non-fleet) targets never see V011.
        let report = lint_target(&VerifyTarget::new(&s, &knl()));
        assert!(!ids(&report).contains(&"V011"));
    }
}
