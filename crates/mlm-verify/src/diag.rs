//! Structured diagnostics emitted by the spec linter.
//!
//! A [`Diagnostic`] is deliberately compiler-shaped: a stable lint id, a
//! severity, a one-line message, span-like context naming the offending
//! spec fields and their values, and an optional suggested fix. Tools (the
//! `mlm-verify` CLI, CI, the bench harness) decide how to render or act on
//! them; the linter itself never prints.

use std::fmt;

use serde::Serialize;

/// How bad a diagnostic is.
///
/// `Error` means the spec is rejected by [`crate::engine::checked_program`]
/// and by any runner that honours the linter; `Warning` means the spec will
/// run but the paper's model (§3.2) or the protocol analysis says the
/// configuration is wasteful or degenerate; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Advisory note; no action required.
    Info,
    /// Runs, but the configuration is degenerate or wasteful.
    Warning,
    /// The spec must not run: it would panic, deadlock, or silently
    /// compute the wrong experiment.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Span-like context: the spec field (or derived quantity) a diagnostic
/// points at, with the value the linter saw.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Context {
    /// Dotted path of the field, e.g. `spec.chunk_bytes` or
    /// `machine.mcdram_capacity`.
    pub field: String,
    /// The offending value, rendered.
    pub value: String,
}

impl Context {
    /// Build a context entry from any displayable value.
    pub fn new(field: &str, value: impl fmt::Display) -> Self {
        Context {
            field: field.to_string(),
            value: value.to_string(),
        }
    }
}

/// One finding of one lint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable lint id, e.g. `V002`.
    pub id: &'static str,
    /// The lint's kebab-case name, e.g. `mcdram-fit`.
    pub lint: &'static str,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// One-line human-readable description of the problem.
    pub message: String,
    /// The fields (and values) the finding is anchored to.
    pub context: Vec<Context>,
    /// A concrete suggested fix, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Start building a diagnostic.
    pub fn new(id: &'static str, lint: &'static str, severity: Severity, message: String) -> Self {
        Diagnostic {
            id,
            lint,
            severity,
            message,
            context: Vec::new(),
            suggestion: None,
        }
    }

    /// Attach a span-like context entry.
    pub fn with_context(mut self, field: &str, value: impl fmt::Display) -> Self {
        self.context.push(Context::new(field, value));
        self
    }

    /// Attach a suggested fix.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.id, self.lint, self.message
        )?;
        for c in &self.context {
            write!(f, "\n    --> {} = {}", c.field, c.value)?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// Everything the registry found for one target.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LintReport {
    /// All findings, in registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// All error-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The distinct lint ids that fired at error level.
    pub fn error_ids(&self) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = self.errors().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// True when nothing at all was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "no findings");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn diagnostic_renders_all_parts() {
        let d = Diagnostic::new("V999", "demo-lint", Severity::Error, "it broke".into())
            .with_context("spec.chunk_bytes", 30)
            .with_suggestion("use a multiple of 8");
        let s = d.to_string();
        assert!(s.contains("error[V999]"));
        assert!(s.contains("demo-lint"));
        assert!(s.contains("spec.chunk_bytes = 30"));
        assert!(s.contains("help: use a multiple of 8"));
    }

    #[test]
    fn report_error_queries() {
        let mut r = LintReport::default();
        assert!(r.is_clean() && !r.has_errors());
        r.diagnostics
            .push(Diagnostic::new("V001", "a", Severity::Warning, "w".into()));
        assert!(!r.has_errors());
        r.diagnostics
            .push(Diagnostic::new("V002", "b", Severity::Error, "e".into()));
        r.diagnostics
            .push(Diagnostic::new("V002", "b", Severity::Error, "e2".into()));
        assert!(r.has_errors());
        assert_eq!(r.error_ids(), vec!["V002"]);
        assert_eq!(r.errors().count(), 2);
    }
}
