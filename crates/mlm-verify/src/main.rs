//! The `mlm-verify` CLI.
//!
//! ```text
//! mlm-verify check-all          # lints + model checks, nonzero exit on failure
//! mlm-verify lint               # the lint battery only
//! mlm-verify models             # the model-checking battery only
//! mlm-verify fuzz [--seeds N]   # adversarial-schedule fuzzing + regression seeds
//! mlm-verify list               # registered lints and checked models
//! ```
//!
//! `check-all` is what CI runs: it executes the whole [`mlm_verify::suite`]
//! and fails if the paper spec stops linting clean, a known-bad spec stops
//! being rejected, a shipped protocol stops verifying, or a regression
//! model stops failing. The `fuzz` battery (CI's `fuzz` job) sweeps the
//! default corpus with N adversarial schedules per case (default 1000) and
//! replays the committed must-fail regression seeds.

use std::process::ExitCode;

use mlm_verify::fuzzsuite::{fuzz_catalog, run_fuzz_corpus, run_fuzz_regressions};
use mlm_verify::suite::{run_lint_suite, run_model_suite};
use mlm_verify::LintRegistry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check-all") => {
            let lints = lint_battery();
            let models = model_battery();
            if lints && models {
                println!("\ncheck-all: PASS");
                ExitCode::SUCCESS
            } else {
                println!("\ncheck-all: FAIL");
                ExitCode::FAILURE
            }
        }
        Some("lint") => exit_for(lint_battery()),
        Some("models") => exit_for(model_battery()),
        Some("fuzz") => {
            let mut seeds: u64 = 1000;
            if let Some(pos) = args.iter().position(|a| a == "--seeds") {
                match args.get(pos + 1).and_then(|v| v.parse().ok()) {
                    Some(n) => seeds = n,
                    None => {
                        eprintln!("--seeds takes a count");
                        return ExitCode::from(2);
                    }
                }
            }
            exit_for(fuzz_battery(seeds))
        }
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: mlm-verify <check-all|lint|models|fuzz|list>");
            ExitCode::from(2)
        }
    }
}

fn exit_for(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint_battery() -> bool {
    println!("== spec lints ==");
    let mut ok = true;
    for case in run_lint_suite() {
        let verdict = if case.ok() { "ok" } else { "FAIL" };
        let expect = match case.expect_error {
            None => "expect clean".to_string(),
            Some(id) => format!("expect {id}"),
        };
        println!("{verdict:>4}  {}  [{expect}]", case.name);
        if !case.ok() {
            ok = false;
            println!("{}", case.report);
        } else if case.expect_error.is_some() {
            // Show the first diagnostic of rejected specs so the output
            // documents what a rejection looks like.
            if let Some(d) = case.report.errors().next() {
                println!("      {}", d.to_string().replace('\n', "\n      "));
            }
        }
    }
    ok
}

fn model_battery() -> bool {
    println!("\n== protocol models ==");
    let mut ok = true;
    for run in run_model_suite() {
        let verdict = if run.ok() { "ok" } else { "FAIL" };
        let expect = if run.expect_violation {
            "must fail"
        } else {
            "must verify"
        };
        println!(
            "{verdict:>4}  {}  [{expect}] — {} states, {} transitions",
            run.name, run.states, run.transitions
        );
        match (&run.violation, run.expect_violation) {
            (Some(v), true) => println!("      caught as designed: {v}"),
            (Some(v), false) => {
                ok = false;
                println!("      UNEXPECTED VIOLATION: {v}");
            }
            (None, true) => {
                ok = false;
                println!("      regression model no longer fails — the checker lost the bug");
            }
            (None, false) => {}
        }
    }
    ok
}

fn fuzz_battery(seeds: u64) -> bool {
    let mut ok = true;

    println!("== fuzz regression seeds ==");
    for run in run_fuzz_regressions() {
        let verdict = if run.ok() { "ok" } else { "FAIL" };
        println!(
            "{verdict:>4}  {}  [must fail, trace of {} decisions]",
            run.name, run.trace_len
        );
        if let Some(v) = &run.buggy_violation {
            println!("      caught as designed: {v}");
        }
        if !run.caught {
            ok = false;
            println!("      regression seed no longer fails — the fuzzer lost the bug");
        }
        if !run.clean_on_correct {
            ok = false;
            println!("      trace violates even the CORRECT construction — orchestrator bug");
        }
    }

    println!("\n== adversarial-schedule corpus ({seeds} seeds/case) ==");
    let cases = fuzz_catalog();
    let findings = run_fuzz_corpus(seeds);
    if findings.is_empty() {
        println!("  ok  {} cases clean", cases.len());
    } else {
        ok = false;
        for f in &findings {
            println!("{f}");
        }
    }

    println!("\nfuzz: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn list() {
    println!("lints:");
    for lint in LintRegistry::with_builtin_lints().lints() {
        println!(
            "  {}  {:<24} {}",
            lint.id(),
            lint.name(),
            lint.description()
        );
    }
    println!("\nmodels (run them with `mlm-verify models`):");
    for (name, expect_violation) in mlm_verify::suite::model_catalog() {
        let kind = if expect_violation {
            "regression (must fail)"
        } else {
            "shipped (must verify)"
        };
        println!("  {name:<60} {kind}");
    }
}
