//! The `mlm-verify` CLI.
//!
//! ```text
//! mlm-verify check-all [--json]        # lints + graph proofs + model checks
//! mlm-verify lint      [--json]        # the lint battery only
//! mlm-verify graph     [--json]        # static schedule verification (G-series)
//! mlm-verify models    [--json]        # the model-checking battery only
//! mlm-verify fuzz [--seeds N] [--json] # adversarial-schedule fuzzing + seeds
//! mlm-verify fleet     [--json]        # fleet dispatcher invariant battery
//! mlm-verify list                      # registered lints and checked models
//! ```
//!
//! `check-all` is what CI runs: it executes the whole [`mlm_verify::suite`]
//! and fails if the paper spec stops linting clean, a known-bad spec stops
//! being rejected, a shipped protocol stops verifying, or a regression
//! model stops failing. The `graph` battery (CI's `graph-verify` job)
//! statically proves every fuzz-corpus case and committed experiment spec
//! race-free, deadlock-free, and within MCDRAM bounds, and asserts the
//! four buggy constructions are each flagged with a counterexample trace.
//! The `fuzz` battery (CI's `fuzz` job) sweeps the default corpus with N
//! adversarial schedules per case (default 1000) and replays the committed
//! must-fail regression seeds.
//!
//! # Exit contract
//!
//! * `0` — the requested battery (or all of them) passed;
//! * `1` — at least one battery failed (a case regressed, a must-fail
//!   stopped failing, or a finding fired where none was expected);
//! * `2` — usage error (unknown subcommand or malformed flag); nothing
//!   was run.
//!
//! With `--json` the battery prints exactly one JSON document on stdout
//! (machine-readable, schema mirrored from the suite types; human text is
//! suppressed) — the exit code contract is unchanged, so CI can both
//! parse the findings and gate on the status.

use std::process::ExitCode;

use serde::Serialize;

use mlm_verify::fleetsuite::run_fleet_suite;
use mlm_verify::fuzzsuite::{fuzz_catalog, run_fuzz_corpus, run_fuzz_regressions};
use mlm_verify::graph::run_graph_suite;
use mlm_verify::suite::{run_lint_suite, run_model_suite};
use mlm_verify::{Diagnostic, LintRegistry};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    match args.first().map(String::as_str) {
        Some("check-all") => {
            let lints = lint_battery(json);
            let graph = graph_battery(json);
            let models = model_battery(json);
            let fleet = fleet_battery(json);
            let ok = lints.ok && graph.ok && models.ok && fleet.ok;
            if json {
                emit(&CheckAllOut {
                    ok,
                    lint: lints,
                    graph,
                    models,
                    fleet,
                });
            } else {
                println!("\ncheck-all: {}", verdict(ok));
            }
            exit_for(ok)
        }
        Some("lint") => finish(json, lint_battery(json)),
        Some("graph") => finish(json, graph_battery(json)),
        Some("models") => finish(json, model_battery(json)),
        Some("fuzz") => {
            let mut seeds: u64 = 1000;
            if let Some(pos) = args.iter().position(|a| a == "--seeds") {
                match args.get(pos + 1).and_then(|v| v.parse().ok()) {
                    Some(n) => seeds = n,
                    None => {
                        eprintln!("--seeds takes a count");
                        return ExitCode::from(2);
                    }
                }
            }
            finish(json, fuzz_battery(seeds, json))
        }
        Some("fleet") => finish(json, fleet_battery(json)),
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: mlm-verify <check-all|lint|graph|models|fuzz|fleet|list> [--json]");
            ExitCode::from(2)
        }
    }
}

fn exit_for(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Emit a battery's JSON document (if asked) and map its status to the
/// exit contract.
fn finish<T: Serialize + Battery>(json: bool, out: T) -> ExitCode {
    let ok = out.passed();
    if json {
        emit(&out);
    }
    exit_for(ok)
}

fn emit<T: Serialize>(out: &T) {
    println!(
        "{}",
        serde_json::to_string(out).expect("battery reports always serialize")
    );
}

trait Battery {
    fn passed(&self) -> bool;
}

/// Combined `check-all --json` document.
#[derive(Serialize)]
struct CheckAllOut {
    ok: bool,
    lint: LintBatteryOut,
    graph: GraphBatteryOut,
    models: ModelBatteryOut,
    fleet: FleetBatteryOut,
}

#[derive(Serialize)]
struct LintBatteryOut {
    battery: &'static str,
    ok: bool,
    cases: Vec<LintCaseOut>,
}

#[derive(Serialize)]
struct LintCaseOut {
    name: String,
    ok: bool,
    expect_error: Option<String>,
    error_ids: Vec<String>,
    diagnostics: Vec<Diagnostic>,
}

impl Battery for LintBatteryOut {
    fn passed(&self) -> bool {
        self.ok
    }
}

fn lint_battery(json: bool) -> LintBatteryOut {
    if !json {
        println!("== spec lints ==");
    }
    let mut ok = true;
    let mut cases = Vec::new();
    for case in run_lint_suite() {
        if !json {
            let verdict = if case.ok() { "ok" } else { "FAIL" };
            let expect = match case.expect_error {
                None => "expect clean".to_string(),
                Some(id) => format!("expect {id}"),
            };
            println!("{verdict:>4}  {}  [{expect}]", case.name);
            if !case.ok() {
                println!("{}", case.report);
            } else if case.expect_error.is_some() {
                // Show the first diagnostic of rejected specs so the output
                // documents what a rejection looks like.
                if let Some(d) = case.report.errors().next() {
                    println!("      {}", d.to_string().replace('\n', "\n      "));
                }
            }
        }
        ok &= case.ok();
        cases.push(LintCaseOut {
            name: case.name.to_string(),
            ok: case.ok(),
            expect_error: case.expect_error.map(String::from),
            error_ids: case
                .report
                .error_ids()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            diagnostics: case.report.diagnostics.clone(),
        });
    }
    LintBatteryOut {
        battery: "lint",
        ok,
        cases,
    }
}

#[derive(Serialize)]
struct GraphBatteryOut {
    battery: &'static str,
    ok: bool,
    cases: Vec<GraphCaseOut>,
}

#[derive(Serialize)]
struct GraphCaseOut {
    name: String,
    ok: bool,
    /// G-codes the case must fire; empty means it must prove safe.
    expect: Vec<String>,
    /// G-codes that actually fired.
    fired: Vec<String>,
    nodes: usize,
    edges: usize,
    peak_live_chunks: usize,
    peak_hbw_bytes: u64,
    diagnostics: Vec<Diagnostic>,
    /// Set when the spec could not be driven at all.
    error: Option<String>,
}

impl Battery for GraphBatteryOut {
    fn passed(&self) -> bool {
        self.ok
    }
}

fn graph_battery(json: bool) -> GraphBatteryOut {
    if !json {
        println!("\n== static schedule verification ==");
    }
    let mut ok = true;
    let mut cases = Vec::new();
    for case in run_graph_suite() {
        let case_ok = case.ok();
        ok &= case_ok;
        let (out, rendered) = match &case.report {
            Ok(report) => (
                GraphCaseOut {
                    name: case.name.clone(),
                    ok: case_ok,
                    expect: case.expect.iter().map(|s| s.to_string()).collect(),
                    fired: case.fired().iter().map(|s| s.to_string()).collect(),
                    nodes: report.nodes,
                    edges: report.edges,
                    peak_live_chunks: report.peak_live_chunks,
                    peak_hbw_bytes: report.peak_hbw_bytes,
                    diagnostics: mlm_verify::graph::report_diagnostics(report),
                    error: None,
                },
                report.to_string(),
            ),
            Err(e) => (
                GraphCaseOut {
                    name: case.name.clone(),
                    ok: case_ok,
                    expect: case.expect.iter().map(|s| s.to_string()).collect(),
                    fired: Vec::new(),
                    nodes: 0,
                    edges: 0,
                    peak_live_chunks: 0,
                    peak_hbw_bytes: 0,
                    diagnostics: Vec::new(),
                    error: Some(e.clone()),
                },
                e.clone(),
            ),
        };
        if !json {
            let verdict = if case_ok { "ok" } else { "FAIL" };
            let expect = if case.expect.is_empty() {
                "must prove safe".to_string()
            } else {
                format!("must fire {}", case.expect.join("+"))
            };
            println!(
                "{verdict:>4}  {}  [{expect}] — {} nodes, {} edges, peak {} chunks",
                case.name, out.nodes, out.edges, out.peak_live_chunks
            );
            if !case.expect.is_empty() && case_ok {
                println!("      caught as designed: fired {}", out.fired.join(", "));
            }
            if !case_ok {
                println!("      {}", rendered.replace('\n', "\n      "));
            }
        }
        cases.push(out);
    }
    if !json {
        println!("graph: {}", verdict(ok));
    }
    GraphBatteryOut {
        battery: "graph",
        ok,
        cases,
    }
}

#[derive(Serialize)]
struct ModelBatteryOut {
    battery: &'static str,
    ok: bool,
    cases: Vec<ModelCaseOut>,
}

#[derive(Serialize)]
struct ModelCaseOut {
    name: String,
    ok: bool,
    expect_violation: bool,
    states: usize,
    transitions: usize,
    violation: Option<String>,
}

impl Battery for ModelBatteryOut {
    fn passed(&self) -> bool {
        self.ok
    }
}

fn model_battery(json: bool) -> ModelBatteryOut {
    if !json {
        println!("\n== protocol models ==");
    }
    let mut ok = true;
    let mut cases = Vec::new();
    for run in run_model_suite() {
        if !json {
            let verdict = if run.ok() { "ok" } else { "FAIL" };
            let expect = if run.expect_violation {
                "must fail"
            } else {
                "must verify"
            };
            println!(
                "{verdict:>4}  {}  [{expect}] — {} states, {} transitions",
                run.name, run.states, run.transitions
            );
            match (&run.violation, run.expect_violation) {
                (Some(v), true) => println!("      caught as designed: {v}"),
                (Some(v), false) => println!("      UNEXPECTED VIOLATION: {v}"),
                (None, true) => {
                    println!("      regression model no longer fails — the checker lost the bug")
                }
                (None, false) => {}
            }
        }
        ok &= run.ok();
        cases.push(ModelCaseOut {
            ok: run.ok(),
            name: run.name,
            expect_violation: run.expect_violation,
            states: run.states,
            transitions: run.transitions,
            violation: run.violation,
        });
    }
    ModelBatteryOut {
        battery: "models",
        ok,
        cases,
    }
}

#[derive(Serialize)]
struct FuzzBatteryOut {
    battery: &'static str,
    ok: bool,
    seeds: u64,
    regressions: Vec<FuzzRegressionOut>,
    corpus_cases: Vec<String>,
    findings: Vec<String>,
}

#[derive(Serialize)]
struct FuzzRegressionOut {
    name: String,
    ok: bool,
    caught: bool,
    clean_on_correct: bool,
    trace_len: usize,
    violation: Option<String>,
}

impl Battery for FuzzBatteryOut {
    fn passed(&self) -> bool {
        self.ok
    }
}

fn fuzz_battery(seeds: u64, json: bool) -> FuzzBatteryOut {
    let mut ok = true;

    if !json {
        println!("== fuzz regression seeds ==");
    }
    let mut regressions = Vec::new();
    for run in run_fuzz_regressions() {
        if !json {
            let verdict = if run.ok() { "ok" } else { "FAIL" };
            println!(
                "{verdict:>4}  {}  [must fail, trace of {} decisions]",
                run.name, run.trace_len
            );
            if let Some(v) = &run.buggy_violation {
                println!("      caught as designed: {v}");
            }
            if !run.caught {
                println!("      regression seed no longer fails — the fuzzer lost the bug");
            }
            if !run.clean_on_correct {
                println!("      trace violates even the CORRECT construction — orchestrator bug");
            }
        }
        ok &= run.ok();
        regressions.push(FuzzRegressionOut {
            name: run.name.to_string(),
            ok: run.ok(),
            caught: run.caught,
            clean_on_correct: run.clean_on_correct,
            trace_len: run.trace_len,
            violation: run.buggy_violation,
        });
    }

    if !json {
        println!("\n== adversarial-schedule corpus ({seeds} seeds/case) ==");
    }
    let corpus_cases = fuzz_catalog();
    let findings: Vec<String> = run_fuzz_corpus(seeds)
        .iter()
        .map(|f| f.to_string())
        .collect();
    if !json {
        if findings.is_empty() {
            println!("  ok  {} cases clean", corpus_cases.len());
        } else {
            for f in &findings {
                println!("{f}");
            }
        }
        println!("\nfuzz: {}", verdict(ok && findings.is_empty()));
    }
    ok &= findings.is_empty();

    FuzzBatteryOut {
        battery: "fuzz",
        ok,
        seeds,
        regressions,
        corpus_cases,
        findings,
    }
}

#[derive(Serialize)]
struct FleetBatteryOut {
    battery: &'static str,
    ok: bool,
    cases: Vec<FleetCaseOut>,
}

#[derive(Serialize)]
struct FleetCaseOut {
    name: String,
    ok: bool,
    detail: String,
}

impl Battery for FleetBatteryOut {
    fn passed(&self) -> bool {
        self.ok
    }
}

fn fleet_battery(json: bool) -> FleetBatteryOut {
    if !json {
        println!("\n== fleet dispatcher invariants ==");
    }
    let mut ok = true;
    let mut cases = Vec::new();
    for case in run_fleet_suite() {
        if !json {
            let verdict = if case.ok { "ok" } else { "FAIL" };
            println!("{verdict:>4}  {}", case.name);
            println!("      {}", case.detail);
        }
        ok &= case.ok;
        cases.push(FleetCaseOut {
            name: case.name,
            ok: case.ok,
            detail: case.detail,
        });
    }
    if !json {
        println!("fleet: {}", verdict(ok));
    }
    FleetBatteryOut {
        battery: "fleet",
        ok,
        cases,
    }
}

fn list() {
    println!("lints:");
    for lint in LintRegistry::with_builtin_lints().lints() {
        println!(
            "  {}  {:<24} {}",
            lint.id(),
            lint.name(),
            lint.description()
        );
    }
    println!("\ngraph checks (run them with `mlm-verify graph`):");
    for check in mlm_exec::graph::GraphCheck::ALL {
        let kind = if check.is_fatal() {
            "error"
        } else {
            "advisory"
        };
        println!("  {}  {:<24} {kind}", check.code(), check.name());
    }
    println!("\nmodels (run them with `mlm-verify models`):");
    for (name, expect_violation) in mlm_verify::suite::model_catalog() {
        let kind = if expect_violation {
            "regression (must fail)"
        } else {
            "shipped (must verify)"
        };
        println!("  {name:<60} {kind}");
    }
}
