//! The static schedule-verification battery: G-series diagnostics over
//! the dependency graphs `drive()` emits.
//!
//! The analysis itself lives in [`mlm_exec::graph`] (shared with the
//! fuzzer so both consume one graph model); this module wraps its
//! findings as [`Diagnostic`]s alongside the V-series lints, defines the
//! committed experiment-spec catalog every CI run re-proves, and packages
//! the whole thing as a suite (`mlm-verify graph`):
//!
//! * every case of the fuzz corpus (all placements and schedule modes of
//!   both workload families, five geometries) must prove race-free,
//!   deadlock-free, and within the slot/MCDRAM bounds **statically** —
//!   over every linearization, not a seed sample;
//! * every committed experiment spec (the paper pipelines, the host
//!   ablation shape, the largest serve-trace batch, the out-of-core
//!   stencil) must prove the same against the paper machine's
//!   addressable MCDRAM;
//! * the five buggy [`Construction`]s the fuzzer finds dynamically must
//!   each be flagged by a G-diagnostic with a counterexample trace, *no
//!   fuzz seeds involved* — the analyzer subsumes the sampled findings.

use knl_sim::machine::MachineConfig;
use mlm_core::pipeline::{PipelineSpec, Placement, Workload};
use mlm_exec::fuzz::{corpus_spec, corpus_stencil_spec, default_corpus, Construction};
use mlm_exec::graph::{
    analyze, record_graph, AnalysisConfig, GraphCheck, GraphFinding, GraphReport,
};

use crate::diag::{Diagnostic, Severity};
use crate::suite::{paper_machine, paper_spec};

/// Severity of a finding of `check`: everything is a hard error except
/// the advisory dead-token check.
pub fn check_severity(check: GraphCheck) -> Severity {
    if check.is_fatal() {
        Severity::Error
    } else {
        Severity::Warning
    }
}

/// Wrap one analyzer finding as a V-series-shaped [`Diagnostic`]: the
/// G-code as the id, the counterexample trace as span-like context lines.
pub fn finding_diagnostic(finding: &GraphFinding) -> Diagnostic {
    let check = finding.check;
    let mut d = Diagnostic::new(
        check.code(),
        check.name(),
        check_severity(check),
        finding.message.clone(),
    );
    for (i, line) in finding.trace.iter().enumerate() {
        d = d.with_context(&format!("trace[{i}]"), line);
    }
    let suggestion = match check {
        GraphCheck::Race => {
            "add a dependency edge ordering the conflicting actions \
             (the buffer-recycling edge copy-out[c] -> copy-in[c+3] orders ring reuse)"
        }
        GraphCheck::Deadlock => {
            "break the dependency cycle, or deliver completions to every waiter \
             (notify_all, not notify_one)"
        }
        GraphCheck::Capacity => {
            "shrink chunk_bytes, reduce concurrently-live chunks, or place buffers in Ddr"
        }
        GraphCheck::RingWidth => {
            "restore the buffer-recycling edges so at most RING_SLOTS chunks are in flight"
        }
        GraphCheck::DeadToken => "make a later node depend on this completion, or stop issuing it",
        GraphCheck::Unreachable => "fix the dependency indices the schedule emits for this node",
    };
    d.with_suggestion(suggestion)
}

/// All findings of a report as diagnostics, in report order.
pub fn report_diagnostics(report: &GraphReport) -> Vec<Diagnostic> {
    report.findings.iter().map(finding_diagnostic).collect()
}

/// Record and statically verify the schedule `spec` emits, bounding HBW
/// occupancy against `machine`'s addressable MCDRAM. `Err` only when the
/// spec cannot be driven at all.
pub fn graph_report_for(
    spec: &PipelineSpec,
    machine: &MachineConfig,
) -> Result<GraphReport, String> {
    let budget = (spec.placement == Placement::Hbw).then(|| machine.addressable_mcdram());
    mlm_exec::graph::verify_spec(spec, budget).map_err(String::from)
}

/// The committed experiment specs CI re-proves on every run: the paper's
/// §3 pipeline in all three usage modes, the host-ablation shape, and
/// the largest serve-trace batch class (256 GiB through 2 GiB chunks —
/// the "data doesn't fit in MCDRAM" regime the paper is about).
pub fn committed_specs() -> Vec<(&'static str, PipelineSpec)> {
    let ablation = |lockstep: bool| PipelineSpec {
        total_bytes: 64 << 20,
        chunk_bytes: 8 << 20,
        p_in: 2,
        p_out: 2,
        p_comp: 4,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    };
    let mut dataflow = paper_spec();
    dataflow.lockstep = false;
    let mut implicit = paper_spec();
    implicit.placement = Placement::Implicit;
    let mut serve_elephant = paper_spec();
    serve_elephant.total_bytes = 256 << 30;
    serve_elephant.chunk_bytes = 2 << 30;
    // The out-of-core stencil study shape: 64 GiB through 1 GiB chunks on
    // the four-slot split-buffer ring (8 GiB peak HBW — half the paper
    // machine's MCDRAM goes to staged halos).
    let mut stencil = paper_spec();
    stencil.total_bytes = 64 << 30;
    stencil.chunk_bytes = 1 << 30;
    stencil.lockstep = false;
    stencil.workload = Workload::Stencil {
        halo_bytes: 16 << 20,
    };
    vec![
        ("paper-lockstep", paper_spec()),
        ("paper-dataflow", dataflow),
        ("paper-implicit", implicit),
        ("host-ablation-lockstep", ablation(true)),
        ("host-ablation-dataflow", ablation(false)),
        ("serve-batch-elephant", serve_elephant),
        ("stencil-out-of-core", stencil),
    ]
}

/// The largest committed spec by emitted graph size — the analyzer's
/// <100 ms budget (sim_bench's `graph_verify` measurement) is taken on
/// this one.
pub fn largest_committed_spec() -> (&'static str, PipelineSpec) {
    committed_specs()
        .into_iter()
        .max_by_key(|(_, s)| s.n_chunks())
        .expect("catalog is non-empty")
}

/// One case of the graph-verification suite.
#[derive(Debug, Clone)]
pub struct GraphCase {
    /// Display name.
    pub name: String,
    /// G-codes that must fire (each with a non-empty counterexample
    /// trace); empty means the schedule must prove safe.
    pub expect: Vec<&'static str>,
    /// What the analyzer said (`Err`: the spec could not be driven).
    pub report: Result<GraphReport, String>,
}

impl GraphCase {
    /// The distinct G-codes that fired.
    pub fn fired(&self) -> Vec<&'static str> {
        self.report.as_ref().map(|r| r.codes()).unwrap_or_default()
    }

    /// Did the analyzer meet the expectation? Clean cases must prove
    /// safe; must-fail cases must fire every expected code, each finding
    /// carrying a counterexample trace.
    pub fn ok(&self) -> bool {
        let Ok(report) = &self.report else {
            return false;
        };
        if self.expect.is_empty() {
            return report.is_safe();
        }
        let fired = self.fired();
        self.expect.iter().all(|code| fired.contains(code))
            && report.findings.iter().all(|f| !f.trace.is_empty())
    }
}

/// Build and run the full graph-verification suite:
///
/// 1. all 35 fuzz-corpus cases (both workload families), proven safe
///    against the paper machine;
/// 2. every committed experiment spec, proven safe;
/// 3. the five buggy constructions analysed under their discipline
///    weakening — each must be flagged statically with a trace.
pub fn run_graph_suite() -> Vec<GraphCase> {
    let machine = paper_machine();
    let mut cases = Vec::new();

    for fc in default_corpus() {
        cases.push(GraphCase {
            name: format!("corpus/{}", fc.name),
            expect: Vec::new(),
            report: graph_report_for(&fc.spec, &machine),
        });
    }

    for (name, spec) in committed_specs() {
        cases.push(GraphCase {
            name: format!("spec/{name}"),
            expect: Vec::new(),
            report: graph_report_for(&spec, &machine),
        });
    }

    // The five must-fail constructions, mirrored from the fuzz
    // regression battery ([`crate::fuzzsuite::regression_seeds`]) — but
    // proven statically: the discipline weakening is applied to the
    // recorded graph and the analyzer must produce the finding with no
    // schedule sampling at all.
    struct MustFail {
        name: &'static str,
        lockstep: bool,
        stencil: bool,
        construction: Construction,
        kernel_panic: Option<usize>,
        expect: &'static [&'static str],
    }
    let must_fail = [
        MustFail {
            name: "drop-recycle-dep",
            lockstep: false,
            stencil: false,
            construction: Construction::DropRecycleDep,
            kernel_panic: None,
            expect: &["G001", "G004"],
        },
        MustFail {
            name: "poison-skip-lock",
            lockstep: false,
            stencil: false,
            construction: Construction::PoisonSkipLock,
            kernel_panic: Some(1),
            expect: &["G001"],
        },
        MustFail {
            name: "notify-one",
            lockstep: true,
            stencil: false,
            construction: Construction::NotifyOne,
            kernel_panic: None,
            expect: &["G002"],
        },
        MustFail {
            name: "no-recheck",
            lockstep: true,
            stencil: false,
            construction: Construction::NoRecheck,
            kernel_panic: None,
            expect: &["G001"],
        },
        MustFail {
            name: "drop-halo-dep",
            lockstep: false,
            stencil: true,
            construction: Construction::DropHaloDep,
            kernel_panic: None,
            expect: &["G001"],
        },
    ];
    for mf in must_fail {
        let spec = if mf.stencil {
            corpus_stencil_spec(256, mf.lockstep)
        } else {
            corpus_spec(256, Placement::Hbw, mf.lockstep)
        };
        let report = record_graph(&spec).map(|g| {
            let cfg = AnalysisConfig {
                ring_slots: spec.ring_slots(),
                discipline: mf.construction.discipline(),
                kernel_panic: mf.kernel_panic,
                ..AnalysisConfig::default()
            };
            analyze(&g, &spec, &cfg)
        });
        cases.push(GraphCase {
            name: format!("construction/{}", mf.name),
            expect: mf.expect.to_vec(),
            report: report.map_err(String::from),
        });
    }

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_passes() {
        for case in run_graph_suite() {
            assert!(
                case.ok(),
                "{}: expected {:?}, fired {:?} ({})",
                case.name,
                case.expect,
                case.fired(),
                case.report
                    .as_ref()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|e| e.clone())
            );
        }
    }

    #[test]
    fn suite_covers_corpus_catalog_and_constructions() {
        let cases = run_graph_suite();
        let corpus = cases
            .iter()
            .filter(|c| c.name.starts_with("corpus/"))
            .count();
        let specs = cases.iter().filter(|c| c.name.starts_with("spec/")).count();
        let constructions = cases
            .iter()
            .filter(|c| c.name.starts_with("construction/"))
            .count();
        assert_eq!(
            corpus, 35,
            "hbw/ddr x lockstep/dataflow + implicit + stencil modes, 5 geometries"
        );
        assert_eq!(specs, committed_specs().len());
        assert_eq!(constructions, 5);
    }

    #[test]
    fn must_fail_findings_carry_counterexample_traces() {
        for case in run_graph_suite() {
            if case.expect.is_empty() {
                continue;
            }
            let report = case.report.as_ref().expect("must-fail cases drive fine");
            assert!(!report.is_safe(), "{}", case.name);
            for f in &report.findings {
                assert!(!f.trace.is_empty(), "{}: {}", case.name, f.message);
            }
        }
    }

    #[test]
    fn diagnostics_mirror_the_v_series_shape() {
        let spec = corpus_spec(256, Placement::Hbw, false);
        let g = record_graph(&spec).unwrap();
        let cfg = AnalysisConfig {
            discipline: Construction::DropRecycleDep.discipline(),
            ..AnalysisConfig::default()
        };
        let report = analyze(&g, &spec, &cfg);
        let diags = report_diagnostics(&report);
        assert!(!diags.is_empty());
        for d in &diags {
            assert!(d.id.starts_with('G'), "{}", d.id);
            assert!(!d.context.is_empty(), "trace must become context");
            assert!(d.suggestion.is_some());
            let rendered = d.to_string();
            assert!(rendered.contains("error["), "{rendered}");
            assert!(rendered.contains("trace[0]"), "{rendered}");
        }
    }

    #[test]
    fn elephant_spec_fits_the_paper_machine_exactly_because_of_the_ring() {
        // 256 GiB of data through 16 GiB of MCDRAM: only the 3-slot ring
        // (6 GiB resident) makes this provable — the point of the paper.
        let (name, spec) = largest_committed_spec();
        assert_eq!(name, "serve-batch-elephant");
        assert_eq!(spec.n_chunks(), 128);
        let report = graph_report_for(&spec, &paper_machine()).unwrap();
        assert!(report.is_safe(), "{report}");
        assert_eq!(report.peak_live_chunks, 3);
        assert_eq!(report.peak_hbw_bytes, 6 << 30);
    }
}
