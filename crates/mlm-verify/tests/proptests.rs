//! Property tests tying the linter to the runtimes it guards.
//!
//! The contract the lint registry sells is a dichotomy: a spec that lints
//! clean of errors must survive every backend (host pipeline, simulator
//! lowering, simulator execution) without panicking, and a spec any
//! backend rejects must carry at least one error-level diagnostic. These
//! tests drive randomly generated specs — valid and invalid alike —
//! through both sides of that contract, plus randomized geometries
//! through the exhaustive ring checker.

use std::panic::{catch_unwind, AssertUnwindSafe};

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_core::pipeline::host::run_host_pipeline;
use mlm_core::pipeline::{sim::build_program, PipelineSpec, Placement, Workload};
use mlm_verify::check::{check, CheckOptions};
use mlm_verify::lint::{lint_target, VerifyTarget};
use mlm_verify::models::psrs::PsrsModel;
use mlm_verify::models::ring::RingModel;
use parsort::WorkPool;
use proptest::prelude::*;

/// Specs both sensible and broken: chunk sizes include misaligned and
/// oversized values, pools range past the tiny machine's 4 threads, and
/// rates include zero. The dichotomy property must hold for all of them.
fn arb_spec() -> impl Strategy<Value = PipelineSpec> {
    (
        1u64..33, // total KiB
        prop_oneof![
            (1u64..17).prop_map(|k| k << 10).boxed(), // aligned KiB chunks
            (1u64..8193).boxed(),                     // raw byte sizes, often misaligned
        ],
        1usize..4, // p_in
        1usize..4, // p_out
        1usize..4, // p_comp
        1u32..4,   // passes
        prop_oneof![
            Just(1.0e9f64).boxed(),
            Just(0.0f64).boxed(), // V000/V006 territory
        ],
        any::<bool>(), // lockstep
    )
        .prop_map(
            |(total, chunk, p_in, p_out, p_comp, passes, copy_rate, lockstep)| PipelineSpec {
                total_bytes: total << 10,
                chunk_bytes: chunk,
                p_in,
                p_out,
                p_comp,
                compute_passes: passes,
                compute_rate: 1.5e9,
                copy_rate,
                placement: Placement::Hbw,
                lockstep,
                data_addr: 0,
                workload: Workload::Map,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lint-clean specs never panic: not in the host pipeline, not in
    /// simulator lowering, not in simulator execution.
    #[test]
    fn lint_clean_specs_run_everywhere(spec in arb_spec()) {
        let machine = MachineConfig::tiny(MemMode::Flat);
        let report = lint_target(&VerifyTarget::new(&spec, &machine));
        prop_assume!(!report.has_errors());

        // Simulator side.
        let prog = build_program(&spec);
        prop_assert!(prog.is_ok(), "lint-clean spec failed to lower: {:?}", prog.err());
        let run = Simulator::new(machine).run_checked(&prog.unwrap());
        prop_assert!(run.is_ok(), "lint-clean spec failed to simulate: {:?}", run.err());

        // Host side: same spec, element counts from the data length.
        let n = (spec.total_bytes / 8) as usize;
        let data: Vec<u64> = (0..n as u64).collect();
        let mut out = vec![0u64; n];
        let pool = WorkPool::new(spec.threads().min(4));
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_host_pipeline(&pool, &spec, &data, &mut out, |slice, _ctx| {
                for x in slice {
                    *x = x.wrapping_add(1);
                }
            })
        }));
        prop_assert!(result.is_ok(), "lint-clean spec panicked in the host pipeline");
        prop_assert!(out.iter().zip(&data).all(|(o, d)| *o == d.wrapping_add(1)));
    }

    /// Any spec a backend rejects carries at least one error-level
    /// diagnostic — the linter has no blind spots the runtimes can see.
    #[test]
    fn runtime_rejections_are_always_linted(spec in arb_spec()) {
        let machine = MachineConfig::tiny(MemMode::Flat);

        let lowered = build_program(&spec);
        let host_panicked = {
            let n = (spec.total_bytes / 8) as usize;
            let data: Vec<u64> = vec![0; n];
            let mut out = vec![0u64; n];
            let pool = WorkPool::new(spec.threads().min(4));
            catch_unwind(AssertUnwindSafe(|| {
                run_host_pipeline(&pool, &spec, &data, &mut out, |_s, _c| {});
            }))
            .is_err()
        };

        if lowered.is_err() || host_panicked {
            let report = lint_target(&VerifyTarget::new(&spec, &machine));
            prop_assert!(
                report.has_errors(),
                "backends rejected (lowered: {:?}, host panic: {host_panicked}) \
                 but the linter saw nothing:\n{report}",
                lowered.err(),
            );
        }
    }

}

// Exhaustive model checks are expensive per case (each one explores a full
// state space), so they get a much smaller case budget than the spec
// dichotomy tests above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The ring protocol is deadlock-free for every small geometry, not
    /// just the shipped 3-slot one.
    #[test]
    fn ring_protocol_verifies_for_all_small_geometries(
        slots in 1usize..5,
        chunks in 0u8..6,
        workers in 1u8..3,
    ) {
        let model = RingModel { slots, chunks, workers, panic_at: None };
        let report = check(&model, CheckOptions::default());
        prop_assert!(report.ok(), "{report}\n{}", report.render_trace());
    }

    /// The deferring PSRS protocol verifies for every small cluster
    /// (4-node exhaustion lives in the crate's unit tests; it is too slow
    /// to repeat per proptest case).
    #[test]
    fn psrs_defer_verifies_for_small_clusters(nodes in 2u8..4) {
        let report = check(&PsrsModel::shipped(nodes), CheckOptions::default());
        prop_assert!(report.ok(), "nodes={nodes}: {report}");
    }
}
