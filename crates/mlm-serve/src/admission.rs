//! Policy candidate selection shared by every admission loop.
//!
//! Three schedulers admit jobs in policy order: the virtual-time event
//! loop ([`crate::sched::serve`]), the real-thread host server
//! ([`crate::host::serve_host`]), and the fleet dispatcher (`mlm-fleet`).
//! They differ in *when* admission runs and what happens after it, but the
//! decision itself — which queued job to try next — must be identical, or
//! the fleet's 1-node ≡ single-node and host ≡ virtual-time equivalence
//! guarantees fall apart. This module is that decision, extracted.

use crate::job::{DeadlineClass, JobId, N_CLASSES};
use crate::policy::Policy;

/// Pick the next admission candidate's *position* in `ready` (a queue of
/// job indices in arrival order), or `None` when no candidate remains.
///
/// - FIFO: the queue head.
/// - SJF: minimum predicted makespan, ties by job id.
/// - Fair-share: the oldest queued job of the lowest-credit class whose
///   class is not marked `blocked` (a class blocks when its head job hits
///   broker capacity, letting other classes keep flowing).
///
/// `est`, `ids` and `classes` are indexed by job index (the values stored
/// in `ready`), not by queue position.
pub fn select_candidate(
    policy: Policy,
    ready: &[usize],
    est: &[f64],
    ids: &[JobId],
    classes: &[DeadlineClass],
    credit: &[f64; N_CLASSES],
    blocked: &[bool; N_CLASSES],
) -> Option<usize> {
    match policy {
        Policy::Fifo => {
            if ready.is_empty() {
                None
            } else {
                Some(0)
            }
        }
        Policy::Sjf => (0..ready.len()).min_by(|&a, &b| {
            est[ready[a]]
                .total_cmp(&est[ready[b]])
                .then(ids[ready[a]].cmp(&ids[ready[b]]))
        }),
        Policy::FairShare => {
            // Lowest-credit class with an unblocked queued job; its oldest
            // job is the candidate.
            let mut best: Option<(f64, usize)> = None;
            for (pos, &idx) in ready.iter().enumerate() {
                let c = classes[idx].index();
                if blocked[c] {
                    continue;
                }
                // First (oldest) queued job of each class wins within the
                // class; classes compare by normalized credit.
                if best.map(|(_, p)| classes[ready[p]].index() == c) == Some(true) {
                    continue;
                }
                match best {
                    Some((cr, _)) if credit[c] >= cr => {}
                    _ => best = Some((credit[c], pos)),
                }
            }
            best.map(|(_, p)| p)
        }
    }
}

/// Fair-share credit charge at admission: the job's service estimate
/// normalised by its class weight. FIFO/SJF carry no credit state, so
/// this is a no-op for them.
pub fn charge_credit(
    policy: Policy,
    credit: &mut [f64; N_CLASSES],
    class: DeadlineClass,
    est: f64,
) {
    if policy == Policy::FairShare {
        let service = if est.is_finite() { est } else { 1.0 };
        credit[class.index()] += service / class.weight();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_takes_the_head_sjf_the_shortest() {
        let ready = vec![2usize, 0, 1];
        let est = [5.0, 1.0, 3.0];
        let ids = [10u64, 11, 12];
        let classes = [DeadlineClass::Standard; 3];
        let credit = [0.0; N_CLASSES];
        let blocked = [false; N_CLASSES];
        assert_eq!(
            select_candidate(
                Policy::Fifo,
                &ready,
                &est,
                &ids,
                &classes,
                &credit,
                &blocked
            ),
            Some(0)
        );
        // Job index 0 (est 5.0) is at position 1; SJF picks index 1
        // (est 1.0) at position 2.
        assert_eq!(
            select_candidate(Policy::Sjf, &ready, &est, &ids, &classes, &credit, &blocked),
            Some(2)
        );
        assert_eq!(
            select_candidate(Policy::Fifo, &[], &est, &ids, &classes, &credit, &blocked),
            None
        );
    }

    #[test]
    fn fair_share_skips_blocked_classes_and_prefers_low_credit() {
        let ready = vec![0usize, 1, 2];
        let est = [1.0; 3];
        let ids = [0u64, 1, 2];
        let classes = [
            DeadlineClass::Interactive,
            DeadlineClass::Batch,
            DeadlineClass::Interactive,
        ];
        let mut credit = [0.0; N_CLASSES];
        credit[DeadlineClass::Interactive.index()] = 5.0;
        let mut blocked = [false; N_CLASSES];
        // Batch has less credit: its oldest job (pos 1) wins.
        assert_eq!(
            select_candidate(
                Policy::FairShare,
                &ready,
                &est,
                &ids,
                &classes,
                &credit,
                &blocked
            ),
            Some(1)
        );
        // With batch blocked, interactive's oldest (pos 0) wins — never
        // pos 2, which is the same class's younger job.
        blocked[DeadlineClass::Batch.index()] = true;
        assert_eq!(
            select_candidate(
                Policy::FairShare,
                &ready,
                &est,
                &ids,
                &classes,
                &credit,
                &blocked
            ),
            Some(0)
        );
    }

    #[test]
    fn credit_is_charged_weighted_and_only_for_fair_share() {
        let mut credit = [0.0; N_CLASSES];
        charge_credit(Policy::Fifo, &mut credit, DeadlineClass::Batch, 4.0);
        assert_eq!(credit, [0.0; N_CLASSES]);
        charge_credit(Policy::FairShare, &mut credit, DeadlineClass::Batch, 4.0);
        assert_eq!(credit[DeadlineClass::Batch.index()], 4.0);
        charge_credit(
            Policy::FairShare,
            &mut credit,
            DeadlineClass::Interactive,
            f64::INFINITY,
        );
        // Infinite estimates fall back to a unit charge.
        assert_eq!(
            credit[DeadlineClass::Interactive.index()],
            1.0 / DeadlineClass::Interactive.weight()
        );
    }
}
