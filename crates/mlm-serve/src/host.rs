//! Concurrent serving on the real host pipeline.
//!
//! The virtual-time scheduler prices fleets at paper scale; this module
//! actually *runs* a batch of jobs concurrently on host threads, using the
//! dataflow pipeline's dedicated stage pools. Admission goes through the
//! same [`CapacityBroker`] and policy order as the virtual scheduler, and
//! each job's three pools are sized by the Eqs. 1–5 optimiser for the
//! thread budget implied by the co-resident degree at its admission — the
//! host-side version of "recompute the copy-thread split as the tenant mix
//! changes".
//!
//! Kernels are plain function pointers applied position-wise, so the
//! output of a served job is bit-identical to running the same pipeline
//! alone — concurrency changes timing, never data.

use std::collections::HashMap;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use knl_sim::machine::MachineConfig;
use knl_sim::MemLevel;
use mlm_core::pipeline::host::{run_host_pipeline_dataflow, HostStagePools, KernelCtx};
use mlm_core::{PipelineSpec, Placement, ThreadSplit};

use crate::admission::{charge_credit, select_candidate};
use crate::broker::{AdmitOutcome, CapacityBroker};
use crate::job::{DeadlineClass, JobId, N_CLASSES};
use crate::policy::{predicted_makespan, profile, Policy};

/// One host job: a pipeline spec plus the actual data to stream through it.
#[derive(Debug)]
pub struct HostJob {
    /// Job identifier.
    pub id: JobId,
    /// Latency class (drives fair-share admission).
    pub class: DeadlineClass,
    /// Pipeline geometry. Pool sizes are treated as a hint; the tuner
    /// re-derives them per admission.
    pub spec: PipelineSpec,
    /// Input elements.
    pub data: Vec<i64>,
}

/// Host serving configuration.
#[derive(Debug, Clone)]
pub struct HostServeConfig {
    /// Machine model the broker budgets against (use a scaled-down config
    /// for host-sized data, e.g. [`MachineConfig::tiny`]).
    pub machine: MachineConfig,
    /// Admission policy.
    pub policy: Policy,
    /// Broker MCDRAM budget in bytes.
    pub mcdram_budget: u64,
    /// `HBW_PREFERRED` semantics: run from DDR instead of queueing.
    pub spill: bool,
    /// Host worker threads to divide among co-resident jobs.
    pub host_threads: usize,
}

/// Outcome of one served host job.
#[derive(Debug)]
pub struct HostJobResult {
    /// Job identifier.
    pub id: JobId,
    /// Position in the admission order (0 = admitted first).
    pub admit_seq: usize,
    /// Pool split the tuner assigned.
    pub split: ThreadSplit,
    /// Where the broker placed the buffer reservation.
    pub buffer_level: MemLevel,
    /// Wall-clock duration of the job's pipeline run.
    pub wall: Duration,
    /// Output elements.
    pub data: Vec<i64>,
}

/// Serve `jobs` concurrently under `cfg`, applying `kernel` to every
/// compute slice. Returns per-job results sorted by job id.
///
/// Jobs that can never fit the broker's budget are an error (host callers
/// control their job sizes); capacity contention just queues.
pub fn serve_host(
    cfg: &HostServeConfig,
    jobs: Vec<HostJob>,
    kernel: fn(&mut [i64], KernelCtx),
) -> Result<Vec<HostJobResult>, String> {
    for j in &jobs {
        j.spec
            .validate()
            .map_err(|e| format!("job {}: {e}", j.id))?;
        j.spec
            .validate_elem_size(std::mem::size_of::<i64>())
            .map_err(|e| format!("job {}: {e}", j.id))?;
        let need = (j.data.len() * std::mem::size_of::<i64>()) as u64;
        if need != j.spec.total_bytes {
            return Err(format!(
                "job {}: data is {need} B but spec says {} B",
                j.id, j.spec.total_bytes
            ));
        }
    }
    let mut broker = CapacityBroker::new(&cfg.machine, cfg.mcdram_budget, cfg.spill);
    for j in &jobs {
        if !broker.can_ever_fit(&j.spec) {
            return Err(format!(
                "job {}: buffer ring exceeds the broker budget",
                j.id
            ));
        }
    }

    let est: Vec<f64> = jobs
        .iter()
        .map(|j| predicted_makespan(&j.spec, &cfg.machine))
        .collect();
    let ids: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
    let classes: Vec<DeadlineClass> = jobs.iter().map(|j| j.class).collect();

    let mut pending: Vec<Option<HostJob>> = jobs.into_iter().map(Some).collect();
    let mut ready: Vec<usize> = (0..pending.len()).collect(); // submission order
    let mut credit = [0.0f64; N_CLASSES];
    let mut running: HashMap<
        usize,
        (
            Option<mlm_memkind::Reservation>,
            ThreadSplit,
            MemLevel,
            usize,
        ),
    > = HashMap::new();
    let mut results: Vec<HostJobResult> = Vec::new();
    let mut handles = Vec::new();
    let mut admit_seq = 0usize;
    let (tx, rx) = mpsc::channel::<(usize, Vec<i64>, Duration)>();

    loop {
        // Admission pass, mirroring the virtual scheduler's policy
        // semantics: FIFO/SJF stop at their blocked head, fair-share skips
        // the blocked class.
        let mut blocked = [false; N_CLASSES];
        loop {
            let pos = select_candidate(cfg.policy, &ready, &est, &ids, &classes, &credit, &blocked);
            let Some(pos) = pos else { break };
            let idx = ready[pos];
            let spec = pending[idx].as_ref().expect("job not yet run").spec.clone();
            match broker.try_admit(&spec)? {
                AdmitOutcome::Admitted(reservation) => {
                    ready.remove(pos);
                    let level = reservation
                        .as_ref()
                        .map(|r| r.level())
                        .unwrap_or(MemLevel::Ddr);
                    let effective = if level == MemLevel::Ddr && spec.placement == Placement::Hbw {
                        Placement::Ddr
                    } else {
                        spec.placement
                    };
                    let budget = (cfg.host_threads / (running.len() + 1)).max(3);
                    let split = profile(&spec, effective, &cfg.machine, budget, true)?.split;
                    running.insert(idx, (reservation, split, level, admit_seq));
                    charge_credit(cfg.policy, &mut credit, classes[idx], est[idx]);
                    admit_seq += 1;
                    let job = pending[idx].take().expect("job taken twice");
                    let tx = tx.clone();
                    let mut spec2 = job.spec.clone();
                    spec2.p_in = split.p_in;
                    spec2.p_out = split.p_out;
                    spec2.p_comp = split.p_comp;
                    let data = job.data;
                    handles.push(thread::spawn(move || {
                        let pools = HostStagePools::new(split.p_in, split.p_comp, split.p_out);
                        let mut out = vec![0i64; data.len()];
                        let t = Instant::now();
                        run_host_pipeline_dataflow(&pools, &spec2, &data, &mut out, kernel);
                        // The receiver hanging up just means serve_host
                        // already failed; don't double-panic the worker.
                        let _ = tx.send((idx, out, t.elapsed()));
                    }));
                }
                AdmitOutcome::Busy => match cfg.policy {
                    Policy::Fifo | Policy::Sjf => break,
                    Policy::FairShare => {
                        blocked[classes[idx].index()] = true;
                        if blocked.iter().all(|&b| b) {
                            break;
                        }
                    }
                },
            }
        }

        if running.is_empty() {
            if ready.is_empty() {
                break;
            }
            return Err(format!(
                "host scheduler stuck with {} jobs queued and none running",
                ready.len()
            ));
        }

        // Block until one running job completes, then free its capacity.
        let (idx, out, wall) = rx
            .recv()
            .map_err(|_| "worker channel closed unexpectedly".to_string())?;
        let (reservation, split, level, seq) =
            running.remove(&idx).expect("completion for unknown job");
        if let Some(res) = &reservation {
            broker.release(res)?;
        }
        results.push(HostJobResult {
            id: ids[idx],
            admit_seq: seq,
            split,
            buffer_level: level,
            wall,
            data: out,
        });
    }

    drop(tx);
    for h in handles {
        h.join().map_err(|_| "worker thread panicked".to_string())?;
    }
    results.sort_by_key(|r| r.id);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;
    use mlm_core::Workload;

    const MIB: u64 = 1 << 20;

    fn kernel(slice: &mut [i64], ctx: KernelCtx) {
        for (i, x) in slice.iter_mut().enumerate() {
            *x = x.wrapping_mul(3) ^ (ctx.global_offset + i) as i64;
        }
    }

    fn spec(total: u64, chunk: u64) -> PipelineSpec {
        PipelineSpec {
            total_bytes: total,
            chunk_bytes: chunk,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn cfg(policy: Policy, budget: u64) -> HostServeConfig {
        HostServeConfig {
            machine: MachineConfig::knl_7250(MemMode::Flat),
            policy,
            mcdram_budget: budget,
            spill: false,
            host_threads: 8,
        }
    }

    fn input(n: usize, salt: i64) -> Vec<i64> {
        (0..n as i64).map(|i| i * 7 + salt).collect()
    }

    fn reference(mut data: Vec<i64>) -> Vec<i64> {
        for (i, x) in data.iter_mut().enumerate() {
            *x = x.wrapping_mul(3) ^ i as i64;
        }
        data
    }

    #[test]
    fn concurrent_serving_preserves_every_output() {
        let n = (MIB / 8) as usize; // 1 MiB per job
        let jobs: Vec<HostJob> = (0..4)
            .map(|i| HostJob {
                id: i,
                class: DeadlineClass::ALL[(i % 3) as usize],
                spec: spec(MIB, MIB / 4),
                data: input(n, i as i64),
            })
            .collect();
        let expected: Vec<Vec<i64>> = (0..4).map(|i| reference(input(n, i))).collect();
        let results = serve_host(&cfg(Policy::FairShare, MIB), jobs, kernel).unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.data, expected[i], "job {i} output corrupted");
            assert!(r.split.p_comp >= 1);
        }
        // 1 MiB budget, 0.75 MiB rings: admission was serialised, so
        // admission sequence covers 0..4.
        let mut seqs: Vec<usize> = results.iter().map(|r| r.admit_seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sjf_admits_the_short_job_first() {
        // Budget fits one ring at a time; SJF must pick the small job
        // even though the big one was submitted first.
        let small_n = (MIB / 8) as usize;
        let big_n = (8 * MIB / 8) as usize;
        let jobs = vec![
            HostJob {
                id: 0,
                class: DeadlineClass::Batch,
                spec: spec(8 * MIB, MIB),
                data: input(big_n, 0),
            },
            HostJob {
                id: 1,
                class: DeadlineClass::Interactive,
                spec: spec(MIB, MIB),
                data: input(small_n, 0),
            },
        ];
        let results = serve_host(&cfg(Policy::Sjf, 3 * MIB), jobs, kernel).unwrap();
        let by_id: HashMap<u64, usize> = results.iter().map(|r| (r.id, r.admit_seq)).collect();
        assert_eq!(by_id[&1], 0, "short job must be admitted first");
        assert_eq!(by_id[&0], 1);
    }

    #[test]
    fn oversized_jobs_error_out() {
        let jobs = vec![HostJob {
            id: 0,
            class: DeadlineClass::Standard,
            spec: spec(8 * MIB, 4 * MIB), // 12 MiB ring
            data: input((8 * MIB / 8) as usize, 0),
        }];
        assert!(serve_host(&cfg(Policy::Fifo, MIB), jobs, kernel).is_err());
    }
}
