//! Scheduling policies and the §3.2-model job profiler they share.
//!
//! The scheduler needs two model-derived numbers per job:
//!
//! * a *predicted makespan* (dedicated-machine service time) for
//!   shortest-job-first ordering and fair-share credit accounting, and
//! * a *bus demand profile* — bytes of DDR and MCDRAM bus traffic per
//!   dedicated-second — so co-resident jobs can be arbitrated by the same
//!   max–min-fair water-filling the simulator applies to individual ops.

use knl_sim::MachineConfig;
use mlm_core::{ModelParams, PipelineSpec, Placement, ThreadSplit};

/// Queue discipline for admitting ready jobs to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First-in first-out. Head-of-line blocking: when the oldest job's
    /// buffer reservation does not fit, everything behind it waits.
    Fifo,
    /// Shortest predicted makespan first (§3.2 model estimate).
    Sjf,
    /// Weighted round-robin across deadline classes; a class whose head
    /// does not fit is skipped, so elephants cannot block interactive work.
    FairShare,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 3] = [Policy::Fifo, Policy::Sjf, Policy::FairShare];

    /// Short name for tables and CSV rows.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Sjf => "sjf",
            Policy::FairShare => "fair",
        }
    }
}

/// What one job looks like to the fleet scheduler: how long it runs with a
/// dedicated thread budget, and how hard it leans on each memory bus while
/// doing so.
#[derive(Debug, Clone, Copy)]
pub struct JobProfile {
    /// Dedicated service time at the profiled thread budget (seconds).
    pub t0: f64,
    /// Bytes of DDR bus traffic per dedicated-second of progress.
    pub ddr_coeff: f64,
    /// Bytes of MCDRAM bus traffic per dedicated-second of progress.
    pub mcd_coeff: f64,
    /// Thread split the profile assumed.
    pub split: ThreadSplit,
}

/// Model parameters for `spec` running on `machine` with `budget` threads,
/// with the bus ceilings adjusted for where the buffers actually live.
///
/// When buffers fall back to DDR (or the job is cache-mode), compute and
/// copy traffic share the DDR bus, so the model's "MCDRAM" ceiling becomes
/// the DDR ceiling — the same substitution the paper's MLM-ddr variant
/// makes.
fn model_for(
    spec: &PipelineSpec,
    effective: Placement,
    machine: &MachineConfig,
    budget: usize,
) -> ModelParams {
    let (ddr_max, mcdram_max) = match effective {
        Placement::Hbw => (machine.ddr_bandwidth, machine.effective_mcdram_bandwidth()),
        Placement::Ddr | Placement::Implicit => (machine.ddr_bandwidth, machine.ddr_bandwidth),
    };
    ModelParams {
        b_copy: spec.total_bytes as f64,
        ddr_max,
        mcdram_max,
        s_copy: spec.copy_rate,
        s_comp: spec.compute_rate,
        total_threads: budget,
    }
}

/// Total bus bytes a full run of `spec` moves, by level, assuming buffers
/// live at `effective` placement.
///
/// * `Hbw`: the source read and result write ride DDR (2B); the buffer
///   fills/drains and every compute pass ride MCDRAM (2B + 2B·passes).
/// * `Ddr`: everything rides DDR (copies 4B, compute 2B·passes).
/// * `Implicit`: the cold pass misses to DDR (2B); warm passes hit the
///   MCDRAM cache (2B·passes).
pub fn bus_demand(spec: &PipelineSpec, effective: Placement) -> (f64, f64) {
    let b = spec.total_bytes as f64;
    let passes = f64::from(spec.compute_passes);
    match effective {
        Placement::Hbw => (2.0 * b, 2.0 * b + 2.0 * b * passes),
        Placement::Ddr => (4.0 * b + 2.0 * b * passes, 0.0),
        Placement::Implicit => (2.0 * b, 2.0 * b * passes),
    }
}

/// Profile `spec` under a thread `budget`, with buffers at `effective`
/// placement (which differs from `spec.placement` when the broker spilled
/// the job to DDR).
///
/// With `retune` set the Eqs. 1–5 optimiser picks the split for the budget;
/// otherwise the spec's own pools are used as submitted. Errors if the
/// resulting split cannot make progress (model predicts infinite time).
pub fn profile(
    spec: &PipelineSpec,
    effective: Placement,
    machine: &MachineConfig,
    budget: usize,
    retune: bool,
) -> Result<JobProfile, String> {
    let m = model_for(spec, effective, machine, budget);
    let split = if retune {
        m.optimal_split(spec.compute_passes).unwrap_or(ThreadSplit {
            p_in: 1,
            p_out: 1,
            p_comp: 1,
        })
    } else {
        ThreadSplit {
            p_in: spec.p_in,
            p_out: spec.p_out,
            p_comp: spec.p_comp,
        }
    };
    let t0 = match effective {
        // No copy pools: the whole budget computes through the cache.
        Placement::Implicit => m.t_comp(split.p_comp.max(1), 0, 0, spec.compute_passes),
        _ => m.t_copy(split.p_in, split.p_out).max(m.t_comp(
            split.p_comp,
            split.p_in,
            split.p_out,
            spec.compute_passes,
        )),
    };
    if !(t0.is_finite() && t0 > 0.0) {
        return Err(format!(
            "job cannot make progress: model predicts T = {t0} for split \
             {}/{}/{} at budget {budget}",
            split.p_in, split.p_out, split.p_comp
        ));
    }
    let (ddr_bytes, mcd_bytes) = bus_demand(spec, effective);
    Ok(JobProfile {
        t0,
        ddr_coeff: ddr_bytes / t0,
        mcd_coeff: mcd_bytes / t0,
        split,
    })
}

/// Dedicated-machine makespan estimate for `spec` as submitted (its own
/// pools, the full machine) — the number SJF sorts by and fair-share
/// charges against class credit.
///
/// Returns `f64::INFINITY` for specs whose submitted pools cannot make
/// progress; such jobs sort last and fail loudly at admission instead.
pub fn predicted_makespan(spec: &PipelineSpec, machine: &MachineConfig) -> f64 {
    match profile(
        spec,
        spec.placement,
        machine,
        machine.total_threads(),
        false,
    ) {
        Ok(p) => p.t0,
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::{MachineConfig, MemMode, GIB};
    use mlm_core::Workload;

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn spec(total: u64, passes: u32) -> PipelineSpec {
        PipelineSpec {
            total_bytes: total,
            chunk_bytes: GIB,
            p_in: 8,
            p_out: 8,
            p_comp: 64,
            compute_passes: passes,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn bigger_jobs_predict_longer() {
        let m = machine();
        let small = predicted_makespan(&spec(4 * GIB, 2), &m);
        let big = predicted_makespan(&spec(64 * GIB, 2), &m);
        assert!(small.is_finite() && big.is_finite());
        assert!(big > small * 8.0);
    }

    #[test]
    fn ddr_spill_slows_a_job_down() {
        let m = machine();
        let s = spec(16 * GIB, 4);
        let fast = profile(&s, Placement::Hbw, &m, 128, true).unwrap();
        let slow = profile(&s, Placement::Ddr, &m, 128, true).unwrap();
        assert!(
            slow.t0 > fast.t0,
            "DDR buffers must be slower: {} vs {}",
            slow.t0,
            fast.t0
        );
        // A DDR job puts no traffic on the MCDRAM bus.
        assert_eq!(slow.mcd_coeff, 0.0);
        assert!(fast.mcd_coeff > 0.0);
    }

    #[test]
    fn retuned_split_fills_the_budget() {
        let m = machine();
        let s = spec(16 * GIB, 4);
        for budget in [8usize, 32, 128] {
            let p = profile(&s, Placement::Hbw, &m, budget, true).unwrap();
            assert_eq!(p.split.total(), budget);
        }
    }

    #[test]
    fn demand_coefficients_integrate_to_total_traffic() {
        let m = machine();
        let s = spec(8 * GIB, 3);
        let p = profile(&s, Placement::Hbw, &m, 64, true).unwrap();
        let (ddr, mcd) = bus_demand(&s, Placement::Hbw);
        assert!((p.ddr_coeff * p.t0 - ddr).abs() < 1.0);
        assert!((p.mcd_coeff * p.t0 - mcd).abs() < 1.0);
        // Hbw: DDR carries 2B, MCDRAM carries 2B(1 + passes).
        let b = s.total_bytes as f64;
        assert_eq!(ddr, 2.0 * b);
        assert_eq!(mcd, 2.0 * b * 4.0);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(Policy::Fifo.label(), "fifo");
        assert_eq!(Policy::Sjf.label(), "sjf");
        assert_eq!(Policy::FairShare.label(), "fair");
        assert_eq!(Policy::ALL.len(), 3);
    }
}
