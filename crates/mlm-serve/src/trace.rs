//! Deterministic heavy-tailed job trace generation.
//!
//! Serving studies need an arrival process that looks like real shared-node
//! usage: a stream of small latency-sensitive jobs, a steady band of
//! medium work, and occasional enormous batch "elephants" — the classic
//! heavy-tailed size mix that makes FIFO's head-of-line blocking visible.
//! Arrivals are Poisson (exponential interarrivals), sizes are a
//! class-stratified mixture whose batch tail is bounded Pareto, and
//! everything is drawn from a seeded [`SplitMix64`] by inverse transform,
//! so a `(seed, config)` pair always yields the identical trace.
//!
//! With [`TraceConfig::stencil_frac`] above zero, the stream mixes
//! out-of-core stencil pipelines in with the map jobs — the generic plan
//! layer means the scheduler and both replay backends take the mixed
//! batch without caring which family each job belongs to.

use knl_sim::machine::MachineConfig;
use knl_sim::GIB;
use mlm_core::workload::SplitMix64;
use mlm_core::{ModelParams, PipelineSpec, Placement, Workload};

use crate::job::{DeadlineClass, JobRequest};

/// Parameters of a generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean arrivals per second (Poisson process).
    pub arrival_rate: f64,
    /// RNG seed; same seed, same trace.
    pub seed: u64,
    /// Machine the jobs are sized for (supplies per-thread rates).
    pub machine: MachineConfig,
    /// Fraction of jobs that are interactive (small).
    pub interactive_frac: f64,
    /// Fraction that are batch elephants (the Pareto tail); the remainder
    /// is standard.
    pub batch_frac: f64,
    /// Pareto tail index for batch sizes; smaller = heavier tail.
    pub alpha: f64,
    /// Chunk size of interactive jobs (sets their buffer-ring footprint).
    pub interactive_chunk: u64,
    /// Chunk size of standard jobs.
    pub standard_chunk: u64,
    /// Chunk size of batch jobs.
    pub batch_chunk: u64,
    /// Fraction of jobs generated as out-of-core stencil pipelines
    /// instead of map pipelines. At the default `0.0` the generator
    /// draws *no* extra RNG values, so every `(seed, config)` trace
    /// produced before the knob existed stays bit-identical.
    pub stencil_frac: f64,
    /// Halo width in bytes (per side) of generated stencil jobs,
    /// clamped below each job's chunk size and 8-byte aligned.
    pub stencil_halo: u64,
}

impl TraceConfig {
    /// A reasonable default mix for `machine`: 78% interactive, 19%
    /// standard, 3% batch with an α = 1.2 Pareto tail.
    pub fn new(machine: MachineConfig, jobs: usize, arrival_rate: f64, seed: u64) -> Self {
        TraceConfig {
            jobs,
            arrival_rate,
            seed,
            machine,
            interactive_frac: 0.78,
            batch_frac: 0.03,
            alpha: 1.2,
            interactive_chunk: GIB / 4,
            standard_chunk: GIB / 2,
            batch_chunk: 2 * GIB,
            stencil_frac: 0.0,
            stencil_halo: GIB / 64,
        }
    }
}

/// Uniform in `[0, 1)` from the top 53 bits of one RNG draw.
fn u01(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bounded Pareto on `[lo, hi]` with tail index `alpha`, by inverse CDF.
fn bounded_pareto(u: f64, lo: f64, hi: f64, alpha: f64) -> f64 {
    let la = lo.powf(-alpha);
    let ha = hi.powf(-alpha);
    (la - u * (la - ha)).powf(-1.0 / alpha)
}

/// Per-class spec geometry: `(size bytes, chunk bytes, passes)`.
fn class_shape(cfg: &TraceConfig, class: DeadlineClass, u: f64) -> (u64, u64, u32) {
    let gib = GIB as f64;
    match class {
        // Small, shallow jobs with a fine-grained ring that slips through
        // capacity gaps the big jobs leave.
        DeadlineClass::Interactive => (((2.0 + 6.0 * u) * gib) as u64, cfg.interactive_chunk, 1),
        DeadlineClass::Standard => (((8.0 + 24.0 * u) * gib) as u64, cfg.standard_chunk, 2),
        // The heavy tail: 32 GiB to 256 GiB, Pareto-distributed, deep
        // passes, and (by default) the coarsest chunks.
        DeadlineClass::Batch => (
            bounded_pareto(u, 32.0 * gib, 256.0 * gib, cfg.alpha) as u64,
            cfg.batch_chunk,
            4,
        ),
    }
}

/// Generate the trace. Job ids are `0..jobs` in arrival order.
pub fn heavy_tailed_trace(cfg: &TraceConfig) -> Vec<JobRequest> {
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.stencil_frac),
        "stencil_frac must be in [0, 1], got {}",
        cfg.stencil_frac
    );
    let mut rng = SplitMix64::new(cfg.seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.jobs);
    for id in 0..cfg.jobs as u64 {
        // Exponential interarrival; 1 - u keeps the log argument positive.
        t += -(1.0 - u01(&mut rng)).ln() / cfg.arrival_rate;
        let uc = u01(&mut rng);
        let class = if uc < cfg.interactive_frac {
            DeadlineClass::Interactive
        } else if uc < 1.0 - cfg.batch_frac {
            DeadlineClass::Standard
        } else {
            DeadlineClass::Batch
        };
        let (size, chunk, passes) = class_shape(cfg, class, u01(&mut rng));
        let total_bytes = (size & !7).max(8); // whole 8-byte elements

        // The workload draw happens only when the mix is actually on, so
        // stencil_frac = 0.0 leaves the draw sequence untouched.
        let workload = if cfg.stencil_frac > 0.0 && u01(&mut rng) < cfg.stencil_frac {
            Workload::Stencil {
                halo_bytes: (cfg.stencil_halo.min(chunk / 2) & !7).max(8),
            }
        } else {
            Workload::Map
        };
        let m = ModelParams {
            b_copy: total_bytes as f64,
            ddr_max: cfg.machine.ddr_bandwidth,
            mcdram_max: cfg.machine.effective_mcdram_bandwidth(),
            s_copy: cfg.machine.per_thread_copy_bw,
            s_comp: cfg.machine.per_thread_compute_bw,
            total_threads: cfg.machine.total_threads(),
        };
        let split = m.optimal_split(passes).expect("machine has >= 3 threads");
        let spec = PipelineSpec {
            total_bytes,
            chunk_bytes: chunk,
            p_in: split.p_in,
            p_out: split.p_out,
            p_comp: split.p_comp,
            compute_passes: passes,
            compute_rate: cfg.machine.per_thread_compute_bw,
            copy_rate: cfg.machine.per_thread_copy_bw,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload,
        };
        out.push(JobRequest::new(id, t, class, spec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;

    fn cfg(seed: u64) -> TraceConfig {
        TraceConfig::new(MachineConfig::knl_7250(MemMode::Flat), 400, 2.0, seed)
    }

    #[test]
    fn trace_is_deterministic_and_seed_sensitive() {
        let a = heavy_tailed_trace(&cfg(42));
        let b = heavy_tailed_trace(&cfg(42));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.spec.total_bytes, y.spec.total_bytes);
            assert_eq!(x.class, y.class);
        }
        let c = heavy_tailed_trace(&cfg(43));
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.spec.total_bytes != y.spec.total_bytes));
    }

    #[test]
    fn stencil_frac_mixes_families_and_default_stays_pure_map() {
        // Default knob: every job is a map pipeline (and, because the
        // workload draw is skipped entirely, the draw sequence matches
        // traces generated before the knob existed — serve_study.csv
        // pins that down byte-for-byte).
        let base = heavy_tailed_trace(&cfg(11));
        assert!(base.iter().all(|j| j.spec.workload == Workload::Map));
        // At 40% the mix contains both families and every stencil spec
        // is well-formed: halo under the chunk, whole elements.
        let mut mixed_cfg = cfg(11);
        mixed_cfg.stencil_frac = 0.4;
        let mixed = heavy_tailed_trace(&mixed_cfg);
        let stencils = mixed
            .iter()
            .filter(|j| matches!(j.spec.workload, Workload::Stencil { .. }))
            .count();
        assert!(
            stencils > 100 && stencils < 300,
            "stencil count {stencils} of {}",
            mixed.len()
        );
        for j in &mixed {
            j.spec.validate().unwrap();
            if let Workload::Stencil { halo_bytes } = j.spec.workload {
                assert!(halo_bytes < j.spec.chunk_bytes);
                assert_eq!(halo_bytes % 8, 0);
            }
        }
    }

    #[test]
    fn trace_has_the_advertised_shape() {
        let jobs = heavy_tailed_trace(&cfg(7));
        assert_eq!(jobs.len(), 400);
        // Arrivals are sorted and strictly past zero.
        for w in jobs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        assert!(jobs[0].arrival > 0.0);
        // All three classes occur, interactive dominating.
        let count = |c: DeadlineClass| jobs.iter().filter(|j| j.class == c).count();
        let inter = count(DeadlineClass::Interactive);
        let std_ = count(DeadlineClass::Standard);
        let batch = count(DeadlineClass::Batch);
        assert!(inter > std_ && std_ > batch && batch > 0);
        // Heavy tail: the biggest job dwarfs the median.
        let mut sizes: Vec<u64> = jobs.iter().map(|j| j.spec.total_bytes).collect();
        sizes.sort_unstable();
        assert!(sizes[sizes.len() - 1] > 4 * sizes[sizes.len() / 2]);
        // Every spec is valid and every batch job is Pareto-bounded.
        for j in &jobs {
            j.spec.validate().unwrap();
            if j.class == DeadlineClass::Batch {
                assert!(j.spec.total_bytes >= 32 * GIB - 8);
                assert!(j.spec.total_bytes <= 256 * GIB);
            }
        }
    }
}
