//! Per-node serving state: one broker, one ready queue, one running set.
//!
//! [`NodeSim`] is the single-node state machine the virtual-time scheduler
//! ([`crate::sched::serve`]) drives — and, because a fleet is N of these
//! behind a placement layer, the exact same state machine `mlm-fleet`'s
//! dispatcher drives per node. Extracting it means the fleet's "a 1-node
//! fleet is bit-identical to `serve`" guarantee holds by construction:
//! both paths execute the same floating-point operations in the same
//! order on the same state.
//!
//! The driver contract, per event time `now` (in this order):
//!
//! 1. [`NodeSim::submit`] every due arrival (the driver owns arrival
//!    ordering and rejection records),
//! 2. [`NodeSim::complete_due`] finished jobs,
//! 3. [`NodeSim::admit`] under the node's policy,
//! 4. decide termination ([`NodeSim::is_drained`]),
//! 5. [`NodeSim::retune_and_allocate`] for the new co-residency degree,
//! 6. pick the next event time (≥ [`NodeSim::next_completion`]),
//! 7. [`NodeSim::advance`] to it.

use knl_sim::bandwidth::{allocate_rates, FlowSpec};
use knl_sim::MemLevel;
use mlm_core::Placement;
use mlm_memkind::Reservation;

use crate::admission::{charge_credit, select_candidate};
use crate::broker::{AdmitOutcome, CapacityBroker, RING_SLOTS};
use crate::job::{DeadlineClass, JobId, JobRecord, JobRequest, N_CLASSES};
use crate::policy::{predicted_makespan, profile, JobProfile};
use crate::sched::ServeConfig;

/// Resource indices in the job-level bandwidth arbitration.
const DDR_BUS: usize = 0;
const MCD_BUS: usize = 1;

/// A job's remaining work is tracked as a fraction so the service time can
/// be re-derived whenever the thread budget changes mid-flight.
pub const DONE_EPS: f64 = 1e-9;

struct Running {
    idx: usize,
    start: f64,
    frac_left: f64,
    effective: Placement,
    reservation: Option<Reservation>,
    profile: JobProfile,
}

/// One admission decision: the job and where its buffers landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Admitted job.
    pub id: JobId,
    /// Memory level of the buffer reservation (`Ddr` for footprint-free
    /// jobs, which reserve nothing).
    pub level: MemLevel,
}

/// The serving state of one node.
pub struct NodeSim {
    cfg: ServeConfig,
    broker: CapacityBroker,
    caps: [f64; 2],
    total_threads: usize,
    // Jobs placed on this node, in placement order; parallel vectors.
    jobs: Vec<JobRequest>,
    est: Vec<f64>,
    ids: Vec<JobId>,
    classes: Vec<DeadlineClass>,
    spill_ok: Vec<bool>,
    ready: Vec<usize>, // placement order
    running: Vec<Running>,
    rates: Vec<f64>, // parallel to `running`, valid after retune_and_allocate
    credit: [f64; N_CLASSES],
    records: Vec<JobRecord>,
}

impl NodeSim {
    /// A node with an empty queue. `cfg.machine` must be valid.
    pub fn new(cfg: ServeConfig) -> Result<Self, String> {
        cfg.machine.validate().map_err(|e| e.to_string())?;
        let broker = CapacityBroker::new(&cfg.machine, cfg.mcdram_budget, cfg.spill);
        let caps = [
            cfg.machine.ddr_bandwidth,
            cfg.machine.effective_mcdram_bandwidth(),
        ];
        let total_threads = cfg.machine.total_threads();
        Ok(NodeSim {
            cfg,
            broker,
            caps,
            total_threads,
            jobs: Vec::new(),
            est: Vec::new(),
            ids: Vec::new(),
            classes: Vec::new(),
            spill_ok: Vec::new(),
            ready: Vec::new(),
            running: Vec::new(),
            rates: Vec::new(),
            credit: [0.0; N_CLASSES],
            records: Vec::new(),
        })
    }

    /// Queue `job` on this node. `strict` pins an HBW job to MCDRAM even
    /// on a spill-capable node (`HBW` vs `HBW_PREFERRED` semantics,
    /// decided per job by the fleet's placement layer; `serve` passes
    /// `false` so the node's own spill policy governs).
    ///
    /// Returns `false` — without queueing — when the job's ring can never
    /// fit this node, so the caller can reject or try another node.
    pub fn submit(&mut self, job: JobRequest, strict: bool) -> bool {
        let spill_ok = !strict;
        if !self.broker.can_ever_fit_job(&job.spec, spill_ok) {
            return false;
        }
        let idx = self.jobs.len();
        self.est
            .push(predicted_makespan(&job.spec, &self.cfg.machine));
        self.ids.push(job.id);
        self.classes.push(job.class);
        self.spill_ok.push(spill_ok);
        if strict {
            self.broker.note_strict_queued(strict_footprint(&job.spec));
        }
        self.jobs.push(job);
        self.ready.push(idx);
        true
    }

    /// Sweep completions: jobs whose remaining fraction reached zero
    /// return their reservation and produce a [`JobRecord`] at `now`.
    pub fn complete_due(&mut self, now: f64) -> Result<(), String> {
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].frac_left <= DONE_EPS {
                let r = self.running.swap_remove(i);
                if let Some(res) = &r.reservation {
                    self.broker.release(res).map_err(|e| e.to_string())?;
                }
                let job = &self.jobs[r.idx];
                self.records.push(JobRecord {
                    id: job.id,
                    class: job.class,
                    arrival: job.arrival,
                    start: r.start,
                    finish: now,
                    buffer_level: match &r.reservation {
                        Some(res) => res.level(),
                        None => MemLevel::Ddr,
                    },
                    split: r.profile.split,
                });
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// One admission pass: admit ready jobs in policy order until the
    /// broker reports `Busy` (FIFO/SJF stop at their head; fair-share
    /// skips the blocked class and keeps trying the others). Returns the
    /// admissions made, in order.
    pub fn admit(&mut self, now: f64) -> Result<Vec<Admission>, String> {
        let mut admitted = Vec::new();
        let mut blocked = [false; N_CLASSES];
        // EASY-backfill reservation for the first aged (long-bypassed) job
        // found this pass: the projected time its ring fits. Jobs admitted
        // after the reservation must be predicted to finish before it.
        let mut backfill_horizon: Option<f64> = None;
        loop {
            let pos = select_candidate(
                self.cfg.policy,
                &self.ready,
                &self.est,
                &self.ids,
                &self.classes,
                &self.credit,
                &blocked,
            );
            let Some(pos) = pos else { break };
            let idx = self.ready[pos];
            let job = &self.jobs[idx];
            let footprint = match job.spec.placement {
                Placement::Hbw => job.spec.buffer_footprint(RING_SLOTS),
                Placement::Ddr | Placement::Implicit => 0,
            };
            // A backfill candidate that needs MCDRAM must be predicted to
            // finish before the reserved job's projected start.
            if let Some(horizon) = backfill_horizon {
                if footprint > 0 && now + self.est[idx] > horizon {
                    blocked[job.class.index()] = true;
                    if blocked.iter().all(|&b| b) {
                        break;
                    }
                    continue;
                }
            }
            match self.broker.try_admit_job(&job.spec, self.spill_ok[idx])? {
                AdmitOutcome::Admitted(reservation) => {
                    self.ready.remove(pos);
                    if !self.spill_ok[idx] {
                        self.broker
                            .note_strict_dequeued(strict_footprint(&job.spec));
                    }
                    let effective = match &reservation {
                        Some(res) if res.level() == MemLevel::Ddr => Placement::Ddr,
                        _ => job.spec.placement,
                    };
                    // Placeholder profile; the driver's retune step
                    // recomputes it for the new co-residency degree
                    // before any time passes.
                    let prof = profile(
                        &job.spec,
                        effective,
                        &self.cfg.machine,
                        self.cfg.machine.total_threads(),
                        self.cfg.retune,
                    )?;
                    admitted.push(Admission {
                        id: job.id,
                        level: match &reservation {
                            Some(res) => res.level(),
                            None => MemLevel::Ddr,
                        },
                    });
                    self.running.push(Running {
                        idx,
                        start: now,
                        frac_left: 1.0,
                        effective,
                        reservation,
                        profile: prof,
                    });
                    charge_credit(
                        self.cfg.policy,
                        &mut self.credit,
                        self.classes[idx],
                        self.est[idx],
                    );
                }
                AdmitOutcome::Busy => match self.cfg.policy {
                    crate::policy::Policy::Fifo | crate::policy::Policy::Sjf => break,
                    crate::policy::Policy::FairShare => {
                        // Starvation aging: the first job bypassed past
                        // the bound gets an EASY-backfill reservation at
                        // its projected fit time, so backfilling can no
                        // longer postpone it forever.
                        if backfill_horizon.is_none() && now - job.arrival > self.cfg.fair_aging {
                            backfill_horizon = Some(self.fit_time(footprint, now));
                        }
                        blocked[job.class.index()] = true;
                        if blocked.iter().all(|&b| b) {
                            break;
                        }
                    }
                },
            }
        }
        Ok(admitted)
    }

    /// Optimistically project when `need` bytes of MCDRAM will be free,
    /// by walking running jobs' dedicated-speed remaining times in
    /// completion order. Contention only pushes real completions later,
    /// so a backfill window computed from this estimate errs in the
    /// reserved job's favour.
    fn fit_time(&self, need: u64, now: f64) -> f64 {
        let mut free = self
            .broker
            .budget()
            .saturating_sub(self.broker.reserved_mcdram());
        if free >= need {
            return now;
        }
        let mut finishes: Vec<(f64, u64)> = self
            .running
            .iter()
            .filter_map(|r| {
                let res = r.reservation.as_ref()?;
                (res.level() == MemLevel::Mcdram)
                    .then(|| (now + r.frac_left * r.profile.t0, res.bytes()))
            })
            .collect();
        finishes.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, bytes) in finishes {
            free = free.saturating_add(bytes);
            if free >= need {
                return t;
            }
        }
        f64::INFINITY
    }

    /// Nothing queued and nothing running.
    pub fn is_drained(&self) -> bool {
        self.running.is_empty() && self.ready.is_empty()
    }

    /// Re-tune every running job for the current co-residency degree and
    /// recompute the max–min-fair bus rates. Must run after any change to
    /// the running set and before [`Self::next_completion`] /
    /// [`Self::advance`].
    pub fn retune_and_allocate(&mut self) -> Result<(), String> {
        let budget = (self.total_threads / self.running.len().max(1)).max(3);
        for r in &mut self.running {
            r.profile = profile(
                &self.jobs[r.idx].spec,
                r.effective,
                &self.cfg.machine,
                budget,
                self.cfg.retune,
            )?;
        }
        // Fair bus rates for the running set. Each job is a flow whose
        // unit is "dedicated-seconds per second" (cap 1.0) and whose bus
        // coefficients are bytes per dedicated-second.
        let flows: Vec<FlowSpec> = self
            .running
            .iter()
            .map(|r| {
                let mut demand = Vec::with_capacity(2);
                if r.profile.ddr_coeff > 0.0 {
                    demand.push((DDR_BUS, r.profile.ddr_coeff));
                }
                if r.profile.mcd_coeff > 0.0 {
                    demand.push((MCD_BUS, r.profile.mcd_coeff));
                }
                FlowSpec { demand, cap: 1.0 }
            })
            .collect();
        self.rates = allocate_rates(&self.caps, &flows);
        Ok(())
    }

    /// Absolute time of this node's earliest completion (`INFINITY` when
    /// nothing is running or nothing can progress).
    pub fn next_completion(&self, now: f64) -> f64 {
        let mut t_next = f64::INFINITY;
        for (r, &rate) in self.running.iter().zip(&self.rates) {
            if rate > 0.0 {
                t_next = t_next.min(now + r.frac_left * r.profile.t0 / rate);
            }
        }
        t_next
    }

    /// Progress every running job from `now` to `t_next` at its allocated
    /// rate.
    pub fn advance(&mut self, now: f64, t_next: f64) {
        let dt = (t_next - now).max(0.0);
        for (r, &rate) in self.running.iter_mut().zip(&self.rates) {
            r.frac_left = (r.frac_left - rate * dt / r.profile.t0).max(0.0);
        }
    }

    /// Number of jobs currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Number of jobs waiting in the ready queue.
    pub fn queue_len(&self) -> usize {
        self.ready.len()
    }

    /// The queued job at queue position `pos` (with its strictness), for
    /// steal scans.
    pub fn queued_at(&self, pos: usize) -> (&JobRequest, bool) {
        let idx = self.ready[pos];
        (&self.jobs[idx], !self.spill_ok[idx])
    }

    /// Remove the queued job at queue position `pos` (work stealing).
    /// Strict-queue accounting is unwound; the job itself is returned so
    /// the thief can [`Self::submit`] it.
    pub fn steal_at(&mut self, pos: usize) -> (JobRequest, bool) {
        let idx = self.ready.remove(pos);
        let strict = !self.spill_ok[idx];
        let job = self.jobs[idx].clone();
        if strict {
            self.broker
                .note_strict_dequeued(strict_footprint(&job.spec));
        }
        (job, strict)
    }

    /// The node's capacity broker (headroom / backlog signals for
    /// placement and stealing).
    pub fn broker(&self) -> &CapacityBroker {
        &self.broker
    }

    /// Whether `spec` could ever fit this node, given per-job strictness.
    pub fn can_ever_fit(&self, spec: &mlm_core::PipelineSpec, strict: bool) -> bool {
        self.broker.can_ever_fit_job(spec, !strict)
    }

    /// Whether `spec` can start *right now*: strict rings need current
    /// MCDRAM headroom; preferred jobs on a spill node can always fall
    /// back to DDR.
    pub fn fits_now(&self, spec: &mlm_core::PipelineSpec, strict: bool) -> bool {
        let footprint = match spec.placement {
            Placement::Hbw => spec.buffer_footprint(RING_SLOTS),
            Placement::Ddr | Placement::Implicit => 0,
        };
        if footprint == 0 {
            return true;
        }
        footprint <= self.broker.hbw_headroom() || (!strict && self.cfg.spill)
    }

    /// The node's serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Consume the node, yielding its completion records (unsorted).
    pub fn into_records(self) -> Vec<JobRecord> {
        self.records
    }
}

/// MCDRAM bytes a strict-HBW job's queued ring pins for backlog
/// accounting (zero for DDR/implicit jobs, which never wait on MCDRAM).
fn strict_footprint(spec: &mlm_core::PipelineSpec) -> u64 {
    match spec.placement {
        Placement::Hbw => spec.buffer_footprint(RING_SLOTS),
        Placement::Ddr | Placement::Implicit => 0,
    }
}
