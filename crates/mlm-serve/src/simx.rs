//! Co-scheduled replay in the op-level simulator.
//!
//! The virtual-time scheduler ([`crate::sched::serve`]) decides *when* each
//! job starts; this module lowers a realized schedule to one composed
//! [`knl_sim`] program so the op-level engine can price the co-residency:
//! each job's pipeline is built with [`mlm_core::pipeline::sim::build_program`]
//! and spliced onto its own block of simulated threads, gated behind a
//! [`OpKind::Delay`] equal to the job's start time. Co-resident jobs then
//! contend flow-by-flow in the engine's max–min-fair bus arbiter — the
//! fine-grained ground truth the job-level model approximates.
//!
//! A job starting at `t = 0` gets no delay op at all, so a single-job
//! replay is the *identical* program `build_program` produces — bit-for-bit
//! equal makespans, which the property tests pin down.
//!
//! `build_program` is itself the generic plan-to-program lowering: it
//! drives the spec's [`WorkloadPlan`](mlm_exec::plan::WorkloadPlan)
//! through the simulator backend, so nothing here is coupled to any one
//! workload family. A realized schedule may freely mix map, sort-shaped,
//! and stencil pipelines; each job's halo traffic and ring depth come
//! from its own plan.

use knl_sim::machine::MachineConfig;
use knl_sim::ops::{OpKind, Program};
use knl_sim::{SimReport, Simulator};
use mlm_core::pipeline::sim::build_program;
use mlm_core::PipelineSpec;

use crate::job::JobId;

/// One entry of a realized schedule: job `id` starts `spec` at `start`
/// seconds of virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledJob {
    /// Job identifier carried through to the stats.
    pub id: JobId,
    /// Virtual start time in seconds (a queue-admission decision).
    pub start: f64,
    /// The pipeline to run.
    pub spec: PipelineSpec,
}

/// Per-job timing observed in the op-level replay.
#[derive(Debug, Clone)]
pub struct SimJobStats {
    /// Job identifier.
    pub id: JobId,
    /// Scheduled start (the delay gate).
    pub start: f64,
    /// Virtual time the job's last op completed.
    pub finish: f64,
    /// `finish - start`: the job's makespan under contention.
    pub makespan: f64,
}

/// Compose the jobs into one program on disjoint thread blocks.
///
/// Returns the program and, per job, the half-open op-id range of its
/// pipeline ops (delay gates excluded — they end exactly at `start` and
/// carry no work).
pub fn co_schedule_program(
    jobs: &[ScheduledJob],
) -> Result<(Program, Vec<(usize, usize)>), String> {
    let total: usize = jobs.iter().map(|j| j.spec.threads()).sum();
    let mut prog = Program::new(total.max(1));
    let mut spans = Vec::with_capacity(jobs.len());
    let mut offset = 0usize;
    for j in jobs {
        if !(j.start.is_finite() && j.start >= 0.0) {
            return Err(format!("job {}: bad start time {}", j.id, j.start));
        }
        let threads = j.spec.threads();
        if j.start > 0.0 {
            // Gate every thread of the job's block so no op — the head of
            // each per-thread queue included — runs before the start time.
            for t in offset..offset + threads {
                prog.push(t, OpKind::Delay { seconds: j.start }, &[]);
            }
        }
        let sub = build_program(&j.spec)?;
        let lo = prog.ops().len();
        prog.splice(&sub, offset).map_err(|e| e.to_string())?;
        spans.push((lo, prog.ops().len()));
        offset += threads;
    }
    Ok((prog, spans))
}

/// Replay a realized schedule op-by-op on `machine`.
///
/// Thread blocks are dedicated per job (the replay may oversubscribe the
/// machine's hardware threads; bus contention, not thread contention, is
/// what this backend prices).
pub fn replay(
    machine: &MachineConfig,
    jobs: &[ScheduledJob],
) -> Result<(Vec<SimJobStats>, SimReport), String> {
    if jobs.is_empty() {
        return Ok((Vec::new(), SimReport::default()));
    }
    let (prog, spans) = co_schedule_program(jobs)?;
    let sim = Simulator::try_new(machine.clone()).map_err(|e| e.to_string())?;
    let (report, trace) = sim.run_traced(&prog).map_err(|e| e.to_string())?;
    let mut finish = vec![0.0f64; jobs.len()];
    for rec in &trace.ops {
        if let Some(k) = spans
            .iter()
            .position(|&(lo, hi)| rec.op >= lo && rec.op < hi)
        {
            finish[k] = finish[k].max(rec.end);
        }
    }
    let stats = jobs
        .iter()
        .zip(&finish)
        .map(|(j, &f)| SimJobStats {
            id: j.id,
            start: j.start,
            finish: f,
            makespan: f - j.start,
        })
        .collect();
    Ok((stats, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;
    use knl_sim::GIB;
    use mlm_core::{Placement, Workload};

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn spec(total: u64, passes: u32) -> PipelineSpec {
        PipelineSpec {
            total_bytes: total,
            chunk_bytes: GIB / 4,
            p_in: 2,
            p_out: 2,
            p_comp: 8,
            compute_passes: passes,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn stencil_spec(total: u64, passes: u32) -> PipelineSpec {
        let mut s = spec(total, passes);
        s.workload = Workload::Stencil {
            halo_bytes: GIB / 64,
        };
        s
    }

    #[test]
    fn single_job_replay_is_bit_identical_to_direct_run() {
        let s = spec(2 * GIB, 2);
        let sim = Simulator::new(machine());
        let direct = sim.run(&build_program(&s).unwrap()).unwrap();
        let (stats, report) = replay(
            &machine(),
            &[ScheduledJob {
                id: 1,
                start: 0.0,
                spec: s,
            }],
        )
        .unwrap();
        assert_eq!(report.makespan.to_bits(), direct.makespan.to_bits());
        assert_eq!(stats[0].makespan.to_bits(), direct.makespan.to_bits());
    }

    #[test]
    fn single_stencil_job_replay_is_bit_identical_to_direct_run() {
        // Same bit-identity guarantee for the stencil family: the replay
        // splices whatever program the generic lowering emits, halo
        // traffic and 4-slot ring included.
        let s = stencil_spec(2 * GIB, 2);
        let sim = Simulator::new(machine());
        let direct = sim.run(&build_program(&s).unwrap()).unwrap();
        let (stats, report) = replay(
            &machine(),
            &[ScheduledJob {
                id: 1,
                start: 0.0,
                spec: s,
            }],
        )
        .unwrap();
        assert_eq!(report.makespan.to_bits(), direct.makespan.to_bits());
        assert_eq!(stats[0].makespan.to_bits(), direct.makespan.to_bits());
    }

    #[test]
    fn mixed_map_and_stencil_batch_replays() {
        let jobs = [
            ScheduledJob {
                id: 0,
                start: 0.0,
                spec: spec(GIB, 2),
            },
            ScheduledJob {
                id: 1,
                start: 0.25,
                spec: stencil_spec(GIB, 2),
            },
        ];
        let (stats, report) = replay(&machine(), &jobs).unwrap();
        assert_eq!(stats.len(), 2);
        for j in &stats {
            assert!(j.makespan > 0.0, "job {} did no work", j.id);
        }
        let last = stats.iter().map(|j| j.finish).fold(0.0f64, f64::max);
        assert_eq!(report.makespan.to_bits(), last.to_bits());
        // The stencil twin reads two halos per interior chunk on top of
        // the map job's traffic, so alone on the machine it can never be
        // faster than the map job of identical size, passes, and split.
        let map_solo = replay(
            &machine(),
            &[ScheduledJob {
                id: 0,
                start: 0.0,
                spec: spec(GIB, 2),
            }],
        )
        .unwrap()
        .0[0]
            .makespan;
        let stencil_solo = replay(
            &machine(),
            &[ScheduledJob {
                id: 0,
                start: 0.0,
                spec: stencil_spec(GIB, 2),
            }],
        )
        .unwrap()
        .0[0]
            .makespan;
        assert!(
            stencil_solo >= map_solo,
            "stencil {stencil_solo} vs map {map_solo}"
        );
    }

    #[test]
    fn delay_gate_shifts_a_job_wholesale() {
        let s = spec(GIB, 1);
        let solo = replay(
            &machine(),
            &[ScheduledJob {
                id: 1,
                start: 0.0,
                spec: s.clone(),
            }],
        )
        .unwrap()
        .0[0]
            .makespan;
        let (stats, _) = replay(
            &machine(),
            &[ScheduledJob {
                id: 1,
                start: 5.0,
                spec: s,
            }],
        )
        .unwrap();
        assert_eq!(stats[0].start, 5.0);
        // Alone on the machine, delay does not change the job's makespan.
        assert!((stats[0].makespan - solo).abs() < 1e-9 * solo.max(1.0));
        assert!((stats[0].finish - (5.0 + solo)).abs() < 1e-9 * solo.max(1.0));
    }

    #[test]
    fn overlapping_jobs_contend_disjoint_jobs_do_not() {
        // Heavy enough that one copy alone nearly saturates MCDRAM
        // (48 x 6.78 GB/s of compute + copies), so a second co-resident
        // copy must slow both down.
        let mut s = spec(GIB, 4);
        s.p_in = 8;
        s.p_out = 8;
        s.p_comp = 48;
        let solo = replay(
            &machine(),
            &[ScheduledJob {
                id: 0,
                start: 0.0,
                spec: s.clone(),
            }],
        )
        .unwrap()
        .0[0]
            .makespan;
        // Two copies starting together: bus contention stretches both.
        let together = replay(
            &machine(),
            &[
                ScheduledJob {
                    id: 0,
                    start: 0.0,
                    spec: s.clone(),
                },
                ScheduledJob {
                    id: 1,
                    start: 0.0,
                    spec: s.clone(),
                },
            ],
        )
        .unwrap()
        .0;
        assert!(together.iter().all(|j| j.makespan > solo * 1.01));
        // Far-apart starts: no overlap, each runs at solo speed.
        let apart = replay(
            &machine(),
            &[
                ScheduledJob {
                    id: 0,
                    start: 0.0,
                    spec: s.clone(),
                },
                ScheduledJob {
                    id: 1,
                    start: 1000.0,
                    spec: s,
                },
            ],
        )
        .unwrap()
        .0;
        for j in &apart {
            assert!(
                (j.makespan - solo).abs() < 1e-9 * solo,
                "job {} makespan {} vs solo {solo}",
                j.id,
                j.makespan
            );
        }
    }

    #[test]
    fn empty_schedule_is_empty() {
        let (stats, report) = replay(&machine(), &[]).unwrap();
        assert!(stats.is_empty());
        assert_eq!(report.makespan, 0.0);
    }
}
