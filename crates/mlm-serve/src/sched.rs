//! The serving loop: a deterministic virtual-time event scheduler for
//! concurrent pipeline jobs.
//!
//! Jobs are modelled at the granularity the fleet cares about: each running
//! job is a *flow* whose dedicated-machine service time comes from the
//! §3.2 model ([`crate::policy::profile`]) and whose progress under
//! co-residency is arbitrated by the same max–min-fair water-filling
//! ([`knl_sim::bandwidth::allocate_rates`]) the simulator applies to
//! individual ops — a job demands DDR and MCDRAM bus bytes in proportion
//! to its progress rate, and busy buses slow every job leaning on them.
//!
//! The loop advances from event to event (arrival or completion). At each
//! event it:
//!
//! 1. completes finished jobs and releases their broker reservations,
//! 2. runs the admission policy over the ready queue,
//! 3. re-runs the Eqs. 1–5 tuner for every running job (the per-job thread
//!    budget changes with the co-resident set), and
//! 4. recomputes the fair bus rates.
//!
//! Everything is pure arithmetic over the trace — no wall clock, no RNG —
//! so a fixed trace always produces bit-identical results.

use knl_sim::bandwidth::{allocate_rates, FlowSpec};
use knl_sim::machine::MachineConfig;
use knl_sim::MemLevel;
use mlm_core::Placement;
use mlm_memkind::Reservation;

use crate::broker::{AdmitOutcome, CapacityBroker};
use crate::job::{JobRecord, JobRequest, Rejection, N_CLASSES};
use crate::policy::{predicted_makespan, profile, JobProfile, Policy};
use crate::stats::FleetStats;

/// Resource indices in the job-level bandwidth arbitration.
const DDR_BUS: usize = 0;
const MCD_BUS: usize = 1;

/// A job's remaining work is tracked as a fraction so the service time can
/// be re-derived whenever the thread budget changes mid-flight.
const DONE_EPS: f64 = 1e-9;

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The node being shared.
    pub machine: MachineConfig,
    /// Admission policy.
    pub policy: Policy,
    /// MCDRAM bytes the broker may hand out (clamped to addressable).
    pub mcdram_budget: u64,
    /// `HBW_PREFERRED` semantics: spill to DDR instead of queueing.
    pub spill: bool,
    /// Re-run the Eqs. 1–5 optimiser per job as co-residency changes.
    /// When off, jobs keep their submitted pool sizes.
    pub retune: bool,
    /// Fair-share starvation bound (seconds). A capacity-blocked job
    /// bypassed for longer than this gets an EASY-backfill reservation:
    /// the scheduler projects when completions will have freed enough
    /// MCDRAM for it, and only admits other jobs whose model-predicted
    /// makespan ends before that point (or that need no MCDRAM). Small
    /// jobs keep flowing through genuinely spare capacity, but can no
    /// longer fragment MCDRAM forever and starve big rings. Default
    /// `INFINITY` (off): the reservation costs throughput wherever it
    /// binds, so it is a worst-case-latency guarantee to opt into, not a
    /// tail-latency optimisation.
    pub fair_aging: f64,
}

impl ServeConfig {
    /// Defaults: FIFO, full addressable MCDRAM, strict (no spill), retuned.
    pub fn new(machine: MachineConfig) -> Self {
        let budget = machine.addressable_mcdram();
        ServeConfig {
            machine,
            policy: Policy::Fifo,
            mcdram_budget: budget,
            spill: false,
            retune: true,
            fair_aging: f64::INFINITY,
        }
    }
}

/// Everything a serving run produces.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-job outcomes, sorted by job id.
    pub records: Vec<JobRecord>,
    /// Jobs refused at submission.
    pub rejections: Vec<Rejection>,
    /// Fleet-level summary.
    pub fleet: FleetStats,
}

struct Running {
    idx: usize,
    start: f64,
    frac_left: f64,
    effective: Placement,
    reservation: Option<Reservation>,
    profile: JobProfile,
}

/// Serve `jobs` (any order; sorted internally by arrival) under `cfg`.
pub fn serve(cfg: &ServeConfig, jobs: &[JobRequest]) -> Result<ServeOutcome, String> {
    cfg.machine.validate().map_err(|e| e.to_string())?;
    for j in jobs {
        j.spec
            .validate()
            .map_err(|e| format!("job {}: {e}", j.id))?;
        if !(j.arrival.is_finite() && j.arrival >= 0.0) {
            return Err(format!("job {}: bad arrival time {}", j.id, j.arrival));
        }
    }

    let mut broker = CapacityBroker::new(&cfg.machine, cfg.mcdram_budget, cfg.spill);
    let est: Vec<f64> = jobs
        .iter()
        .map(|j| predicted_makespan(&j.spec, &cfg.machine))
        .collect();

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival
            .total_cmp(&jobs[b].arrival)
            .then(jobs[a].id.cmp(&jobs[b].id))
    });

    let caps = [
        cfg.machine.ddr_bandwidth,
        cfg.machine.effective_mcdram_bandwidth(),
    ];
    let total_threads = cfg.machine.total_threads();

    let mut next_arrival = 0usize;
    let mut ready: Vec<usize> = Vec::new(); // arrival order
    let mut running: Vec<Running> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut rejections: Vec<Rejection> = Vec::new();
    let mut credit = [0.0f64; N_CLASSES];
    let mut now = 0.0f64;

    loop {
        // 1. Arrivals due at or before `now` join the ready queue (or are
        // rejected outright when they can never fit).
        while next_arrival < order.len() && jobs[order[next_arrival]].arrival <= now + DONE_EPS {
            let idx = order[next_arrival];
            next_arrival += 1;
            if broker.can_ever_fit(&jobs[idx].spec) {
                ready.push(idx);
            } else {
                rejections.push(Rejection {
                    id: jobs[idx].id,
                    reason: format!(
                        "buffer ring of {} B exceeds the {} B MCDRAM budget",
                        jobs[idx].spec.buffer_footprint(crate::broker::RING_SLOTS),
                        broker.budget()
                    ),
                });
            }
        }

        // 2. Completions: a finished job returns its reservation before
        // admission runs, so freed capacity is immediately re-usable.
        let mut i = 0;
        while i < running.len() {
            if running[i].frac_left <= DONE_EPS {
                let r = running.swap_remove(i);
                if let Some(res) = &r.reservation {
                    broker.release(res)?;
                }
                let job = &jobs[r.idx];
                records.push(JobRecord {
                    id: job.id,
                    class: job.class,
                    arrival: job.arrival,
                    start: r.start,
                    finish: now,
                    buffer_level: match &r.reservation {
                        Some(res) => res.level(),
                        None => MemLevel::Ddr,
                    },
                    split: r.profile.split,
                });
            } else {
                i += 1;
            }
        }

        // 3. Admission under the configured policy.
        admit(
            cfg,
            &mut broker,
            jobs,
            &est,
            &mut ready,
            &mut running,
            &mut credit,
            now,
        )?;

        // 4. Termination.
        if running.is_empty() && ready.is_empty() && next_arrival >= order.len() {
            break;
        }

        // 5. Re-tune every running job for the current co-residency degree
        // and re-derive its bus demand coefficients.
        let budget = (total_threads / running.len().max(1)).max(3);
        for r in &mut running {
            r.profile = profile(
                &jobs[r.idx].spec,
                r.effective,
                &cfg.machine,
                budget,
                cfg.retune,
            )?;
        }

        // 6. Fair bus rates for the running set. Each job is a flow whose
        // unit is "dedicated-seconds per second" (cap 1.0) and whose bus
        // coefficients are bytes per dedicated-second.
        let flows: Vec<FlowSpec> = running
            .iter()
            .map(|r| {
                let mut demand = Vec::with_capacity(2);
                if r.profile.ddr_coeff > 0.0 {
                    demand.push((DDR_BUS, r.profile.ddr_coeff));
                }
                if r.profile.mcd_coeff > 0.0 {
                    demand.push((MCD_BUS, r.profile.mcd_coeff));
                }
                FlowSpec { demand, cap: 1.0 }
            })
            .collect();
        let rates = allocate_rates(&caps, &flows);

        // 7. Advance to the next event.
        let mut t_next = f64::INFINITY;
        for (r, &rate) in running.iter().zip(&rates) {
            if rate > 0.0 {
                t_next = t_next.min(now + r.frac_left * r.profile.t0 / rate);
            }
        }
        if next_arrival < order.len() {
            t_next = t_next.min(jobs[order[next_arrival]].arrival);
        }
        if !t_next.is_finite() {
            return Err(format!(
                "scheduler stuck at t={now}: {} queued, {} running, nothing can progress",
                ready.len(),
                running.len()
            ));
        }
        let dt = (t_next - now).max(0.0);
        for (r, &rate) in running.iter_mut().zip(&rates) {
            r.frac_left = (r.frac_left - rate * dt / r.profile.t0).max(0.0);
        }
        now = t_next;
    }

    records.sort_by_key(|r| r.id);
    let fleet = FleetStats::from_records(&records, rejections.len(), broker.high_water());
    Ok(ServeOutcome {
        records,
        rejections,
        fleet,
    })
}

/// One admission pass: admit ready jobs in policy order until the broker
/// reports `Busy` (FIFO/SJF stop at their head; fair-share skips the
/// blocked class and keeps trying the others).
#[allow(clippy::too_many_arguments)]
fn admit(
    cfg: &ServeConfig,
    broker: &mut CapacityBroker,
    jobs: &[JobRequest],
    est: &[f64],
    ready: &mut Vec<usize>,
    running: &mut Vec<Running>,
    credit: &mut [f64; N_CLASSES],
    now: f64,
) -> Result<(), String> {
    let mut blocked = [false; N_CLASSES];
    // EASY-backfill reservation for the first aged (long-bypassed) job
    // found this pass: the projected time its ring fits. Jobs admitted
    // after the reservation must be predicted to finish before it.
    let mut backfill_horizon: Option<f64> = None;
    loop {
        let pos = match cfg.policy {
            Policy::Fifo => {
                if ready.is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            Policy::Sjf => (0..ready.len()).min_by(|&a, &b| {
                est[ready[a]]
                    .total_cmp(&est[ready[b]])
                    .then(jobs[ready[a]].id.cmp(&jobs[ready[b]].id))
            }),
            Policy::FairShare => {
                // Lowest-credit class with an unblocked queued job; its
                // oldest job is the candidate.
                let mut best: Option<(f64, usize)> = None;
                for (pos, &idx) in ready.iter().enumerate() {
                    let c = jobs[idx].class.index();
                    if blocked[c] {
                        continue;
                    }
                    // First (oldest) queued job of each class wins within
                    // the class; classes compare by normalized credit.
                    let seen = best.map(|(_, p)| jobs[ready[p]].class.index() == c);
                    if seen == Some(true) {
                        continue;
                    }
                    match best {
                        Some((cr, _)) if credit[c] >= cr => {}
                        _ => best = Some((credit[c], pos)),
                    }
                }
                best.map(|(_, p)| p)
            }
        };
        let Some(pos) = pos else { break };
        let idx = ready[pos];
        let job = &jobs[idx];
        let footprint = match job.spec.placement {
            Placement::Hbw => job.spec.buffer_footprint(crate::broker::RING_SLOTS),
            Placement::Ddr | Placement::Implicit => 0,
        };
        // A backfill candidate that needs MCDRAM must be predicted to
        // finish before the reserved job's projected start.
        if let Some(horizon) = backfill_horizon {
            if footprint > 0 && now + est[idx] > horizon {
                blocked[job.class.index()] = true;
                if blocked.iter().all(|&b| b) {
                    break;
                }
                continue;
            }
        }
        match broker.try_admit(&job.spec)? {
            AdmitOutcome::Admitted(reservation) => {
                ready.remove(pos);
                let effective = match &reservation {
                    Some(res) if res.level() == MemLevel::Ddr => Placement::Ddr,
                    _ => job.spec.placement,
                };
                // Placeholder profile; step 5 of the main loop recomputes
                // it for the new co-residency degree before any time
                // passes.
                let prof = profile(
                    &job.spec,
                    effective,
                    &cfg.machine,
                    cfg.machine.total_threads(),
                    cfg.retune,
                )?;
                running.push(Running {
                    idx,
                    start: now,
                    frac_left: 1.0,
                    effective,
                    reservation,
                    profile: prof,
                });
                if cfg.policy == Policy::FairShare {
                    let c = job.class.index();
                    let service = if est[idx].is_finite() { est[idx] } else { 1.0 };
                    credit[c] += service / job.class.weight();
                }
            }
            AdmitOutcome::Busy => match cfg.policy {
                Policy::Fifo | Policy::Sjf => break,
                Policy::FairShare => {
                    // Starvation aging: the first job bypassed past the
                    // bound gets an EASY-backfill reservation at its
                    // projected fit time, so backfilling can no longer
                    // postpone it forever.
                    if backfill_horizon.is_none() && now - job.arrival > cfg.fair_aging {
                        backfill_horizon = Some(fit_time(broker, running, footprint, now));
                    }
                    blocked[job.class.index()] = true;
                    if blocked.iter().all(|&b| b) {
                        break;
                    }
                }
            },
        }
    }
    Ok(())
}

/// Optimistically project when `need` bytes of MCDRAM will be free, by
/// walking running jobs' dedicated-speed remaining times in completion
/// order. Contention only pushes real completions later, so a backfill
/// window computed from this estimate errs in the reserved job's favour.
fn fit_time(broker: &CapacityBroker, running: &[Running], need: u64, now: f64) -> f64 {
    let mut free = broker.budget().saturating_sub(broker.reserved_mcdram());
    if free >= need {
        return now;
    }
    let mut finishes: Vec<(f64, u64)> = running
        .iter()
        .filter_map(|r| {
            let res = r.reservation.as_ref()?;
            (res.level() == MemLevel::Mcdram)
                .then(|| (now + r.frac_left * r.profile.t0, res.bytes()))
        })
        .collect();
    finishes.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (t, bytes) in finishes {
        free = free.saturating_add(bytes);
        if free >= need {
            return t;
        }
    }
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::DeadlineClass;
    use knl_sim::machine::MemMode;
    use knl_sim::GIB;
    use mlm_core::PipelineSpec;

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn spec(total: u64, chunk: u64, passes: u32) -> PipelineSpec {
        PipelineSpec {
            total_bytes: total,
            chunk_bytes: chunk,
            p_in: 8,
            p_out: 8,
            p_comp: 64,
            compute_passes: passes,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
        }
    }

    fn cfg(policy: Policy, budget: u64) -> ServeConfig {
        ServeConfig {
            policy,
            mcdram_budget: budget,
            ..ServeConfig::new(machine())
        }
    }

    #[test]
    fn single_job_runs_at_dedicated_speed() {
        let c = cfg(Policy::Fifo, 16 * GIB);
        let s = spec(8 * GIB, GIB, 2);
        let jobs = [JobRequest::new(1, 0.0, DeadlineClass::Standard, s.clone())];
        let out = serve(&c, &jobs).unwrap();
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        assert_eq!(r.start, 0.0);
        // Alone on the machine, the job finishes in exactly its dedicated
        // service time for the full thread budget.
        let p = profile(
            &s,
            Placement::Hbw,
            &c.machine,
            c.machine.total_threads(),
            true,
        )
        .unwrap();
        assert!((r.finish - p.t0).abs() < 1e-6 * p.t0);
        assert_eq!(out.fleet.jobs, 1);
        assert_eq!(out.fleet.mcdram_high_water, 3 * GIB);
    }

    #[test]
    fn capacity_serialises_jobs_and_is_never_oversubscribed() {
        // 8 GiB budget, 6 GiB rings: only one job resident at a time.
        let c = cfg(Policy::Fifo, 8 * GIB);
        let s = spec(8 * GIB, 2 * GIB, 1);
        let jobs: Vec<JobRequest> = (0..3)
            .map(|i| JobRequest::new(i, 0.0, DeadlineClass::Standard, s.clone()))
            .collect();
        let out = serve(&c, &jobs).unwrap();
        assert_eq!(out.records.len(), 3);
        assert!(out.fleet.mcdram_high_water <= 8 * GIB);
        // Strictly serialised: each start coincides with the previous
        // finish, and only one job's interval overlaps any time point.
        let mut recs = out.records.clone();
        recs.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in recs.windows(2) {
            assert!(w[1].start >= w[0].finish - 1e-9);
        }
    }

    #[test]
    fn co_resident_jobs_share_bus_bandwidth() {
        // Two jobs whose rings fit together: both admitted at t=0, and bus
        // contention makes each slower than it would be alone (but the pair
        // finishes sooner than running back-to-back).
        let c = cfg(Policy::Fifo, 8 * GIB);
        let s = spec(16 * GIB, GIB, 4);
        let solo = serve(
            &c,
            &[JobRequest::new(0, 0.0, DeadlineClass::Standard, s.clone())],
        )
        .unwrap()
        .records[0]
            .finish;
        let jobs: Vec<JobRequest> = (0..2)
            .map(|i| JobRequest::new(i, 0.0, DeadlineClass::Standard, s.clone()))
            .collect();
        let out = serve(&c, &jobs).unwrap();
        let finish = out.fleet.makespan;
        assert!(
            finish > solo * 1.05,
            "contention must cost: {finish} vs solo {solo}"
        );
        assert!(
            finish < 2.0 * solo,
            "sharing must beat serialisation: {finish} vs {}",
            2.0 * solo
        );
        assert_eq!(out.records[0].start, 0.0);
        assert_eq!(out.records[1].start, 0.0);
    }

    #[test]
    fn fifo_head_of_line_blocks_small_jobs_but_fair_share_skips() {
        // Budget 8 GiB. A long-running 3 GiB-ring job holds capacity; a
        // batch elephant with a 6 GiB ring is next in FIFO order and
        // cannot fit; a tiny interactive job (1.5 GiB ring) arrives last.
        let c_fifo = cfg(Policy::Fifo, 8 * GIB);
        let holder = spec(256 * GIB, GIB, 8);
        let elephant = spec(128 * GIB, 2 * GIB, 4);
        let small = spec(2 * GIB, GIB / 2, 1);
        let jobs = vec![
            JobRequest::new(0, 0.0, DeadlineClass::Batch, holder),
            JobRequest::new(1, 1.0, DeadlineClass::Batch, elephant),
            JobRequest::new(2, 2.0, DeadlineClass::Interactive, small),
        ];
        let fifo = serve(&c_fifo, &jobs).unwrap();
        let fair = serve(&cfg(Policy::FairShare, 8 * GIB), &jobs).unwrap();
        let lat =
            |o: &ServeOutcome, id: u64| o.records.iter().find(|r| r.id == id).unwrap().latency();
        // Under FIFO the small job waits behind the elephant that cannot
        // even start; fair-share admits it immediately (1.5 GiB fits in
        // the 5 GiB left by the holder).
        assert!(
            lat(&fair, 2) < lat(&fifo, 2) / 2.0,
            "fair {} vs fifo {}",
            lat(&fair, 2),
            lat(&fifo, 2)
        );
    }

    #[test]
    fn fair_aging_bounds_starvation_of_big_rings() {
        // Budget 8 GiB. A 3 GiB-ring holder runs; a 6 GiB-ring elephant
        // arrives and can never fit while a dense stream of 1.5 GiB-ring
        // interactive jobs keeps fragmenting the spare capacity. Pure
        // fair-share starves the elephant until the stream dries up; with
        // an aging bound the elephant gets an EASY-backfill reservation
        // and runs much earlier.
        let mut jobs = vec![
            JobRequest::new(0, 0.0, DeadlineClass::Standard, spec(64 * GIB, GIB, 4)),
            JobRequest::new(1, 0.5, DeadlineClass::Batch, spec(64 * GIB, 2 * GIB, 4)),
        ];
        for i in 0..120 {
            jobs.push(JobRequest::new(
                2 + i,
                0.1 * i as f64,
                DeadlineClass::Interactive,
                spec(4 * GIB, GIB / 2, 1),
            ));
        }
        let starved = serve(&cfg(Policy::FairShare, 8 * GIB), &jobs).unwrap();
        let mut aged_cfg = cfg(Policy::FairShare, 8 * GIB);
        aged_cfg.fair_aging = 1.0;
        let aged = serve(&aged_cfg, &jobs).unwrap();
        let start = |o: &ServeOutcome| o.records.iter().find(|r| r.id == 1).unwrap().start;
        assert!(
            start(&aged) < start(&starved),
            "aging must admit the elephant earlier: {} vs {}",
            start(&aged),
            start(&starved)
        );
    }

    #[test]
    fn impossible_jobs_are_rejected_not_queued() {
        let c = cfg(Policy::Fifo, 4 * GIB);
        let jobs = vec![
            JobRequest::new(0, 0.0, DeadlineClass::Batch, spec(32 * GIB, 2 * GIB, 1)),
            JobRequest::new(1, 0.0, DeadlineClass::Standard, spec(4 * GIB, GIB, 1)),
        ];
        let out = serve(&c, &jobs).unwrap();
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(out.rejections[0].id, 0);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.fleet.rejected, 1);
    }

    #[test]
    fn spill_runs_immediately_but_slower() {
        let s = spec(16 * GIB, 2 * GIB, 4);
        let jobs: Vec<JobRequest> = (0..2)
            .map(|i| JobRequest::new(i, 0.0, DeadlineClass::Standard, s.clone()))
            .collect();
        let strict = serve(&cfg(Policy::Fifo, 8 * GIB), &jobs).unwrap();
        let mut c = cfg(Policy::Fifo, 8 * GIB);
        c.spill = true;
        let spilled = serve(&c, &jobs).unwrap();
        // With spill, both start at t=0 (one in DDR).
        assert!(spilled.records.iter().all(|r| r.start == 0.0));
        assert!(spilled
            .records
            .iter()
            .any(|r| r.buffer_level == MemLevel::Ddr));
        // Strict serialises: second job waits.
        assert!(strict.records.iter().any(|r| r.queue_wait() > 0.0));
    }

    #[test]
    fn serve_is_deterministic() {
        let c = cfg(Policy::FairShare, 8 * GIB);
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| {
                JobRequest::new(
                    i,
                    i as f64 * 0.5,
                    DeadlineClass::ALL[(i % 3) as usize],
                    spec(4 * GIB * (1 + i % 3), GIB, 1 + (i % 2) as u32),
                )
            })
            .collect();
        let a = serve(&c, &jobs).unwrap();
        let b = serve(&c, &jobs).unwrap();
        assert_eq!(a.fleet, b.fleet);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.finish.to_bits(), y.finish.to_bits());
            assert_eq!(x.start.to_bits(), y.start.to_bits());
        }
    }
}
