//! The serving loop: a deterministic virtual-time event scheduler for
//! concurrent pipeline jobs.
//!
//! Jobs are modelled at the granularity the fleet cares about: each running
//! job is a *flow* whose dedicated-machine service time comes from the
//! §3.2 model ([`crate::policy::profile`]) and whose progress under
//! co-residency is arbitrated by the same max–min-fair water-filling
//! ([`knl_sim::bandwidth::allocate_rates`]) the simulator applies to
//! individual ops — a job demands DDR and MCDRAM bus bytes in proportion
//! to its progress rate, and busy buses slow every job leaning on them.
//!
//! The loop advances from event to event (arrival or completion). At each
//! event it:
//!
//! 1. completes finished jobs and releases their broker reservations,
//! 2. runs the admission policy over the ready queue,
//! 3. re-runs the Eqs. 1–5 tuner for every running job (the per-job thread
//!    budget changes with the co-resident set), and
//! 4. recomputes the fair bus rates.
//!
//! Everything is pure arithmetic over the trace — no wall clock, no RNG —
//! so a fixed trace always produces bit-identical results.

use knl_sim::machine::MachineConfig;

use crate::job::{JobRecord, JobRequest, Rejection};
use crate::node::{NodeSim, DONE_EPS};
use crate::policy::Policy;
use crate::stats::FleetStats;

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The node being shared.
    pub machine: MachineConfig,
    /// Admission policy.
    pub policy: Policy,
    /// MCDRAM bytes the broker may hand out (clamped to addressable).
    pub mcdram_budget: u64,
    /// `HBW_PREFERRED` semantics: spill to DDR instead of queueing.
    pub spill: bool,
    /// Re-run the Eqs. 1–5 optimiser per job as co-residency changes.
    /// When off, jobs keep their submitted pool sizes.
    pub retune: bool,
    /// Fair-share starvation bound (seconds). A capacity-blocked job
    /// bypassed for longer than this gets an EASY-backfill reservation:
    /// the scheduler projects when completions will have freed enough
    /// MCDRAM for it, and only admits other jobs whose model-predicted
    /// makespan ends before that point (or that need no MCDRAM). Small
    /// jobs keep flowing through genuinely spare capacity, but can no
    /// longer fragment MCDRAM forever and starve big rings. Default
    /// `INFINITY` (off): the reservation costs throughput wherever it
    /// binds, so it is a worst-case-latency guarantee to opt into, not a
    /// tail-latency optimisation.
    pub fair_aging: f64,
}

impl ServeConfig {
    /// Defaults: FIFO, full addressable MCDRAM, strict (no spill), retuned.
    pub fn new(machine: MachineConfig) -> Self {
        let budget = machine.addressable_mcdram();
        ServeConfig {
            machine,
            policy: Policy::Fifo,
            mcdram_budget: budget,
            spill: false,
            retune: true,
            fair_aging: f64::INFINITY,
        }
    }
}

/// Everything a serving run produces.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-job outcomes, sorted by job id.
    pub records: Vec<JobRecord>,
    /// Jobs refused at submission.
    pub rejections: Vec<Rejection>,
    /// Fleet-level summary.
    pub fleet: FleetStats,
}

/// Serve `jobs` (any order; sorted internally by arrival) under `cfg`.
///
/// This is a thin driver over one [`NodeSim`]: the same state machine a
/// fleet dispatcher runs per node, so a 1-node fleet and `serve` make
/// bit-identical decisions by construction.
pub fn serve(cfg: &ServeConfig, jobs: &[JobRequest]) -> Result<ServeOutcome, String> {
    for j in jobs {
        j.spec
            .validate()
            .map_err(|e| format!("job {}: {e}", j.id))?;
        if !(j.arrival.is_finite() && j.arrival >= 0.0) {
            return Err(format!("job {}: bad arrival time {}", j.id, j.arrival));
        }
    }

    let mut node = NodeSim::new(cfg.clone())?;

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival
            .total_cmp(&jobs[b].arrival)
            .then(jobs[a].id.cmp(&jobs[b].id))
    });

    let mut next_arrival = 0usize;
    let mut rejections: Vec<Rejection> = Vec::new();
    let mut now = 0.0f64;

    loop {
        // 1. Arrivals due at or before `now` join the ready queue (or are
        // rejected outright when they can never fit).
        while next_arrival < order.len() && jobs[order[next_arrival]].arrival <= now + DONE_EPS {
            let idx = order[next_arrival];
            next_arrival += 1;
            if !node.submit(jobs[idx].clone(), false) {
                rejections.push(Rejection {
                    id: jobs[idx].id,
                    reason: format!(
                        "buffer ring of {} B exceeds the {} B MCDRAM budget",
                        jobs[idx].spec.buffer_footprint(crate::broker::RING_SLOTS),
                        node.broker().budget()
                    ),
                });
            }
        }

        // 2. Completions: a finished job returns its reservation before
        // admission runs, so freed capacity is immediately re-usable.
        node.complete_due(now)?;

        // 3. Admission under the configured policy.
        node.admit(now)?;

        // 4. Termination.
        if node.is_drained() && next_arrival >= order.len() {
            break;
        }

        // 5. Re-tune every running job for the current co-residency degree
        // and recompute the fair bus rates.
        node.retune_and_allocate()?;

        // 6. Advance to the next event.
        let mut t_next = node.next_completion(now);
        if next_arrival < order.len() {
            t_next = t_next.min(jobs[order[next_arrival]].arrival);
        }
        if !t_next.is_finite() {
            return Err(format!(
                "scheduler stuck at t={now}: {} queued, {} running, nothing can progress",
                node.queue_len(),
                node.running_len()
            ));
        }
        node.advance(now, t_next);
        now = t_next;
    }

    let hwm = node.broker().high_water();
    let mut records: Vec<JobRecord> = node.into_records();
    records.sort_by_key(|r| r.id);
    let fleet = FleetStats::from_records(&records, rejections.len(), hwm);
    Ok(ServeOutcome {
        records,
        rejections,
        fleet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::DeadlineClass;
    use crate::policy::profile;
    use knl_sim::machine::MemMode;
    use knl_sim::MemLevel;
    use knl_sim::GIB;
    use mlm_core::{PipelineSpec, Placement, Workload};

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn spec(total: u64, chunk: u64, passes: u32) -> PipelineSpec {
        PipelineSpec {
            total_bytes: total,
            chunk_bytes: chunk,
            p_in: 8,
            p_out: 8,
            p_comp: 64,
            compute_passes: passes,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn cfg(policy: Policy, budget: u64) -> ServeConfig {
        ServeConfig {
            policy,
            mcdram_budget: budget,
            ..ServeConfig::new(machine())
        }
    }

    #[test]
    fn single_job_runs_at_dedicated_speed() {
        let c = cfg(Policy::Fifo, 16 * GIB);
        let s = spec(8 * GIB, GIB, 2);
        let jobs = [JobRequest::new(1, 0.0, DeadlineClass::Standard, s.clone())];
        let out = serve(&c, &jobs).unwrap();
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        assert_eq!(r.start, 0.0);
        // Alone on the machine, the job finishes in exactly its dedicated
        // service time for the full thread budget.
        let p = profile(
            &s,
            Placement::Hbw,
            &c.machine,
            c.machine.total_threads(),
            true,
        )
        .unwrap();
        assert!((r.finish - p.t0).abs() < 1e-6 * p.t0);
        assert_eq!(out.fleet.jobs, 1);
        assert_eq!(out.fleet.mcdram_high_water, 3 * GIB);
    }

    #[test]
    fn capacity_serialises_jobs_and_is_never_oversubscribed() {
        // 8 GiB budget, 6 GiB rings: only one job resident at a time.
        let c = cfg(Policy::Fifo, 8 * GIB);
        let s = spec(8 * GIB, 2 * GIB, 1);
        let jobs: Vec<JobRequest> = (0..3)
            .map(|i| JobRequest::new(i, 0.0, DeadlineClass::Standard, s.clone()))
            .collect();
        let out = serve(&c, &jobs).unwrap();
        assert_eq!(out.records.len(), 3);
        assert!(out.fleet.mcdram_high_water <= 8 * GIB);
        // Strictly serialised: each start coincides with the previous
        // finish, and only one job's interval overlaps any time point.
        let mut recs = out.records.clone();
        recs.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in recs.windows(2) {
            assert!(w[1].start >= w[0].finish - 1e-9);
        }
    }

    #[test]
    fn co_resident_jobs_share_bus_bandwidth() {
        // Two jobs whose rings fit together: both admitted at t=0, and bus
        // contention makes each slower than it would be alone (but the pair
        // finishes sooner than running back-to-back).
        let c = cfg(Policy::Fifo, 8 * GIB);
        let s = spec(16 * GIB, GIB, 4);
        let solo = serve(
            &c,
            &[JobRequest::new(0, 0.0, DeadlineClass::Standard, s.clone())],
        )
        .unwrap()
        .records[0]
            .finish;
        let jobs: Vec<JobRequest> = (0..2)
            .map(|i| JobRequest::new(i, 0.0, DeadlineClass::Standard, s.clone()))
            .collect();
        let out = serve(&c, &jobs).unwrap();
        let finish = out.fleet.makespan;
        assert!(
            finish > solo * 1.05,
            "contention must cost: {finish} vs solo {solo}"
        );
        assert!(
            finish < 2.0 * solo,
            "sharing must beat serialisation: {finish} vs {}",
            2.0 * solo
        );
        assert_eq!(out.records[0].start, 0.0);
        assert_eq!(out.records[1].start, 0.0);
    }

    #[test]
    fn fifo_head_of_line_blocks_small_jobs_but_fair_share_skips() {
        // Budget 8 GiB. A long-running 3 GiB-ring job holds capacity; a
        // batch elephant with a 6 GiB ring is next in FIFO order and
        // cannot fit; a tiny interactive job (1.5 GiB ring) arrives last.
        let c_fifo = cfg(Policy::Fifo, 8 * GIB);
        let holder = spec(256 * GIB, GIB, 8);
        let elephant = spec(128 * GIB, 2 * GIB, 4);
        let small = spec(2 * GIB, GIB / 2, 1);
        let jobs = vec![
            JobRequest::new(0, 0.0, DeadlineClass::Batch, holder),
            JobRequest::new(1, 1.0, DeadlineClass::Batch, elephant),
            JobRequest::new(2, 2.0, DeadlineClass::Interactive, small),
        ];
        let fifo = serve(&c_fifo, &jobs).unwrap();
        let fair = serve(&cfg(Policy::FairShare, 8 * GIB), &jobs).unwrap();
        let lat =
            |o: &ServeOutcome, id: u64| o.records.iter().find(|r| r.id == id).unwrap().latency();
        // Under FIFO the small job waits behind the elephant that cannot
        // even start; fair-share admits it immediately (1.5 GiB fits in
        // the 5 GiB left by the holder).
        assert!(
            lat(&fair, 2) < lat(&fifo, 2) / 2.0,
            "fair {} vs fifo {}",
            lat(&fair, 2),
            lat(&fifo, 2)
        );
    }

    #[test]
    fn fair_aging_bounds_starvation_of_big_rings() {
        // Budget 8 GiB. A 3 GiB-ring holder runs; a 6 GiB-ring elephant
        // arrives and can never fit while a dense stream of 1.5 GiB-ring
        // interactive jobs keeps fragmenting the spare capacity. Pure
        // fair-share starves the elephant until the stream dries up; with
        // an aging bound the elephant gets an EASY-backfill reservation
        // and runs much earlier.
        let mut jobs = vec![
            JobRequest::new(0, 0.0, DeadlineClass::Standard, spec(64 * GIB, GIB, 4)),
            JobRequest::new(1, 0.5, DeadlineClass::Batch, spec(64 * GIB, 2 * GIB, 4)),
        ];
        for i in 0..120 {
            jobs.push(JobRequest::new(
                2 + i,
                0.1 * i as f64,
                DeadlineClass::Interactive,
                spec(4 * GIB, GIB / 2, 1),
            ));
        }
        let starved = serve(&cfg(Policy::FairShare, 8 * GIB), &jobs).unwrap();
        let mut aged_cfg = cfg(Policy::FairShare, 8 * GIB);
        aged_cfg.fair_aging = 1.0;
        let aged = serve(&aged_cfg, &jobs).unwrap();
        let start = |o: &ServeOutcome| o.records.iter().find(|r| r.id == 1).unwrap().start;
        assert!(
            start(&aged) < start(&starved),
            "aging must admit the elephant earlier: {} vs {}",
            start(&aged),
            start(&starved)
        );
    }

    #[test]
    fn impossible_jobs_are_rejected_not_queued() {
        let c = cfg(Policy::Fifo, 4 * GIB);
        let jobs = vec![
            JobRequest::new(0, 0.0, DeadlineClass::Batch, spec(32 * GIB, 2 * GIB, 1)),
            JobRequest::new(1, 0.0, DeadlineClass::Standard, spec(4 * GIB, GIB, 1)),
        ];
        let out = serve(&c, &jobs).unwrap();
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(out.rejections[0].id, 0);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.fleet.rejected, 1);
    }

    #[test]
    fn spill_runs_immediately_but_slower() {
        let s = spec(16 * GIB, 2 * GIB, 4);
        let jobs: Vec<JobRequest> = (0..2)
            .map(|i| JobRequest::new(i, 0.0, DeadlineClass::Standard, s.clone()))
            .collect();
        let strict = serve(&cfg(Policy::Fifo, 8 * GIB), &jobs).unwrap();
        let mut c = cfg(Policy::Fifo, 8 * GIB);
        c.spill = true;
        let spilled = serve(&c, &jobs).unwrap();
        // With spill, both start at t=0 (one in DDR).
        assert!(spilled.records.iter().all(|r| r.start == 0.0));
        assert!(spilled
            .records
            .iter()
            .any(|r| r.buffer_level == MemLevel::Ddr));
        // Strict serialises: second job waits.
        assert!(strict.records.iter().any(|r| r.queue_wait() > 0.0));
    }

    #[test]
    fn serve_is_deterministic() {
        let c = cfg(Policy::FairShare, 8 * GIB);
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| {
                JobRequest::new(
                    i,
                    i as f64 * 0.5,
                    DeadlineClass::ALL[(i % 3) as usize],
                    spec(4 * GIB * (1 + i % 3), GIB, 1 + (i % 2) as u32),
                )
            })
            .collect();
        let a = serve(&c, &jobs).unwrap();
        let b = serve(&c, &jobs).unwrap();
        assert_eq!(a.fleet, b.fleet);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.finish.to_bits(), y.finish.to_bits());
            assert_eq!(x.start.to_bits(), y.start.to_bits());
        }
    }
}
