//! Fleet-level statistics over a batch of completed jobs.

use crate::job::JobRecord;

/// Nearest-rank percentile of an ascending-sorted slice. `q` in `[0, 1]`.
/// Empty input yields 0 (callers report empty fleets explicitly).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Aggregate statistics for one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Jobs completed.
    pub jobs: usize,
    /// Jobs rejected at submission (could never fit).
    pub rejected: usize,
    /// Time the last job finished (seconds from trace start).
    pub makespan: f64,
    /// Mean seconds queued before admission.
    pub mean_queue_wait: f64,
    /// Mean end-to-end latency.
    pub mean_latency: f64,
    /// Median end-to-end latency.
    pub p50_latency: f64,
    /// 95th-percentile latency.
    pub p95_latency: f64,
    /// 99th-percentile latency.
    pub p99_latency: f64,
    /// Worst latency.
    pub max_latency: f64,
    /// Highest MCDRAM reservation level the broker ever held (bytes).
    pub mcdram_high_water: u64,
}

impl FleetStats {
    /// Summarise `records` (any order), with the rejection count and the
    /// broker's high-water mark.
    pub fn from_records(records: &[JobRecord], rejected: usize, mcdram_high_water: u64) -> Self {
        let n = records.len();
        let mut latencies: Vec<f64> = records.iter().map(|r| r.latency()).collect();
        latencies.sort_by(f64::total_cmp);
        let sum = |xs: &[f64]| xs.iter().sum::<f64>();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                sum(xs) / xs.len() as f64
            }
        };
        let waits: Vec<f64> = records.iter().map(|r| r.queue_wait()).collect();
        FleetStats {
            jobs: n,
            rejected,
            makespan: records.iter().map(|r| r.finish).fold(0.0, f64::max),
            mean_queue_wait: mean(&waits),
            mean_latency: mean(&latencies),
            p50_latency: percentile(&latencies, 0.50),
            p95_latency: percentile(&latencies, 0.95),
            p99_latency: percentile(&latencies, 0.99),
            max_latency: latencies.last().copied().unwrap_or(0.0),
            mcdram_high_water,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::DeadlineClass;
    use knl_sim::MemLevel;
    use mlm_core::ThreadSplit;

    fn rec(id: u64, arrival: f64, start: f64, finish: f64) -> JobRecord {
        JobRecord {
            id,
            class: DeadlineClass::Standard,
            arrival,
            start,
            finish,
            buffer_level: MemLevel::Mcdram,
            split: ThreadSplit {
                p_in: 1,
                p_out: 1,
                p_comp: 1,
            },
        }
    }

    #[test]
    fn nearest_rank_percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), 50.0);
        assert_eq!(percentile(&xs, 0.95), 95.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // Small n: p99 of 3 values is the max.
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.99), 3.0);
    }

    #[test]
    fn fleet_stats_aggregate() {
        let recs = vec![
            rec(1, 0.0, 0.0, 2.0),
            rec(2, 1.0, 3.0, 5.0),
            rec(3, 2.0, 2.0, 10.0),
        ];
        let s = FleetStats::from_records(&recs, 1, 42);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.makespan, 10.0);
        // Waits: 0, 2, 0. Latencies: 2, 4, 8.
        assert!((s.mean_queue_wait - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_latency - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.p50_latency, 4.0);
        assert_eq!(s.max_latency, 8.0);
        assert_eq!(s.mcdram_high_water, 42);
    }

    #[test]
    fn empty_fleet_is_all_zeroes() {
        let s = FleetStats::from_records(&[], 0, 0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_latency, 0.0);
        assert_eq!(s.makespan, 0.0);
    }
}
