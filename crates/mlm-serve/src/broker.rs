//! The MCDRAM capacity broker: admission control over [`mlm_memkind`]
//! reservations.
//!
//! Before a pipeline job may run, its rotating ring of chunk buffers must
//! have somewhere to live. The broker holds a [`MemKind`] heap whose MCDRAM
//! capacity is the operator-configured *budget* (usually the machine's
//! addressable MCDRAM, possibly less to keep headroom), and admits a job by
//! taking a [`Reservation`] for the job's buffer footprint. Release happens
//! at job completion, so `reserved ≤ budget` holds at every instant by
//! construction.
//!
//! Spill policy mirrors memkind's two flavours: strict ([`Kind::Hbw`])
//! makes a job *wait* for MCDRAM, preferred ([`Kind::HbwPreferred`]) lets
//! it run immediately with DDR buffers — slower, but unblocked.

use knl_sim::machine::MachineConfig;
use knl_sim::{MemLevel, SimError};
use mlm_core::{PipelineSpec, Placement};
use mlm_memkind::{Kind, MemKind, Reservation};

/// Buffer slots a pipeline keeps resident (triple buffering, paper Fig. 2).
/// This is the ring depth [`mlm_exec::drive`] schedules, so the broker's
/// footprint accounting agrees with every backend by construction.
pub use mlm_exec::RING_SLOTS;

/// Result of one admission attempt.
#[derive(Debug)]
pub enum AdmitOutcome {
    /// The job may start. The reservation is `None` for jobs with no buffer
    /// footprint (cache-mode jobs own no buffers).
    Admitted(Option<Reservation>),
    /// Capacity is currently held by co-resident jobs; retry when one
    /// completes.
    Busy,
}

/// Admission controller over a budgeted [`MemKind`] heap.
pub struct CapacityBroker {
    mk: MemKind,
    mcdram_budget: u64,
    ddr_capacity: u64,
    spill: bool,
    hwm: u64,
    ddr_hwm: u64,
    queued_strict: u64,
}

impl CapacityBroker {
    /// A broker for `machine` whose MCDRAM budget is `mcdram_budget` bytes
    /// (clamped to nothing in cache mode, where no MCDRAM is addressable).
    /// With `spill` set, jobs that want MCDRAM run from DDR instead of
    /// waiting when the budget is exhausted (`HBW_PREFERRED` semantics).
    pub fn new(machine: &MachineConfig, mcdram_budget: u64, spill: bool) -> Self {
        let mut cfg = machine.clone();
        cfg.mcdram_capacity = mcdram_budget.min(machine.addressable_mcdram());
        CapacityBroker {
            mk: MemKind::new(&cfg),
            mcdram_budget: cfg.addressable_mcdram(),
            ddr_capacity: cfg.ddr_capacity,
            spill,
            hwm: 0,
            ddr_hwm: 0,
            queued_strict: 0,
        }
    }

    /// The [`Kind`] a spec's buffers are requested with, given whether this
    /// particular job may spill to DDR (`spill_ok` is AND-ed with the
    /// broker's own spill policy, so a strict job stays strict even on a
    /// spill-capable node).
    fn kind_for(&self, spec: &PipelineSpec, spill_ok: bool) -> Kind {
        match spec.placement {
            Placement::Hbw => {
                if self.spill && spill_ok {
                    Kind::HbwPreferred
                } else {
                    Kind::Hbw
                }
            }
            Placement::Ddr => Kind::Default,
            Placement::Implicit => Kind::Default, // unused: footprint is 0
        }
    }

    /// `false` when the job's footprint exceeds every level its kind may
    /// land in — such jobs are rejected at submission rather than queued
    /// forever.
    pub fn can_ever_fit(&self, spec: &PipelineSpec) -> bool {
        self.can_ever_fit_job(spec, true)
    }

    /// Per-job variant of [`Self::can_ever_fit`]: `spill_ok = false` asks
    /// whether a *strict-HBW* job could ever fit, even on a broker whose
    /// policy would let preferred jobs fall back to DDR.
    pub fn can_ever_fit_job(&self, spec: &PipelineSpec, spill_ok: bool) -> bool {
        let footprint = spec.buffer_footprint(RING_SLOTS);
        if footprint == 0 {
            return true;
        }
        match self.kind_for(spec, spill_ok) {
            Kind::Hbw => footprint <= self.mcdram_budget,
            Kind::HbwPreferred => footprint <= self.mcdram_budget.max(self.ddr_capacity),
            Kind::Default => footprint <= self.ddr_capacity,
        }
    }

    /// Try to admit `spec`: reserve its buffer footprint, or report `Busy`
    /// when co-resident jobs currently hold the capacity.
    ///
    /// Errors are reserved for jobs that should have been filtered by
    /// [`Self::can_ever_fit`] — asking for more than the budget is a caller
    /// bug, not transient contention.
    pub fn try_admit(&mut self, spec: &PipelineSpec) -> Result<AdmitOutcome, String> {
        self.try_admit_job(spec, true)
    }

    /// Per-job variant of [`Self::try_admit`]: `spill_ok = false` keeps
    /// this job strict (queue for MCDRAM) even on a spill-capable broker.
    pub fn try_admit_job(
        &mut self,
        spec: &PipelineSpec,
        spill_ok: bool,
    ) -> Result<AdmitOutcome, String> {
        let footprint = spec.buffer_footprint(RING_SLOTS);
        if footprint == 0 {
            return Ok(AdmitOutcome::Admitted(None));
        }
        if !self.can_ever_fit_job(spec, spill_ok) {
            return Err(format!(
                "job footprint {footprint} B exceeds broker capacity \
                 (budget {} B)",
                self.mcdram_budget
            ));
        }
        match self
            .mk
            .try_reserve(self.kind_for(spec, spill_ok), footprint)
        {
            Ok(r) => {
                self.hwm = self.hwm.max(self.mk.reserved(MemLevel::Mcdram));
                self.ddr_hwm = self.ddr_hwm.max(self.mk.reserved(MemLevel::Ddr));
                Ok(AdmitOutcome::Admitted(Some(r)))
            }
            Err(SimError::OutOfMemory { .. }) => Ok(AdmitOutcome::Busy),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Return a reservation at job completion.
    pub fn release(&mut self, r: &Reservation) -> Result<(), String> {
        self.mk.release(r).map_err(|e| e.to_string())
    }

    /// Bytes of MCDRAM currently reserved.
    pub fn reserved_mcdram(&self) -> u64 {
        self.mk.reserved(MemLevel::Mcdram)
    }

    /// Highest MCDRAM reservation level ever observed.
    pub fn high_water(&self) -> u64 {
        self.hwm
    }

    /// Highest DDR reservation level ever observed (spilled rings and
    /// `Placement::Ddr` jobs land here; the MCDRAM-only [`Self::high_water`]
    /// misses them).
    pub fn ddr_high_water(&self) -> u64 {
        self.ddr_hwm
    }

    /// MCDRAM bytes still unreserved: what a placement layer may pack a
    /// strict-HBW ring into right now.
    pub fn hbw_headroom(&self) -> u64 {
        self.mcdram_budget
            .saturating_sub(self.mk.reserved(MemLevel::Mcdram))
    }

    /// Record that a strict-HBW job of `bytes` ring footprint is waiting in
    /// this broker's queue (it refused to spill and MCDRAM was full).
    pub fn note_strict_queued(&mut self, bytes: u64) {
        self.queued_strict = self.queued_strict.saturating_add(bytes);
    }

    /// Undo [`Self::note_strict_queued`] once the job is admitted, stolen
    /// away, or abandoned.
    pub fn note_strict_dequeued(&mut self, bytes: u64) {
        self.queued_strict = self.queued_strict.saturating_sub(bytes);
    }

    /// Ring bytes of strict-HBW jobs currently queued behind this broker —
    /// a backlog signal placement policies use to avoid pile-ups.
    pub fn queued_strict_bytes(&self) -> u64 {
        self.queued_strict
    }

    /// The broker's MCDRAM budget in bytes.
    pub fn budget(&self) -> u64 {
        self.mcdram_budget
    }

    /// Number of live reservations (0 after a full drain).
    pub fn balance(&self) -> usize {
        self.mk.live_reservations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;
    use knl_sim::GIB;
    use mlm_core::Workload;

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn spec(chunk: u64, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: 32 * GIB,
            chunk_bytes: chunk,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 2,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn strict_broker_blocks_then_admits_after_release() {
        let mut b = CapacityBroker::new(&machine(), 8 * GIB, false);
        let s = spec(2 * GIB, Placement::Hbw); // 6 GiB ring
        let r1 = match b.try_admit(&s).unwrap() {
            AdmitOutcome::Admitted(Some(r)) => r,
            other => panic!("expected admission, got {other:?}"),
        };
        assert_eq!(r1.level(), MemLevel::Mcdram);
        assert_eq!(b.reserved_mcdram(), 6 * GIB);
        // Second elephant cannot fit in the remaining 2 GiB.
        assert!(matches!(b.try_admit(&s).unwrap(), AdmitOutcome::Busy));
        b.release(&r1).unwrap();
        assert!(matches!(
            b.try_admit(&s).unwrap(),
            AdmitOutcome::Admitted(Some(_))
        ));
        assert_eq!(b.high_water(), 6 * GIB);
    }

    #[test]
    fn spill_broker_falls_back_to_ddr() {
        let mut b = CapacityBroker::new(&machine(), 8 * GIB, true);
        let s = spec(2 * GIB, Placement::Hbw);
        let _r1 = match b.try_admit(&s).unwrap() {
            AdmitOutcome::Admitted(Some(r)) => r,
            other => panic!("expected admission, got {other:?}"),
        };
        let r2 = match b.try_admit(&s).unwrap() {
            AdmitOutcome::Admitted(Some(r)) => r,
            other => panic!("expected DDR spill, got {other:?}"),
        };
        assert_eq!(r2.level(), MemLevel::Ddr);
    }

    #[test]
    fn impossible_jobs_are_detected_up_front() {
        let b = CapacityBroker::new(&machine(), 4 * GIB, false);
        // 6 GiB ring > 4 GiB budget: can never fit under strict policy.
        assert!(!b.can_ever_fit(&spec(2 * GIB, Placement::Hbw)));
        // But fits with spill (lands in DDR).
        let b = CapacityBroker::new(&machine(), 4 * GIB, true);
        assert!(b.can_ever_fit(&spec(2 * GIB, Placement::Hbw)));
    }

    #[test]
    fn implicit_jobs_need_no_reservation() {
        let mut b = CapacityBroker::new(&machine(), GIB, false);
        let s = spec(2 * GIB, Placement::Implicit);
        assert!(b.can_ever_fit(&s));
        assert!(matches!(
            b.try_admit(&s).unwrap(),
            AdmitOutcome::Admitted(None)
        ));
        assert_eq!(b.balance(), 0);
    }

    #[test]
    fn ddr_high_water_tracks_spilled_rings() {
        let mut b = CapacityBroker::new(&machine(), 8 * GIB, true);
        let s = spec(2 * GIB, Placement::Hbw); // 6 GiB ring
        let _r1 = b.try_admit(&s).unwrap(); // MCDRAM
        assert_eq!(b.ddr_high_water(), 0);
        let _r2 = b.try_admit(&s).unwrap(); // spills to DDR
        assert_eq!(b.ddr_high_water(), 6 * GIB);
        assert_eq!(b.high_water(), 6 * GIB); // MCDRAM hwm unchanged by spill
    }

    #[test]
    fn hbw_headroom_shrinks_with_reservations() {
        let mut b = CapacityBroker::new(&machine(), 8 * GIB, false);
        assert_eq!(b.hbw_headroom(), 8 * GIB);
        let s = spec(2 * GIB, Placement::Hbw);
        let r = match b.try_admit(&s).unwrap() {
            AdmitOutcome::Admitted(Some(r)) => r,
            other => panic!("expected admission, got {other:?}"),
        };
        assert_eq!(b.hbw_headroom(), 2 * GIB);
        b.release(&r).unwrap();
        assert_eq!(b.hbw_headroom(), 8 * GIB);
    }

    #[test]
    fn strict_queue_accounting_is_saturating() {
        let mut b = CapacityBroker::new(&machine(), 8 * GIB, false);
        assert_eq!(b.queued_strict_bytes(), 0);
        b.note_strict_queued(6 * GIB);
        b.note_strict_queued(3 * GIB);
        assert_eq!(b.queued_strict_bytes(), 9 * GIB);
        b.note_strict_dequeued(6 * GIB);
        assert_eq!(b.queued_strict_bytes(), 3 * GIB);
        b.note_strict_dequeued(u64::MAX); // over-dequeue clamps at zero
        assert_eq!(b.queued_strict_bytes(), 0);
    }

    #[test]
    fn strict_jobs_stay_strict_on_spill_brokers() {
        let mut b = CapacityBroker::new(&machine(), 8 * GIB, true);
        let s = spec(2 * GIB, Placement::Hbw);
        let _r1 = b.try_admit_job(&s, false).unwrap(); // MCDRAM
                                                       // A strict job must wait rather than spill, even though the broker
                                                       // allows preferred jobs to fall back to DDR.
        assert!(matches!(
            b.try_admit_job(&s, false).unwrap(),
            AdmitOutcome::Busy
        ));
        // And a preferred job admitted right after does spill.
        assert!(matches!(
            b.try_admit_job(&s, true).unwrap(),
            AdmitOutcome::Admitted(Some(_))
        ));
        // can_ever_fit agrees: a 6 GiB strict ring can never fit a 4 GiB
        // budget even when the broker spills.
        let b4 = CapacityBroker::new(&machine(), 4 * GIB, true);
        assert!(!b4.can_ever_fit_job(&s, false));
        assert!(b4.can_ever_fit_job(&s, true));
    }

    #[test]
    fn budget_is_clamped_to_addressable_mcdram() {
        let b = CapacityBroker::new(&machine(), u64::MAX, false);
        assert_eq!(b.budget(), machine().addressable_mcdram());
    }
}
