//! Job descriptions: what tenants submit and what the fleet records.

use knl_sim::MemLevel;
use mlm_core::{PipelineSpec, ThreadSplit};

/// Tenant-assigned job identifier; unique within one trace.
pub type JobId = u64;

/// Latency expectation class a tenant attaches to a job. The weighted
/// fair-share policy schedules *across* classes, so a queue of batch
/// elephants cannot starve interactive work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeadlineClass {
    /// Small, latency-sensitive jobs.
    Interactive,
    /// Ordinary throughput jobs.
    Standard,
    /// Large background jobs; tolerate delay.
    Batch,
}

/// Number of [`DeadlineClass`] variants (size of per-class credit arrays).
pub const N_CLASSES: usize = 3;

impl DeadlineClass {
    /// All classes, in priority order.
    pub const ALL: [DeadlineClass; N_CLASSES] = [
        DeadlineClass::Interactive,
        DeadlineClass::Standard,
        DeadlineClass::Batch,
    ];

    /// Fair-share weight: the class's share of admissions under contention.
    pub fn weight(self) -> f64 {
        match self {
            DeadlineClass::Interactive => 4.0,
            DeadlineClass::Standard => 2.0,
            DeadlineClass::Batch => 1.0,
        }
    }

    /// Index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            DeadlineClass::Interactive => 0,
            DeadlineClass::Standard => 1,
            DeadlineClass::Batch => 2,
        }
    }

    /// Human-readable name for tables and CSV rows.
    pub fn label(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }
}

/// One job submission: a pipeline to run, when it arrives, and how urgent
/// it is.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Tenant-assigned identifier.
    pub id: JobId,
    /// Arrival time in seconds from trace start.
    pub arrival: f64,
    /// Latency expectation class.
    pub class: DeadlineClass,
    /// The pipeline the job wants to run.
    pub spec: PipelineSpec,
}

impl JobRequest {
    /// Convenience constructor.
    pub fn new(id: JobId, arrival: f64, class: DeadlineClass, spec: PipelineSpec) -> Self {
        JobRequest {
            id,
            arrival,
            class,
            spec,
        }
    }
}

/// Per-job outcome emitted by the scheduler.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Tenant-assigned identifier.
    pub id: JobId,
    /// Latency expectation class.
    pub class: DeadlineClass,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Admission time — when the broker granted the buffer reservation and
    /// the job started running.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Memory level the broker placed the job's chunk buffers in. `Mcdram`
    /// normally; `Ddr` when an `HBW_PREFERRED`-style broker spilled it.
    pub buffer_level: MemLevel,
    /// Thread split the Eqs. 1–5 tuner assigned at completion time (the
    /// last co-residency change the job saw).
    pub split: ThreadSplit,
}

impl JobRecord {
    /// Seconds spent queued before admission.
    pub fn queue_wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// End-to-end latency: arrival to completion.
    pub fn latency(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Time spent actually running.
    pub fn service(&self) -> f64 {
        self.finish - self.start
    }
}

/// A job the broker refused outright because it can never fit.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Tenant-assigned identifier.
    pub id: JobId,
    /// Why admission was impossible.
    pub reason: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlm_core::{Placement, Workload};

    fn spec() -> PipelineSpec {
        PipelineSpec {
            total_bytes: 1 << 30,
            chunk_bytes: 1 << 27,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 2,
            compute_rate: 6.78e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: false,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn record_latency_accounting() {
        let r = JobRecord {
            id: 7,
            class: DeadlineClass::Standard,
            arrival: 1.0,
            start: 3.0,
            finish: 10.0,
            buffer_level: MemLevel::Mcdram,
            split: ThreadSplit {
                p_in: 1,
                p_out: 1,
                p_comp: 2,
            },
        };
        assert_eq!(r.queue_wait(), 2.0);
        assert_eq!(r.latency(), 9.0);
        assert_eq!(r.service(), 7.0);
    }

    #[test]
    fn class_weights_rank_interactive_first() {
        assert!(DeadlineClass::Interactive.weight() > DeadlineClass::Standard.weight());
        assert!(DeadlineClass::Standard.weight() > DeadlineClass::Batch.weight());
        for (i, c) in DeadlineClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn request_builds() {
        let j = JobRequest::new(1, 0.5, DeadlineClass::Interactive, spec());
        assert_eq!(j.id, 1);
        assert!(j.spec.validate().is_ok());
    }
}
