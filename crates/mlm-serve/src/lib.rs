//! # mlm-serve — multi-tenant job serving for MCDRAM-constrained nodes
//!
//! The paper sizes *one* chunked pipeline to *one* KNL node. A shared node
//! poses the follow-on question: given a stream of pipeline jobs whose
//! buffer rings all want the same 16 GB of MCDRAM, who runs when, and
//! where do their buffers live? This crate answers it with three layers:
//!
//! * **Capacity broker** ([`broker`]) — admission control over
//!   [`mlm_memkind`] reservations. A job runs only once its ring of chunk
//!   buffers is reserved; strict mode queues (`HBW`), spill mode falls
//!   back to DDR (`HBW_PREFERRED`), and `reserved ≤ budget` holds at every
//!   instant by construction.
//! * **Scheduler** ([`sched`]) — a deterministic virtual-time event loop.
//!   Each running job's service time comes from the paper's §3.2 model
//!   re-tuned for its current thread budget ([`policy::profile`]), and
//!   co-resident jobs contend as flows in the same max–min-fair
//!   water-filling the op-level simulator uses. Policies: FIFO, SJF
//!   (model-predicted makespan), and weighted fair-share across deadline
//!   classes.
//! * **Backends** — [`simx`] replays a realized schedule op-by-op in
//!   [`knl_sim`] (delay-gated, spliced programs; a single-job replay is
//!   bit-identical to running the pipeline directly), and [`host`] runs
//!   jobs concurrently for real on the dataflow pipeline's stage pools.
//!
//! Trace generation ([`trace`]) and fleet statistics ([`stats`]) round out
//! the loop that `mlm-bench --bin serve_study` sweeps.

pub mod admission;
pub mod broker;
pub mod host;
pub mod job;
pub mod node;
pub mod policy;
pub mod sched;
pub mod simx;
pub mod stats;
pub mod trace;

pub use admission::{charge_credit, select_candidate};
pub use broker::{AdmitOutcome, CapacityBroker, RING_SLOTS};
pub use host::{serve_host, HostJob, HostJobResult, HostServeConfig};
pub use job::{DeadlineClass, JobId, JobRecord, JobRequest, Rejection, N_CLASSES};
pub use node::{Admission, NodeSim, DONE_EPS};
pub use policy::{bus_demand, predicted_makespan, profile, JobProfile, Policy};
pub use sched::{serve, ServeConfig, ServeOutcome};
pub use simx::{co_schedule_program, replay, ScheduledJob, SimJobStats};
pub use stats::{percentile, FleetStats};
pub use trace::{heavy_tailed_trace, TraceConfig};
