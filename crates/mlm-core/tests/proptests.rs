//! Property tests for the core crate: pipeline lowering conservation,
//! model invariants, serde round trips.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{MemLevel, Simulator};
use mlm_core::pipeline::{sim::build_program, PipelineSpec, Placement, Workload};
use mlm_core::{Calibration, InputOrder, MergeBenchParams, SortAlgorithm, SortWorkload};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = PipelineSpec> {
    (
        1u64..200,     // total in MiB
        1u64..64,      // chunk in MiB
        1usize..5,     // p_in
        1usize..5,     // p_out
        1usize..9,     // p_comp
        1u32..9,       // passes
        any::<bool>(), // lockstep
    )
        .prop_map(
            |(total, chunk, p_in, p_out, p_comp, passes, lockstep)| PipelineSpec {
                total_bytes: total << 20,
                chunk_bytes: chunk << 20,
                p_in,
                p_out,
                p_comp,
                compute_passes: passes,
                compute_rate: 1.5e9,
                copy_rate: 1.0e9,
                placement: Placement::Hbw,
                lockstep,
                data_addr: 0,
                workload: Workload::Map,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lowered pipeline moves every byte exactly once in and once out
    /// of DDR, and `2 x passes` times over MCDRAM, regardless of geometry.
    #[test]
    fn pipeline_program_conserves_traffic(spec in arb_spec()) {
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        // The tiny machine has 64 MiB of MCDRAM; buffers are modeled as
        // traffic, not allocations, so any chunk size simulates.
        let r = Simulator::new(cfg).run(&prog).unwrap();
        prop_assert_eq!(r.traffic_on(MemLevel::Ddr).read, spec.total_bytes);
        prop_assert_eq!(r.traffic_on(MemLevel::Ddr).written, spec.total_bytes);
        let mcdram = r.traffic_on(MemLevel::Mcdram).total();
        let expect = 2 * spec.total_bytes + 2 * spec.total_bytes * u64::from(spec.compute_passes);
        prop_assert_eq!(mcdram, expect);
        prop_assert!(r.makespan > 0.0 && r.makespan.is_finite());
    }

    /// Dataflow scheduling is never slower than lockstep on the same spec.
    #[test]
    fn dataflow_never_loses_to_lockstep(spec in arb_spec()) {
        let mut lock = spec.clone();
        lock.lockstep = true;
        let mut flow = spec;
        flow.lockstep = false;
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let sim = Simulator::new(cfg);
        let t_lock = sim.run(&build_program(&lock).unwrap()).unwrap().makespan;
        let t_flow = sim.run(&build_program(&flow).unwrap()).unwrap().makespan;
        prop_assert!(t_flow <= t_lock * (1.0 + 1e-9), "{t_flow} > {t_lock}");
    }

    /// Sort programs lower successfully for every feasible parameter mix
    /// and give positive finite makespans that grow with n.
    #[test]
    fn sort_programs_are_robust(
        n_millions in 1u64..200,
        mega_millions in 1u64..200,
        threads in 1usize..64,
        order_ix in 0usize..2,
    ) {
        let n = n_millions * 1_000_000;
        let mega = (mega_millions * 1_000_000).min(n);
        let order = InputOrder::PAPER[order_ix];
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let w = SortWorkload::int64(n, order);
        let prog = mlm_core::sort::sim::build_sort_program(
            &machine, &cal, w, SortAlgorithm::MlmSort, mega, threads,
        ).unwrap();
        let r = Simulator::new(machine).run(&prog).unwrap();
        prop_assert!(r.makespan > 0.0 && r.makespan.is_finite());
        // At least one full read+write of the data happened somewhere.
        prop_assert!(r.ddr_traffic() + r.mcdram_traffic() >= 2 * w.bytes());
    }

    /// Merge-bench virtual time decreases (weakly) in compute threads when
    /// copy threads are fixed and repeats are high.
    #[test]
    fn merge_bench_time_monotone_in_total_threads(
        total in 32usize..256,
    ) {
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let t1 = mlm_core::merge_bench::simulate_merge_bench(
            &machine,
            &cal,
            &MergeBenchParams { total_threads: total, ..MergeBenchParams::paper(4, 32) },
        ).unwrap();
        let t2 = mlm_core::merge_bench::simulate_merge_bench(
            &machine,
            &cal,
            &MergeBenchParams { total_threads: total + 16, ..MergeBenchParams::paper(4, 32) },
        ).unwrap();
        prop_assert!(t2 <= t1 * (1.0 + 1e-9), "{t2} > {t1}");
    }
}

/// Experiment records are serialized for results files; pin the derived
/// implementations with real JSON round trips.
#[test]
fn serde_round_trips() {
    let cal = Calibration::default();
    let json = serde_json::to_string(&cal).unwrap();
    let back: Calibration = serde_json::from_str(&json).unwrap();
    assert_eq!(cal, back);

    let params = MergeBenchParams::paper(8, 16);
    let json = serde_json::to_string(&params).unwrap();
    let back: MergeBenchParams = serde_json::from_str(&json).unwrap();
    assert_eq!(params, back);

    let w = SortWorkload::int64(123, InputOrder::Reverse);
    let back: SortWorkload = serde_json::from_str(&serde_json::to_string(&w).unwrap()).unwrap();
    assert_eq!(w, back);

    let machine = MachineConfig::knl_7250(MemMode::Hybrid {
        cache_fraction: 0.25,
    });
    let back: MachineConfig =
        serde_json::from_str(&serde_json::to_string(&machine).unwrap()).unwrap();
    assert_eq!(machine, back);
}
