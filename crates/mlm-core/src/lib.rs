//! # mlm-core — chunking, buffering, MLM-sort, and the copy-thread model
//!
//! The primary contribution of *Optimizing for KNL Usage Modes When Data
//! Doesn't Fit in MCDRAM* (Butcher, Olivier, Berry, Hammond, Kogge —
//! ICPP 2018), reproduced as a library:
//!
//! * [`pipeline`] — the §3 chunking + triple-buffering framework, with a
//!   real host backend and a [`knl_sim`] backend;
//! * [`model`] — the §3.2 copy-thread model (Equations 1–5) and its
//!   optimal-copy-thread search;
//! * [`sort`] — MLM-sort and the baselines of §4 (GNU-flat, GNU-cache,
//!   MLM-ddr, MLM-implicit, basic-chunked), host and simulated;
//! * [`merge_bench`] — the §5 streaming merge benchmark;
//! * [`calibration`] — the constants that bind simulated compute rates to
//!   the paper's measurements;
//! * [`workload`] — input descriptions and deterministic generators.
//!
//! ## Which backend do I want?
//!
//! *Host* functions (e.g. [`sort::host::mlm_sort`]) run the real algorithms
//! on real data — use them to sort things and to validate correctness.
//! *Sim* functions (e.g. [`sort::sim::build_sort_program`]) reproduce the
//! paper's KNL experiments in virtual time at full 2–6 billion element
//! scale without needing 48 GB of RAM or Xeon Phi silicon.
//!
//! ```
//! use mlm_core::sort::host::mlm_sort;
//! use mlm_core::workload::{generate_keys, InputOrder};
//! use parsort::{pool::WorkPool, serial::is_sorted};
//!
//! let pool = WorkPool::new(4);
//! let mut keys = generate_keys(100_000, InputOrder::Random, 1);
//! mlm_sort(&pool, &mut keys, 30_000, true);
//! assert!(is_sorted(&keys));
//! ```

pub mod calibration;
pub mod merge_bench;
pub mod model;
pub mod nvm;
pub mod pipeline;
pub mod sort;
pub mod workload;

pub use calibration::Calibration;
pub use merge_bench::{merge_bench_program, simulate_merge_bench, MergeBenchParams};
pub use model::{ModelParams, ThreadSplit};
pub use nvm::{simulate_double_chunking, DoubleChunkSpec, NvmConfig};
pub use pipeline::{PipelineSpec, Placement, Workload};
pub use sort::SortAlgorithm;
pub use workload::{InputOrder, SortWorkload};
