//! Workload descriptions and host-side input generators.

use serde::{Deserialize, Serialize};

/// Initial ordering of the keys to sort (the paper evaluates random and
/// reverse-sorted arrays; sorted input is included for completeness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputOrder {
    /// Uniformly random 64-bit keys.
    Random,
    /// Strictly decreasing keys — structured input MLM-sort exploits.
    Reverse,
    /// Already sorted (best case).
    Sorted,
}

impl InputOrder {
    /// All orders the harness sweeps.
    pub const ALL: [InputOrder; 3] = [InputOrder::Random, InputOrder::Reverse, InputOrder::Sorted];

    /// The paper's Table 1 orders.
    pub const PAPER: [InputOrder; 2] = [InputOrder::Random, InputOrder::Reverse];

    /// Short label used in table output.
    pub fn label(&self) -> &'static str {
        match self {
            InputOrder::Random => "random",
            InputOrder::Reverse => "reverse",
            InputOrder::Sorted => "sorted",
        }
    }
}

/// A sorting workload: `n` keys of `elem_bytes` bytes in the given order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SortWorkload {
    /// Number of keys.
    pub n: u64,
    /// Bytes per key (the paper sorts `int64`: 8).
    pub elem_bytes: u32,
    /// Initial ordering.
    pub order: InputOrder,
}

impl SortWorkload {
    /// The paper's element type is `int64`.
    pub fn int64(n: u64, order: InputOrder) -> Self {
        SortWorkload {
            n,
            elem_bytes: 8,
            order,
        }
    }

    /// Total bytes of the key array.
    pub fn bytes(&self) -> u64 {
        self.n * u64::from(self.elem_bytes)
    }
}

/// SplitMix64 — a tiny, high-quality deterministic generator for test and
/// example data (keeps `rand` out of the core crate's dependencies).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next value as a non-negative `i64` (so subtraction-free comparators
    /// in examples cannot overflow).
    #[inline]
    pub fn next_i64(&mut self) -> i64 {
        (self.next_u64() >> 1) as i64
    }
}

/// Generate `n` keys in the given order (host-scale data for validation).
pub fn generate_keys(n: usize, order: InputOrder, seed: u64) -> Vec<i64> {
    match order {
        InputOrder::Random => {
            let mut rng = SplitMix64::new(seed);
            (0..n).map(|_| rng.next_i64()).collect()
        }
        InputOrder::Reverse => (0..n as i64).rev().collect(),
        InputOrder::Sorted => (0..n as i64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_bytes() {
        let w = SortWorkload::int64(2_000_000_000, InputOrder::Random);
        assert_eq!(w.bytes(), 16_000_000_000);
        assert_eq!(w.elem_bytes, 8);
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge.
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
        // No immediate repetition.
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn generated_orders_have_expected_structure() {
        let r = generate_keys(1000, InputOrder::Reverse, 0);
        assert!(r.windows(2).all(|w| w[0] > w[1]));
        let s = generate_keys(1000, InputOrder::Sorted, 0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        let rnd = generate_keys(1000, InputOrder::Random, 1);
        assert!(rnd.iter().all(|&x| x >= 0));
        // Random really is unordered (overwhelmingly likely).
        assert!(rnd.windows(2).any(|w| w[0] > w[1]));
        assert!(rnd.windows(2).any(|w| w[0] < w[1]));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(InputOrder::Random.label(), "random");
        assert_eq!(InputOrder::Reverse.label(), "reverse");
        assert_eq!(InputOrder::Sorted.label(), "sorted");
    }
}
