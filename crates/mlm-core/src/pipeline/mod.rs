//! Chunking + buffering: the paper's §3 framework.
//!
//! A large DDR-resident data set is processed in MCDRAM-sized chunks by
//! three dedicated thread pools — copy-in, compute, copy-out — with three
//! rotating buffers so that step `s` overlaps the copy-in of chunk `s`, the
//! compute on chunk `s-1`, and the copy-out of chunk `s-2` (paper Fig. 2).
//!
//! The schedule itself is owned by the execution layer: [`mlm_exec::drive`]
//! walks the chunk schedule once, and the backends here adapt it to their
//! machinery:
//!
//! * [`sim::SimBackend`] (via [`sim::build_program`]) lowers the schedule
//!   to a [`knl_sim`] op graph for virtual-time experiments at paper scale;
//! * [`host::run_host_pipeline`] executes the same schedule with real
//!   threads and real buffers at host scale, validating that the pipeline
//!   produces correct data.
//!
//! [`PipelineSpec`] and [`Placement`] now live in [`mlm_exec`] (so every
//! layer shares one vocabulary) and are re-exported here for existing
//! callers.

pub mod fault;
pub mod host;
pub mod sim;

pub use mlm_exec::{PipelineSpec, Placement, Workload};
