//! Fault-injection hooks for the host pipeline (the `fuzz` feature).
//!
//! `mlm_exec::fuzz` injects faults into its *modeled* executor; this
//! module is the bridge to the real one. With the `fuzz` feature enabled,
//! a test can arm a kernel panic for a specific chunk and the host
//! backends (implicit, lockstep, dataflow) will panic inside the kernel
//! task exactly as a buggy user kernel would — exercising the real
//! poison-drain machinery (`mlm_exec::ring::coordinate`, slot poisoning,
//! panic propagation) on the schedule the fuzzer explored in model form.
//!
//! The hook is a process-global: tests that arm it must run in their own
//! integration-test binary (one process) and disarm on every exit path.
//! Without the `fuzz` feature the probe compiles to nothing.

#[cfg(feature = "fuzz")]
use std::sync::atomic::{AtomicIsize, Ordering};

/// Sentinel: no chunk armed.
#[cfg(feature = "fuzz")]
static ARMED_COMPUTE_PANIC: AtomicIsize = AtomicIsize::new(-1);

/// Arm a kernel panic: the next compute task that touches `chunk` panics
/// with a recognizable message. Stays armed until [`disarm`].
#[cfg(feature = "fuzz")]
pub fn arm_compute_panic(chunk: usize) {
    ARMED_COMPUTE_PANIC.store(chunk as isize, Ordering::SeqCst);
}

/// Disarm all injected faults.
#[cfg(feature = "fuzz")]
pub fn disarm() {
    ARMED_COMPUTE_PANIC.store(-1, Ordering::SeqCst);
}

/// Probe called by the host backends' compute paths just before the user
/// kernel runs. No-op unless the `fuzz` feature armed this chunk.
#[inline]
pub(crate) fn maybe_panic_compute(chunk: usize) {
    #[cfg(feature = "fuzz")]
    {
        if ARMED_COMPUTE_PANIC.load(Ordering::SeqCst) == chunk as isize {
            panic!("fuzz fault injection: kernel panic on chunk {chunk}");
        }
    }
    #[cfg(not(feature = "fuzz"))]
    {
        let _ = chunk;
    }
}
