//! Lowering a [`PipelineSpec`] to a [`knl_sim`] op graph.
//!
//! This file is the *simulator adapter* of the execution layer: the
//! schedule itself — which chunk each stage touches at each step, the
//! three-slot buffer-ring discipline, lockstep barriers vs dataflow
//! edges — lives in [`mlm_exec::drive`]. [`SimBackend`] only expands each
//! issued [`ChunkAction`] into per-thread ops: copies at `S_copy`,
//! compute streams at `S_comp`, and (for implicit cache mode) cold
//! passes through the address-exact cache model plus analytic warm
//! re-touches.
//!
//! Thread layout: copy-in threads first, then copy-out, then compute
//! (irrelevant to timing, but stable for traces). With `spec.lockstep`
//! the schedule matches the paper's Fig. 2 exactly: step `s` performs
//! copy-in of chunk `s`, compute on `s-1`, copy-out of `s-2`, and a
//! barrier closes the step. Without lockstep, only dataflow and
//! buffer-recycling dependencies order the ops (three buffers: copy-in
//! of chunk `c` waits for copy-out of chunk `c-3`).

use knl_sim::ops::{Access, OpId, OpKind, Place, Program};
use mlm_exec::{drive_verified, Backend, Capabilities, ChunkAction, Stage};

use super::{PipelineSpec, Placement, Workload};

/// The op-level simulator as an execution backend.
///
/// Tokens are the op-id lists of issued actions, so the orchestrator's
/// dependency tokens translate directly into op-graph edges.
pub struct SimBackend {
    prog: Program,
    threads: usize,
}

impl SimBackend {
    /// Create a backend sized for `spec`'s thread count.
    pub fn new(spec: &PipelineSpec) -> Result<Self, String> {
        spec.validate()?;
        let threads = spec.threads();
        Ok(SimBackend {
            prog: Program::new(threads),
            threads,
        })
    }

    /// Consume the backend, returning the lowered program.
    pub fn into_program(self) -> Program {
        self.prog
    }

    fn issue_copy_in(&mut self, spec: &PipelineSpec, chunk: usize, deps: &[OpId]) -> Vec<OpId> {
        let buf_place = buf_place(spec);
        let bytes = spec.chunk_size(chunk);
        let in0 = 0usize;
        let mut ops = Vec::new();
        let mut offset = 0u64;
        for t in 0..spec.p_in {
            let share = thread_share(bytes, spec.p_in, t);
            if share == 0 {
                continue;
            }
            let addr = spec.data_addr + chunk as u64 * spec.chunk_bytes + offset;
            offset += share;
            let id = self.prog.push(
                in0 + t,
                OpKind::Copy {
                    src: Place::CachedDdr { addr },
                    dst: buf_place,
                    bytes: share,
                    rate_cap: spec.copy_rate,
                },
                deps,
            );
            ops.push(id);
        }
        ops
    }

    fn issue_compute(&mut self, spec: &PipelineSpec, chunk: usize, deps: &[OpId]) -> Vec<OpId> {
        let buf_place = buf_place(spec);
        let bytes = spec.chunk_size(chunk);
        let comp0 = spec.p_in + spec.p_out;
        // The stencil retuning of the model's compute term: each chunk's
        // kernel additionally reads `halo_bytes` of boundary rows from
        // every staged neighbour (the plan's `KernelDesc::extra_read_bytes`,
        // halved per absent neighbour at the grid edges). The halo lives in
        // the same tier as the chunk buffers, so it rides the same bus.
        let halo_extra = match spec.workload {
            Workload::Map => 0,
            Workload::Stencil { halo_bytes } => {
                let neighbours = u64::from(chunk > 0) + u64::from(chunk + 1 < spec.n_chunks());
                neighbours * halo_bytes
            }
        };
        let mut ops = Vec::new();
        for t in 0..spec.p_comp {
            let share = thread_share(bytes, spec.p_comp, t);
            if share == 0 {
                continue;
            }
            let traffic = share * u64::from(spec.compute_passes);
            let halo_share = thread_share(halo_extra, spec.p_comp, t);
            let id = self.prog.push(
                comp0 + t,
                OpKind::Stream {
                    accesses: vec![
                        Access::read(buf_place, traffic + halo_share),
                        Access::write(buf_place, traffic),
                    ],
                    rate_cap: spec.compute_rate,
                },
                deps,
            );
            ops.push(id);
        }
        ops
    }

    fn issue_copy_out(&mut self, spec: &PipelineSpec, chunk: usize, deps: &[OpId]) -> Vec<OpId> {
        let buf_place = buf_place(spec);
        let bytes = spec.chunk_size(chunk);
        let out0 = spec.p_in;
        let mut ops = Vec::new();
        let mut offset = 0u64;
        for t in 0..spec.p_out {
            let share = thread_share(bytes, spec.p_out, t);
            if share == 0 {
                continue;
            }
            let addr = spec.data_addr + chunk as u64 * spec.chunk_bytes + offset;
            offset += share;
            let id = self.prog.push(
                out0 + t,
                OpKind::Copy {
                    src: buf_place,
                    dst: Place::CachedDdr { addr },
                    bytes: share,
                    rate_cap: spec.copy_rate,
                },
                deps,
            );
            ops.push(id);
        }
        ops
    }

    /// Implicit cache mode (paper Fig. 5): no copies; all threads compute
    /// on the chunk in place, pulling data through the MCDRAM cache. The
    /// first pass over a chunk goes through the address-exact cache model
    /// (cold misses); the remaining `compute_passes - 1` passes re-touch
    /// the same range, which stays resident iff the chunk fits the cache —
    /// modeled as pure MCDRAM traffic when it fits, or a DDR re-stream
    /// (plus fill traffic) when it does not. Re-issuing the range through
    /// the cache model once per pass would be exact too, but at high
    /// repeat counts it inflates the op count by orders of magnitude for
    /// identical results.
    fn issue_implicit_compute(
        &mut self,
        spec: &PipelineSpec,
        chunk: usize,
        deps: &[OpId],
    ) -> Vec<OpId> {
        let bytes = spec.chunk_size(chunk);
        let mut ops = Vec::new();
        let mut offset = 0u64;
        for t in 0..spec.p_comp {
            let share = thread_share(bytes, spec.p_comp, t);
            if share == 0 {
                continue;
            }
            let addr = spec.data_addr + chunk as u64 * spec.chunk_bytes + offset;
            offset += share;
            // Pass 0: cold, through the real cache.
            let cold = self.prog.push(
                t,
                OpKind::Stream {
                    accesses: vec![
                        Access::read(Place::CachedDdr { addr }, share),
                        Access::write(Place::CachedDdr { addr }, share),
                    ],
                    rate_cap: spec.compute_rate,
                },
                deps,
            );
            ops.push(cold);
            if let Some(warm) = self.implicit_warm_op(t, spec, share, cold) {
                ops.push(warm);
            }
        }
        ops
    }

    /// Emit the `compute_passes - 1` re-touch passes of the implicit
    /// kernel.
    ///
    /// A re-touched chunk stays resident iff it fits the cache; the
    /// builder has no machine config, so pass 0 uses the engine's
    /// address-exact cache and later passes are approximated by chunk size
    /// against the KNL's 16 GiB cache. Experiments sweeping exotic cache
    /// sizes lower their implicit schedules through the sort builders,
    /// which model residency against the actual machine.
    fn implicit_warm_op(
        &mut self,
        thread: usize,
        spec: &PipelineSpec,
        share: u64,
        cold: OpId,
    ) -> Option<OpId> {
        let extra = u64::from(spec.compute_passes.saturating_sub(1));
        if extra == 0 {
            return None;
        }
        let traffic = share * extra;
        let fits = spec.chunk_bytes <= 15 * (1 << 30);
        let accesses = if fits {
            vec![
                Access::read(Place::Mcdram, traffic),
                Access::write(Place::Mcdram, traffic),
            ]
        } else {
            vec![
                Access::read(Place::Ddr, traffic),
                Access::write(Place::Ddr, traffic),
                Access::write(Place::Mcdram, traffic),
            ]
        };
        Some(self.prog.push(
            thread,
            OpKind::Stream {
                accesses,
                rate_cap: spec.compute_rate,
            },
            &[cold],
        ))
    }
}

impl Backend for SimBackend {
    type Token = Vec<OpId>;

    fn capabilities(&self) -> Capabilities {
        // The simulator lowers every placement; whether a given *machine*
        // can execute it (e.g. Hbw buffers on a cache-mode KNL) is the
        // op validator's and mlm-verify's concern (lints V003/V010).
        Capabilities::all()
    }

    fn issue(&mut self, spec: &PipelineSpec, action: ChunkAction, deps: &[Vec<OpId>]) -> Vec<OpId> {
        let deps: Vec<OpId> = deps.iter().flatten().copied().collect();
        match (spec.placement, action.stage) {
            (Placement::Implicit, Stage::Compute) => {
                self.issue_implicit_compute(spec, action.chunk, &deps)
            }
            (Placement::Implicit, _) => unreachable!("implicit schedules have no copy stages"),
            (_, Stage::CopyIn) => self.issue_copy_in(spec, action.chunk, &deps),
            (_, Stage::Compute) => self.issue_compute(spec, action.chunk, &deps),
            (_, Stage::CopyOut) => self.issue_copy_out(spec, action.chunk, &deps),
        }
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, after: &[Vec<OpId>]) -> Vec<OpId> {
        let after: Vec<OpId> = after.iter().flatten().copied().collect();
        self.prog.barrier(0..self.threads, &after)
    }
}

/// Where explicit chunk buffers live in the simulated machine.
fn buf_place(spec: &PipelineSpec) -> Place {
    match spec.placement {
        Placement::Hbw => Place::Mcdram,
        Placement::Ddr => Place::Ddr,
        Placement::Implicit => unreachable!("implicit placement owns no buffers"),
    }
}

/// Build the simulated program for `spec` by driving a [`SimBackend`]
/// through the shared orchestrator.
///
/// The orchestrator runs behind the static schedule verifier
/// ([`mlm_exec::graph`]): the emitted dependency graph is proven race-
/// and deadlock-free before any ops are pushed. The MCDRAM capacity
/// bound is machine-dependent and is checked by the callers that know
/// the machine ([`knl_sim::Simulator::preflight_spec`], the mlm-verify
/// engine); here only the machine-independent properties gate.
pub fn build_program(spec: &PipelineSpec) -> Result<Program, String> {
    let mut backend = SimBackend::new(spec)?;
    drive_verified(&mut backend, spec, None).map_err(String::from)?;
    Ok(backend.into_program())
}

/// Bytes of an `bytes`-byte chunk handled by thread `t` of `pool` threads.
fn thread_share(bytes: u64, pool: usize, t: usize) -> u64 {
    let base = bytes / pool as u64;
    let extra = bytes % pool as u64;
    base + u64::from((t as u64) < extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Workload;
    use knl_sim::machine::{MachineConfig, MemMode};
    use knl_sim::{MemLevel, Simulator};

    fn base_spec() -> PipelineSpec {
        PipelineSpec {
            total_bytes: 6 << 20,
            chunk_bytes: 2 << 20,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 2e9,
            copy_rate: 1e9,
            placement: Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn thread_share_sums_to_total() {
        for bytes in [0u64, 1, 99, 100, 1 << 20] {
            for pool in [1usize, 2, 3, 7] {
                let sum: u64 = (0..pool).map(|t| thread_share(bytes, pool, t)).sum();
                assert_eq!(sum, bytes);
            }
        }
    }

    #[test]
    fn program_moves_every_byte_twice_in_flat_mode() {
        let spec = base_spec();
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        let total = spec.total_bytes;
        // Copy-in reads DDR, copy-out writes DDR.
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, total);
        assert_eq!(r.traffic_on(MemLevel::Ddr).written, total);
        // MCDRAM: copy-in writes + compute read/write + copy-out reads.
        assert_eq!(r.traffic_on(MemLevel::Mcdram).total(), 4 * total);
    }

    #[test]
    fn lockstep_time_is_sum_of_step_maxima() {
        // One chunk: steps are copy-in, compute, copy-out with no overlap.
        let mut spec = base_spec();
        spec.total_bytes = 2 << 20;
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        let b = (2 << 20) as f64;
        let t_in = b / 1e9;
        let t_comp = 2.0 * (b / 2.0) / 2e9; // 2 threads, 2 passes of traffic
        let t_out = b / 1e9;
        let expect = t_in + t_comp + t_out;
        assert!(
            (r.makespan - expect).abs() / expect < 1e-6,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn pipelining_overlaps_steps() {
        // Many chunks: total time must be well below the serial sum.
        let mut spec = base_spec();
        spec.total_bytes = 64 << 20;
        spec.chunk_bytes = 4 << 20;
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        let b = spec.total_bytes as f64;
        let serial = b / 1e9 + b / 2e9 + b / 1e9; // in + comp + out, never overlapped
        assert!(
            r.makespan < 0.7 * serial,
            "{} vs serial {serial}",
            r.makespan
        );
    }

    #[test]
    fn dataflow_is_no_slower_than_lockstep() {
        let mut lock = base_spec();
        lock.total_bytes = 64 << 20;
        lock.chunk_bytes = 4 << 20;
        let mut flow = lock.clone();
        flow.lockstep = false;
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let sim = Simulator::new(cfg);
        let t_lock = sim.run(&build_program(&lock).unwrap()).unwrap().makespan;
        let t_flow = sim.run(&build_program(&flow).unwrap()).unwrap().makespan;
        assert!(
            t_flow <= t_lock * (1.0 + 1e-9),
            "dataflow {t_flow} > lockstep {t_lock}"
        );
    }

    #[test]
    fn implicit_mode_runs_without_copies() {
        let mut spec = base_spec();
        spec.placement = Placement::Implicit;
        spec.p_in = 0;
        spec.p_out = 0;
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Cache);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        // Cold misses pull every byte from DDR exactly once (6 MiB fits the
        // 64 MiB cache).
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, spec.total_bytes);
        assert!(r.cache.miss_bytes > 0);
    }

    #[test]
    fn implicit_rereads_hit_in_cache() {
        let mut spec = base_spec();
        spec.placement = Placement::Implicit;
        spec.p_in = 0;
        spec.p_out = 0;
        spec.compute_passes = 4; // same chunk touched repeatedly
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Cache);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        // Only the first pass misses (DDR sees each byte once); the three
        // re-touch passes are MCDRAM-served.
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, spec.total_bytes);
        let mcd = r.traffic_on(MemLevel::Mcdram).total();
        assert!(
            mcd >= 7 * spec.total_bytes,
            "warm passes must ride the MCDRAM bus: {mcd}"
        );
    }

    #[test]
    fn ragged_tail_chunk_is_processed() {
        let mut spec = base_spec();
        spec.total_bytes = (2 << 20) + 12345;
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, spec.total_bytes);
        assert_eq!(r.traffic_on(MemLevel::Ddr).written, spec.total_bytes);
    }

    #[test]
    fn more_copy_threads_help_until_saturation() {
        // With heavy copy demand, going 1 -> 4 copy threads must speed the
        // pipeline up; 4 already saturates the tiny machine's DDR
        // (4 threads on each side x 1 GB/s vs 10 GB/s DDR is fine, so use
        // larger pools to cross saturation).
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let sim = Simulator::new(cfg);
        let time = |p: usize| {
            let mut s = base_spec();
            s.total_bytes = 128 << 20;
            s.chunk_bytes = 8 << 20;
            s.p_in = p;
            s.p_out = p;
            s.p_comp = 2;
            sim.run(&build_program(&s).unwrap()).unwrap().makespan
        };
        let t1 = time(1);
        let t4 = time(4);
        let t8 = time(8);
        let t16 = time(16);
        assert!(t4 < t1, "more copy threads help: {t4} !< {t1}");
        // Past DDR saturation (10 threads x 1 GB/s > 10 GB/s), no gain.
        assert!(t16 >= t8 * 0.95, "saturated: {t16} vs {t8}");
    }

    fn stencil_base_spec(halo_bytes: u64) -> PipelineSpec {
        PipelineSpec {
            workload: Workload::Stencil { halo_bytes },
            ..base_spec()
        }
    }

    #[test]
    fn stencil_program_adds_halo_read_traffic() {
        // 3 chunks: chunk 0 and 2 read one neighbour halo, chunk 1 reads
        // two — 4 halo reads on the buffer tier beyond the map family's
        // 4x total.
        let halo = 64 << 10;
        let map = build_program(&base_spec()).unwrap();
        let sten = build_program(&stencil_base_spec(halo)).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let sim = Simulator::new(cfg);
        let rm = sim.run(&map).unwrap();
        let rs = sim.run(&sten).unwrap();
        let total = base_spec().total_bytes;
        assert_eq!(rm.traffic_on(MemLevel::Mcdram).total(), 4 * total);
        assert_eq!(
            rs.traffic_on(MemLevel::Mcdram).total(),
            4 * total + 4 * halo,
            "stencil computes must read both staged neighbour halos"
        );
        // DDR traffic (grid in, grid out) is workload-independent.
        assert_eq!(rs.traffic_on(MemLevel::Ddr).read, total);
        assert_eq!(rs.traffic_on(MemLevel::Ddr).written, total);
    }

    #[test]
    fn stencil_dataflow_is_no_slower_than_lockstep() {
        let mut lock = stencil_base_spec(128 << 10);
        lock.total_bytes = 64 << 20;
        lock.chunk_bytes = 4 << 20;
        let mut flow = lock.clone();
        flow.lockstep = false;
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let sim = Simulator::new(cfg);
        let t_lock = sim.run(&build_program(&lock).unwrap()).unwrap().makespan;
        let t_flow = sim.run(&build_program(&flow).unwrap()).unwrap().makespan;
        assert!(
            t_flow <= t_lock * (1.0 + 1e-9),
            "dataflow {t_flow} > lockstep {t_lock}"
        );
    }

    #[test]
    fn stencil_ragged_tail_is_processed() {
        let mut spec = stencil_base_spec(4096);
        spec.total_bytes = (2 << 20) + 12345;
        let prog = build_program(&spec).unwrap();
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let r = Simulator::new(cfg).run(&prog).unwrap();
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, spec.total_bytes);
        assert_eq!(r.traffic_on(MemLevel::Ddr).written, spec.total_bytes);
    }

    #[test]
    fn recorded_trace_matches_op_graph_structure() {
        // RecordingBackend<SimBackend> lowers the identical program while
        // producing a schedule trace: the recorder is a pure observer.
        use mlm_exec::RecordingBackend;
        let spec = base_spec();
        let direct = build_program(&spec).unwrap();
        let mut rec = RecordingBackend::new(SimBackend::new(&spec).unwrap());
        mlm_exec::drive(&mut rec, &spec).unwrap();
        let (backend, events) = rec.into_parts();
        let traced = backend.into_program();
        assert_eq!(traced.ops().len(), direct.ops().len());
        assert!(!events.is_empty());
    }
}
