//! Executing a chunked pipeline with real threads and real buffers.
//!
//! This backend validates the *software* half of the paper: the triple
//! thread-pool, triple-buffer schedule must produce bit-correct results
//! under full overlap. Host memory has a single level, so wall-clock here
//! is not the experiment (that is the simulator's job) — correctness and
//! native benchmarking are.
//!
//! Two schedules are implemented, selected by [`PipelineSpec::lockstep`]:
//!
//! * **Lockstep** (`lockstep: true`): each step runs copy-in of chunk `s`,
//!   compute on chunk `s-1`, and copy-out of chunk `s-2` as one task batch
//!   on a single shared [`WorkPool`], with a barrier between steps. This is
//!   the paper's schedule, whose makespan the model's
//!   `max(T_copy, T_comp)` term describes.
//! * **Dataflow** (`lockstep: false`): three persistent stage pools
//!   ([`HostStagePools`]) run decoupled coordinator threads connected by a
//!   three-slot buffer ring. A stage advances as soon as *its* buffer
//!   dependency is satisfied (`Empty → Filled → Computed → Empty`), so a
//!   slow chunk in one stage no longer stalls unrelated work in the
//!   others — mirroring the dependency structure of
//!   [`super::sim::build_program`]'s non-lockstep op graph.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use parsort::pool::{split_range, StagePool, WorkPool};

use super::{PipelineSpec, Placement};

/// How a chunk kernel sees its slice of the current chunk.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx {
    /// Chunk index within the run.
    pub chunk: usize,
    /// Compute-thread index within the pool.
    pub thread: usize,
    /// Global element offset of this slice within the whole data set.
    pub global_offset: usize,
}

/// Per-stage timing of one host pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Worker threads dedicated to (or sharing) this stage.
    pub threads: usize,
    /// Cumulative task execution time, summed across workers.
    pub busy: Duration,
    /// Time the stage's coordinator spent blocked waiting for a buffer
    /// dependency (dataflow runs only; zero under lockstep, where waiting
    /// happens inside the shared pool's step barrier).
    pub wait: Duration,
}

impl StageStats {
    /// Fraction of `threads x elapsed` this stage spent executing tasks.
    pub fn occupancy(&self, elapsed: Duration) -> f64 {
        if self.threads == 0 || elapsed.is_zero() {
            return 0.0;
        }
        self.busy.as_secs_f64() / (self.threads as f64 * elapsed.as_secs_f64())
    }
}

/// Result of a host pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostRunStats {
    /// Number of chunks processed.
    pub chunks: usize,
    /// Number of schedule steps (`chunks + 2` for explicit pipelines;
    /// reported for dataflow runs too so the two modes compare directly,
    /// even though dataflow has no step barriers).
    pub steps: usize,
    /// Wall-clock duration of the chunked phase.
    pub elapsed: Duration,
    /// Copy-in stage timing (zero `threads` under [`Placement::Implicit`]).
    pub copy_in: StageStats,
    /// Compute stage timing.
    pub compute: StageStats,
    /// Copy-out stage timing (zero `threads` under [`Placement::Implicit`]).
    pub copy_out: StageStats,
}

/// The three dedicated stage pools of a dataflow host pipeline.
///
/// Creating the pools spawns `p_in + p_comp + p_out` OS threads, so
/// benchmarks and long-lived callers should build one `HostStagePools` and
/// reuse it across [`run_host_pipeline_dataflow`] calls; each run resets
/// the busy counters itself.
pub struct HostStagePools {
    /// Pool executing copy-in tasks.
    pub copy_in: StagePool,
    /// Pool executing compute (kernel) tasks.
    pub compute: StagePool,
    /// Pool executing copy-out tasks.
    pub copy_out: StagePool,
}

impl HostStagePools {
    /// Spawn the three stage pools.
    pub fn new(p_in: usize, p_comp: usize, p_out: usize) -> Self {
        HostStagePools {
            copy_in: StagePool::new(p_in),
            compute: StagePool::new(p_comp),
            copy_out: StagePool::new(p_out),
        }
    }

    /// Spawn pools sized to `spec`'s `p_in`/`p_comp`/`p_out`.
    pub fn for_spec(spec: &PipelineSpec) -> Self {
        HostStagePools::new(spec.p_in.max(1), spec.p_comp.max(1), spec.p_out.max(1))
    }

    /// Zero all three busy counters.
    pub fn reset(&self) {
        self.copy_in.reset_busy();
        self.compute.reset_busy();
        self.copy_out.reset_busy();
    }
}

/// Stream `data` through the chunked pipeline, applying `kernel` to each
/// compute thread's slice of each chunk, writing results to `out`.
///
/// `kernel(slice, ctx)` must be a pure per-slice transformation — exactly
/// the shape of the paper's merge benchmark and of MLM-sort's serial sort
/// phase. Buffers are rotated so copy-in, compute, and copy-out of three
/// consecutive chunks overlap; with `spec.placement == Implicit` the kernel
/// runs in place on `out` (which is first filled from `data`).
///
/// `spec.lockstep` selects the schedule: `true` runs the paper's lockstep
/// steps on the shared `pool`; `false` runs the dataflow schedule on three
/// freshly spawned stage pools (`pool` is not used — callers that run
/// dataflow repeatedly should call [`run_host_pipeline_dataflow`] with
/// persistent [`HostStagePools`] instead). [`Placement::Implicit`] has no
/// copy stages, so both settings execute identically there.
///
/// `spec` fields `compute_rate`/`copy_rate`/`data_addr` are ignored on the
/// host; pool sizes and chunk geometry are honoured. Element counts are
/// derived from `data.len()`, not `spec.total_bytes`.
///
/// # Panics
/// Panics if `out.len() != data.len()`, the spec fails validation, or
/// `spec.chunk_bytes` is not a positive multiple of `size_of::<T>()`
/// (see [`PipelineSpec::validate_elem_size`]).
pub fn run_host_pipeline<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: F,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    assert_eq!(out.len(), data.len(), "out must match data length");
    let start = Instant::now();
    if data.is_empty() {
        return HostRunStats {
            chunks: 0,
            steps: 0,
            elapsed: start.elapsed(),
            copy_in: StageStats::default(),
            compute: StageStats::default(),
            copy_out: StageStats::default(),
        };
    }
    spec.validate().expect("invalid pipeline spec");
    spec.validate_elem_size(std::mem::size_of::<T>())
        .expect("invalid chunk geometry");

    if spec.placement == Placement::Implicit {
        return run_implicit(pool, spec, data, out, &kernel, start);
    }
    if spec.lockstep {
        return run_lockstep(pool, spec, data, out, &kernel, start);
    }
    let pools = HostStagePools::for_spec(spec);
    run_host_pipeline_dataflow(&pools, spec, data, out, kernel)
}

/// Number of elements per chunk. Exact by construction:
/// [`PipelineSpec::validate_elem_size`] has already rejected specs whose
/// `chunk_bytes` is not a multiple of the element size, so host chunk
/// boundaries coincide with the spec's (and the simulator's) byte
/// boundaries.
fn chunk_elems_for<T>(spec: &PipelineSpec) -> usize {
    spec.chunk_bytes as usize / std::mem::size_of::<T>().max(1)
}

/// Implicit cache mode: one memcpy of the whole input (the data already
/// lives where it is computed on), then all threads process chunks in
/// place. There are no copy stages, so lockstep and dataflow coincide.
fn run_implicit<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: &F,
    start: Instant,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);
    let busy_comp = AtomicU64::new(0);

    out.copy_from_slice(data);
    for c in 0..n_chunks {
        let lo = c * chunk_elems;
        let hi = ((c + 1) * chunk_elems).min(out.len());
        let chunk = &mut out[lo..hi];
        let parts = spec.p_comp.min(chunk.len()).max(1);
        let mut slices = Vec::with_capacity(parts);
        let mut rest = chunk;
        for t in 0..parts {
            let (s, e) = split_range(hi - lo, parts, t);
            let (head, tail) = rest.split_at_mut(e - s);
            slices.push((t, s, head));
            rest = tail;
        }
        let busy = &busy_comp;
        pool.scoped(slices.into_iter().map(|(t, s, slice)| {
            let ctx = KernelCtx {
                chunk: c,
                thread: t,
                global_offset: lo + s,
            };
            move || {
                let t0 = Instant::now();
                kernel(slice, ctx);
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }));
    }
    HostRunStats {
        chunks: n_chunks,
        steps: n_chunks,
        elapsed: start.elapsed(),
        copy_in: StageStats::default(),
        compute: StageStats {
            threads: spec.p_comp,
            busy: Duration::from_nanos(busy_comp.load(Ordering::Relaxed)),
            wait: Duration::ZERO,
        },
        copy_out: StageStats::default(),
    }
}

/// The paper's lockstep schedule: per step, one task batch on the shared
/// pool (copy-in chunk `s`, compute chunk `s-1`, copy-out chunk `s-2`),
/// then the implicit barrier of `scoped` closes the step.
fn run_lockstep<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: &F,
    start: Instant,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);
    let busy_in = AtomicU64::new(0);
    let busy_comp = AtomicU64::new(0);
    let busy_out = AtomicU64::new(0);

    // Three rotating buffers.
    let mut buffers: Vec<Vec<T>> = (0..3).map(|_| Vec::new()).collect();
    let steps = n_chunks + 2;
    for s in 0..steps {
        let (buf_a, buf_b, buf_c) = three_mut(&mut buffers, s % 3, (s + 2) % 3, (s + 1) % 3);

        // Stage geometry.
        let in_range = if s < n_chunks {
            let lo = s * chunk_elems;
            Some((lo, ((s + 1) * chunk_elems).min(data.len())))
        } else {
            None
        };
        let comp_chunk = (s >= 1 && s - 1 < n_chunks).then(|| s - 1);
        let out_chunk = (s >= 2 && s - 2 < n_chunks).then(|| s - 2);

        // Prepare copy-in destination.
        if let Some((lo, hi)) = in_range {
            buf_a.clear();
            buf_a.resize(hi - lo, data[0]);
        }

        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();

        if let Some((lo, hi)) = in_range {
            let src = &data[lo..hi];
            let parts = spec.p_in.min(src.len()).max(1);
            let mut rest: &mut [T] = buf_a;
            for t in 0..parts {
                let (ss, se) = split_range(src.len(), parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let s_slice = &src[ss..se];
                let busy = &busy_in;
                tasks.push(Box::new(move || {
                    let t0 = Instant::now();
                    head.copy_from_slice(s_slice);
                    busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }));
            }
        }

        if let Some(c) = comp_chunk {
            let lo = c * chunk_elems;
            let len = buf_b.len();
            let parts = spec.p_comp.min(len).max(1);
            let mut rest: &mut [T] = buf_b;
            for t in 0..parts {
                let (ss, se) = split_range(len, parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let ctx = KernelCtx {
                    chunk: c,
                    thread: t,
                    global_offset: lo + ss,
                };
                let busy = &busy_comp;
                tasks.push(Box::new(move || {
                    let t0 = Instant::now();
                    kernel(head, ctx);
                    busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }));
            }
        }

        if let Some(c) = out_chunk {
            let lo = c * chunk_elems;
            let hi = (lo + chunk_elems).min(out.len());
            let dst = &mut out[lo..hi];
            let src: &[T] = buf_c;
            debug_assert_eq!(src.len(), dst.len());
            let parts = spec.p_out.min(src.len()).max(1);
            let mut rest = dst;
            for t in 0..parts {
                let (ss, se) = split_range(src.len(), parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let s_slice = &src[ss..se];
                let busy = &busy_out;
                tasks.push(Box::new(move || {
                    let t0 = Instant::now();
                    head.copy_from_slice(s_slice);
                    busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }));
            }
        }

        pool.scoped(tasks);
    }

    let stage = |threads: usize, busy: &AtomicU64| StageStats {
        threads,
        busy: Duration::from_nanos(busy.load(Ordering::Relaxed)),
        wait: Duration::ZERO,
    };
    HostRunStats {
        chunks: n_chunks,
        steps,
        elapsed: start.elapsed(),
        copy_in: stage(spec.p_in, &busy_in),
        compute: stage(spec.p_comp, &busy_comp),
        copy_out: stage(spec.p_out, &busy_out),
    }
}

// ---------------------------------------------------------------------------
// Dataflow schedule
// ---------------------------------------------------------------------------

/// Lifecycle of one ring slot. A slot cycles
/// `Empty(c) → Filled(c) → Computed(c) → Empty(c + 3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Free for copy-in of chunk `chunk`.
    Empty,
    /// Holds the input of chunk `chunk`, ready for compute.
    Filled,
    /// Holds the output of chunk `chunk`, ready for copy-out.
    Computed,
}

#[derive(Debug, Clone, Copy)]
struct SlotState {
    phase: Phase,
    chunk: usize,
}

/// One slot of the three-buffer ring.
///
/// The `state` mutex + condvar implement the phase machine; `data` is
/// accessed through `UnsafeCell` because the coordinator that observed the
/// right phase holds *logical* exclusive ownership of the buffer until it
/// publishes the next phase — holding the mutex across a multi-megabyte
/// memcpy would serialize the stages the schedule exists to overlap.
struct BufSlot<T> {
    state: Mutex<SlotState>,
    cv: Condvar,
    data: UnsafeCell<Vec<T>>,
}

// SAFETY: `data` is only touched by the coordinator whose awaited phase
// grants it exclusive ownership (see the protocol in `await_phase` /
// `publish`); the mutex release/acquire pair on `state` provides the
// happens-before edge between the owner handing the buffer off and the
// next owner reading it.
//
// Why `T: Send` is the right bound (and `T: Sync` is not needed): sharing
// `&BufSlot<T>` across the three stage coordinators never produces
// concurrent `&T` access — the phase machine is a baton pass, so at any
// instant at most one thread holds any reference into the `Vec<T>`. What
// the protocol *does* do is hand the whole buffer from one thread to the
// next (copy-in fills it, compute mutates it, copy-out drains it), which
// is exactly an ownership transfer between threads — the capability
// `T: Send` licenses. Dropping to no bound would be unsound: e.g.
// `BufSlot<Rc<u64>>` would let copy-in clone `Rc`s that compute then
// drops on another thread, racing the non-atomic refcount. The protocol
// itself is machine-checked in `mlm-verify` (`models::ring` for the phase
// baton, `models::condvar` for the wakeup discipline); this impl is the
// one line the checker cannot see, so the argument lives here.
//
// Compile-fail check (rustdoc does not run doctests on private items, so
// this is documentation, not an executed test — the claim it records is
// that the bound below rejects non-`Send` payloads):
//
// ```compile_fail
// let slot = BufSlot::<std::rc::Rc<u64>>::new(0);
// std::thread::scope(|s| { s.spawn(|| &slot); }); // Rc<u64>: !Send
// ```
unsafe impl<T: Send> Sync for BufSlot<T> {}

impl<T> BufSlot<T> {
    fn new(first_chunk: usize) -> Self {
        BufSlot {
            state: Mutex::new(SlotState {
                phase: Phase::Empty,
                chunk: first_chunk,
            }),
            cv: Condvar::new(),
            data: UnsafeCell::new(Vec::new()),
        }
    }

    /// Block until this slot reaches `(phase, chunk)`, returning the time
    /// spent blocked. Panics if a peer stage has poisoned the run.
    ///
    /// Audit note (mlm-verify `models::condvar`): the predicate is
    /// re-checked after *every* wakeup. Two distinct waiters can park on
    /// this one condvar (copy-out awaiting `Computed(c)` and copy-in
    /// awaiting `Empty(c + 3)` share slot `c % 3`), so a wakeup proves
    /// nothing about *whose* predicate became true; claiming without the
    /// re-check is the checker's `NoRecheck` ownership violation, and it
    /// also absorbs spurious wakeups.
    fn await_phase(&self, phase: Phase, chunk: usize, poisoned: &AtomicBool) -> Duration {
        let t0 = Instant::now();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if poisoned.load(Ordering::SeqCst) {
                // panic_any keeps the payload a `&str`, which is how the
                // result collection below recognizes secondary aborts.
                std::panic::panic_any(POISON_MSG);
            }
            if st.phase == phase && st.chunk == chunk {
                return t0.elapsed();
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Publish this slot's next `(phase, chunk)` and wake all waiters.
    ///
    /// Audit note (mlm-verify `models::condvar`): the store and the notify
    /// both happen under the slot lock, so no waiter can check the old
    /// state and park in between (`PoisonSkipLock`'s lost wakeup); and it
    /// must be `notify_all`, because with two kinds of waiters per slot a
    /// `notify_one` token can land on the waiter whose predicate is still
    /// false (`NotifyOne`'s deadlock, reachable from 4 chunks on).
    fn publish(&self, phase: Phase, chunk: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = SlotState { phase, chunk };
        self.cv.notify_all();
    }
}

/// Panic message used when a stage aborts because a *peer* stage panicked;
/// recognized so the original panic payload wins when both propagate.
const POISON_MSG: &str = "host pipeline dataflow run aborted: a peer stage panicked";

/// Mark the run poisoned and wake every coordinator. Taking each slot's
/// lock before notifying guarantees no coordinator can re-check the flag
/// and park between our store and our notify (no lost wakeups).
///
/// mlm-verify's `models::condvar` checks exactly this discipline: its
/// `Correct` variant (which locks here) verifies deadlock-free with poison
/// injected at every (stage, chunk), while `PoisonSkipLock` (notify
/// without the lock) deadlocks a waiter parked in that window.
fn poison<T>(slots: &[BufSlot<T>], poisoned: &AtomicBool) {
    poisoned.store(true, Ordering::SeqCst);
    for slot in slots {
        let _guard = slot.state.lock().unwrap_or_else(|e| e.into_inner());
        slot.cv.notify_all();
    }
}

/// Outcome of one coordinator: cumulative blocked time, or the panic
/// payload that killed it.
type StageResult = Result<Duration, Box<dyn Any + Send>>;

/// Run one stage coordinator, converting a panic into a poisoned ring (so
/// the peer stages wake up and abort instead of deadlocking on a phase
/// that will never come) plus the captured payload.
fn coordinate<T>(
    slots: &[BufSlot<T>],
    poisoned: &AtomicBool,
    body: impl FnOnce() -> Duration,
) -> StageResult {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(waited) => Ok(waited),
        Err(payload) => {
            poison(slots, poisoned);
            Err(payload)
        }
    }
}

/// Run the dataflow (non-lockstep) schedule on persistent stage pools.
///
/// Three coordinator threads — one per stage — walk the chunk sequence
/// independently, synchronizing only through the three-slot buffer ring:
/// chunk `c` lives in slot `c % 3`, and copy-out of chunk `c` recycles its
/// slot for copy-in of chunk `c + 3`. Each coordinator fans its chunk's
/// work out to its own [`StagePool`], so copy-in of chunk `c`, compute on
/// `c - 1`, and copy-out of `c - 2` genuinely overlap without any step
/// barrier between them.
///
/// Busy counters in `pools` are reset at the start of the run; the
/// returned [`StageStats`] also report each coordinator's blocked time, so
/// callers can see which stage was the bottleneck (the bottleneck stage
/// waits least).
///
/// # Panics
/// Panics on the same conditions as [`run_host_pipeline`], if
/// `spec.placement == Implicit` (implicit mode has no copy stages — use
/// [`run_host_pipeline`]), or if the kernel panics (the kernel's panic
/// payload is rethrown once all stages have shut down).
pub fn run_host_pipeline_dataflow<T, F>(
    pools: &HostStagePools,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: F,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    assert_eq!(out.len(), data.len(), "out must match data length");
    assert_ne!(
        spec.placement,
        Placement::Implicit,
        "implicit placement has no copy stages; use run_host_pipeline"
    );
    let start = Instant::now();
    if data.is_empty() {
        return HostRunStats {
            chunks: 0,
            steps: 0,
            elapsed: start.elapsed(),
            copy_in: StageStats::default(),
            compute: StageStats::default(),
            copy_out: StageStats::default(),
        };
    }
    spec.validate().expect("invalid pipeline spec");
    spec.validate_elem_size(std::mem::size_of::<T>())
        .expect("invalid chunk geometry");
    pools.reset();

    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);
    let slots: Vec<BufSlot<T>> = (0..3).map(BufSlot::new).collect();
    let poisoned = AtomicBool::new(false);
    let out_chunks: Vec<&mut [T]> = out.chunks_mut(chunk_elems).collect();
    debug_assert_eq!(out_chunks.len(), n_chunks);
    let slots = &slots;
    let poisoned = &poisoned;
    let kernel = &kernel;
    let fill = data[0];

    let copy_in_body = move || {
        let mut waited = Duration::ZERO;
        for c in 0..n_chunks {
            let slot = &slots[c % 3];
            waited += slot.await_phase(Phase::Empty, c, poisoned);
            let lo = c * chunk_elems;
            let hi = ((c + 1) * chunk_elems).min(data.len());
            let src = &data[lo..hi];
            // SAFETY: `Empty(c)` grants this coordinator exclusive
            // ownership of the slot's buffer until it publishes `Filled`.
            let buf = unsafe { &mut *slot.data.get() };
            buf.clear();
            buf.resize(src.len(), fill);
            copy_parallel(&pools.copy_in, spec.p_in, src, buf);
            slot.publish(Phase::Filled, c);
        }
        waited
    };

    let compute_body = move || {
        let mut waited = Duration::ZERO;
        for c in 0..n_chunks {
            let slot = &slots[c % 3];
            waited += slot.await_phase(Phase::Filled, c, poisoned);
            // SAFETY: `Filled(c)` hands the buffer to the compute stage.
            let buf = unsafe { &mut *slot.data.get() };
            let lo = c * chunk_elems;
            let len = buf.len();
            let parts = spec.p_comp.min(len).max(1);
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(parts);
            let mut rest: &mut [T] = buf;
            for t in 0..parts {
                let (ss, se) = split_range(len, parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let ctx = KernelCtx {
                    chunk: c,
                    thread: t,
                    global_offset: lo + ss,
                };
                tasks.push(Box::new(move || kernel(head, ctx)));
            }
            pools.compute.scoped(tasks);
            slot.publish(Phase::Computed, c);
        }
        waited
    };

    let copy_out_body = move || {
        let mut waited = Duration::ZERO;
        for (c, dst) in out_chunks.into_iter().enumerate() {
            let slot = &slots[c % 3];
            waited += slot.await_phase(Phase::Computed, c, poisoned);
            // SAFETY: `Computed(c)` hands the buffer to the copy-out
            // stage; `dst` is this chunk's pre-split disjoint window of
            // `out`, owned by this coordinator.
            let buf = unsafe { &*slot.data.get() };
            debug_assert_eq!(buf.len(), dst.len());
            copy_parallel(&pools.copy_out, spec.p_out, buf, dst);
            // Recycle the slot for copy-in of chunk c + 3.
            slot.publish(Phase::Empty, c + 3);
        }
        waited
    };

    let (r_in, r_comp, r_out) = std::thread::scope(|sc| {
        let h_in = sc.spawn(move || coordinate(slots, poisoned, copy_in_body));
        let h_comp = sc.spawn(move || coordinate(slots, poisoned, compute_body));
        let h_out = sc.spawn(move || coordinate(slots, poisoned, copy_out_body));
        (
            h_in.join().expect("coordinator wrapper does not panic"),
            h_comp.join().expect("coordinator wrapper does not panic"),
            h_out.join().expect("coordinator wrapper does not panic"),
        )
    });

    let mut waits = [Duration::ZERO; 3];
    let mut first_payload: Option<Box<dyn Any + Send>> = None;
    let mut poison_payload: Option<Box<dyn Any + Send>> = None;
    for (i, r) in [r_in, r_comp, r_out].into_iter().enumerate() {
        match r {
            Ok(w) => waits[i] = w,
            Err(p) => {
                // Prefer the original panic over secondary abort panics.
                if p.downcast_ref::<&str>() == Some(&POISON_MSG) {
                    poison_payload.get_or_insert(p);
                } else {
                    first_payload.get_or_insert(p);
                }
            }
        }
    }
    if let Some(payload) = first_payload.or(poison_payload) {
        resume_unwind(payload);
    }

    let stage = |pool: &StagePool, wait: Duration| StageStats {
        threads: pool.threads(),
        busy: pool.busy(),
        wait,
    };
    HostRunStats {
        chunks: n_chunks,
        steps: n_chunks + 2,
        elapsed: start.elapsed(),
        copy_in: stage(&pools.copy_in, waits[0]),
        compute: stage(&pools.compute, waits[1]),
        copy_out: stage(&pools.copy_out, waits[2]),
    }
}

/// Copy `src` into `dst` split across up to `parts_max` pool tasks.
fn copy_parallel<T: Copy + Send + Sync>(
    pool: &StagePool,
    parts_max: usize,
    src: &[T],
    dst: &mut [T],
) {
    debug_assert_eq!(src.len(), dst.len());
    let parts = parts_max.min(src.len()).max(1);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(parts);
    let mut rest = dst;
    for t in 0..parts {
        let (ss, se) = split_range(src.len(), parts, t);
        let (head, tail) = rest.split_at_mut(se - ss);
        rest = tail;
        let s_slice = &src[ss..se];
        tasks.push(Box::new(move || head.copy_from_slice(s_slice)));
    }
    pool.scoped(tasks);
}

/// Disjoint mutable references to three distinct buffer slots.
fn three_mut<T>(
    buffers: &mut [Vec<T>],
    a: usize,
    b: usize,
    c: usize,
) -> (&mut Vec<T>, &mut Vec<T>, &mut Vec<T>) {
    assert!(
        a != b && b != c && a != c,
        "buffer indices must be distinct"
    );
    assert!(a < buffers.len() && b < buffers.len() && c < buffers.len());
    let ptr = buffers.as_mut_ptr();
    // SAFETY: the indices are pairwise distinct and in bounds, so the three
    // references alias disjoint elements.
    unsafe { (&mut *ptr.add(a), &mut *ptr.add(b), &mut *ptr.add(c)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(chunk_bytes: u64, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: 0, // host side derives sizes from the slice
            chunk_bytes,
            p_in: 2,
            p_out: 2,
            p_comp: 3,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement,
            lockstep: true,
            data_addr: 0,
        }
    }

    fn negate_kernel(slice: &mut [i64], _ctx: KernelCtx) {
        slice.iter_mut().for_each(|x| *x = -*x);
    }

    /// A kernel whose output depends on the global element position, so
    /// any chunk-geometry drift between modes corrupts the comparison.
    fn offset_kernel(slice: &mut [i64], ctx: KernelCtx) {
        for (i, v) in slice.iter_mut().enumerate() {
            *v = v
                .wrapping_mul(31)
                .wrapping_add((ctx.global_offset + i) as i64);
        }
    }

    #[test]
    fn explicit_pipeline_transforms_all_data() {
        let pool = WorkPool::new(7);
        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 1000;
        let data: Vec<i64> = (0..1000).collect();
        let mut out = vec![0i64; 1000];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 10);
        assert_eq!(stats.steps, 12);
        let expect: Vec<i64> = (0..1000).map(|x| -x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn ragged_tail_handled() {
        let pool = WorkPool::new(4);
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = 8 * 1003;
        let data: Vec<i64> = (0..1003).collect();
        let mut out = vec![0i64; 1003];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn single_chunk_works() {
        let pool = WorkPool::new(4);
        let mut s = spec(1 << 20, Placement::Hbw);
        s.total_bytes = 8 * 50;
        let data: Vec<i64> = (0..50).collect();
        let mut out = vec![0i64; 50];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn implicit_mode_matches_explicit() {
        let pool = WorkPool::new(4);
        let data: Vec<i64> = (0..777).map(|x| x * 3).collect();

        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 777;
        let mut out_explicit = vec![0i64; 777];
        run_host_pipeline(&pool, &s, &data, &mut out_explicit, negate_kernel);

        let mut si = spec(8 * 100, Placement::Implicit);
        si.total_bytes = 8 * 777;
        si.p_in = 0;
        si.p_out = 0;
        let mut out_implicit = vec![0i64; 777];
        run_host_pipeline(&pool, &si, &data, &mut out_implicit, negate_kernel);

        assert_eq!(out_explicit, out_implicit);
    }

    #[test]
    fn kernel_ctx_reports_global_offsets() {
        let pool = WorkPool::new(3);
        let n = 300usize;
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).collect();
        let mut out = vec![0i64; n];
        let seen = AtomicU64::new(0);
        run_host_pipeline(&pool, &s, &data, &mut out, |slice, ctx| {
            // Every element equals its global index, so offsets must line up.
            for (i, v) in slice.iter().enumerate() {
                assert_eq!(*v as usize, ctx.global_offset + i);
            }
            seen.fetch_add(slice.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), n as u64);
        assert_eq!(out, data, "identity kernel copies through");
    }

    #[test]
    fn empty_input_is_noop() {
        let pool = WorkPool::new(2);
        let mut s = spec(1 << 10, Placement::Hbw);
        s.total_bytes = 8; // irrelevant: host sizes come from the slice
        let data: Vec<i64> = vec![];
        let mut out: Vec<i64> = vec![];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_chunk_bytes_rejected() {
        // 30 bytes per chunk over i64 data: boundaries fall mid-element.
        let pool = WorkPool::new(2);
        let mut s = spec(30, Placement::Hbw);
        s.total_bytes = 8 * 16;
        let data: Vec<i64> = (0..16).collect();
        let mut out = vec![0i64; 16];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
    }

    #[test]
    fn dataflow_transforms_all_data() {
        let pool = WorkPool::new(7);
        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 1000;
        s.lockstep = false;
        let data: Vec<i64> = (0..1000).collect();
        let mut out = vec![0i64; 1000];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 10);
        assert_eq!(stats.steps, 12, "steps reported for comparability");
        let expect: Vec<i64> = (0..1000).map(|x| -x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn dataflow_handles_ragged_tail_and_single_chunk() {
        let pools = HostStagePools::new(2, 3, 2);
        for n in [1usize, 7, 64, 65, 1003] {
            let mut s = spec(8 * 64, Placement::Hbw);
            s.total_bytes = (8 * n) as u64;
            s.lockstep = false;
            let data: Vec<i64> = (0..n as i64).collect();
            let mut out = vec![0i64; n];
            let stats = run_host_pipeline_dataflow(&pools, &s, &data, &mut out, offset_kernel);
            assert_eq!(stats.chunks, n.div_ceil(64), "n={n}");
            let mut expect: Vec<i64> = data.clone();
            for (i, v) in expect.iter_mut().enumerate() {
                *v = v.wrapping_mul(31).wrapping_add(i as i64);
            }
            assert_eq!(out, expect, "n={n}");
        }
    }

    #[test]
    fn dataflow_matches_lockstep_bit_for_bit() {
        let pool = WorkPool::new(7);
        let n = 4003usize;
        let mut s = spec(8 * 256, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).map(|x| x.wrapping_mul(0x9E37)).collect();

        let mut out_lock = vec![0i64; n];
        run_host_pipeline(&pool, &s, &data, &mut out_lock, offset_kernel);

        s.lockstep = false;
        let mut out_flow = vec![0i64; n];
        run_host_pipeline(&pool, &s, &data, &mut out_flow, offset_kernel);

        assert_eq!(out_lock, out_flow);
    }

    #[test]
    fn dataflow_pools_are_reusable() {
        let pools = HostStagePools::new(1, 2, 1);
        let n = 500usize;
        let mut s = spec(8 * 64, Placement::Ddr);
        s.total_bytes = (8 * n) as u64;
        s.lockstep = false;
        s.p_in = 1;
        s.p_out = 1;
        s.p_comp = 2;
        let data: Vec<i64> = (0..n as i64).collect();
        for _ in 0..3 {
            let mut out = vec![0i64; n];
            let stats = run_host_pipeline_dataflow(&pools, &s, &data, &mut out, negate_kernel);
            assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
            // Busy counters are reset per run, so they stay bounded by one
            // run's work rather than accumulating forever.
            assert!(stats.compute.busy <= stats.elapsed * 2 * 4);
        }
    }

    #[test]
    fn stage_stats_are_populated() {
        let pool = WorkPool::new(7);
        let n = 50_000usize;
        let mut s = spec(8 * 4096, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).collect();

        // Lockstep: busy time recorded per stage, waits are zero.
        let mut out = vec![0i64; n];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.copy_in.threads, 2);
        assert_eq!(stats.compute.threads, 3);
        assert_eq!(stats.copy_out.threads, 2);
        assert!(stats.copy_in.busy > Duration::ZERO);
        assert!(stats.compute.busy > Duration::ZERO);
        assert!(stats.copy_out.busy > Duration::ZERO);
        assert_eq!(stats.copy_in.wait, Duration::ZERO);
        assert!(stats.compute.occupancy(stats.elapsed) <= 1.0 + 1e-9);

        // Dataflow: same fields, waits measured by the coordinators.
        s.lockstep = false;
        let mut out = vec![0i64; n];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(stats.copy_in.busy > Duration::ZERO);
        assert!(stats.compute.busy > Duration::ZERO);
        assert!(stats.copy_out.busy > Duration::ZERO);
        // Copy-out of chunk 0 cannot start before chunk 0 is filled and
        // computed, so its coordinator must have measurably waited.
        assert!(stats.copy_out.wait > Duration::ZERO);
    }

    #[test]
    fn implicit_ignores_lockstep_flag() {
        let pool = WorkPool::new(4);
        let data: Vec<i64> = (0..321).collect();
        let mut si = spec(8 * 100, Placement::Implicit);
        si.total_bytes = 8 * 321;
        si.p_in = 0;
        si.p_out = 0;
        si.lockstep = false;
        let mut out = vec![0i64; 321];
        let stats = run_host_pipeline(&pool, &si, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
        assert_eq!(stats.copy_in.threads, 0, "implicit mode has no copy stages");
        assert!(stats.compute.busy > Duration::ZERO);
    }

    #[test]
    fn dataflow_kernel_panic_propagates_with_message() {
        let pools = HostStagePools::new(1, 2, 1);
        let mut s = spec(8 * 16, Placement::Hbw);
        s.total_bytes = 8 * 100;
        s.lockstep = false;
        let data: Vec<i64> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut out = vec![0i64; 100];
            run_host_pipeline_dataflow(&pools, &s, &data, &mut out, |slice, ctx| {
                if ctx.chunk == 3 {
                    panic!("kernel exploded on chunk {}", ctx.chunk);
                }
                negate_kernel(slice, ctx);
            });
        }));
        let payload = result.expect_err("kernel panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("original payload survives");
        assert_eq!(msg, "kernel exploded on chunk 3");
        // The pools must remain usable after the failed run.
        let mut out = vec![0i64; 100];
        run_host_pipeline_dataflow(&pools, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn three_mut_returns_disjoint_refs() {
        let mut v = vec![vec![1], vec![2], vec![3]];
        let (a, b, c) = three_mut(&mut v, 0, 2, 1);
        a.push(10);
        b.push(30);
        c.push(20);
        assert_eq!(v, vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn three_mut_rejects_duplicates() {
        let mut v = vec![vec![1], vec![2], vec![3]];
        let _ = three_mut(&mut v, 0, 0, 1);
    }
}
