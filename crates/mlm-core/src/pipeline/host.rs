//! Executing a chunked pipeline with real threads and real buffers.
//!
//! This backend validates the *software* half of the paper: the triple
//! thread-pool, triple-buffer schedule must produce bit-correct results
//! under full overlap. Host memory has a single level, so wall-clock here
//! is not the experiment (that is the simulator's job) — correctness and
//! native benchmarking are.

use parsort::pool::{split_range, WorkPool};

use super::{Placement, PipelineSpec};

/// How a chunk kernel sees its slice of the current chunk.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx {
    /// Chunk index within the run.
    pub chunk: usize,
    /// Compute-thread index within the pool.
    pub thread: usize,
    /// Global element offset of this slice within the whole data set.
    pub global_offset: usize,
}

/// Result of a host pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostRunStats {
    /// Number of chunks processed.
    pub chunks: usize,
    /// Number of lockstep steps executed.
    pub steps: usize,
    /// Wall-clock duration of the chunked phase.
    pub elapsed: std::time::Duration,
}

/// Stream `data` through the chunked pipeline, applying `kernel` to each
/// compute thread's slice of each chunk, writing results to `out`.
///
/// `kernel(slice, ctx)` must be a pure per-slice transformation — exactly
/// the shape of the paper's merge benchmark and of MLM-sort's serial sort
/// phase. Buffers are rotated so copy-in, compute, and copy-out of three
/// consecutive chunks overlap; with `spec.placement == Implicit` the kernel
/// runs in place on `out` (which is first filled from `data`).
///
/// `spec` fields `compute_rate`/`copy_rate`/`data_addr` are ignored on the
/// host; pool sizes and chunk geometry are honoured. Element counts are
/// derived from `data.len()`, not `spec.total_bytes`.
///
/// # Panics
/// Panics if `out.len() != data.len()` or the spec fails validation.
pub fn run_host_pipeline<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: F,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    assert_eq!(out.len(), data.len(), "out must match data length");
    let start = std::time::Instant::now();
    if data.is_empty() {
        return HostRunStats { chunks: 0, steps: 0, elapsed: start.elapsed() };
    }
    spec.validate().expect("invalid pipeline spec");
    let elem = std::mem::size_of::<T>().max(1);
    let chunk_elems = (spec.chunk_bytes as usize / elem).max(1);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);

    if spec.placement == Placement::Implicit {
        // Implicit mode: one memcpy of the whole input (the data already
        // lives where it is computed on), then all threads process chunks
        // in place.
        out.copy_from_slice(data);
        for c in 0..n_chunks {
            let lo = c * chunk_elems;
            let hi = ((c + 1) * chunk_elems).min(out.len());
            let chunk = &mut out[lo..hi];
            let parts = spec.p_comp.min(chunk.len()).max(1);
            let mut slices = Vec::with_capacity(parts);
            let mut rest = chunk;
            for t in 0..parts {
                let (s, e) = split_range(hi - lo, parts, t);
                let (head, tail) = rest.split_at_mut(e - s);
                slices.push((t, s, head));
                rest = tail;
            }
            let kernel = &kernel;
            pool.scoped(slices.into_iter().map(|(t, s, slice)| {
                let ctx = KernelCtx { chunk: c, thread: t, global_offset: lo + s };
                move || kernel(slice, ctx)
            }));
        }
        return HostRunStats {
            chunks: n_chunks,
            steps: n_chunks,
            elapsed: start.elapsed(),
        };
    }

    // Explicit pipeline: three rotating buffers.
    let mut buffers: Vec<Vec<T>> = (0..3).map(|_| Vec::new()).collect();
    let steps = n_chunks + 2;
    for s in 0..steps {
        // Each step builds a batch of tasks: copy-in chunk s, compute on
        // chunk s-1, copy-out chunk s-2 — executed concurrently, then the
        // implicit barrier of `scoped` closes the step (the paper's
        // lockstep schedule).
        let (buf_a, buf_b, buf_c) = three_mut(&mut buffers, s % 3, (s + 2) % 3, (s + 1) % 3);

        // Stage geometry.
        let in_range = if s < n_chunks {
            let lo = s * chunk_elems;
            Some((lo, ((s + 1) * chunk_elems).min(data.len())))
        } else {
            None
        };
        let comp_chunk = (s >= 1 && s - 1 < n_chunks).then(|| s - 1);
        let out_chunk = (s >= 2 && s - 2 < n_chunks).then(|| s - 2);

        // Prepare copy-in destination.
        if let Some((lo, hi)) = in_range {
            buf_a.clear();
            buf_a.resize(hi - lo, data[0]);
        }

        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();

        if let Some((lo, hi)) = in_range {
            let src = &data[lo..hi];
            let parts = spec.p_in.min(src.len()).max(1);
            let mut rest: &mut [T] = buf_a;
            for t in 0..parts {
                let (ss, se) = split_range(src.len(), parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let s_slice = &src[ss..se];
                tasks.push(Box::new(move || head.copy_from_slice(s_slice)));
            }
        }

        if let Some(c) = comp_chunk {
            let lo = c * chunk_elems;
            let len = buf_b.len();
            let parts = spec.p_comp.min(len).max(1);
            let mut rest: &mut [T] = buf_b;
            let kernel = &kernel;
            for t in 0..parts {
                let (ss, se) = split_range(len, parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let ctx = KernelCtx { chunk: c, thread: t, global_offset: lo + ss };
                tasks.push(Box::new(move || kernel(head, ctx)));
            }
        }

        if let Some(c) = out_chunk {
            let lo = c * chunk_elems;
            let hi = (lo + chunk_elems).min(out.len());
            let dst = &mut out[lo..hi];
            let src: &[T] = buf_c;
            debug_assert_eq!(src.len(), dst.len());
            let parts = spec.p_out.min(src.len()).max(1);
            let mut rest = dst;
            for t in 0..parts {
                let (ss, se) = split_range(src.len(), parts, t);
                let (head, tail) = rest.split_at_mut(se - ss);
                rest = tail;
                let s_slice = &src[ss..se];
                tasks.push(Box::new(move || head.copy_from_slice(s_slice)));
            }
        }

        pool.scoped(tasks);
    }

    HostRunStats { chunks: n_chunks, steps, elapsed: start.elapsed() }
}

/// Disjoint mutable references to three distinct buffer slots.
fn three_mut<T>(
    buffers: &mut [Vec<T>],
    a: usize,
    b: usize,
    c: usize,
) -> (&mut Vec<T>, &mut Vec<T>, &mut Vec<T>) {
    assert!(a != b && b != c && a != c, "buffer indices must be distinct");
    assert!(a < buffers.len() && b < buffers.len() && c < buffers.len());
    let ptr = buffers.as_mut_ptr();
    // SAFETY: the indices are pairwise distinct and in bounds, so the three
    // references alias disjoint elements.
    unsafe { (&mut *ptr.add(a), &mut *ptr.add(b), &mut *ptr.add(c)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(chunk_bytes: u64, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: 0, // host side derives sizes from the slice
            chunk_bytes,
            p_in: 2,
            p_out: 2,
            p_comp: 3,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement,
            lockstep: true,
            data_addr: 0,
        }
    }

    fn negate_kernel(slice: &mut [i64], _ctx: KernelCtx) {
        slice.iter_mut().for_each(|x| *x = -*x);
    }

    #[test]
    fn explicit_pipeline_transforms_all_data() {
        let pool = WorkPool::new(7);
        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 1000;
        let data: Vec<i64> = (0..1000).collect();
        let mut out = vec![0i64; 1000];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 10);
        assert_eq!(stats.steps, 12);
        let expect: Vec<i64> = (0..1000).map(|x| -x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn ragged_tail_handled() {
        let pool = WorkPool::new(4);
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = 8 * 1003;
        let data: Vec<i64> = (0..1003).collect();
        let mut out = vec![0i64; 1003];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn single_chunk_works() {
        let pool = WorkPool::new(4);
        let mut s = spec(1 << 20, Placement::Hbw);
        s.total_bytes = 8 * 50;
        let data: Vec<i64> = (0..50).collect();
        let mut out = vec![0i64; 50];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn implicit_mode_matches_explicit() {
        let pool = WorkPool::new(4);
        let data: Vec<i64> = (0..777).map(|x| x * 3).collect();

        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 777;
        let mut out_explicit = vec![0i64; 777];
        run_host_pipeline(&pool, &s, &data, &mut out_explicit, negate_kernel);

        let mut si = spec(8 * 100, Placement::Implicit);
        si.total_bytes = 8 * 777;
        si.p_in = 0;
        si.p_out = 0;
        let mut out_implicit = vec![0i64; 777];
        run_host_pipeline(&pool, &si, &data, &mut out_implicit, negate_kernel);

        assert_eq!(out_explicit, out_implicit);
    }

    #[test]
    fn kernel_ctx_reports_global_offsets() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkPool::new(3);
        let n = 300usize;
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).collect();
        let mut out = vec![0i64; n];
        let seen = AtomicU64::new(0);
        run_host_pipeline(&pool, &s, &data, &mut out, |slice, ctx| {
            // Every element equals its global index, so offsets must line up.
            for (i, v) in slice.iter().enumerate() {
                assert_eq!(*v as usize, ctx.global_offset + i);
            }
            seen.fetch_add(slice.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), n as u64);
        assert_eq!(out, data, "identity kernel copies through");
    }

    #[test]
    fn empty_input_is_noop() {
        let pool = WorkPool::new(2);
        let mut s = spec(1 << 10, Placement::Hbw);
        s.total_bytes = 8; // irrelevant: host sizes come from the slice
        let data: Vec<i64> = vec![];
        let mut out: Vec<i64> = vec![];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn three_mut_returns_disjoint_refs() {
        let mut v = vec![vec![1], vec![2], vec![3]];
        let (a, b, c) = three_mut(&mut v, 0, 2, 1);
        a.push(10);
        b.push(30);
        c.push(20);
        assert_eq!(v, vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn three_mut_rejects_duplicates() {
        let mut v = vec![vec![1], vec![2], vec![3]];
        let _ = three_mut(&mut v, 0, 0, 1);
    }
}
