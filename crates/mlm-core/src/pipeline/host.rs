//! Host backends: executing the chunk schedule with real threads and
//! real buffers.
//!
//! This side validates the *software* half of the paper: the triple
//! thread-pool, triple-buffer schedule must produce bit-correct results
//! under full overlap. Host memory has a single level, so wall-clock here
//! is not the experiment (that is the simulator's job) — correctness and
//! native benchmarking are.
//!
//! The schedule itself — which chunk each stage touches when, and which
//! buffer slot it occupies — is owned by [`mlm_exec::drive`]. This module
//! only adapts the issued [`ChunkAction`]s to three execution strategies,
//! selected by [`PipelineSpec::lockstep`] and [`Placement::Implicit`]:
//!
//! * **Lockstep** ([`HostLockstepBackend`], `lockstep: true`): actions
//!   accumulate per step and run as one task batch on a single shared
//!   [`WorkPool`] when the orchestrator closes the step barrier. This is
//!   the paper's schedule, whose makespan the model's
//!   `max(T_copy, T_comp)` term describes.
//! * **Dataflow** ([`HostDataflowBackend`], `lockstep: false`): actions
//!   are recorded per stage and replayed at `finish` by three persistent
//!   stage pools ([`HostStagePools`]) running decoupled coordinator
//!   threads connected by a three-slot buffer ring. A stage advances as
//!   soon as *its* buffer dependency is satisfied
//!   (`Empty → Filled → Computed → Empty`), so a slow chunk in one stage
//!   no longer stalls unrelated work in the others — realising exactly
//!   the dependency edges [`mlm_exec::drive`] issues (and
//!   [`super::sim::SimBackend`] lowers) for non-lockstep runs.
//! * **Implicit** ([`HostImplicitBackend`]): no copy stages; each compute
//!   action runs in place as it is issued.
//!
//! The stencil family ([`run_host_stencil`]) interprets the same plan IR
//! with a deeper ring and split in/out buffers per slot (computing in
//! place would corrupt the halo bytes neighbouring computes still read):
//! lockstep batches each plan step on the shared pool exactly like the
//! map family, while dataflow runs actions eagerly at issue order —
//! issue order is a topological order of the plan's dependency edges, so
//! outputs are bit-identical across schedules by construction (overlap
//! timing is the simulator's experiment, not the host's).

use std::any::Any;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mlm_exec::ring::{coordinate, is_poison_payload, BufSlot, Phase};
use mlm_exec::{drive, Backend, Capabilities, ChunkAction, Stage, RING_SLOTS};
use parsort::pool::{copy_split, split_range, StagePool, WorkPool};

use super::{PipelineSpec, Placement, Workload};

pub use mlm_exec::KernelCtx;

/// Per-stage timing of one host pipeline run (the execution layer's
/// [`mlm_exec::StageReport`]).
pub type StageStats = mlm_exec::StageReport;

/// Result of a host pipeline run (the execution layer's
/// [`mlm_exec::RunReport`]).
pub type HostRunStats = mlm_exec::RunReport;

/// The three dedicated stage pools of a dataflow host pipeline.
///
/// Creating the pools spawns `p_in + p_comp + p_out` OS threads, so
/// benchmarks and long-lived callers should build one `HostStagePools` and
/// reuse it across [`run_host_pipeline_dataflow`] calls; each run resets
/// the busy counters itself.
pub struct HostStagePools {
    /// Pool executing copy-in tasks.
    pub copy_in: StagePool,
    /// Pool executing compute (kernel) tasks.
    pub compute: StagePool,
    /// Pool executing copy-out tasks.
    pub copy_out: StagePool,
}

impl HostStagePools {
    /// Spawn the three stage pools.
    pub fn new(p_in: usize, p_comp: usize, p_out: usize) -> Self {
        HostStagePools {
            copy_in: StagePool::new(p_in),
            compute: StagePool::new(p_comp),
            copy_out: StagePool::new(p_out),
        }
    }

    /// Spawn pools sized to `spec`'s `p_in`/`p_comp`/`p_out`.
    pub fn for_spec(spec: &PipelineSpec) -> Self {
        HostStagePools::new(spec.p_in.max(1), spec.p_comp.max(1), spec.p_out.max(1))
    }

    /// Zero all three busy counters.
    pub fn reset(&self) {
        self.copy_in.reset_busy();
        self.compute.reset_busy();
        self.copy_out.reset_busy();
    }
}

/// Stream `data` through the chunked pipeline, applying `kernel` to each
/// compute thread's slice of each chunk, writing results to `out`.
///
/// `kernel(slice, ctx)` must be a pure per-slice transformation — exactly
/// the shape of the paper's merge benchmark and of MLM-sort's serial sort
/// phase. Buffers are rotated so copy-in, compute, and copy-out of three
/// consecutive chunks overlap; with `spec.placement == Implicit` the kernel
/// runs in place on `out` (which is first filled from `data`).
///
/// `spec.lockstep` selects the schedule: `true` runs the paper's lockstep
/// steps on the shared `pool`; `false` runs the dataflow schedule on three
/// freshly spawned stage pools (`pool` is not used — callers that run
/// dataflow repeatedly should call [`run_host_pipeline_dataflow`] with
/// persistent [`HostStagePools`] instead). [`Placement::Implicit`] has no
/// copy stages, so both settings execute identically there.
///
/// `spec` fields `compute_rate`/`copy_rate`/`data_addr` are ignored on the
/// host; pool sizes and chunk geometry are honoured. Element counts are
/// derived from `data.len()`, not `spec.total_bytes`.
///
/// # Panics
/// Panics if `out.len() != data.len()`, the spec fails validation, or
/// `spec.chunk_bytes` is not a positive multiple of `size_of::<T>()`
/// (see [`PipelineSpec::validate_elem_size`]).
pub fn run_host_pipeline<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: F,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    assert_eq!(out.len(), data.len(), "out must match data length");
    let start = Instant::now();
    if data.is_empty() {
        return HostRunStats {
            elapsed: start.elapsed(),
            ..HostRunStats::empty()
        };
    }
    spec.validate().expect("invalid pipeline spec");
    spec.validate_elem_size(std::mem::size_of::<T>())
        .expect("invalid chunk geometry");
    assert_eq!(
        spec.workload,
        Workload::Map,
        "stencil workloads carry halo reads the map kernel shape cannot \
         express; use run_host_stencil"
    );

    if spec.placement == Placement::Implicit {
        return run_implicit(pool, spec, data, out, &kernel, start);
    }
    if spec.lockstep {
        return run_lockstep(pool, spec, data, out, &kernel, start);
    }
    let pools = HostStagePools::for_spec(spec);
    run_host_pipeline_dataflow(&pools, spec, data, out, kernel)
}

/// Number of elements per chunk. Exact by construction:
/// [`PipelineSpec::validate_elem_size`] has already rejected specs whose
/// `chunk_bytes` is not a multiple of the element size, so host chunk
/// boundaries coincide with the spec's (and the simulator's) byte
/// boundaries.
fn chunk_elems_for<T>(spec: &PipelineSpec) -> usize {
    spec.chunk_bytes as usize / std::mem::size_of::<T>().max(1)
}

/// The spec the orchestrator is driven with: the caller's spec with
/// `total_bytes` pinned to the slice actually being processed, so
/// [`PipelineSpec::n_chunks`] agrees with the host-side element geometry.
/// (Host runs size themselves from `data.len()`; `spec.total_bytes` is
/// the *modeled* problem size and may legitimately differ.)
fn host_spec<T>(spec: &PipelineSpec, len: usize) -> PipelineSpec {
    PipelineSpec {
        total_bytes: (len * std::mem::size_of::<T>()) as u64,
        ..spec.clone()
    }
}

/// Assemble a [`StageStats`] from a busy-nanosecond counter. Lockstep and
/// implicit runs have no coordinator waits: blocking happens inside the
/// shared pool's step barrier.
fn stage_stats(threads: usize, busy: &AtomicU64) -> StageStats {
    StageStats {
        threads,
        busy: Duration::from_nanos(busy.load(Ordering::Relaxed)),
        wait: Duration::ZERO,
    }
}

// ---------------------------------------------------------------------------
// Implicit cache mode
// ---------------------------------------------------------------------------

/// Backend for implicit cache mode: the data already lives where it is
/// computed on, so each issued compute action runs in place on `out`
/// immediately; barriers are no-ops because execution is synchronous.
struct HostImplicitBackend<'a, T, F> {
    pool: &'a WorkPool,
    out: &'a mut [T],
    kernel: &'a F,
    chunk_elems: usize,
    busy_comp: AtomicU64,
}

impl<T, F> Backend for HostImplicitBackend<'_, T, F>
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    // Host execution is synchronous: ordering is realised by running the
    // actions in issue order, so tokens carry no information.
    type Token = ();

    fn capabilities(&self) -> Capabilities {
        // Host memory has a single level, so every placement is *emulated*
        // identically; capability checking against a machine's mode is the
        // spec linter's job (mlm-verify V003/V010), not the host's.
        Capabilities::all()
    }

    fn issue(&mut self, spec: &PipelineSpec, action: ChunkAction, _deps: &[()]) {
        debug_assert_eq!(action.stage, Stage::Compute, "implicit mode has no copies");
        let c = action.chunk;
        let lo = c * self.chunk_elems;
        let hi = ((c + 1) * self.chunk_elems).min(self.out.len());
        let chunk = &mut self.out[lo..hi];
        let parts = spec.p_comp.min(chunk.len()).max(1);
        let mut slices = Vec::with_capacity(parts);
        let mut rest = chunk;
        for t in 0..parts {
            let (s, e) = split_range(hi - lo, parts, t);
            let (head, tail) = rest.split_at_mut(e - s);
            slices.push((t, s, head));
            rest = tail;
        }
        let busy = &self.busy_comp;
        let kernel = self.kernel;
        self.pool.scoped(slices.into_iter().map(|(t, s, slice)| {
            let ctx = KernelCtx {
                chunk: c,
                thread: t,
                global_offset: lo + s,
            };
            move || {
                let t0 = Instant::now();
                super::fault::maybe_panic_compute(ctx.chunk);
                kernel(slice, ctx);
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }));
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, _after: &[()]) {
        // Chunks execute eagerly at issue; the per-chunk barrier is implied.
    }
}

/// Implicit cache mode: one memcpy of the whole input (the data already
/// lives where it is computed on), then all threads process chunks in
/// place. There are no copy stages, so lockstep and dataflow coincide.
fn run_implicit<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: &F,
    start: Instant,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);
    out.copy_from_slice(data);

    let espec = host_spec::<T>(spec, data.len());
    let mut backend = HostImplicitBackend {
        pool,
        out,
        kernel,
        chunk_elems,
        busy_comp: AtomicU64::new(0),
    };
    drive(&mut backend, &espec).expect("host implicit backend refused the schedule");

    HostRunStats {
        chunks: n_chunks,
        steps: n_chunks,
        elapsed: start.elapsed(),
        copy_in: StageStats::default(),
        compute: stage_stats(spec.p_comp, &backend.busy_comp),
        copy_out: StageStats::default(),
    }
}

// ---------------------------------------------------------------------------
// Lockstep schedule
// ---------------------------------------------------------------------------

/// Backend for the paper's lockstep schedule: issued actions accumulate
/// into the current step's batch, and the orchestrator's step barrier runs
/// the whole batch as one `scoped` call on the shared pool (copy-in chunk
/// `s`, compute chunk `s-1`, copy-out chunk `s-2` genuinely overlap; the
/// pool's own join is the step barrier).
struct HostLockstepBackend<'a, T, F> {
    pool: &'a WorkPool,
    data: &'a [T],
    out: &'a mut [T],
    kernel: &'a F,
    chunk_elems: usize,
    /// The rotating chunk buffers, indexed by [`ChunkAction::slot`].
    buffers: Vec<Vec<T>>,
    /// Actions issued since the last step barrier.
    pending: Vec<ChunkAction>,
    busy_in: AtomicU64,
    busy_comp: AtomicU64,
    busy_out: AtomicU64,
}

impl<T, F> Backend for HostLockstepBackend<'_, T, F>
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    // Dependencies are realised by the step batching itself: everything in
    // a batch starts after the previous barrier (the pool join), which is
    // exactly the lockstep dep structure the orchestrator issues.
    type Token = ();

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, _spec: &PipelineSpec, action: ChunkAction, _deps: &[()]) {
        self.pending.push(action);
    }

    fn step_barrier(&mut self, spec: &PipelineSpec, _after: &[()]) {
        let actions = std::mem::take(&mut self.pending);

        // Prepare copy-in destinations before fanning the batch out.
        for a in &actions {
            if a.stage == Stage::CopyIn {
                let lo = a.chunk * self.chunk_elems;
                let hi = ((a.chunk + 1) * self.chunk_elems).min(self.data.len());
                let buf = &mut self.buffers[a.slot];
                buf.clear();
                buf.resize(hi - lo, self.data[0]);
            }
        }

        // The copy-out destination window of `out`, carved out up front so
        // the task loop below borrows each region exactly once.
        let mut out_dst: Option<&mut [T]> = None;
        if let Some(a) = actions.iter().find(|a| a.stage == Stage::CopyOut) {
            let lo = a.chunk * self.chunk_elems;
            let hi = (lo + self.chunk_elems).min(self.out.len());
            out_dst = Some(&mut self.out[lo..hi]);
        }

        // At most one action per ring slot per step, so handing each slot's
        // buffer to its action keeps the borrows disjoint.
        let [b0, b1, b2] = &mut self.buffers[..] else {
            unreachable!("the ring has exactly RING_SLOTS buffers");
        };
        let mut slot_bufs = [Some(b0), Some(b1), Some(b2)];

        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for a in &actions {
            let buf = slot_bufs[a.slot].take().expect("slot reused within a step");
            match a.stage {
                Stage::CopyIn => {
                    let lo = a.chunk * self.chunk_elems;
                    let hi = ((a.chunk + 1) * self.chunk_elems).min(self.data.len());
                    push_timed_copy(
                        &mut tasks,
                        &self.busy_in,
                        spec.p_in,
                        &self.data[lo..hi],
                        buf,
                    );
                }
                Stage::Compute => {
                    let lo = a.chunk * self.chunk_elems;
                    let len = buf.len();
                    let parts = spec.p_comp.min(len).max(1);
                    let mut rest: &mut [T] = buf;
                    for t in 0..parts {
                        let (ss, se) = split_range(len, parts, t);
                        let (head, tail) = rest.split_at_mut(se - ss);
                        rest = tail;
                        let ctx = KernelCtx {
                            chunk: a.chunk,
                            thread: t,
                            global_offset: lo + ss,
                        };
                        let busy = &self.busy_comp;
                        let kernel = self.kernel;
                        tasks.push(Box::new(move || {
                            let t0 = Instant::now();
                            super::fault::maybe_panic_compute(ctx.chunk);
                            kernel(head, ctx);
                            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }));
                    }
                }
                Stage::CopyOut => {
                    let dst = out_dst.take().expect("one copy-out per step");
                    debug_assert_eq!(buf.len(), dst.len());
                    push_timed_copy(&mut tasks, &self.busy_out, spec.p_out, buf, dst);
                }
            }
        }

        self.pool.scoped(tasks);
    }
}

/// The paper's lockstep schedule: per step, one task batch on the shared
/// pool, closed by the implicit barrier of `scoped`.
fn run_lockstep<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: &F,
    start: Instant,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);

    let espec = host_spec::<T>(spec, data.len());
    let mut backend = HostLockstepBackend {
        pool,
        data,
        out,
        kernel,
        chunk_elems,
        buffers: (0..RING_SLOTS).map(|_| Vec::new()).collect(),
        pending: Vec::new(),
        busy_in: AtomicU64::new(0),
        busy_comp: AtomicU64::new(0),
        busy_out: AtomicU64::new(0),
    };
    drive(&mut backend, &espec).expect("host lockstep backend refused the schedule");

    HostRunStats {
        chunks: n_chunks,
        steps: n_chunks + 2,
        elapsed: start.elapsed(),
        copy_in: stage_stats(spec.p_in, &backend.busy_in),
        compute: stage_stats(spec.p_comp, &backend.busy_comp),
        copy_out: stage_stats(spec.p_out, &backend.busy_out),
    }
}

// ---------------------------------------------------------------------------
// Dataflow schedule
// ---------------------------------------------------------------------------
//
// The three-slot phase machine (`BufSlot`, `Phase`) and the coordinator
// panic harness (`coordinate`, poisoning) live in `mlm_exec::ring`; this
// backend only supplies the stage bodies that interpret the schedule.

/// Backend for the dataflow (non-lockstep) schedule: issued actions are
/// recorded per stage, and `finish` replays the recorded schedule on
/// three persistent stage pools with coordinator threads synchronizing
/// only through the buffer ring — the execution-time realisation of the
/// dataflow dependency edges the orchestrator issues (compute after its
/// chunk's copy-in, copy-out after its compute, copy-in of chunk `c`
/// after copy-out of `c - RING_SLOTS` recycles the slot).
struct HostDataflowBackend<'a, T, F> {
    pools: &'a HostStagePools,
    data: &'a [T],
    /// Taken (and fully written) by `finish`.
    out: Option<&'a mut [T]>,
    kernel: &'a F,
    chunk_elems: usize,
    /// Recorded actions per stage (copy-in, compute, copy-out), in issue
    /// order.
    schedule: [Vec<ChunkAction>; 3],
    /// Per-coordinator blocked time, filled in by `finish`.
    waits: [Duration; 3],
}

impl<T, F> Backend for HostDataflowBackend<'_, T, F>
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    // Dependencies are realised structurally by the buffer ring at replay
    // time, so tokens carry no information.
    type Token = ();

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, _spec: &PipelineSpec, action: ChunkAction, _deps: &[()]) {
        let stage = match action.stage {
            Stage::CopyIn => 0,
            Stage::Compute => 1,
            Stage::CopyOut => 2,
        };
        self.schedule[stage].push(action);
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, _after: &[()]) {
        unreachable!("the orchestrator issues no step barriers without lockstep");
    }

    /// Replay the recorded schedule: three coordinator threads — one per
    /// stage — walk their recorded action sequences independently,
    /// synchronizing only through the three-slot buffer ring. Each
    /// coordinator fans its chunk's work out to its own [`StagePool`], so
    /// copy-in of chunk `c`, compute on `c - 1`, and copy-out of `c - 2`
    /// genuinely overlap without any step barrier between them.
    fn finish(&mut self, spec: &PipelineSpec) -> Result<(), String> {
        let out = self.out.take().expect("finish runs once");
        let data = self.data;
        let kernel = self.kernel;
        let pools = self.pools;
        let chunk_elems = self.chunk_elems;
        let [in_actions, comp_actions, out_actions] = &self.schedule;

        let slots: Vec<BufSlot<T>> = (0..RING_SLOTS).map(BufSlot::new).collect();
        let poisoned = AtomicBool::new(false);
        let out_chunks: Vec<&mut [T]> = out.chunks_mut(chunk_elems).collect();
        debug_assert_eq!(out_chunks.len(), out_actions.len());
        let slots = &slots;
        let poisoned = &poisoned;
        let fill = data[0];

        let copy_in_body = move || {
            let mut waited = Duration::ZERO;
            for a in in_actions {
                let slot = &slots[a.slot];
                waited += slot.await_phase(Phase::Empty, a.chunk, poisoned);
                let lo = a.chunk * chunk_elems;
                let hi = ((a.chunk + 1) * chunk_elems).min(data.len());
                let src = &data[lo..hi];
                // SAFETY: `Empty(c)` grants this coordinator exclusive
                // ownership of the slot's buffer until it publishes `Filled`.
                let buf = unsafe { slot.data_mut() };
                buf.clear();
                buf.resize(src.len(), fill);
                copy_split(&pools.copy_in, spec.p_in, src, buf);
                slot.publish(Phase::Filled, a.chunk);
            }
            waited
        };

        let compute_body = move || {
            let mut waited = Duration::ZERO;
            for a in comp_actions {
                let slot = &slots[a.slot];
                waited += slot.await_phase(Phase::Filled, a.chunk, poisoned);
                // SAFETY: `Filled(c)` hands the buffer to the compute stage.
                let buf = unsafe { slot.data_mut() };
                let lo = a.chunk * chunk_elems;
                let len = buf.len();
                let parts = spec.p_comp.min(len).max(1);
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(parts);
                let mut rest: &mut [T] = buf;
                for t in 0..parts {
                    let (ss, se) = split_range(len, parts, t);
                    let (head, tail) = rest.split_at_mut(se - ss);
                    rest = tail;
                    let ctx = KernelCtx {
                        chunk: a.chunk,
                        thread: t,
                        global_offset: lo + ss,
                    };
                    tasks.push(Box::new(move || {
                        super::fault::maybe_panic_compute(ctx.chunk);
                        kernel(head, ctx)
                    }));
                }
                pools.compute.scoped(tasks);
                slot.publish(Phase::Computed, a.chunk);
            }
            waited
        };

        let copy_out_body = move || {
            let mut waited = Duration::ZERO;
            for (a, dst) in out_actions.iter().zip(out_chunks) {
                let slot = &slots[a.slot];
                waited += slot.await_phase(Phase::Computed, a.chunk, poisoned);
                // SAFETY: `Computed(c)` hands the buffer to the copy-out
                // stage; `dst` is this chunk's pre-split disjoint window of
                // `out`, owned by this coordinator.
                let buf = unsafe { slot.data_ref() };
                debug_assert_eq!(buf.len(), dst.len());
                copy_split(&pools.copy_out, spec.p_out, buf, dst);
                // Recycle the slot for copy-in of chunk c + RING_SLOTS.
                slot.publish(Phase::Empty, a.chunk + RING_SLOTS);
            }
            waited
        };

        let (r_in, r_comp, r_out) = std::thread::scope(|sc| {
            let h_in = sc.spawn(move || coordinate(slots, poisoned, copy_in_body));
            let h_comp = sc.spawn(move || coordinate(slots, poisoned, compute_body));
            let h_out = sc.spawn(move || coordinate(slots, poisoned, copy_out_body));
            (
                h_in.join().expect("coordinator wrapper does not panic"),
                h_comp.join().expect("coordinator wrapper does not panic"),
                h_out.join().expect("coordinator wrapper does not panic"),
            )
        });

        let mut first_payload: Option<Box<dyn Any + Send>> = None;
        let mut poison_payload: Option<Box<dyn Any + Send>> = None;
        for (i, r) in [r_in, r_comp, r_out].into_iter().enumerate() {
            match r {
                Ok(w) => self.waits[i] = w,
                Err(p) => {
                    // Prefer the original panic over secondary abort panics.
                    if is_poison_payload(&*p) {
                        poison_payload.get_or_insert(p);
                    } else {
                        first_payload.get_or_insert(p);
                    }
                }
            }
        }
        if let Some(payload) = first_payload.or(poison_payload) {
            resume_unwind(payload);
        }
        Ok(())
    }
}

/// Run the dataflow (non-lockstep) schedule on persistent stage pools.
///
/// The orchestrator's dataflow dependency edges — chunk `c` lives in slot
/// `c % 3`, and copy-out of chunk `c` recycles its slot for copy-in of
/// chunk `c + 3` — are realised by three coordinator threads walking the
/// recorded schedule (see [`HostDataflowBackend`]).
///
/// Busy counters in `pools` are reset at the start of the run; the
/// returned [`StageStats`] also report each coordinator's blocked time, so
/// callers can see which stage was the bottleneck (the bottleneck stage
/// waits least).
///
/// # Panics
/// Panics on the same conditions as [`run_host_pipeline`], if
/// `spec.placement == Implicit` (implicit mode has no copy stages — use
/// [`run_host_pipeline`]), or if the kernel panics (the kernel's panic
/// payload is rethrown once all stages have shut down).
pub fn run_host_pipeline_dataflow<T, F>(
    pools: &HostStagePools,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: F,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(&mut [T], KernelCtx) + Send + Sync,
{
    assert_eq!(out.len(), data.len(), "out must match data length");
    assert_ne!(
        spec.placement,
        Placement::Implicit,
        "implicit placement has no copy stages; use run_host_pipeline"
    );
    assert_eq!(
        spec.workload,
        Workload::Map,
        "stencil workloads carry halo reads the map kernel shape cannot \
         express; use run_host_stencil"
    );
    let start = Instant::now();
    if data.is_empty() {
        return HostRunStats {
            elapsed: start.elapsed(),
            ..HostRunStats::empty()
        };
    }
    spec.validate().expect("invalid pipeline spec");
    spec.validate_elem_size(std::mem::size_of::<T>())
        .expect("invalid chunk geometry");
    pools.reset();

    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);

    let mut espec = host_spec::<T>(spec, data.len());
    espec.lockstep = false;
    let mut backend = HostDataflowBackend {
        pools,
        data,
        out: Some(out),
        kernel: &kernel,
        chunk_elems,
        schedule: [Vec::new(), Vec::new(), Vec::new()],
        waits: [Duration::ZERO; 3],
    };
    drive(&mut backend, &espec).expect("host dataflow backend refused the schedule");

    let stage = |pool: &StagePool, wait: Duration| StageStats {
        threads: pool.threads(),
        busy: pool.busy(),
        wait,
    };
    HostRunStats {
        chunks: n_chunks,
        steps: n_chunks + 2,
        elapsed: start.elapsed(),
        copy_in: stage(&pools.copy_in, backend.waits[0]),
        compute: stage(&pools.compute, backend.waits[1]),
        copy_out: stage(&pools.copy_out, backend.waits[2]),
    }
}

// ---------------------------------------------------------------------------
// Stencil family
// ---------------------------------------------------------------------------

/// The staged neighbourhood a stencil kernel computes one chunk from.
///
/// `mid` is the full input chunk; `left` and `right` are the staged halo
/// regions of the adjacent chunks — the last `halo` elements of chunk
/// `c - 1` and the first up-to-`halo` elements of chunk `c + 1`. At the
/// grid boundary (and past the end of a ragged final chunk) the
/// corresponding slice is empty or short, and the kernel supplies its own
/// boundary condition for the missing elements.
///
/// All three slices view *staged input* buffers: stencil slots keep
/// separate output buffers precisely so these bytes stay intact while
/// neighbouring chunks compute.
pub struct StencilView<'a, T> {
    /// Last `halo` elements of chunk `c - 1` (empty when `c == 0`).
    pub left: &'a [T],
    /// The full input chunk `c`.
    pub mid: &'a [T],
    /// First up-to-`halo` elements of chunk `c + 1` (empty for the last
    /// chunk, shorter than `halo` when the grid ends inside the halo).
    pub right: &'a [T],
}

/// Backend for the stencil family: a four-slot ring of split in/out
/// buffers. Lockstep accumulates each step's actions and runs them as one
/// batch on the shared pool (the in-buffer being filled this step is
/// never one of the three the step's compute reads — slot arithmetic on
/// the four-slot ring keeps them disjoint). Dataflow executes each action
/// eagerly at issue: the orchestrator issues in a topological order of
/// the plan's halo/data/recycle edges, so every staged byte a compute
/// reads has already landed.
struct HostStencilBackend<'a, T, F> {
    pool: &'a WorkPool,
    data: &'a [T],
    out: &'a mut [T],
    kernel: &'a F,
    chunk_elems: usize,
    halo_elems: usize,
    n_chunks: usize,
    /// Staged input chunks, indexed by [`ChunkAction::slot`].
    in_bufs: Vec<Vec<T>>,
    /// Computed output chunks, same indexing.
    out_bufs: Vec<Vec<T>>,
    /// Actions issued since the last step barrier (lockstep only).
    pending: Vec<ChunkAction>,
    busy_in: AtomicU64,
    busy_comp: AtomicU64,
    busy_out: AtomicU64,
}

impl<T, F> HostStencilBackend<'_, T, F>
where
    T: Copy + Send + Sync,
    F: Fn(StencilView<'_, T>, &mut [T], KernelCtx) + Send + Sync,
{
    /// Run one batch of actions (a lockstep step, or a single eagerly
    /// executed dataflow action) as one `scoped` call on the shared pool.
    ///
    /// Mutably touched buffers (the copy-in destination, the compute
    /// output, the copy-out source) are taken out of the rings for the
    /// duration of the batch so the compute tasks can borrow the ring of
    /// staged inputs shared. The plan guarantees the taken slots are
    /// disjoint from the slots the same step reads: on the four-slot ring,
    /// step `s` fills slot `s % 4` while compute on `s - 2` reads slots
    /// `(s - 3) % 4`, `(s - 2) % 4`, and `(s - 1) % 4`.
    fn run_batch(&mut self, spec: &PipelineSpec, actions: &[ChunkAction]) {
        if actions.is_empty() {
            return;
        }
        let fill = self.data[0];
        let chunk_elems = self.chunk_elems;
        let data_len = self.data.len();
        let range = |c: usize| (c * chunk_elems, ((c + 1) * chunk_elems).min(data_len));

        // Take the mutably-owned buffers out of their rings.
        let mut in_dst: Option<Vec<T>> = None;
        let mut comp_dst: Option<Vec<T>> = None;
        let mut out_src: Option<Vec<T>> = None;
        for a in actions {
            match a.stage {
                Stage::CopyIn => {
                    let (lo, hi) = range(a.chunk);
                    let mut buf = std::mem::take(&mut self.in_bufs[a.slot]);
                    buf.clear();
                    buf.resize(hi - lo, fill);
                    assert!(in_dst.replace(buf).is_none(), "one copy-in per batch");
                }
                Stage::Compute => {
                    let (lo, hi) = range(a.chunk);
                    let mut buf = std::mem::take(&mut self.out_bufs[a.slot]);
                    buf.clear();
                    buf.resize(hi - lo, fill);
                    assert!(comp_dst.replace(buf).is_none(), "one compute per batch");
                }
                Stage::CopyOut => {
                    let buf = std::mem::take(&mut self.out_bufs[a.slot]);
                    assert!(out_src.replace(buf).is_none(), "one copy-out per batch");
                }
            }
        }

        // The copy-out destination window of `out`, carved up front.
        let mut out_dst: Option<&mut [T]> = None;
        if let Some(a) = actions.iter().find(|a| a.stage == Stage::CopyOut) {
            let (lo, hi) = range(a.chunk);
            out_dst = Some(&mut self.out[lo..hi]);
        }

        let in_bufs = &self.in_bufs;
        // Single-use mutable handles on the taken buffers, so the task
        // loop below borrows each exactly once.
        let mut in_dst_ref = in_dst.as_mut();
        let mut comp_dst_ref = comp_dst.as_mut();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for a in actions {
            match a.stage {
                Stage::CopyIn => {
                    let (lo, hi) = range(a.chunk);
                    let dst = in_dst_ref.take().expect("taken above");
                    push_timed_copy(
                        &mut tasks,
                        &self.busy_in,
                        spec.p_in,
                        &self.data[lo..hi],
                        dst,
                    );
                }
                Stage::Compute => {
                    let c = a.chunk;
                    let (lo, hi) = range(c);
                    let halo = self.halo_elems;
                    let left: &[T] = if c > 0 {
                        let prev = &in_bufs[(c - 1) % in_bufs.len()];
                        &prev[prev.len() - halo.min(prev.len())..]
                    } else {
                        &[]
                    };
                    let mid: &[T] = &in_bufs[c % in_bufs.len()];
                    let right: &[T] = if c + 1 < self.n_chunks {
                        let next = &in_bufs[(c + 1) % in_bufs.len()];
                        &next[..halo.min(next.len())]
                    } else {
                        &[]
                    };
                    debug_assert_eq!(mid.len(), hi - lo, "stale staged input for chunk {c}");

                    let len = hi - lo;
                    let parts = spec.p_comp.min(len).max(1);
                    let mut rest: &mut [T] = comp_dst_ref.take().expect("taken above");
                    for t in 0..parts {
                        let (ss, se) = split_range(len, parts, t);
                        let (head, tail) = rest.split_at_mut(se - ss);
                        rest = tail;
                        let ctx = KernelCtx {
                            chunk: c,
                            thread: t,
                            global_offset: lo + ss,
                        };
                        let busy = &self.busy_comp;
                        let kernel = self.kernel;
                        tasks.push(Box::new(move || {
                            let t0 = Instant::now();
                            super::fault::maybe_panic_compute(ctx.chunk);
                            kernel(StencilView { left, mid, right }, head, ctx);
                            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }));
                    }
                }
                Stage::CopyOut => {
                    let src = out_src.as_ref().expect("taken above");
                    let dst = out_dst.take().expect("one copy-out per batch");
                    debug_assert_eq!(src.len(), dst.len());
                    push_timed_copy(&mut tasks, &self.busy_out, spec.p_out, src, dst);
                }
            }
        }

        self.pool.scoped(tasks);

        // Return the taken buffers to their ring slots.
        for a in actions {
            match a.stage {
                Stage::CopyIn => self.in_bufs[a.slot] = in_dst.take().expect("taken above"),
                Stage::Compute => self.out_bufs[a.slot] = comp_dst.take().expect("taken above"),
                Stage::CopyOut => self.out_bufs[a.slot] = out_src.take().expect("taken above"),
            }
        }
    }
}

impl<T, F> Backend for HostStencilBackend<'_, T, F>
where
    T: Copy + Send + Sync,
    F: Fn(StencilView<'_, T>, &mut [T], KernelCtx) + Send + Sync,
{
    // Ordering is realised structurally: lockstep by step batching,
    // dataflow by executing in issue order (a topological order of the
    // plan's edges), so tokens carry no information.
    type Token = ();

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, spec: &PipelineSpec, action: ChunkAction, _deps: &[()]) {
        if spec.lockstep {
            self.pending.push(action);
        } else {
            self.run_batch(spec, &[action]);
        }
    }

    fn step_barrier(&mut self, spec: &PipelineSpec, _after: &[()]) {
        let actions = std::mem::take(&mut self.pending);
        self.run_batch(spec, &actions);
    }
}

/// Stream `data` through the out-of-core stencil pipeline, applying
/// `kernel` to each chunk's staged neighbourhood and writing results to
/// `out`.
///
/// `kernel(view, out_slice, ctx)` receives the full staged input chunk
/// plus both neighbours' halo regions ([`StencilView`]) and must fill
/// `out_slice` — its thread's part of the chunk's output, starting at
/// grid element `ctx.global_offset` — as a pure function of the view and
/// the position. Outputs land in separate buffers, so the staged inputs a
/// neighbouring compute still reads are never overwritten.
///
/// `spec.lockstep` selects the schedule exactly as in
/// [`run_host_pipeline`]; both schedules produce bit-identical output.
///
/// # Panics
/// Panics if `out.len() != data.len()`, the spec fails validation, the
/// workload is not [`Workload::Stencil`], or the chunk/halo geometry is
/// not a whole number of `T` elements.
pub fn run_host_stencil<T, F>(
    pool: &WorkPool,
    spec: &PipelineSpec,
    data: &[T],
    out: &mut [T],
    kernel: F,
) -> HostRunStats
where
    T: Copy + Send + Sync,
    F: Fn(StencilView<'_, T>, &mut [T], KernelCtx) + Send + Sync,
{
    assert_eq!(out.len(), data.len(), "out must match data length");
    let Workload::Stencil { halo_bytes } = spec.workload else {
        panic!("run_host_stencil needs a stencil workload; use run_host_pipeline for map kernels");
    };
    let start = Instant::now();
    if data.is_empty() {
        return HostRunStats {
            elapsed: start.elapsed(),
            ..HostRunStats::empty()
        };
    }
    spec.validate().expect("invalid pipeline spec");
    spec.validate_elem_size(std::mem::size_of::<T>())
        .expect("invalid chunk geometry");
    let elem = std::mem::size_of::<T>().max(1) as u64;
    assert!(
        halo_bytes.is_multiple_of(elem),
        "halo_bytes = {halo_bytes} is not a whole number of {elem}-byte elements"
    );

    let chunk_elems = chunk_elems_for::<T>(spec);
    let n_chunks = data.len().div_ceil(chunk_elems).max(1);
    let ring = spec.ring_slots();

    let espec = host_spec::<T>(spec, data.len());
    let mut backend = HostStencilBackend {
        pool,
        data,
        out,
        kernel: &kernel,
        chunk_elems,
        halo_elems: (halo_bytes / elem) as usize,
        n_chunks,
        in_bufs: (0..ring).map(|_| Vec::new()).collect(),
        out_bufs: (0..ring).map(|_| Vec::new()).collect(),
        pending: Vec::new(),
        busy_in: AtomicU64::new(0),
        busy_comp: AtomicU64::new(0),
        busy_out: AtomicU64::new(0),
    };
    drive(&mut backend, &espec).expect("host stencil backend refused the schedule");

    HostRunStats {
        chunks: n_chunks,
        steps: n_chunks + 3,
        elapsed: start.elapsed(),
        copy_in: stage_stats(spec.p_in, &backend.busy_in),
        compute: stage_stats(spec.p_comp, &backend.busy_comp),
        copy_out: stage_stats(spec.p_out, &backend.busy_out),
    }
}

/// Push `src → dst` copy tasks (split across up to `parts_max` workers)
/// onto a lockstep step batch, crediting wall time to `busy`. The shared
/// `WorkPool` is untimed, so the tasks time themselves — unlike the
/// dataflow path, whose `StagePool`s account busy time in the pool.
fn push_timed_copy<'t, T: Copy + Send + Sync>(
    tasks: &mut Vec<Box<dyn FnOnce() + Send + 't>>,
    busy: &'t AtomicU64,
    parts_max: usize,
    src: &'t [T],
    dst: &'t mut [T],
) {
    debug_assert_eq!(src.len(), dst.len());
    let parts = parts_max.min(src.len()).max(1);
    let mut rest = dst;
    for t in 0..parts {
        let (ss, se) = split_range(src.len(), parts, t);
        let (head, tail) = rest.split_at_mut(se - ss);
        rest = tail;
        let s_slice = &src[ss..se];
        tasks.push(Box::new(move || {
            let t0 = Instant::now();
            head.copy_from_slice(s_slice);
            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }));
    }
}

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use super::*;
    use crate::pipeline::Workload;

    fn spec(chunk_bytes: u64, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: 0, // host side derives sizes from the slice
            chunk_bytes,
            p_in: 2,
            p_out: 2,
            p_comp: 3,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn negate_kernel(slice: &mut [i64], _ctx: KernelCtx) {
        slice.iter_mut().for_each(|x| *x = -*x);
    }

    /// A kernel whose output depends on the global element position, so
    /// any chunk-geometry drift between modes corrupts the comparison.
    fn offset_kernel(slice: &mut [i64], ctx: KernelCtx) {
        for (i, v) in slice.iter_mut().enumerate() {
            *v = v
                .wrapping_mul(31)
                .wrapping_add((ctx.global_offset + i) as i64);
        }
    }

    #[test]
    fn explicit_pipeline_transforms_all_data() {
        let pool = WorkPool::new(7);
        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 1000;
        let data: Vec<i64> = (0..1000).collect();
        let mut out = vec![0i64; 1000];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 10);
        assert_eq!(stats.steps, 12);
        let expect: Vec<i64> = (0..1000).map(|x| -x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn ragged_tail_handled() {
        let pool = WorkPool::new(4);
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = 8 * 1003;
        let data: Vec<i64> = (0..1003).collect();
        let mut out = vec![0i64; 1003];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn single_chunk_works() {
        let pool = WorkPool::new(4);
        let mut s = spec(1 << 20, Placement::Hbw);
        s.total_bytes = 8 * 50;
        let data: Vec<i64> = (0..50).collect();
        let mut out = vec![0i64; 50];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn host_sizes_come_from_the_slice_not_the_spec() {
        // The modeled problem size (total_bytes) legitimately disagrees
        // with the slice being processed: geometry must follow the slice.
        let pool = WorkPool::new(4);
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = 1 << 40; // model a 1 TiB run...
        let data: Vec<i64> = (0..500).collect(); // ...validate on 4 KiB
        let mut out = vec![0i64; 500];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 500usize.div_ceil(64));
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }

    #[test]
    fn implicit_mode_matches_explicit() {
        let pool = WorkPool::new(4);
        let data: Vec<i64> = (0..777).map(|x| x * 3).collect();

        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 777;
        let mut out_explicit = vec![0i64; 777];
        run_host_pipeline(&pool, &s, &data, &mut out_explicit, negate_kernel);

        let mut si = spec(8 * 100, Placement::Implicit);
        si.total_bytes = 8 * 777;
        si.p_in = 0;
        si.p_out = 0;
        let mut out_implicit = vec![0i64; 777];
        run_host_pipeline(&pool, &si, &data, &mut out_implicit, negate_kernel);

        assert_eq!(out_explicit, out_implicit);
    }

    #[test]
    fn kernel_ctx_reports_global_offsets() {
        let pool = WorkPool::new(3);
        let n = 300usize;
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).collect();
        let mut out = vec![0i64; n];
        let seen = AtomicU64::new(0);
        run_host_pipeline(&pool, &s, &data, &mut out, |slice, ctx| {
            // Every element equals its global index, so offsets must line up.
            for (i, v) in slice.iter().enumerate() {
                assert_eq!(*v as usize, ctx.global_offset + i);
            }
            seen.fetch_add(slice.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), n as u64);
        assert_eq!(out, data, "identity kernel copies through");
    }

    #[test]
    fn empty_input_is_noop() {
        let pool = WorkPool::new(2);
        let mut s = spec(1 << 10, Placement::Hbw);
        s.total_bytes = 8; // irrelevant: host sizes come from the slice
        let data: Vec<i64> = vec![];
        let mut out: Vec<i64> = vec![];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_chunk_bytes_rejected() {
        // 30 bytes per chunk over i64 data: boundaries fall mid-element.
        let pool = WorkPool::new(2);
        let mut s = spec(30, Placement::Hbw);
        s.total_bytes = 8 * 16;
        let data: Vec<i64> = (0..16).collect();
        let mut out = vec![0i64; 16];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
    }

    #[test]
    fn dataflow_transforms_all_data() {
        let pool = WorkPool::new(7);
        let mut s = spec(8 * 100, Placement::Hbw);
        s.total_bytes = 8 * 1000;
        s.lockstep = false;
        let data: Vec<i64> = (0..1000).collect();
        let mut out = vec![0i64; 1000];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.chunks, 10);
        assert_eq!(stats.steps, 12, "steps reported for comparability");
        let expect: Vec<i64> = (0..1000).map(|x| -x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn dataflow_handles_ragged_tail_and_single_chunk() {
        let pools = HostStagePools::new(2, 3, 2);
        for n in [1usize, 7, 64, 65, 1003] {
            let mut s = spec(8 * 64, Placement::Hbw);
            s.total_bytes = (8 * n) as u64;
            s.lockstep = false;
            let data: Vec<i64> = (0..n as i64).collect();
            let mut out = vec![0i64; n];
            let stats = run_host_pipeline_dataflow(&pools, &s, &data, &mut out, offset_kernel);
            assert_eq!(stats.chunks, n.div_ceil(64), "n={n}");
            let mut expect: Vec<i64> = data.clone();
            for (i, v) in expect.iter_mut().enumerate() {
                *v = v.wrapping_mul(31).wrapping_add(i as i64);
            }
            assert_eq!(out, expect, "n={n}");
        }
    }

    #[test]
    fn dataflow_matches_lockstep_bit_for_bit() {
        let pool = WorkPool::new(7);
        let n = 4003usize;
        let mut s = spec(8 * 256, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).map(|x| x.wrapping_mul(0x9E37)).collect();

        let mut out_lock = vec![0i64; n];
        run_host_pipeline(&pool, &s, &data, &mut out_lock, offset_kernel);

        s.lockstep = false;
        let mut out_flow = vec![0i64; n];
        run_host_pipeline(&pool, &s, &data, &mut out_flow, offset_kernel);

        assert_eq!(out_lock, out_flow);
    }

    #[test]
    fn dataflow_pools_are_reusable() {
        let pools = HostStagePools::new(1, 2, 1);
        let n = 500usize;
        let mut s = spec(8 * 64, Placement::Ddr);
        s.total_bytes = (8 * n) as u64;
        s.lockstep = false;
        s.p_in = 1;
        s.p_out = 1;
        s.p_comp = 2;
        let data: Vec<i64> = (0..n as i64).collect();
        for _ in 0..3 {
            let mut out = vec![0i64; n];
            let stats = run_host_pipeline_dataflow(&pools, &s, &data, &mut out, negate_kernel);
            assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
            // Busy counters are reset per run, so they stay bounded by one
            // run's work rather than accumulating forever.
            assert!(stats.compute.busy <= stats.elapsed * 2 * 4);
        }
    }

    #[test]
    fn stage_stats_are_populated() {
        let pool = WorkPool::new(7);
        let n = 50_000usize;
        let mut s = spec(8 * 4096, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        let data: Vec<i64> = (0..n as i64).collect();

        // Lockstep: busy time recorded per stage, waits are zero.
        let mut out = vec![0i64; n];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert_eq!(stats.copy_in.threads, 2);
        assert_eq!(stats.compute.threads, 3);
        assert_eq!(stats.copy_out.threads, 2);
        assert!(stats.copy_in.busy > Duration::ZERO);
        assert!(stats.compute.busy > Duration::ZERO);
        assert!(stats.copy_out.busy > Duration::ZERO);
        assert_eq!(stats.copy_in.wait, Duration::ZERO);
        assert!(stats.compute.occupancy(stats.elapsed) <= 1.0 + 1e-9);

        // Dataflow: same fields, waits measured by the coordinators.
        s.lockstep = false;
        let mut out = vec![0i64; n];
        let stats = run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
        assert!(stats.copy_in.busy > Duration::ZERO);
        assert!(stats.compute.busy > Duration::ZERO);
        assert!(stats.copy_out.busy > Duration::ZERO);
        // Copy-out of chunk 0 cannot start before chunk 0 is filled and
        // computed, so its coordinator must have measurably waited.
        assert!(stats.copy_out.wait > Duration::ZERO);
    }

    #[test]
    fn implicit_ignores_lockstep_flag() {
        let pool = WorkPool::new(4);
        let data: Vec<i64> = (0..321).collect();
        let mut si = spec(8 * 100, Placement::Implicit);
        si.total_bytes = 8 * 321;
        si.p_in = 0;
        si.p_out = 0;
        si.lockstep = false;
        let mut out = vec![0i64; 321];
        let stats = run_host_pipeline(&pool, &si, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
        assert_eq!(stats.copy_in.threads, 0, "implicit mode has no copy stages");
        assert!(stats.compute.busy > Duration::ZERO);
    }

    // -- stencil family --------------------------------------------------

    /// Spec for an i64 stencil over `chunk_elems`-element chunks with an
    /// `h`-element halo, processing `n` elements.
    fn stencil_spec(chunk_elems: usize, h: usize, n: usize, lockstep: bool) -> PipelineSpec {
        let mut s = spec((8 * chunk_elems) as u64, Placement::Hbw);
        s.total_bytes = (8 * n) as u64;
        s.workload = Workload::Stencil {
            halo_bytes: (8 * h) as u64,
        };
        s.lockstep = lockstep;
        s
    }

    /// The 3-point stencil at distance `h` with zero boundary: what any
    /// correct out-of-core execution must compute for global element `g`.
    fn stencil_reference(data: &[i64], h: usize) -> Vec<i64> {
        (0..data.len())
            .map(|g| {
                let l = if g >= h { data[g - h] } else { 0 };
                let r = data.get(g + h).copied().unwrap_or(0);
                data[g]
                    .wrapping_mul(3)
                    .wrapping_sub(l)
                    .wrapping_add(r.wrapping_mul(7))
            })
            .collect()
    }

    /// The same stencil expressed against the staged [`StencilView`]:
    /// exercises mid reads, both halo regions, the left grid boundary, and
    /// the (possibly short) right halo of a ragged tail.
    fn stencil_kernel(
        chunk_elems: usize,
        h: usize,
    ) -> impl Fn(StencilView<'_, i64>, &mut [i64], KernelCtx) {
        move |view, out, ctx| {
            let l0 = ctx.global_offset - ctx.chunk * chunk_elems;
            for (i, o) in out.iter_mut().enumerate() {
                let l = l0 + i;
                let left = if l >= h {
                    view.mid[l - h]
                } else if view.left.is_empty() {
                    0 // grid boundary
                } else {
                    view.left[l] // left holds globals [base - h, base)
                };
                let j = l + h;
                let right = if j < view.mid.len() {
                    view.mid[j]
                } else {
                    view.right.get(j - view.mid.len()).copied().unwrap_or(0)
                };
                *o = view.mid[l]
                    .wrapping_mul(3)
                    .wrapping_sub(left)
                    .wrapping_add(right.wrapping_mul(7));
            }
        }
    }

    #[test]
    fn stencil_matches_reference_across_geometries() {
        let pool = WorkPool::new(7);
        for (chunk_elems, h, n) in [
            (64usize, 8usize, 1003usize), // ragged tail
            (64, 8, 640),                 // exact division
            (64, 60, 1003),               // halo nearly the whole chunk
            (64, 8, 50),                  // single chunk
            (64, 8, 70),                  // two chunks, short tail < halo reach
            (16, 4, 16 * 4 + 2),          // tail shorter than the halo
        ] {
            let s = stencil_spec(chunk_elems, h, n, true);
            let data: Vec<i64> = (0..n as i64).map(|x| x.wrapping_mul(0x9E37)).collect();
            let mut out = vec![0i64; n];
            let stats =
                run_host_stencil(&pool, &s, &data, &mut out, stencil_kernel(chunk_elems, h));
            assert_eq!(
                out,
                stencil_reference(&data, h),
                "chunk={chunk_elems} h={h} n={n}"
            );
            assert_eq!(stats.chunks, n.div_ceil(chunk_elems));
            assert_eq!(stats.steps, stats.chunks + 3);
        }
    }

    #[test]
    fn stencil_dataflow_matches_lockstep_bit_for_bit() {
        let pool = WorkPool::new(7);
        for n in [1usize, 64, 65, 129, 1003] {
            let (chunk_elems, h) = (64, 8);
            let data: Vec<i64> = (0..n as i64).map(|x| x.wrapping_mul(-77)).collect();

            let mut out_lock = vec![0i64; n];
            let s = stencil_spec(chunk_elems, h, n, true);
            run_host_stencil(
                &pool,
                &s,
                &data,
                &mut out_lock,
                stencil_kernel(chunk_elems, h),
            );

            let mut out_flow = vec![0i64; n];
            let s = stencil_spec(chunk_elems, h, n, false);
            run_host_stencil(
                &pool,
                &s,
                &data,
                &mut out_flow,
                stencil_kernel(chunk_elems, h),
            );

            assert_eq!(out_lock, out_flow, "n={n}");
            assert_eq!(out_lock, stencil_reference(&data, h), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "use run_host_stencil")]
    fn map_entry_point_rejects_stencil_specs() {
        let pool = WorkPool::new(2);
        let s = stencil_spec(64, 8, 100, true);
        let data: Vec<i64> = (0..100).collect();
        let mut out = vec![0i64; 100];
        run_host_pipeline(&pool, &s, &data, &mut out, negate_kernel);
    }

    #[test]
    #[should_panic(expected = "needs a stencil workload")]
    fn stencil_entry_point_rejects_map_specs() {
        let pool = WorkPool::new(2);
        let mut s = spec(8 * 64, Placement::Hbw);
        s.total_bytes = 8 * 100;
        let data: Vec<i64> = (0..100).collect();
        let mut out = vec![0i64; 100];
        run_host_stencil(&pool, &s, &data, &mut out, stencil_kernel(64, 8));
    }

    #[test]
    fn dataflow_kernel_panic_propagates_with_message() {
        let pools = HostStagePools::new(1, 2, 1);
        let mut s = spec(8 * 16, Placement::Hbw);
        s.total_bytes = 8 * 100;
        s.lockstep = false;
        let data: Vec<i64> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut out = vec![0i64; 100];
            run_host_pipeline_dataflow(&pools, &s, &data, &mut out, |slice, ctx| {
                if ctx.chunk == 3 {
                    panic!("kernel exploded on chunk {}", ctx.chunk);
                }
                negate_kernel(slice, ctx);
            });
        }));
        let payload = result.expect_err("kernel panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("original payload survives");
        assert_eq!(msg, "kernel exploded on chunk 3");
        // The pools must remain usable after the failed run.
        let mut out = vec![0i64; 100];
        run_host_pipeline_dataflow(&pools, &s, &data, &mut out, negate_kernel);
        assert!(out.iter().zip(&data).all(|(o, d)| *o == -d));
    }
}
