//! The streaming merge benchmark (paper §5).
//!
//! Generic chunked pipeline + a compute stage that performs `repeats`
//! two-way merges over each thread's slice of the chunk: data moves through
//! MCDRAM exactly once while the compute work scales with `repeats`,
//! letting the copy-thread/compute-thread tradeoff be swept cleanly.
//!
//! The host kernel ([`merge_kernel`]) exercises the real data path; the sim
//! builder ([`merge_bench_program`]) reproduces Figure 8(b); the closed
//! form in [`crate::model`] reproduces Figure 8(a); together they
//! regenerate Table 3.
//!
//! This module owns no orchestration of its own: it supplies a
//! [`PipelineSpec`] and a compute kernel, and both executions ride the
//! unified `mlm_exec` chunk schedule — the host through
//! [`crate::pipeline::host::run_host_pipeline`], the sim through
//! [`sim::build_program`] — so the benchmark is automatically
//! output-identical across backends.

use knl_sim::machine::MachineConfig;
use knl_sim::ops::Program;
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::pipeline::{sim, PipelineSpec, Placement, Workload};

/// Parameters of one merge-benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergeBenchParams {
    /// Total data size in bytes (the paper's `B_copy` = 14.9 GB).
    pub total_bytes: u64,
    /// Chunk/buffer size in bytes (three buffers must fit MCDRAM).
    pub chunk_bytes: u64,
    /// Copy-in pool size (copy-out is equal, per the paper's model).
    pub copy_threads: usize,
    /// Total hardware threads to split across the three pools (paper: 256).
    pub total_threads: usize,
    /// Number of merge repetitions per chunk (the compute knob).
    pub repeats: u32,
}

impl MergeBenchParams {
    /// The paper's configuration: 14.9 GB of data, 256 threads, 250 MB
    /// chunks (three buffers comfortably inside the 16 GiB MCDRAM, and
    /// enough steps — ~60 — that pipeline fill/drain does not dominate;
    /// the paper does not state its chunk size, see EXPERIMENTS.md).
    pub fn paper(copy_threads: usize, repeats: u32) -> Self {
        MergeBenchParams {
            total_bytes: 14_900_000_000,
            chunk_bytes: 250_000_000,
            copy_threads,
            total_threads: 256,
            repeats,
        }
    }

    /// Compute-pool size after the two copy pools take their share.
    pub fn compute_threads(&self) -> usize {
        self.total_threads.saturating_sub(2 * self.copy_threads)
    }

    /// Lower the configuration to a pipeline spec for `machine`, taking
    /// the SMT-degraded per-thread kernel rate from `cal` (see
    /// [`Calibration::s_merge_bench`]).
    pub fn to_spec(
        &self,
        machine: &MachineConfig,
        cal: &Calibration,
    ) -> Result<PipelineSpec, String> {
        if self.compute_threads() == 0 {
            return Err(format!(
                "{} copy threads x2 leave no compute threads of {}",
                self.copy_threads, self.total_threads
            ));
        }
        if 3 * self.chunk_bytes > machine.addressable_mcdram() {
            return Err("three buffers must fit the addressable MCDRAM".into());
        }
        Ok(PipelineSpec {
            total_bytes: self.total_bytes,
            chunk_bytes: self.chunk_bytes,
            p_in: self.copy_threads,
            p_out: self.copy_threads,
            p_comp: self.compute_threads(),
            compute_passes: self.repeats,
            compute_rate: cal.s_merge_bench,
            copy_rate: machine.per_thread_copy_bw,
            placement: Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        })
    }
}

/// Build the simulated program for one merge-benchmark configuration.
pub fn merge_bench_program(
    machine: &MachineConfig,
    cal: &Calibration,
    params: &MergeBenchParams,
) -> Result<Program, String> {
    sim::build_program(&params.to_spec(machine, cal)?)
}

/// Simulate one configuration and return virtual seconds.
pub fn simulate_merge_bench(
    machine: &MachineConfig,
    cal: &Calibration,
    params: &MergeBenchParams,
) -> Result<f64, String> {
    let prog = merge_bench_program(machine, cal, params)?;
    let report = knl_sim::Simulator::new(machine.clone())
        .run(&prog)
        .map_err(|e| e.to_string())?;
    Ok(report.makespan)
}

/// Sweep `candidates` copy-thread counts and return `(best, seconds)` —
/// the empirical analogue of the model's
/// [`crate::model::ModelParams::optimal_copy_threads`].
pub fn empirical_optimal_copy_threads(
    machine: &MachineConfig,
    cal: &Calibration,
    base: &MergeBenchParams,
    candidates: &[usize],
) -> Result<(usize, f64), String> {
    let mut best: Option<(usize, f64)> = None;
    for &c in candidates {
        let params = MergeBenchParams {
            copy_threads: c,
            ..*base
        };
        if params.compute_threads() == 0 {
            continue;
        }
        let t = simulate_merge_bench(machine, cal, &params)?;
        // Epsilon tie-break toward fewer copy threads, as in the model.
        if best.is_none_or(|(_, bt)| t < bt * (1.0 - 1e-9)) {
            best = Some((c, t));
        }
    }
    best.ok_or_else(|| "no feasible candidate".into())
}

/// The host-side merge kernel: `repeats` times, split the slice in half and
/// two-way merge the halves (through a scratch buffer) back into the slice.
///
/// Matches the paper's description ("each thread chops its portion in half
/// and performs a merge on each of the two halves") and preserves the
/// slice's multiset of values, which the tests verify.
pub fn merge_kernel<T: Ord + Copy>(slice: &mut [T], repeats: u32) {
    if slice.len() < 2 {
        return;
    }
    let mid = slice.len() / 2;
    let mut scratch = slice.to_vec();
    for _ in 0..repeats {
        // Two-pointer merge of the halves by their existing order.
        let (a, b) = slice.split_at(mid);
        let (mut i, mut j) = (0, 0);
        for slot in scratch.iter_mut() {
            if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
                *slot = a[i];
                i += 1;
            } else {
                *slot = b[j];
                j += 1;
            }
        }
        slice.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;

    fn knl() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    fn cal() -> Calibration {
        Calibration::default()
    }

    #[test]
    fn paper_params_fit_mcdram() {
        let p = MergeBenchParams::paper(8, 1);
        assert_eq!(p.compute_threads(), 240);
        p.to_spec(&knl(), &cal()).unwrap();
    }

    #[test]
    fn infeasible_splits_are_rejected() {
        let p = MergeBenchParams::paper(128, 1);
        assert_eq!(p.compute_threads(), 0);
        assert!(p.to_spec(&knl(), &cal()).is_err());

        let mut p = MergeBenchParams::paper(8, 1);
        p.chunk_bytes = 8 * knl_sim::GIB;
        assert!(
            p.to_spec(&knl(), &cal()).is_err(),
            "3 x 8 GiB > 16 GiB MCDRAM"
        );
    }

    #[test]
    fn more_repeats_take_longer() {
        let m = knl();
        let c = cal();
        let t1 = simulate_merge_bench(&m, &c, &MergeBenchParams::paper(8, 1)).unwrap();
        let t8 = simulate_merge_bench(&m, &c, &MergeBenchParams::paper(8, 8)).unwrap();
        let t64 = simulate_merge_bench(&m, &c, &MergeBenchParams::paper(8, 64)).unwrap();
        assert!(t1 < t8 && t8 < t64, "{t1} {t8} {t64}");
    }

    /// The paper's central claim (§5): as the compute workload grows, the
    /// optimal number of copy threads falls.
    #[test]
    fn optimal_copy_threads_decrease_with_repeats() {
        let m = knl();
        let c = cal();
        let candidates = [1usize, 2, 4, 8, 16, 32];
        let base = MergeBenchParams::paper(1, 1);
        let mut prev = usize::MAX;
        for repeats in [1u32, 4, 16, 64] {
            let b = MergeBenchParams { repeats, ..base };
            let (best, t) = empirical_optimal_copy_threads(&m, &c, &b, &candidates).unwrap();
            assert!(t > 0.0);
            assert!(best <= prev, "repeats={repeats}: {best} > {prev}");
            prev = best;
        }
        // Asymptotes match the paper's Table 3 empirical column.
        let b1 = MergeBenchParams { repeats: 1, ..base };
        let (best1, _) = empirical_optimal_copy_threads(&m, &c, &b1, &candidates).unwrap();
        assert!(
            best1 >= 8,
            "heavy-copy regime wants many copy threads, got {best1}"
        );
        let b64 = MergeBenchParams {
            repeats: 64,
            ..base
        };
        let (best64, _) = empirical_optimal_copy_threads(&m, &c, &b64, &candidates).unwrap();
        assert!(
            best64 <= 2,
            "compute-heavy regime wants few copy threads, got {best64}"
        );
    }

    #[test]
    fn merge_kernel_preserves_multiset() {
        let mut v: Vec<i64> = (0..1001).rev().collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        merge_kernel(&mut v, 3);
        let mut got = v.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_kernel_merges_sorted_halves() {
        // If both halves are sorted, one repeat yields a fully sorted slice.
        let mut v = vec![1i64, 3, 5, 7, 0, 2, 4, 6];
        merge_kernel(&mut v, 1);
        assert_eq!(v, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn merge_kernel_handles_tiny_slices() {
        let mut v: Vec<i64> = vec![];
        merge_kernel(&mut v, 5);
        let mut v = vec![9i64];
        merge_kernel(&mut v, 5);
        assert_eq!(v, [9]);
        let mut v = vec![2i64, 1];
        merge_kernel(&mut v, 1);
        assert_eq!(v, [1, 2]);
    }

    #[test]
    fn zero_repeats_is_identity() {
        let mut v = vec![3i64, 1, 2];
        merge_kernel(&mut v, 0);
        assert_eq!(v, [3, 1, 2]);
    }
}
