//! MLM-sort and its competitors (paper §4).
//!
//! Five algorithm variants appear in the paper's Table 1 / Figure 6:
//!
//! | name           | structure                                   | MCDRAM use           |
//! |----------------|---------------------------------------------|----------------------|
//! | `GNU-flat`     | parallel multiway mergesort                 | none (DDR only)      |
//! | `GNU-cache`    | parallel multiway mergesort                 | hardware cache       |
//! | `MLM-ddr`      | MLM-sort structure, buffers in DDR          | none                 |
//! | `MLM-sort`     | megachunks copied to MCDRAM, serial chunk sorts, multiway merges | flat-mode scratchpad |
//! | `MLM-implicit` | MLM-sort code, no explicit copies           | hardware cache       |
//!
//! [`host`] executes real, correctness-checked implementations at host
//! scale; [`sim`] lowers the same algorithms to op graphs for paper-scale
//! virtual-time runs.

pub mod host;
pub mod sim;

use mlm_exec::{ChunkSortStyle, SortStructure};
use serde::{Deserialize, Serialize};

/// The algorithm variants of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SortAlgorithm {
    /// GNU parallel sort on DDR-resident data, flat mode.
    GnuFlat,
    /// GNU parallel sort with MCDRAM as hardware cache.
    GnuCache,
    /// MLM-sort structure with all buffers in DDR (no MCDRAM at all).
    MlmDdr,
    /// MLM-sort: explicit chunking through flat-mode MCDRAM.
    MlmSort,
    /// MLM-implicit: MLM-sort's chunked code in hardware cache mode.
    MlmImplicit,
    /// The "basic algorithm" of §4: chunk + *parallel* sort per megachunk
    /// (Bender et al.'s simplified scheme) in flat mode.
    BasicChunked,
    /// GNU parallel sort with `numactl --preferred`-style placement
    /// (paper §2.4, the Li et al. configuration): no chunking; the key
    /// array simply lands in MCDRAM until it is full and spills the
    /// remainder to DDR. Fast while the data fits, cliff beyond.
    GnuNumactl,
    /// MLM-sort with double-buffered megachunks: a dedicated copy pool
    /// prefetches megachunk `m+1` into the second half of MCDRAM while the
    /// compute pool sorts and merges megachunk `m` — the paper's §6 future
    /// work ("a slightly different approach might allow hiding the copy-in
    /// latency of the next megachunk"). Megachunks are capped at MCDRAM/2.
    MlmSortBuffered,
}

impl SortAlgorithm {
    /// The five variants of Table 1, in its row order.
    pub const TABLE1: [SortAlgorithm; 5] = [
        SortAlgorithm::GnuFlat,
        SortAlgorithm::GnuCache,
        SortAlgorithm::MlmDdr,
        SortAlgorithm::MlmSort,
        SortAlgorithm::MlmImplicit,
    ];

    /// Label used in tables (matches the paper's).
    pub fn label(&self) -> &'static str {
        match self {
            SortAlgorithm::GnuFlat => "GNU-flat",
            SortAlgorithm::GnuCache => "GNU-cache",
            SortAlgorithm::MlmDdr => "MLM-ddr",
            SortAlgorithm::MlmSort => "MLM-sort",
            SortAlgorithm::MlmImplicit => "MLM-implicit",
            SortAlgorithm::BasicChunked => "basic-chunked",
            SortAlgorithm::GnuNumactl => "GNU-numactl",
            SortAlgorithm::MlmSortBuffered => "MLM-sort-buffered",
        }
    }

    /// Does this variant require the machine to expose a hardware cache?
    pub fn needs_cache_mode(&self) -> bool {
        matches!(self, SortAlgorithm::GnuCache | SortAlgorithm::MlmImplicit)
    }

    /// Does this variant require flat-addressable MCDRAM?
    pub fn needs_flat_mcdram(&self) -> bool {
        matches!(
            self,
            SortAlgorithm::MlmSort
                | SortAlgorithm::BasicChunked
                | SortAlgorithm::MlmSortBuffered
                | SortAlgorithm::GnuNumactl
        )
    }

    /// The megachunk-level shape of this variant, as planned by
    /// [`mlm_exec::plan_sort`]. Both executors — the host implementations
    /// in [`host`] and the op-graph lowering in [`sim`] — interpret the
    /// same plan; where the bytes live during each phase is the per-variant
    /// lowering's concern.
    pub fn structure(&self) -> SortStructure {
        match self {
            // The GNU baselines and numactl-preferred placement are
            // unchunked whole-array sorts.
            SortAlgorithm::GnuFlat | SortAlgorithm::GnuCache | SortAlgorithm::GnuNumactl => {
                SortStructure::Whole
            }
            // MLM-sort stages each megachunk into a working buffer
            // (MCDRAM — or DDR for the MLM-ddr control, same structure).
            SortAlgorithm::MlmSort | SortAlgorithm::MlmDdr | SortAlgorithm::BasicChunked => {
                SortStructure::Staged
            }
            // MLM-implicit sorts megachunks where they lie (the cache
            // stages them implicitly).
            SortAlgorithm::MlmImplicit => SortStructure::InPlace,
            SortAlgorithm::MlmSortBuffered => SortStructure::Buffered,
        }
    }

    /// How this variant realises the chunk-sort phase of its plan.
    pub fn chunk_style(&self) -> ChunkSortStyle {
        match self {
            SortAlgorithm::GnuFlat
            | SortAlgorithm::GnuCache
            | SortAlgorithm::GnuNumactl
            | SortAlgorithm::BasicChunked => ChunkSortStyle::Gnu,
            SortAlgorithm::MlmSort | SortAlgorithm::MlmDdr | SortAlgorithm::MlmImplicit => {
                ChunkSortStyle::Serial
            }
            SortAlgorithm::MlmSortBuffered => ChunkSortStyle::Serial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_labeled_variants() {
        let labels: Vec<&str> = SortAlgorithm::TABLE1.iter().map(|a| a.label()).collect();
        assert_eq!(
            labels,
            [
                "GNU-flat",
                "GNU-cache",
                "MLM-ddr",
                "MLM-sort",
                "MLM-implicit"
            ]
        );
    }

    #[test]
    fn mode_requirements() {
        assert!(SortAlgorithm::GnuCache.needs_cache_mode());
        assert!(SortAlgorithm::MlmImplicit.needs_cache_mode());
        assert!(!SortAlgorithm::MlmSort.needs_cache_mode());
        assert!(SortAlgorithm::MlmSort.needs_flat_mcdram());
        assert!(SortAlgorithm::BasicChunked.needs_flat_mcdram());
        assert!(SortAlgorithm::MlmSortBuffered.needs_flat_mcdram());
        assert!(SortAlgorithm::GnuNumactl.needs_flat_mcdram());
        assert_eq!(SortAlgorithm::GnuNumactl.label(), "GNU-numactl");
        assert!(!SortAlgorithm::MlmSortBuffered.needs_cache_mode());
        assert_eq!(SortAlgorithm::MlmSortBuffered.label(), "MLM-sort-buffered");
        assert!(!SortAlgorithm::GnuFlat.needs_flat_mcdram());
        assert!(!SortAlgorithm::MlmDdr.needs_flat_mcdram());
    }

    #[test]
    fn plan_shapes_follow_the_paper() {
        assert_eq!(SortAlgorithm::GnuFlat.structure(), SortStructure::Whole);
        assert_eq!(SortAlgorithm::GnuNumactl.structure(), SortStructure::Whole);
        assert_eq!(SortAlgorithm::MlmSort.structure(), SortStructure::Staged);
        assert_eq!(SortAlgorithm::MlmDdr.structure(), SortStructure::Staged);
        assert_eq!(
            SortAlgorithm::MlmImplicit.structure(),
            SortStructure::InPlace
        );
        assert_eq!(
            SortAlgorithm::MlmSortBuffered.structure(),
            SortStructure::Buffered
        );
        assert_eq!(SortAlgorithm::MlmSort.chunk_style(), ChunkSortStyle::Serial);
        assert_eq!(SortAlgorithm::GnuCache.chunk_style(), ChunkSortStyle::Gnu);
        assert_eq!(
            SortAlgorithm::BasicChunked.chunk_style(),
            ChunkSortStyle::Gnu
        );
    }
}
