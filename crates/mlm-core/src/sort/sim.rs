//! Lowering the sort variants to simulated op graphs.
//!
//! The phase *sequence* of every variant — stage a megachunk, sort its
//! chunks, merge the runs out, final k-way merge — is planned once by
//! [`mlm_exec::plan_sort`] and shared with the host executor
//! ([`super::host::run_sort_plan`]). This module owns only the per-variant
//! *lowering* of each [`SortPhase`]: where the bytes live
//! ([`DataPlace`]), which calibrated rate applies, and (for the buffered
//! variant) which cross-megachunk dependencies overlap the phases.
//! Compute rates come from [`Calibration`]; bandwidth contention, DDR
//! saturation, and MCDRAM-cache behaviour then emerge from the
//! [`knl_sim`] engine.
//!
//! ## Cache-mode sort residency
//!
//! Serial introsort is recursive: at recursion level `l` the active working
//! set is `block/2^l`. On the real machine the MCDRAM cache is *physically*
//! indexed and the OS scatters pages, so two threads' blocks rarely alias
//! even when the total data exceeds the cache. An address-exact model over
//! virtually-contiguous arrays would grossly overestimate conflict misses,
//! so sort phases model residency analytically: the first pass is issued
//! through the real cache model (cold misses, fills, penalties), and each
//! deeper level is MCDRAM-served iff the machine-wide active working set
//! (one subproblem per thread) fits the cache. Bulk copies and merges are
//! sequential streams, where address-exact cache modeling is accurate —
//! they go through [`Place::CachedDdr`].

use knl_sim::machine::MachineConfig;
use knl_sim::ops::{Access, OpId, OpKind, Place, Program};
use mlm_exec::{
    plan_sort, PlanKind, PlanNode, SortPhase, WorkloadPlan, SORT_KERNEL_FINAL_MERGE,
    SORT_KERNEL_MERGE_RUNS, SORT_KERNEL_THREAD_MERGE, SORT_KERNEL_THREAD_SORT,
};

use super::SortAlgorithm;
use crate::calibration::Calibration;
use crate::workload::{InputOrder, SortWorkload};

/// Copy-pool size for [`SortAlgorithm::MlmSortBuffered`]: small, because
/// prefetching a megachunk is brief and every copy thread is a compute
/// thread forgone (the §5 tradeoff).
pub const BUFFERED_COPY_THREADS: usize = 4;

/// Where a sort/merge phase's data is served from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DataPlace {
    /// Uncached DDR (flat mode).
    Ddr,
    /// Flat-mode MCDRAM.
    Mcdram,
    /// DDR range at the given base address, through the MCDRAM cache.
    Cached(u64),
}

impl DataPlace {
    fn place_at(&self, offset: u64) -> Place {
        match *self {
            DataPlace::Ddr => Place::Ddr,
            DataPlace::Mcdram => Place::Mcdram,
            DataPlace::Cached(base) => Place::CachedDdr {
                addr: base + offset,
            },
        }
    }
}

/// Builder state shared by all phase emitters.
struct SortBuilder<'a> {
    prog: Program,
    threads: usize,
    cal: &'a Calibration,
    machine: &'a MachineConfig,
    barrier: Vec<OpId>,
}

impl<'a> SortBuilder<'a> {
    fn new(threads: usize, cal: &'a Calibration, machine: &'a MachineConfig) -> Self {
        SortBuilder {
            prog: Program::new(threads),
            threads,
            cal,
            machine,
            barrier: Vec::new(),
        }
    }

    /// Close a phase: every thread joins (paying the fork/join overhead),
    /// and subsequent phases depend on the join.
    fn join_phase(&mut self, phase_ops: &[OpId]) {
        let overhead = self.cal.phase_overhead;
        self.barrier = (0..self.threads)
            .map(|t| {
                self.prog
                    .push(t, OpKind::Delay { seconds: overhead }, phase_ops)
            })
            .collect();
    }

    /// Contiguous byte share `(offset, len)` of thread `t` out of `total`.
    fn share(&self, total: u64, t: usize) -> (u64, u64) {
        let p = self.threads as u64;
        let base = total / p;
        let extra = total % p;
        let t64 = t as u64;
        let offset = t64 * base + t64.min(extra);
        let len = base + u64::from(t64 < extra);
        (offset, len)
    }

    /// Emit one serial-sort phase: every thread introsorts a `block_elems`
    /// chunk residing at `place` (for [`DataPlace::Cached`], thread `t`'s
    /// block starts at `base + t * block_bytes`).
    ///
    /// `rate_mult` applies the GNU efficiency penalty when modeling the
    /// baseline.
    fn serial_sort_phase(
        &mut self,
        block_elems: u64,
        elem_bytes: u64,
        order: InputOrder,
        place: DataPlace,
        rate_mult: f64,
    ) {
        if block_elems == 0 {
            return;
        }
        let block_bytes = block_elems * elem_bytes;
        let passes = self.cal.sort_passes(block_elems as usize);
        let s_sort = self.cal.sort_rate(order) * rate_mult;
        // Cache-resident recursion levels: pure compute, no bus traffic,
        // identical whichever memory level holds the block.
        let incache_seconds = block_elems as f64 * self.cal.incache_time(order) / rate_mult;
        let boost = self.cal.mcdram_boost;
        let mut ops = Vec::with_capacity(self.threads * 2);

        for t in 0..self.threads {
            match place {
                DataPlace::Ddr => {
                    let traffic = block_bytes * u64::from(passes);
                    let id = self.prog.push(
                        t,
                        OpKind::Stream {
                            accesses: vec![
                                Access::read(Place::Ddr, traffic),
                                Access::write(Place::Ddr, traffic),
                            ],
                            rate_cap: s_sort,
                        },
                        &self.barrier.clone(),
                    );
                    ops.push(id);
                }
                DataPlace::Mcdram => {
                    let traffic = block_bytes * u64::from(passes);
                    let id = self.prog.push(
                        t,
                        OpKind::Stream {
                            accesses: vec![
                                Access::read(Place::Mcdram, traffic),
                                Access::write(Place::Mcdram, traffic),
                            ],
                            rate_cap: s_sort * boost,
                        },
                        &self.barrier.clone(),
                    );
                    ops.push(id);
                }
                DataPlace::Cached(base) => {
                    let addr = base + t as u64 * block_bytes;
                    // Pass 0: cold, through the real cache model.
                    let deps = self.barrier.clone();
                    let cold = self.prog.push(
                        t,
                        OpKind::Stream {
                            accesses: vec![
                                Access::read(Place::CachedDdr { addr }, block_bytes),
                                Access::write(Place::CachedDdr { addr }, block_bytes),
                            ],
                            rate_cap: s_sort,
                        },
                        &deps,
                    );
                    ops.push(cold);

                    // Deeper levels: analytic residency split. A recursion
                    // level is MCDRAM-served when the machine-wide *active*
                    // working set (one subproblem per thread) fits the
                    // cache — total data size is irrelevant because each
                    // thread only touches its current subproblem, which is
                    // exactly the paper's explanation for MLM-implicit's
                    // megachunk-equals-problem-size win.
                    let eff_cache = self.machine.effective_cache_capacity() as f64;
                    let per_thread_cache = eff_cache / self.threads as f64;
                    let mut warm = 0u64;
                    let mut cold_levels = 0u64;
                    for l in 1..passes {
                        let sub = block_bytes as f64 / 2f64.powi(l as i32);
                        if sub <= per_thread_cache {
                            warm += 1;
                        } else {
                            cold_levels += 1;
                        }
                    }
                    if warm > 0 {
                        let half = block_bytes * warm;
                        let id = self.prog.push(
                            t,
                            OpKind::Stream {
                                accesses: vec![
                                    Access::read(Place::Mcdram, half),
                                    Access::write(Place::Mcdram, half),
                                ],
                                rate_cap: s_sort * boost,
                            },
                            &[cold],
                        );
                        ops.push(id);
                    }
                    if cold_levels > 0 {
                        // Capacity/conflict-missing levels: DDR read+write
                        // plus MCDRAM fill traffic; rate scaled so the data
                        // traffic (2 x half) still moves at `s_sort`.
                        let half = block_bytes * cold_levels;
                        let id = self.prog.push(
                            t,
                            OpKind::Stream {
                                accesses: vec![
                                    Access::read(Place::Ddr, half),
                                    Access::write(Place::Ddr, half),
                                    Access::write(Place::Mcdram, half),
                                ],
                                rate_cap: s_sort * 1.5,
                            },
                            &[cold],
                        );
                        ops.push(id);
                    }
                }
            }
            if incache_seconds > 0.0 {
                // Program order on the thread serializes this after the
                // thread's memory passes.
                let id = self.prog.push(
                    t,
                    OpKind::Delay {
                        seconds: incache_seconds,
                    },
                    &[],
                );
                ops.push(id);
            }
        }
        self.join_phase(&ops);
    }

    /// Emit one parallel multiway-merge phase over `total_bytes` of data in
    /// `k` runs: each thread streams its share from `src` to `dst`.
    /// `order_boost` controls whether the merge rate benefits from
    /// structured input: MLM's plain loser-tree merges do (disjoint runs
    /// from reverse-sorted input keep the tournament winner stable), but
    /// the paper's GNU-baseline timings show no such benefit in its merge
    /// phase, so the GNU variants pass `false` (see EXPERIMENTS.md).
    #[allow(clippy::too_many_arguments)]
    fn multiway_merge_phase(
        &mut self,
        total_bytes: u64,
        k: usize,
        order: InputOrder,
        src: DataPlace,
        dst: DataPlace,
        rate_mult: f64,
        order_boost: bool,
    ) {
        let rate = if order_boost {
            self.cal.multiway_rate_ordered(k, order)
        } else {
            self.cal.multiway_rate(k)
        } * rate_mult;
        let mut ops = Vec::with_capacity(self.threads);
        for t in 0..self.threads {
            let (offset, len) = self.share(total_bytes, t);
            if len == 0 {
                continue;
            }
            let id = self.prog.push(
                t,
                OpKind::Stream {
                    accesses: vec![
                        Access::read(src.place_at(offset), len),
                        Access::write(dst.place_at(offset), len),
                    ],
                    rate_cap: rate,
                },
                &self.barrier.clone(),
            );
            ops.push(id);
        }
        self.join_phase(&ops);
    }

    /// Emit one bulk-copy phase: all threads cooperatively move
    /// `total_bytes` from `src` to `dst` at the machine's `S_copy`.
    fn copy_phase(&mut self, total_bytes: u64, src: DataPlace, dst: DataPlace) {
        let rate = self.machine.per_thread_copy_bw;
        let mut ops = Vec::with_capacity(self.threads);
        for t in 0..self.threads {
            let (offset, len) = self.share(total_bytes, t);
            if len == 0 {
                continue;
            }
            let id = self.prog.push(
                t,
                OpKind::Copy {
                    src: src.place_at(offset),
                    dst: dst.place_at(offset),
                    bytes: len,
                    rate_cap: rate,
                },
                &self.barrier.clone(),
            );
            ops.push(id);
        }
        self.join_phase(&ops);
    }
}

/// Per-run constants the phase lowering needs alongside the builder:
/// which variant is being lowered and the byte-address layout.
struct Lowering {
    alg: SortAlgorithm,
    elem: u64,
    n_bytes: u64,
    data: u64,
    scratch: u64,
    order: InputOrder,
    mega_bytes: u64,
}

impl Lowering {
    /// DDR base address of megachunk `m` in the key array.
    fn mega_base(&self, m: usize) -> u64 {
        self.data + m as u64 * self.mega_bytes
    }

    /// DDR base address of megachunk `m`'s window of the scratch array.
    fn scratch_base(&self, m: usize) -> u64 {
        self.scratch + m as u64 * self.mega_bytes
    }
}

/// Lower one plan phase to ops: the phase *kind* comes from the shared
/// [`SortPlan`]; where its bytes live and which calibrated rate applies is
/// decided here per variant.
fn lower_phase(b: &mut SortBuilder, lx: &Lowering, phase: &SortPhase) {
    let p = b.threads as u64;
    let gnu = b.cal.gnu_efficiency;
    match *phase {
        // Whole-array plans (the GNU baselines): per-thread block sorts...
        SortPhase::ThreadSort { elems } => {
            let block = elems.div_ceil(p);
            match lx.alg {
                SortAlgorithm::GnuFlat => {
                    b.serial_sort_phase(block, lx.elem, lx.order, DataPlace::Ddr, gnu)
                }
                SortAlgorithm::GnuCache => {
                    b.serial_sort_phase(block, lx.elem, lx.order, DataPlace::Cached(lx.data), gnu)
                }
                SortAlgorithm::GnuNumactl => numactl_sort_phase(b, lx, block),
                _ => unreachable!("ThreadSort only appears in Whole plans"),
            }
        }
        // ...then one thread-count-way merge into scratch.
        SortPhase::ThreadMerge { elems: _ } => match lx.alg {
            SortAlgorithm::GnuFlat => b.multiway_merge_phase(
                lx.n_bytes,
                b.threads,
                lx.order,
                DataPlace::Ddr,
                DataPlace::Ddr,
                gnu,
                false,
            ),
            SortAlgorithm::GnuCache => b.multiway_merge_phase(
                lx.n_bytes,
                b.threads,
                lx.order,
                DataPlace::Cached(lx.data),
                DataPlace::Cached(lx.scratch),
                gnu,
                false,
            ),
            SortAlgorithm::GnuNumactl => numactl_merge_phase(b, lx),
            _ => unreachable!("ThreadMerge only appears in Whole plans"),
        },
        // Stage megachunk `m` into the working buffer (the MLM structure's
        // copy-in: MCDRAM in flat mode, or the DDR buffer for MLM-ddr).
        SortPhase::StageIn { mega, elems } => {
            let bytes = elems * lx.elem;
            match lx.alg {
                SortAlgorithm::MlmDdr => b.copy_phase(bytes, DataPlace::Ddr, DataPlace::Ddr),
                SortAlgorithm::MlmSort | SortAlgorithm::BasicChunked => b.copy_phase(
                    bytes,
                    DataPlace::Cached(lx.mega_base(mega)),
                    DataPlace::Mcdram,
                ),
                _ => unreachable!("StageIn appears in Staged plans only"),
            }
        }
        // Sort megachunk `m`'s chunks in the working buffer.
        SortPhase::ChunkSort { mega, elems } => {
            let chunk = elems.div_ceil(p);
            match lx.alg {
                SortAlgorithm::MlmDdr => {
                    b.serial_sort_phase(chunk, lx.elem, lx.order, DataPlace::Ddr, 1.0)
                }
                SortAlgorithm::MlmSort => {
                    b.serial_sort_phase(chunk, lx.elem, lx.order, DataPlace::Mcdram, 1.0)
                }
                SortAlgorithm::MlmImplicit => b.serial_sort_phase(
                    chunk,
                    lx.elem,
                    lx.order,
                    DataPlace::Cached(lx.mega_base(mega)),
                    1.0,
                ),
                // Bender et al.'s scheme sorts the megachunk with the
                // *parallel* mergesort: the same block sorts, but at GNU
                // efficiency (its merge is the MergeRuns phase below).
                SortAlgorithm::BasicChunked => {
                    b.serial_sort_phase(chunk, lx.elem, lx.order, DataPlace::Mcdram, gnu)
                }
                _ => unreachable!("ChunkSort lowered per-variant"),
            }
        }
        // Multiway-merge megachunk `m`'s sorted runs out of the buffer.
        SortPhase::MergeRuns { mega, elems } => {
            let bytes = elems * lx.elem;
            match lx.alg {
                SortAlgorithm::MlmDdr => b.multiway_merge_phase(
                    bytes,
                    b.threads,
                    lx.order,
                    DataPlace::Ddr,
                    DataPlace::Ddr,
                    1.0,
                    true,
                ),
                SortAlgorithm::MlmSort => b.multiway_merge_phase(
                    bytes,
                    b.threads,
                    lx.order,
                    DataPlace::Mcdram,
                    DataPlace::Cached(lx.mega_base(mega)),
                    1.0,
                    true,
                ),
                SortAlgorithm::MlmImplicit => b.multiway_merge_phase(
                    bytes,
                    b.threads,
                    lx.order,
                    DataPlace::Cached(lx.mega_base(mega)),
                    DataPlace::Cached(lx.scratch_base(mega)),
                    1.0,
                    true,
                ),
                // The parallel sort's own multiway merge writes straight
                // back out to DDR (it needs a distinct output buffer anyway,
                // which is why the megachunk is capped at MCDRAM/2).
                SortAlgorithm::BasicChunked => b.multiway_merge_phase(
                    bytes,
                    b.threads,
                    lx.order,
                    DataPlace::Mcdram,
                    DataPlace::Cached(lx.mega_base(mega)),
                    gnu,
                    false,
                ),
                _ => unreachable!("MergeRuns lowered per-variant"),
            }
        }
        // Copy megachunk `m` back from scratch (in-place plans only).
        SortPhase::CopyBack { mega, elems } => {
            let bytes = elems * lx.elem;
            debug_assert_eq!(lx.alg, SortAlgorithm::MlmImplicit);
            b.copy_phase(
                bytes,
                DataPlace::Cached(lx.scratch_base(mega)),
                DataPlace::Cached(lx.mega_base(mega)),
            );
        }
        // Final k-way merge across sorted megachunks into scratch.
        SortPhase::FinalMerge { elems: _, k } => match lx.alg {
            SortAlgorithm::MlmDdr => b.multiway_merge_phase(
                lx.n_bytes,
                k,
                lx.order,
                DataPlace::Ddr,
                DataPlace::Ddr,
                1.0,
                true,
            ),
            SortAlgorithm::BasicChunked => b.multiway_merge_phase(
                lx.n_bytes,
                k,
                lx.order,
                DataPlace::Cached(lx.data),
                DataPlace::Cached(lx.scratch),
                1.0,
                false,
            ),
            SortAlgorithm::MlmSort
            | SortAlgorithm::MlmImplicit
            | SortAlgorithm::MlmSortBuffered => b.multiway_merge_phase(
                lx.n_bytes,
                k,
                lx.order,
                DataPlace::Cached(lx.data),
                DataPlace::Cached(lx.scratch),
                1.0,
                true,
            ),
            _ => unreachable!("Whole plans have no FinalMerge"),
        },
        // Copy the whole array back from scratch into the caller's array,
        // as the out-of-place merges require.
        SortPhase::FinalCopyBack { elems: _ } => {
            let (src, dst) = match lx.alg {
                SortAlgorithm::GnuFlat | SortAlgorithm::GnuNumactl | SortAlgorithm::MlmDdr => {
                    (DataPlace::Ddr, DataPlace::Ddr)
                }
                _ => (DataPlace::Cached(lx.scratch), DataPlace::Cached(lx.data)),
            };
            b.copy_phase(lx.n_bytes, src, dst);
        }
    }
}

/// Recover the [`SortPhase`] a generic-IR node stands for, from its
/// `(kind, chunk, kernel)` triple — the inverse of
/// [`mlm_exec::SortPlan::to_workload_plan`]'s per-phase emission. This is
/// what lets the sim walk the same [`WorkloadPlan`] the host executor and
/// the graph verifier consume while keeping the per-variant phase
/// emitters (and hence the emitted programs) byte-identical.
fn node_phase(wplan: &WorkloadPlan, node: &PlanNode) -> SortPhase {
    match (node.kind, node.chunk, node.kernel) {
        (PlanKind::StageIn, Some(mega), _) => SortPhase::StageIn {
            mega,
            elems: node.len,
        },
        (PlanKind::Kernel, Some(mega), _) => SortPhase::ChunkSort {
            mega,
            elems: node.len,
        },
        (PlanKind::StageOut, Some(mega), Some(SORT_KERNEL_MERGE_RUNS)) => SortPhase::MergeRuns {
            mega,
            elems: node.len,
        },
        (PlanKind::StageOut, Some(mega), None) => SortPhase::CopyBack {
            mega,
            elems: node.len,
        },
        (PlanKind::Kernel, None, Some(SORT_KERNEL_THREAD_SORT)) => {
            SortPhase::ThreadSort { elems: node.len }
        }
        (PlanKind::Kernel, None, Some(SORT_KERNEL_THREAD_MERGE)) => {
            SortPhase::ThreadMerge { elems: node.len }
        }
        (PlanKind::Kernel, None, Some(SORT_KERNEL_FINAL_MERGE)) => SortPhase::FinalMerge {
            elems: node.len,
            k: wplan.chunks,
        },
        (PlanKind::StageOut, None, _) => SortPhase::FinalCopyBack { elems: node.len },
        (kind, chunk, kernel) => {
            unreachable!("sort plans never emit {kind:?}/{chunk:?}/{kernel:?}")
        }
    }
}

/// §2.4 (Li et al.): flat mode with `numactl --preferred` — the first
/// `addressable_mcdram` bytes of the array live in MCDRAM, the spill in
/// DDR; the unchunked GNU sort runs over the mix. Per-thread blocks are
/// contiguous, so a `fit` fraction of the threads work MCDRAM-resident
/// blocks and the rest DDR blocks.
fn numactl_sort_phase(b: &mut SortBuilder, lx: &Lowering, block: u64) {
    let gnu = b.cal.gnu_efficiency;
    let threads = b.threads;
    let mcdram_threads = numactl_mcdram_threads(b, lx);
    let passes = b.cal.sort_passes(block as usize);
    let incache = block as f64 * b.cal.incache_time(lx.order) / gnu;
    let mut phase_ops = Vec::with_capacity(2 * threads);
    for t in 0..threads {
        let place = if t < mcdram_threads {
            Place::Mcdram
        } else {
            Place::Ddr
        };
        let traffic = block * lx.elem * u64::from(passes);
        let rate = if t < mcdram_threads {
            b.cal.sort_rate(lx.order) * b.cal.mcdram_boost * gnu
        } else {
            b.cal.sort_rate(lx.order) * gnu
        };
        let id = b.prog.push(
            t,
            OpKind::Stream {
                accesses: vec![Access::read(place, traffic), Access::write(place, traffic)],
                rate_cap: rate,
            },
            &[],
        );
        phase_ops.push(id);
        phase_ops.push(b.prog.push(t, OpKind::Delay { seconds: incache }, &[]));
    }
    b.join_phase(&phase_ops);
}

/// GNU-numactl's unchunked multiway merge: reads the mixed-placement
/// array, writes the scratch (DDR — the spill means scratch cannot be
/// MCDRAM-resident). The read side is modeled by the same fit fraction.
fn numactl_merge_phase(b: &mut SortBuilder, lx: &Lowering) {
    let gnu = b.cal.gnu_efficiency;
    let threads = b.threads;
    let mcdram_threads = numactl_mcdram_threads(b, lx);
    let rate = b.cal.multiway_rate(threads) * gnu;
    let mut merge_ops = Vec::with_capacity(threads);
    for t in 0..threads {
        let (_, len) = b.share(lx.n_bytes, t);
        if len == 0 {
            continue;
        }
        let read_place = if t < mcdram_threads {
            Place::Mcdram
        } else {
            Place::Ddr
        };
        let id = b.prog.push(
            t,
            OpKind::Stream {
                accesses: vec![
                    Access::read(read_place, len),
                    Access::write(Place::Ddr, len),
                ],
                rate_cap: rate,
            },
            &b.barrier.clone(),
        );
        merge_ops.push(id);
    }
    b.join_phase(&merge_ops);
}

/// How many threads' contiguous blocks are MCDRAM-resident under
/// numactl-preferred placement.
fn numactl_mcdram_threads(b: &SortBuilder, lx: &Lowering) -> usize {
    let fit = (b.machine.addressable_mcdram() as f64 / lx.n_bytes as f64).min(1.0);
    (b.threads as f64 * fit).round() as usize
}

/// Lower an overlapped ([`SortStructure::Buffered`]) plan: the §6
/// future-work variant, where a small dedicated copy pool prefetches
/// megachunk `m+1` while the compute pool sorts and merges megachunk `m`.
/// The node set and every dependency come from the generic-IR lowering
/// ([`mlm_exec::SortPlan::to_workload_plan`]): StageIn of megachunk `m`
/// waits on MergeRuns of `m-2` (the Recycle edge of the 2-slot ring),
/// ChunkSort on StageIn of its own megachunk, MergeRuns on ChunkSort (Data
/// edges), and the final merge on every merge-out. Ops are emitted in
/// per-megachunk phase order so each thread's program order — and hence
/// the whole emitted program — is unchanged from the pre-IR lowering.
///
/// [`SortStructure::Buffered`]: mlm_exec::SortStructure::Buffered
fn lower_buffered(b: &mut SortBuilder, lx: &Lowering, wplan: &WorkloadPlan) {
    // A small dedicated pool prefetches megachunk m+1 while the rest
    // compute on m (the §5 lesson: copy threads are compute threads
    // forgone, so keep the pool small). The *prime* copy of megachunk 0
    // has nothing to overlap with, so, as the paper's §3.2 notes about
    // unoccupied pools, every thread helps with it.
    let threads = b.threads;
    let p_copy = BUFFERED_COPY_THREADS.min(threads.saturating_sub(1)).max(1);
    let p_comp = threads - p_copy;
    let comp0 = p_copy;
    let k_megas = wplan.chunks;
    let order = lx.order;

    // Ops realising each plan node, so edges resolve to op dependencies.
    let mut done: Vec<Vec<OpId>> = vec![Vec::new(); wplan.nodes.len()];
    let emit_order: Vec<usize> = (0..k_megas)
        .flat_map(|m| {
            [
                wplan.find(PlanKind::StageIn, m),
                wplan.find(PlanKind::Kernel, m),
                wplan.find(PlanKind::StageOut, m),
            ]
        })
        .flatten()
        .chain(
            wplan
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.chunk.is_none())
                .map(|(i, _)| i),
        )
        .collect();

    for i in emit_order {
        let node = &wplan.nodes[i];
        let deps: Vec<OpId> = node
            .deps
            .iter()
            .flat_map(|e| done[e.from].iter().copied())
            .collect();
        let mut ops: Vec<OpId> = Vec::new();
        match node_phase(wplan, node) {
            // Prefetch megachunk m; its Recycle edge says buffer (m % 2)
            // is free once megachunk m-2 has merged out.
            SortPhase::StageIn { mega: m, elems } => {
                let bytes = elems * lx.elem;
                let base = lx.mega_base(m);
                let pool = if m == 0 { threads } else { p_copy };
                let mut offset = 0u64;
                for t in 0..pool {
                    let share = bytes / pool as u64 + u64::from((t as u64) < bytes % pool as u64);
                    if share == 0 {
                        continue;
                    }
                    let id = b.prog.push(
                        t,
                        OpKind::Copy {
                            src: Place::CachedDdr {
                                addr: base + offset,
                            },
                            dst: Place::Mcdram,
                            bytes: share,
                            rate_cap: b.machine.per_thread_copy_bw,
                        },
                        &deps,
                    );
                    offset += share;
                    ops.push(id);
                }
            }

            // Serial chunk sorts on the compute pool (in MCDRAM), behind
            // the Data edge from the megachunk's stage-in.
            SortPhase::ChunkSort { mega: _, elems } => {
                let chunk = elems.div_ceil(p_comp as u64);
                let block_bytes = chunk * lx.elem;
                let passes = b.cal.sort_passes(chunk as usize);
                let incache = chunk as f64 * b.cal.incache_time(order);
                for t in 0..p_comp {
                    let traffic = block_bytes * u64::from(passes);
                    let mem = b.prog.push(
                        comp0 + t,
                        OpKind::Stream {
                            accesses: vec![
                                Access::read(Place::Mcdram, traffic),
                                Access::write(Place::Mcdram, traffic),
                            ],
                            rate_cap: b.cal.sort_rate(order) * b.cal.mcdram_boost,
                        },
                        &deps,
                    );
                    ops.push(mem);
                    if incache > 0.0 {
                        ops.push(
                            b.prog
                                .push(comp0 + t, OpKind::Delay { seconds: incache }, &[]),
                        );
                    }
                }
            }

            // Multiway merge out to DDR on the compute pool, behind the
            // Data edge from the megachunk's chunk-sort.
            SortPhase::MergeRuns { mega: m, elems } => {
                let bytes = elems * lx.elem;
                let base = lx.mega_base(m);
                let rate = b.cal.multiway_rate_ordered(p_comp, order);
                for t in 0..p_comp {
                    let share =
                        bytes / p_comp as u64 + u64::from((t as u64) < bytes % p_comp as u64);
                    if share == 0 {
                        continue;
                    }
                    let id = b.prog.push(
                        comp0 + t,
                        OpKind::Stream {
                            accesses: vec![
                                Access::read(Place::Mcdram, share),
                                Access::write(
                                    Place::CachedDdr {
                                        addr: base + t as u64 * share,
                                    },
                                    share,
                                ),
                            ],
                            rate_cap: rate,
                        },
                        &deps,
                    );
                    ops.push(id);
                }
            }

            // Final multiway merge + copyback, joined on every megachunk's
            // merge-out (the plan's Data fan-in); from here the lockstep
            // lowering applies.
            phase @ SortPhase::FinalMerge { .. } => {
                b.barrier = deps;
                lower_phase(b, lx, &phase);
            }
            phase @ SortPhase::FinalCopyBack { .. } => lower_phase(b, lx, &phase),

            _ => unreachable!("Buffered plans are staged"),
        }
        done[i] = ops;
    }
}

/// Build the simulated program for one Table-1 sort run.
///
/// The phase sequence comes from [`mlm_exec::plan_sort`] (shared with the
/// host executor); this function validates the (machine, variant,
/// megachunk) combination and lowers each phase per variant.
///
/// Address layout: the key array occupies DDR `[0, n_bytes)`; the merge
/// scratch occupies `[n_bytes, 2 n_bytes)`. `threads` is the paper's 256.
///
/// Returns an error if the variant is incompatible with the machine's
/// memory mode (e.g. `MLM-sort` on a cache-mode machine) or if the
/// megachunk cannot fit the addressable MCDRAM where it must.
pub fn build_sort_program(
    machine: &MachineConfig,
    cal: &Calibration,
    w: SortWorkload,
    alg: SortAlgorithm,
    megachunk_elems: u64,
    threads: usize,
) -> Result<Program, String> {
    cal.validate()?;
    machine.validate().map_err(|e| e.to_string())?;
    if w.n == 0 {
        return Err("empty workload".into());
    }
    if megachunk_elems == 0 {
        return Err("megachunk must be positive".into());
    }
    if threads == 0 {
        return Err("need at least one thread".into());
    }
    if alg.needs_cache_mode() && !machine.mode.has_cache() {
        return Err(format!("{} requires a cache-mode machine", alg.label()));
    }
    if alg.needs_flat_mcdram() && machine.addressable_mcdram() == 0 {
        return Err(format!("{} requires flat-addressable MCDRAM", alg.label()));
    }

    let elem = u64::from(w.elem_bytes);
    let n_bytes = w.bytes();

    let mega_elems = megachunk_elems.min(w.n);
    let mega_bytes = mega_elems * elem;

    // GNU-numactl is unchunked: its data spills past MCDRAM by design, so
    // the megachunk feasibility check does not apply to it.
    if alg.needs_flat_mcdram()
        && alg != SortAlgorithm::GnuNumactl
        && mega_bytes > machine.addressable_mcdram()
    {
        return Err(format!(
            "megachunk of {mega_bytes} bytes exceeds addressable MCDRAM ({})",
            machine.addressable_mcdram()
        ));
    }
    // Double-buffered variants keep two megachunks resident (the §6
    // prefetch buffer, or basic-chunked's in-MCDRAM merge temp), so each
    // may only use half the scratchpad.
    if alg == SortAlgorithm::MlmSortBuffered && 2 * mega_bytes > machine.addressable_mcdram() {
        return Err("buffered MLM-sort needs megachunk <= MCDRAM/2".into());
    }
    if alg == SortAlgorithm::BasicChunked && 2 * mega_bytes > machine.addressable_mcdram() {
        return Err("basic-chunked needs megachunk <= MCDRAM/2".into());
    }

    let plan = plan_sort(alg.structure(), alg.chunk_style(), w.n, megachunk_elems);
    let wplan = plan.to_workload_plan();
    let lx = Lowering {
        alg,
        elem,
        n_bytes,
        data: 0,
        scratch: n_bytes,
        order: w.order,
        mega_bytes,
    };

    let mut b = SortBuilder::new(threads, cal, machine);
    if plan.overlapped {
        lower_buffered(&mut b, &lx, &wplan);
    } else {
        // Sequential structures: one node per phase, Seq-chained — the
        // generic walk reproduces the barrier-per-phase emission exactly.
        for node in &wplan.nodes {
            lower_phase(&mut b, &lx, &node_phase(&wplan, node));
        }
    }
    Ok(b.prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_sim::machine::MemMode;
    use knl_sim::Simulator;
    use mlm_exec::mega_size;

    const BILLION: u64 = 1_000_000_000;

    fn run(alg: SortAlgorithm, mode: MemMode, n: u64, order: InputOrder, mega: u64) -> f64 {
        let machine = MachineConfig::knl_7250(mode);
        let cal = Calibration::default();
        let w = SortWorkload::int64(n, order);
        let prog = build_sort_program(&machine, &cal, w, alg, mega, 256).unwrap();
        Simulator::new(machine).run(&prog).unwrap().makespan
    }

    #[test]
    fn mode_mismatches_are_rejected() {
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let w = SortWorkload::int64(BILLION, InputOrder::Random);
        assert!(
            build_sort_program(&machine, &cal, w, SortAlgorithm::GnuCache, BILLION, 256).is_err()
        );
        let cache = MachineConfig::knl_7250(MemMode::Cache);
        assert!(build_sort_program(&cache, &cal, w, SortAlgorithm::MlmSort, BILLION, 256).is_err());
    }

    #[test]
    fn oversized_megachunk_is_rejected_in_flat_mode() {
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let w = SortWorkload::int64(4 * BILLION, InputOrder::Random);
        // 3e9 elements = 24 GB > 16 GiB MCDRAM.
        assert!(
            build_sort_program(&machine, &cal, w, SortAlgorithm::MlmSort, 3 * BILLION, 256)
                .is_err()
        );
        // But fine for the DDR variant.
        assert!(
            build_sort_program(&machine, &cal, w, SortAlgorithm::MlmDdr, 3 * BILLION, 256).is_ok()
        );
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let w0 = SortWorkload::int64(0, InputOrder::Random);
        assert!(build_sort_program(&machine, &cal, w0, SortAlgorithm::GnuFlat, 1, 256).is_err());
        let w = SortWorkload::int64(100, InputOrder::Random);
        assert!(build_sort_program(&machine, &cal, w, SortAlgorithm::GnuFlat, 0, 256).is_err());
        assert!(build_sort_program(&machine, &cal, w, SortAlgorithm::GnuFlat, 10, 0).is_err());
    }

    /// The paper's headline (Fig. 6a, 2B random): MLM-sort and MLM-implicit
    /// beat GNU-cache, which beats GNU-flat; MLM-ddr sits between GNU-cache
    /// and MLM-sort.
    #[test]
    fn table1_orderings_hold_for_2b_random() {
        let n = 2 * BILLION;
        let gnu_flat = run(
            SortAlgorithm::GnuFlat,
            MemMode::Flat,
            n,
            InputOrder::Random,
            n,
        );
        let gnu_cache = run(
            SortAlgorithm::GnuCache,
            MemMode::Cache,
            n,
            InputOrder::Random,
            n,
        );
        let mlm_ddr = run(
            SortAlgorithm::MlmDdr,
            MemMode::Flat,
            n,
            InputOrder::Random,
            BILLION,
        );
        let mlm_sort = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            n,
            InputOrder::Random,
            BILLION,
        );
        let mlm_impl = run(
            SortAlgorithm::MlmImplicit,
            MemMode::Cache,
            n,
            InputOrder::Random,
            n,
        );

        assert!(
            gnu_cache < gnu_flat,
            "GNU-cache {gnu_cache} !< GNU-flat {gnu_flat}"
        );
        assert!(
            mlm_ddr < gnu_flat,
            "MLM-ddr {mlm_ddr} !< GNU-flat {gnu_flat}"
        );
        assert!(
            mlm_sort < mlm_ddr,
            "MLM-sort {mlm_sort} !< MLM-ddr {mlm_ddr}"
        );
        assert!(
            mlm_impl < gnu_cache,
            "MLM-implicit {mlm_impl} !< GNU-cache {gnu_cache}"
        );

        // Headline speedup band: 1.4x-2.1x over GNU-flat for the winners.
        for t in [mlm_sort, mlm_impl] {
            let speedup = gnu_flat / t;
            assert!((1.3..2.2).contains(&speedup), "speedup {speedup}");
        }
    }

    #[test]
    fn reverse_input_is_faster_than_random() {
        let n = 2 * BILLION;
        for (alg, mode, mega) in [
            (SortAlgorithm::GnuFlat, MemMode::Flat, n),
            (SortAlgorithm::MlmSort, MemMode::Flat, BILLION),
            (SortAlgorithm::MlmImplicit, MemMode::Cache, n),
        ] {
            let r = run(alg, mode, n, InputOrder::Random, mega);
            let v = run(alg, mode, n, InputOrder::Reverse, mega);
            assert!(v < r, "{alg:?}: reverse {v} !< random {r}");
        }
    }

    #[test]
    fn times_scale_roughly_linearly_with_n() {
        let t2 = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            2 * BILLION,
            InputOrder::Random,
            BILLION,
        );
        let t4 = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            4 * BILLION,
            InputOrder::Random,
            BILLION,
        );
        let ratio = t4 / t2;
        assert!((1.8..2.4).contains(&ratio), "4B/2B ratio {ratio}");
    }

    #[test]
    fn basic_chunked_beats_gnu_flat_but_not_mlm_sort() {
        // Bender et al. predicted ~30% for the basic chunked algorithm; the
        // paper found it gains over GNU-flat but not over hardware cache
        // mode. Check the first part and that MLM-sort still wins.
        let n = 2 * BILLION;
        let gnu_flat = run(
            SortAlgorithm::GnuFlat,
            MemMode::Flat,
            n,
            InputOrder::Random,
            n,
        );
        let basic = run(
            SortAlgorithm::BasicChunked,
            MemMode::Flat,
            n,
            InputOrder::Random,
            BILLION,
        );
        let mlm_sort = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            n,
            InputOrder::Random,
            BILLION,
        );
        assert!(basic < gnu_flat, "basic {basic} !< GNU-flat {gnu_flat}");
        assert!(mlm_sort < basic, "MLM-sort {mlm_sort} !< basic {basic}");
    }

    #[test]
    fn deterministic_program_construction() {
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let w = SortWorkload::int64(BILLION, InputOrder::Random);
        let a =
            build_sort_program(&machine, &cal, w, SortAlgorithm::MlmSort, BILLION / 2, 64).unwrap();
        let b =
            build_sort_program(&machine, &cal, w, SortAlgorithm::MlmSort, BILLION / 2, 64).unwrap();
        assert_eq!(a.ops().len(), b.ops().len());
    }

    /// The §6 future-work variant: hiding megachunk copy-in latency with a
    /// small dedicated copy pool. The gain is the hidden copy time minus
    /// the compute threads forgone, so it shows where copies are a larger
    /// fraction of the runtime — many megachunks, compute-light (reverse)
    /// input. On compute-heavy random input at two megachunks the two
    /// variants tie, which is itself the paper's §5 lesson (dedicating
    /// threads to copying is not free).
    #[test]
    fn buffered_mlm_sort_hides_copy_latency() {
        let n = 2 * BILLION;
        let mega = BILLION / 2; // 4 megachunks: 3 of 4 copy-ins hidden
        let plain = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            n,
            InputOrder::Reverse,
            mega,
        );
        let buffered = run(
            SortAlgorithm::MlmSortBuffered,
            MemMode::Flat,
            n,
            InputOrder::Reverse,
            mega,
        );
        assert!(
            buffered < plain,
            "buffered {buffered:.3} should beat plain {plain:.3}"
        );
        // The gain is the hidden copy-in time: bounded by ~10%.
        assert!(
            buffered > plain * 0.85,
            "gain implausibly large: {buffered} vs {plain}"
        );

        // And on compute-heavy input the two variants stay within 1%.
        let plain_r = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            n,
            InputOrder::Random,
            BILLION,
        );
        let buffered_r = run(
            SortAlgorithm::MlmSortBuffered,
            MemMode::Flat,
            n,
            InputOrder::Random,
            BILLION,
        );
        assert!(
            (buffered_r / plain_r - 1.0).abs() < 0.01,
            "{buffered_r} vs {plain_r}"
        );
    }

    #[test]
    fn buffered_mlm_sort_respects_half_mcdram_cap() {
        let machine = MachineConfig::knl_7250(MemMode::Flat);
        let cal = Calibration::default();
        let w = SortWorkload::int64(4 * BILLION, InputOrder::Random);
        // 1B elements = 8 GB = exactly half of 16 GiB: fits.
        assert!(build_sort_program(
            &machine,
            &cal,
            w,
            SortAlgorithm::MlmSortBuffered,
            BILLION,
            256
        )
        .is_ok());
        // 1.5B elements = 12 GB > MCDRAM/2: rejected.
        assert!(build_sort_program(
            &machine,
            &cal,
            w,
            SortAlgorithm::MlmSortBuffered,
            3 * BILLION / 2,
            256
        )
        .is_err());
    }

    /// §2.4 (Li et al.): numactl-preferred placement is excellent while
    /// the data fits MCDRAM and falls off a cliff beyond — the crossover
    /// that motivates chunking in the first place.
    #[test]
    fn numactl_cliff_at_mcdram_capacity() {
        // 1B elements = 8 GB: fits; numactl beats even MLM-sort (no copies).
        let small_numactl = run(
            SortAlgorithm::GnuNumactl,
            MemMode::Flat,
            BILLION,
            InputOrder::Random,
            BILLION,
        );
        let small_gnu = run(
            SortAlgorithm::GnuFlat,
            MemMode::Flat,
            BILLION,
            InputOrder::Random,
            BILLION,
        );
        assert!(
            small_numactl < small_gnu,
            "in-capacity numactl {small_numactl} !< GNU-flat {small_gnu}"
        );

        // 6B elements = 48 GB: only a third fits; the advantage collapses
        // while MLM-sort's chunking keeps its full margin.
        let big_numactl = run(
            SortAlgorithm::GnuNumactl,
            MemMode::Flat,
            6 * BILLION,
            InputOrder::Random,
            6 * BILLION,
        );
        let big_gnu = run(
            SortAlgorithm::GnuFlat,
            MemMode::Flat,
            6 * BILLION,
            InputOrder::Random,
            6 * BILLION,
        );
        let big_mlm = run(
            SortAlgorithm::MlmSort,
            MemMode::Flat,
            6 * BILLION,
            InputOrder::Random,
            3 * BILLION / 2,
        );
        let numactl_gain = big_gnu / big_numactl;
        let mlm_gain = big_gnu / big_mlm;
        assert!(
            mlm_gain > numactl_gain * 1.1,
            "chunking must beat numactl out of capacity: {mlm_gain} vs {numactl_gain}"
        );
    }

    #[test]
    fn mega_size_covers_input() {
        assert_eq!(mega_size(10, 4, 0), 4);
        assert_eq!(mega_size(10, 4, 1), 4);
        assert_eq!(mega_size(10, 4, 2), 2);
        assert_eq!(mega_size(10, 4, 3), 0);
    }
}
