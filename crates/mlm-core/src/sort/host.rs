//! Real, correctness-checked implementations of the sort variants.
//!
//! The phase sequence of every variant comes from the shared
//! [`mlm_exec::plan_sort`] (the same plan the sim lowering interprets);
//! [`run_sort_plan`] executes it on real threads and buffers. Host memory
//! has one level, so the explicit "copy to MCDRAM" steps degenerate to
//! buffer copies — but every algorithmic step (megachunk split, per-thread
//! serial sorts, multiway merges, final merge) runs for real, which is
//! what validates the sim lowering's schedules and feeds the native
//! Criterion benchmarks.

use mlm_exec::{plan_sort, ChunkSortStyle, SortPhase, SortPlan, SortStructure};
use parsort::multiway::parallel_multiway_merge_into;
use parsort::parallel::{parallel_mergesort, sort_chunks_serial, split_borrows};
use parsort::pool::{parallel_copy, split_mut, split_range, WorkPool};

use super::SortAlgorithm;

/// Execution statistics of a host sort run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSortStats {
    /// Megachunks processed (1 when the megachunk covers the input).
    pub megachunks: usize,
    /// Serial chunk sorts performed.
    pub chunk_sorts: usize,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

/// Execute a [`SortPlan`] on the host.
///
/// The plan says *what* happens (stage megachunk `m`, sort its chunks,
/// merge the runs out, final k-way merge); this interpreter decides *how*
/// on one-level host memory: the working buffer and the merge scratch are
/// the same `data`-sized allocation, staged copies are real `memcpy`s over
/// the pool, and [`SortStructure::Whole`] plans collapse into the
/// library's parallel mergesort (one call realises `ThreadSort` +
/// `ThreadMerge` + `FinalCopyBack`, with its own internal scratch).
pub fn run_sort_plan<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    plan: &SortPlan,
    data: &mut [T],
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert_eq!(n as u64, plan.n_elems, "plan must be for this data length");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    if plan.overlapped {
        return run_buffered_plan(pool, plan, data, start);
    }
    if plan.structure == SortStructure::Whole {
        parallel_mergesort(pool, data);
        return HostSortStats {
            megachunks: plan.megachunks,
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }

    let p = pool.threads();
    let mega_elems = plan.mega_elems as usize;
    let bounds = |m: usize| -> (usize, usize) { (m * mega_elems, ((m + 1) * mega_elems).min(n)) };
    let mut chunk_sorts = 0usize;
    let mut scratch = data.to_vec();

    for phase in &plan.phases {
        match *phase {
            // "Copy-in": stage the megachunk in the working buffer
            // (MCDRAM -> the scratch allocation on the host).
            SortPhase::StageIn { mega, .. } => {
                let (lo, hi) = bounds(mega);
                parallel_copy(pool, &data[lo..hi], &mut scratch[lo..hi]);
            }
            // Sort the megachunk's chunks where the plan staged them:
            // the working buffer for staged plans, in place otherwise.
            SortPhase::ChunkSort { mega, elems } => {
                let (lo, hi) = bounds(mega);
                let block = if plan.structure == SortStructure::InPlace {
                    &mut data[lo..hi]
                } else {
                    &mut scratch[lo..hi]
                };
                match plan.chunk_style {
                    ChunkSortStyle::Serial => {
                        let parts = p.min(elems as usize);
                        chunk_sorts += parts;
                        sort_chunks_serial(pool, split_mut(block, parts));
                    }
                    ChunkSortStyle::Gnu => parallel_mergesort(pool, block),
                }
            }
            // Multiway-merge the sorted runs out of the working buffer
            // (staged: back to `data`; in-place: out to scratch).
            SortPhase::MergeRuns { mega, elems } => {
                let (lo, hi) = bounds(mega);
                let parts = match plan.chunk_style {
                    ChunkSortStyle::Serial => p.min(elems as usize),
                    // The GNU-style chunk sort left one fully sorted run,
                    // so the merge-out degenerates to moving it.
                    ChunkSortStyle::Gnu => 1,
                };
                if plan.structure == SortStructure::InPlace {
                    let runs = split_borrows(&data[lo..hi], parts);
                    parallel_multiway_merge_into(pool, &runs, &mut scratch[lo..hi]);
                } else {
                    let runs = split_borrows(&scratch[lo..hi], parts);
                    parallel_multiway_merge_into(pool, &runs, &mut data[lo..hi]);
                }
            }
            // In-place plans merged out to scratch; bring the megachunk home.
            SortPhase::CopyBack { mega, .. } => {
                let (lo, hi) = bounds(mega);
                parallel_copy(pool, &scratch[lo..hi], &mut data[lo..hi]);
            }
            // Final multiway merge of the sorted megachunk runs.
            SortPhase::FinalMerge { k, .. } => {
                let runs: Vec<&[T]> = (0..k)
                    .map(|m| {
                        let (lo, hi) = bounds(m);
                        &data[lo..hi]
                    })
                    .collect();
                parallel_multiway_merge_into(pool, &runs, &mut scratch);
            }
            SortPhase::FinalCopyBack { .. } => parallel_copy(pool, &scratch, data),
            SortPhase::ThreadSort { .. } | SortPhase::ThreadMerge { .. } => {
                unreachable!("Whole plans collapse into parallel_mergesort above")
            }
        }
    }

    HostSortStats {
        megachunks: plan.megachunks,
        chunk_sorts,
        elapsed: start.elapsed(),
    }
}

/// Sort `data` with the MLM-sort structure (paper §4): split into
/// megachunks of at most `megachunk_elems`; within each, one serial sort
/// per pool thread followed by a parallel multiway merge; finally a
/// parallel multiway merge across megachunks.
///
/// `explicit_copy = true` mirrors MLM-sort (the megachunk is staged through
/// a separate buffer, as flat-mode MCDRAM requires); `false` mirrors
/// MLM-implicit (sort in place, merge through scratch).
pub fn mlm_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
    explicit_copy: bool,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let structure = if explicit_copy {
        SortStructure::Staged
    } else {
        SortStructure::InPlace
    };
    let plan = plan_sort(
        structure,
        ChunkSortStyle::Serial,
        n as u64,
        megachunk_elems as u64,
    );
    run_sort_plan(pool, &plan, data)
}

/// The "basic algorithm" of §4: megachunks sorted with the *parallel*
/// mergesort (Bender et al.'s scheme), then a final multiway merge.
pub fn basic_chunked_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let plan = plan_sort(
        SortStructure::Staged,
        ChunkSortStyle::Gnu,
        n as u64,
        megachunk_elems as u64,
    );
    run_sort_plan(pool, &plan, data)
}

/// MLM-sort with double-buffered megachunks (the paper's §6 future work):
/// while the pool sorts the chunks of megachunk `m` (staged in buffer
/// `m % 2`), it concurrently copies megachunk `m + 1` into the other
/// buffer, hiding the copy-in latency behind the sort phase.
pub fn mlm_sort_buffered<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let plan = plan_sort(
        SortStructure::Buffered,
        ChunkSortStyle::Serial,
        n as u64,
        megachunk_elems as u64,
    );
    run_sort_plan(pool, &plan, data)
}

/// The overlapped ([`SortStructure::Buffered`]) interpretation: the same
/// staged phase sequence, but StageIn of megachunk `m + 1` runs in the
/// *same* scoped batch as ChunkSort of megachunk `m` (the prime copy of
/// megachunk 0 stands alone, so every thread helps with it).
fn run_buffered_plan<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    plan: &SortPlan,
    data: &mut [T],
    start: std::time::Instant,
) -> HostSortStats {
    let n = data.len();
    let k = plan.megachunks;
    let p = pool.threads();
    let mega_elems = plan.mega_elems as usize;
    let mut chunk_sorts = 0usize;

    let bounds = |m: usize| -> (usize, usize) { (m * mega_elems, ((m + 1) * mega_elems).min(n)) };

    // Two staging buffers ("the two halves of MCDRAM").
    let mut bufs: [Vec<T>; 2] = [Vec::new(), Vec::new()];
    {
        // Prime: stage megachunk 0.
        let (lo, hi) = bounds(0);
        bufs[0].clear();
        bufs[0].extend_from_slice(&data[lo..hi]);
    }

    for m in 0..k {
        let (lo, hi) = bounds(m);
        let mega = hi - lo;
        let parts = p.min(mega);
        chunk_sorts += parts;

        // Split the two buffers so the copy-in of m+1 and the chunk sorts
        // of m can run in one scoped batch.
        let (cur, next) = {
            let (a, b) = bufs.split_at_mut(1);
            if m % 2 == 0 {
                (&mut a[0], &mut b[0])
            } else {
                (&mut b[0], &mut a[0])
            }
        };

        // Prepare the prefetch destination.
        let prefetch_src = if m + 1 < k {
            let (nlo, nhi) = bounds(m + 1);
            next.clear();
            next.resize(nhi - nlo, data[0]);
            Some(&data[nlo..nhi])
        } else {
            None
        };

        {
            // One batch: sort tasks on `cur` + copy tasks into `next`.
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for chunk in split_mut(cur, parts) {
                tasks.push(Box::new(move || parsort::serial::introsort(chunk)));
            }
            if let Some(src) = prefetch_src {
                let copy_parts = 4.min(src.len()).max(1);
                let mut rest: &mut [T] = next;
                for t in 0..copy_parts {
                    let (s, e) = split_range(src.len(), copy_parts, t);
                    let (head, tail) = rest.split_at_mut(e - s);
                    rest = tail;
                    let sr = &src[s..e];
                    tasks.push(Box::new(move || head.copy_from_slice(sr)));
                }
            }
            pool.scoped(tasks);
        }

        // Merge the sorted chunk runs of `cur` out to the original array.
        let runs = split_borrows(cur, parts);
        parallel_multiway_merge_into(pool, &runs, &mut data[lo..hi]);
    }

    if k > 1 {
        let mut scratch = data.to_vec();
        let runs: Vec<&[T]> = (0..k)
            .map(|m| {
                let (lo, hi) = bounds(m);
                &data[lo..hi]
            })
            .collect();
        parallel_multiway_merge_into(pool, &runs, &mut scratch);
        parallel_copy(pool, &scratch, data);
    }

    HostSortStats {
        megachunks: k,
        chunk_sorts,
        elapsed: start.elapsed(),
    }
}

/// Dispatch a host-scale run of any Table-1 variant via its shared plan.
/// The MCDRAM *placement* differences vanish on the host (one memory
/// level); the *algorithmic* differences — GNU vs MLM structure, explicit
/// staging vs in-place, double buffering — are preserved.
pub fn run_host_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    alg: SortAlgorithm,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let structure = alg.structure();
    if structure != SortStructure::Whole {
        assert!(megachunk_elems > 0, "megachunk must be positive");
    }
    let n = data.len();
    if n < 2 {
        return HostSortStats {
            megachunks: if structure == SortStructure::Whole {
                1
            } else {
                n.min(1)
            },
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    // Whole-array variants ignore the megachunk knob.
    let mega = if structure == SortStructure::Whole {
        n
    } else {
        megachunk_elems
    };
    let plan = plan_sort(structure, alg.chunk_style(), n as u64, mega as u64);
    run_sort_plan(pool, &plan, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_keys, InputOrder};
    use parsort::serial::is_sorted;

    fn check_full_sort(alg: SortAlgorithm, n: usize, mega: usize, order: InputOrder) {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(n, order, 42);
        let mut expect = v.clone();
        expect.sort_unstable();
        let stats = run_host_sort(&pool, alg, &mut v, mega);
        assert_eq!(v, expect, "{alg:?} n={n} mega={mega} {order:?}");
        assert!(stats.elapsed.as_nanos() > 0 || n < 2);
    }

    #[test]
    fn every_variant_sorts_random_input() {
        for alg in SortAlgorithm::TABLE1 {
            check_full_sort(alg, 10_000, 3_000, InputOrder::Random);
        }
        check_full_sort(
            SortAlgorithm::BasicChunked,
            10_000,
            3_000,
            InputOrder::Random,
        );
    }

    #[test]
    fn every_variant_sorts_reverse_input() {
        for alg in SortAlgorithm::TABLE1 {
            check_full_sort(alg, 8_192, 1_000, InputOrder::Reverse);
        }
    }

    #[test]
    fn mlm_sort_explicit_and_implicit_agree() {
        let pool = WorkPool::new(4);
        let base = generate_keys(50_000, InputOrder::Random, 7);
        let mut a = base.clone();
        let mut b = base.clone();
        mlm_sort(&pool, &mut a, 12_000, true);
        mlm_sort(&pool, &mut b, 12_000, false);
        assert_eq!(a, b);
        assert!(is_sorted(&a));
    }

    #[test]
    fn megachunk_equal_to_input_is_single_chunk() {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(5_000, InputOrder::Random, 3);
        let stats = mlm_sort(&pool, &mut v, 5_000, false);
        assert_eq!(stats.megachunks, 1);
        assert!(is_sorted(&v));
    }

    #[test]
    fn megachunk_larger_than_input_is_fine() {
        let pool = WorkPool::new(2);
        let mut v = generate_keys(1_000, InputOrder::Random, 3);
        let stats = mlm_sort(&pool, &mut v, 1 << 30, true);
        assert_eq!(stats.megachunks, 1);
        assert!(is_sorted(&v));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let pool = WorkPool::new(4);
        let mut v: Vec<i64> = vec![];
        mlm_sort(&pool, &mut v, 10, true);
        let mut v = vec![5i64];
        mlm_sort(&pool, &mut v, 10, false);
        assert_eq!(v, [5]);
        let mut v = vec![2i64, 1];
        mlm_sort(&pool, &mut v, 1, true);
        assert_eq!(v, [1, 2]);
    }

    #[test]
    fn ragged_megachunks_sort_correctly() {
        let pool = WorkPool::new(3);
        let mut v = generate_keys(10_007, InputOrder::Random, 9);
        let mut expect = v.clone();
        expect.sort_unstable();
        let stats = mlm_sort(&pool, &mut v, 3_000, true);
        assert_eq!(stats.megachunks, 4);
        assert_eq!(v, expect);
    }

    #[test]
    fn chunk_sort_count_matches_structure() {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(8_000, InputOrder::Random, 1);
        let stats = mlm_sort(&pool, &mut v, 2_000, true);
        assert_eq!(stats.megachunks, 4);
        assert_eq!(stats.chunk_sorts, 16, "4 megachunks x 4 pool threads");
    }

    #[test]
    fn duplicates_survive_all_variants() {
        let pool = WorkPool::new(4);
        for alg in SortAlgorithm::TABLE1 {
            let input: Vec<i64> = (0..9_999).map(|i| i % 13).collect();
            let twelves = input.iter().filter(|&&x| x == 12).count();
            let mut v = input;
            run_host_sort(&pool, alg, &mut v, 2_500);
            assert!(is_sorted(&v));
            assert_eq!(v.iter().filter(|&&x| x == 12).count(), twelves, "{alg:?}");
        }
    }

    #[test]
    fn buffered_variant_sorts_correctly() {
        let pool = WorkPool::new(4);
        for (n, mega) in [
            (50_000usize, 12_000usize),
            (10_007, 2_000),
            (1_000, 1 << 20),
        ] {
            for order in [InputOrder::Random, InputOrder::Reverse] {
                let mut v = generate_keys(n, order, 17);
                let mut expect = v.clone();
                expect.sort_unstable();
                let stats = mlm_sort_buffered(&pool, &mut v, mega);
                assert_eq!(v, expect, "n={n} mega={mega} {order:?}");
                assert_eq!(stats.megachunks, n.div_ceil(mega));
            }
        }
    }

    #[test]
    fn buffered_variant_matches_plain_mlm_sort() {
        let pool = WorkPool::new(6);
        let base = generate_keys(60_000, InputOrder::Random, 23);
        let mut a = base.clone();
        let mut b = base;
        mlm_sort(&pool, &mut a, 14_000, true);
        mlm_sort_buffered(&pool, &mut b, 14_000);
        assert_eq!(a, b);
    }

    #[test]
    fn plan_interpreter_handles_every_structure_directly() {
        let pool = WorkPool::new(4);
        for (structure, style) in [
            (SortStructure::Whole, ChunkSortStyle::Gnu),
            (SortStructure::Staged, ChunkSortStyle::Serial),
            (SortStructure::Staged, ChunkSortStyle::Gnu),
            (SortStructure::InPlace, ChunkSortStyle::Serial),
            (SortStructure::Buffered, ChunkSortStyle::Serial),
        ] {
            let mut v = generate_keys(10_007, InputOrder::Random, 31);
            let mut expect = v.clone();
            expect.sort_unstable();
            let plan = plan_sort(structure, style, v.len() as u64, 3_000);
            let stats = run_sort_plan(&pool, &plan, &mut v);
            assert_eq!(v, expect, "{structure:?}/{style:?}");
            assert_eq!(stats.megachunks, plan.megachunks);
        }
    }
}
