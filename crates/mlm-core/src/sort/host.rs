//! Real, correctness-checked implementations of the sort variants.
//!
//! The phase sequence of every variant comes from the shared
//! [`mlm_exec::plan_sort`] (the same plan the sim lowering interprets);
//! [`run_sort_plan`] executes it on real threads and buffers. Host memory
//! has one level, so the explicit "copy to MCDRAM" steps degenerate to
//! buffer copies — but every algorithmic step (megachunk split, per-thread
//! serial sorts, multiway merges, final merge) runs for real, which is
//! what validates the sim lowering's schedules and feeds the native
//! Criterion benchmarks.

use mlm_exec::{
    plan_sort, waves, ChunkSortStyle, PlanKind, PlanNode, SortPlan, SortStructure, WorkloadPlan,
    SORT_KERNEL_FINAL_MERGE, SORT_KERNEL_MERGE_RUNS,
};
use parsort::multiway::{multiway_merge_into, parallel_multiway_merge_into};
use parsort::parallel::{parallel_mergesort, sort_chunks_serial, split_borrows};
use parsort::pool::{parallel_copy, split_mut, split_range, WorkPool};

use super::SortAlgorithm;

/// Execution statistics of a host sort run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSortStats {
    /// Megachunks processed (1 when the megachunk covers the input).
    pub megachunks: usize,
    /// Serial chunk sorts performed.
    pub chunk_sorts: usize,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

/// Execute a [`SortPlan`] on the host.
///
/// The plan is first lowered into the workload-generic IR
/// ([`SortPlan::to_workload_plan`]) and the interpreter walks
/// [`mlm_exec::waves`] of that plan — the same node/edge DAG the sim
/// lowering and the graph verifier consume — realising each node on
/// one-level host memory: the working buffer and the merge scratch are
/// the same `data`-sized allocation, staged copies are real `memcpy`s over
/// the pool, and [`SortStructure::Whole`] plans collapse into the
/// library's parallel mergesort (one call realises `ThreadSort` +
/// `ThreadMerge` + `FinalCopyBack`, with its own internal scratch).
/// Sequential structures produce one node per wave (the barrier-per-phase
/// execution this module always had); the overlapped structure's
/// multi-node waves each run as one scoped task batch
/// ([`run_buffered_plan`]).
pub fn run_sort_plan<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    plan: &SortPlan,
    data: &mut [T],
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert_eq!(n as u64, plan.n_elems, "plan must be for this data length");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let wplan = plan.to_workload_plan();
    if plan.overlapped {
        return run_buffered_plan(pool, plan, &wplan, data, start);
    }
    if plan.structure == SortStructure::Whole {
        parallel_mergesort(pool, data);
        return HostSortStats {
            megachunks: plan.megachunks,
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }

    let p = pool.threads();
    let mega_elems = plan.mega_elems as usize;
    let bounds = |m: usize| -> (usize, usize) { (m * mega_elems, ((m + 1) * mega_elems).min(n)) };
    let mut chunk_sorts = 0usize;
    let mut scratch = data.to_vec();

    for wave in waves(&wplan) {
        for i in wave {
            let node = &wplan.nodes[i];
            match (node.kind, node.chunk) {
                // "Copy-in": stage the megachunk in the working buffer
                // (MCDRAM -> the scratch allocation on the host).
                (PlanKind::StageIn, Some(mega)) => {
                    let (lo, hi) = bounds(mega);
                    parallel_copy(pool, &data[lo..hi], &mut scratch[lo..hi]);
                }
                // Sort the megachunk's chunks where the plan staged them:
                // the working buffer for staged plans, in place otherwise.
                (PlanKind::Kernel, Some(mega)) => {
                    let (lo, hi) = bounds(mega);
                    let block = if plan.structure == SortStructure::InPlace {
                        &mut data[lo..hi]
                    } else {
                        &mut scratch[lo..hi]
                    };
                    match plan.chunk_style {
                        ChunkSortStyle::Serial => {
                            let parts = p.min(node.len as usize);
                            chunk_sorts += parts;
                            sort_chunks_serial(pool, split_mut(block, parts));
                        }
                        ChunkSortStyle::Gnu => parallel_mergesort(pool, block),
                    }
                }
                // A kernel-carrying stage-out is the run merge: multiway-
                // merge the sorted runs out of the working buffer (staged:
                // back to `data`; in-place: out to scratch). A plain one is
                // the in-place copy-back from scratch.
                (PlanKind::StageOut, Some(mega)) => {
                    let (lo, hi) = bounds(mega);
                    if node.kernel == Some(SORT_KERNEL_MERGE_RUNS) {
                        let parts = match plan.chunk_style {
                            ChunkSortStyle::Serial => p.min(node.len as usize),
                            // The GNU-style chunk sort left one fully sorted
                            // run, so the merge-out degenerates to moving it.
                            ChunkSortStyle::Gnu => 1,
                        };
                        if plan.structure == SortStructure::InPlace {
                            let runs = split_borrows(&data[lo..hi], parts);
                            parallel_multiway_merge_into(pool, &runs, &mut scratch[lo..hi]);
                        } else {
                            let runs = split_borrows(&scratch[lo..hi], parts);
                            parallel_multiway_merge_into(pool, &runs, &mut data[lo..hi]);
                        }
                    } else {
                        parallel_copy(pool, &scratch[lo..hi], &mut data[lo..hi]);
                    }
                }
                // Final multiway merge of the sorted megachunk runs.
                (PlanKind::Kernel, None) if node.kernel == Some(SORT_KERNEL_FINAL_MERGE) => {
                    let runs: Vec<&[T]> = (0..wplan.chunks)
                        .map(|m| {
                            let (lo, hi) = bounds(m);
                            &data[lo..hi]
                        })
                        .collect();
                    parallel_multiway_merge_into(pool, &runs, &mut scratch);
                }
                (PlanKind::StageOut, None) => parallel_copy(pool, &scratch, data),
                (kind, chunk) => {
                    unreachable!("no host realisation for {kind:?}/{chunk:?} in this structure")
                }
            }
        }
    }

    HostSortStats {
        megachunks: plan.megachunks,
        chunk_sorts,
        elapsed: start.elapsed(),
    }
}

/// Sort `data` with the MLM-sort structure (paper §4): split into
/// megachunks of at most `megachunk_elems`; within each, one serial sort
/// per pool thread followed by a parallel multiway merge; finally a
/// parallel multiway merge across megachunks.
///
/// `explicit_copy = true` mirrors MLM-sort (the megachunk is staged through
/// a separate buffer, as flat-mode MCDRAM requires); `false` mirrors
/// MLM-implicit (sort in place, merge through scratch).
pub fn mlm_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
    explicit_copy: bool,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let structure = if explicit_copy {
        SortStructure::Staged
    } else {
        SortStructure::InPlace
    };
    let plan = plan_sort(
        structure,
        ChunkSortStyle::Serial,
        n as u64,
        megachunk_elems as u64,
    );
    run_sort_plan(pool, &plan, data)
}

/// The "basic algorithm" of §4: megachunks sorted with the *parallel*
/// mergesort (Bender et al.'s scheme), then a final multiway merge.
pub fn basic_chunked_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let plan = plan_sort(
        SortStructure::Staged,
        ChunkSortStyle::Gnu,
        n as u64,
        megachunk_elems as u64,
    );
    run_sort_plan(pool, &plan, data)
}

/// MLM-sort with double-buffered megachunks (the paper's §6 future work):
/// while the pool sorts the chunks of megachunk `m` (staged in buffer
/// `m % 2`), it concurrently copies megachunk `m + 1` into the other
/// buffer, hiding the copy-in latency behind the sort phase.
pub fn mlm_sort_buffered<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let plan = plan_sort(
        SortStructure::Buffered,
        ChunkSortStyle::Serial,
        n as u64,
        megachunk_elems as u64,
    );
    run_sort_plan(pool, &plan, data)
}

/// The overlapped ([`SortStructure::Buffered`]) interpretation: run each
/// wave of the lowered [`WorkloadPlan`] as one scoped task batch over the
/// two staging buffers ("the two halves of MCDRAM"). The plan's Recycle
/// edges guarantee a wave never touches one buffer twice, so megachunk
/// `m + 1`'s prefetch copy shares a batch with `m`'s chunk sorts (and a
/// merge-out shares with its wave-mates as a single dedicated task). A
/// wave that degenerates to one pool-wide node — the tail merge-out, the
/// final k-way merge, the final copy-back — runs with every thread
/// instead.
fn run_buffered_plan<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    plan: &SortPlan,
    wplan: &WorkloadPlan,
    data: &mut [T],
    start: std::time::Instant,
) -> HostSortStats {
    let n = data.len();
    let k = plan.megachunks;
    let p = pool.threads();
    let mega_elems = plan.mega_elems as usize;
    let mut chunk_sorts = 0usize;

    let bounds = |m: usize| -> (usize, usize) { (m * mega_elems, ((m + 1) * mega_elems).min(n)) };
    let parts_of = |len: u64| -> usize { p.min(len as usize) };

    // The two staging buffers the plan's 2-slot ring indexes.
    let mut bufs: [Vec<T>; 2] = [Vec::new(), Vec::new()];
    // Scratch for the final merge, allocated when its wave arrives.
    let mut scratch: Vec<T> = Vec::new();

    for wave in waves(wplan) {
        // A single-node wave has the pool to itself: realise it with the
        // pool-wide primitives instead of a one-task batch.
        if let [i] = wave[..] {
            let node = &wplan.nodes[i];
            match (node.kind, node.chunk) {
                (PlanKind::StageIn, Some(m)) => {
                    let (lo, hi) = bounds(m);
                    let buf = &mut bufs[node.slot];
                    buf.clear();
                    buf.resize(hi - lo, data[lo]);
                    parallel_copy(pool, &data[lo..hi], buf);
                }
                (PlanKind::Kernel, Some(_)) => {
                    let parts = parts_of(node.len);
                    chunk_sorts += parts;
                    sort_chunks_serial(pool, split_mut(&mut bufs[node.slot], parts));
                }
                (PlanKind::StageOut, Some(m)) => {
                    let (lo, hi) = bounds(m);
                    let runs = split_borrows(&bufs[node.slot], parts_of(node.len));
                    parallel_multiway_merge_into(pool, &runs, &mut data[lo..hi]);
                }
                (PlanKind::Kernel, None) => {
                    scratch.clear();
                    scratch.resize(n, data[0]);
                    let runs: Vec<&[T]> = (0..k)
                        .map(|m| {
                            let (lo, hi) = bounds(m);
                            &data[lo..hi]
                        })
                        .collect();
                    parallel_multiway_merge_into(pool, &runs, &mut scratch);
                }
                (PlanKind::StageOut, None) => parallel_copy(pool, &scratch, data),
                (kind, chunk) => {
                    unreachable!("no host realisation for {kind:?}/{chunk:?} in a buffered plan")
                }
            }
            continue;
        }

        // A multi-node wave: at most one stage-in, one chunk-sort, and one
        // merge-out (the 2-slot ring admits no more), all mutually
        // independent. Carve the buffers and `data` into the disjoint
        // regions each node owns, then run everything as one batch.
        let mut si: Option<&PlanNode> = None;
        let mut sort: Option<&PlanNode> = None;
        let mut merge: Option<&PlanNode> = None;
        for &i in &wave {
            let node = &wplan.nodes[i];
            let slot = match node.kind {
                PlanKind::StageIn => &mut si,
                PlanKind::Kernel => &mut sort,
                PlanKind::StageOut => &mut merge,
                PlanKind::Barrier => unreachable!("sort plans carry no barriers"),
            };
            assert!(slot.replace(node).is_none(), "wave reuses a node kind");
        }

        // Hand each role its staging buffer; a double `take` means the
        // plan broke the ring discipline.
        let (buf0, buf1) = {
            let (a, b) = bufs.split_at_mut(1);
            (&mut a[0], &mut b[0])
        };
        let mut by_slot = [Some(buf0), Some(buf1)];
        let si_buf = si.map(|nd| by_slot[nd.slot].take().expect("stage-in buffer free"));
        let sort_buf = sort.map(|nd| by_slot[nd.slot].take().expect("sort buffer free"));
        let merge_buf = merge.map(|nd| by_slot[nd.slot].take().expect("merge buffer free"));

        // Carve `data`: the merge-out writes its megachunk, the stage-in
        // reads a later one (its Recycle edge points two megachunks back,
        // so the ranges never overlap).
        let (merge_dst, si_src): (Option<&mut [T]>, Option<&[T]>) =
            match (merge.map(|nd| nd.chunk), si.map(|nd| nd.chunk)) {
                (Some(Some(mm)), Some(Some(sm))) => {
                    let ((mlo, mhi), (slo, shi)) = (bounds(mm), bounds(sm));
                    assert!(mhi <= slo, "merge-out must precede the prefetch in `data`");
                    let (left, right) = data.split_at_mut(slo);
                    (Some(&mut left[mlo..mhi]), Some(&right[..shi - slo]))
                }
                (Some(Some(mm)), None) => {
                    let (mlo, mhi) = bounds(mm);
                    (Some(&mut data[mlo..mhi]), None)
                }
                (None, Some(Some(sm))) => {
                    let (slo, shi) = bounds(sm);
                    (None, Some(&data[slo..shi]))
                }
                _ => (None, None),
            };

        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        // Prefetch: split the staging copy a few ways so it shares the
        // pool with the sorts without monopolising it.
        if let (Some(buf), Some(src)) = (si_buf, si_src) {
            buf.clear();
            buf.resize(src.len(), src[0]);
            let copy_parts = 4.min(src.len()).max(1);
            let mut rest: &mut [T] = buf;
            for t in 0..copy_parts {
                let (s, e) = split_range(src.len(), copy_parts, t);
                let (head, tail) = rest.split_at_mut(e - s);
                rest = tail;
                let sr = &src[s..e];
                tasks.push(Box::new(move || head.copy_from_slice(sr)));
            }
        }
        // One introsort task per chunk of the sorting megachunk.
        if let (Some(nd), Some(buf)) = (sort, sort_buf) {
            let parts = parts_of(nd.len);
            chunk_sorts += parts;
            for chunk in split_mut(buf, parts) {
                tasks.push(Box::new(move || parsort::serial::introsort(chunk)));
            }
        }
        // The merge-out runs as one dedicated task: serial against its
        // wave-mates, overlapped with them on the pool.
        if let (Some(nd), Some(buf), Some(dst)) = (merge, merge_buf, merge_dst) {
            let runs = split_borrows(buf, parts_of(nd.len));
            tasks.push(Box::new(move || multiway_merge_into(&runs, dst)));
        }
        pool.scoped(tasks);
    }

    HostSortStats {
        megachunks: k,
        chunk_sorts,
        elapsed: start.elapsed(),
    }
}

/// Dispatch a host-scale run of any Table-1 variant via its shared plan.
/// The MCDRAM *placement* differences vanish on the host (one memory
/// level); the *algorithmic* differences — GNU vs MLM structure, explicit
/// staging vs in-place, double buffering — are preserved.
pub fn run_host_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    alg: SortAlgorithm,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let structure = alg.structure();
    if structure != SortStructure::Whole {
        assert!(megachunk_elems > 0, "megachunk must be positive");
    }
    let n = data.len();
    if n < 2 {
        return HostSortStats {
            megachunks: if structure == SortStructure::Whole {
                1
            } else {
                n.min(1)
            },
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    // Whole-array variants ignore the megachunk knob.
    let mega = if structure == SortStructure::Whole {
        n
    } else {
        megachunk_elems
    };
    let plan = plan_sort(structure, alg.chunk_style(), n as u64, mega as u64);
    run_sort_plan(pool, &plan, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_keys, InputOrder};
    use parsort::serial::is_sorted;

    fn check_full_sort(alg: SortAlgorithm, n: usize, mega: usize, order: InputOrder) {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(n, order, 42);
        let mut expect = v.clone();
        expect.sort_unstable();
        let stats = run_host_sort(&pool, alg, &mut v, mega);
        assert_eq!(v, expect, "{alg:?} n={n} mega={mega} {order:?}");
        assert!(stats.elapsed.as_nanos() > 0 || n < 2);
    }

    #[test]
    fn every_variant_sorts_random_input() {
        for alg in SortAlgorithm::TABLE1 {
            check_full_sort(alg, 10_000, 3_000, InputOrder::Random);
        }
        check_full_sort(
            SortAlgorithm::BasicChunked,
            10_000,
            3_000,
            InputOrder::Random,
        );
    }

    #[test]
    fn every_variant_sorts_reverse_input() {
        for alg in SortAlgorithm::TABLE1 {
            check_full_sort(alg, 8_192, 1_000, InputOrder::Reverse);
        }
    }

    #[test]
    fn mlm_sort_explicit_and_implicit_agree() {
        let pool = WorkPool::new(4);
        let base = generate_keys(50_000, InputOrder::Random, 7);
        let mut a = base.clone();
        let mut b = base.clone();
        mlm_sort(&pool, &mut a, 12_000, true);
        mlm_sort(&pool, &mut b, 12_000, false);
        assert_eq!(a, b);
        assert!(is_sorted(&a));
    }

    #[test]
    fn megachunk_equal_to_input_is_single_chunk() {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(5_000, InputOrder::Random, 3);
        let stats = mlm_sort(&pool, &mut v, 5_000, false);
        assert_eq!(stats.megachunks, 1);
        assert!(is_sorted(&v));
    }

    #[test]
    fn megachunk_larger_than_input_is_fine() {
        let pool = WorkPool::new(2);
        let mut v = generate_keys(1_000, InputOrder::Random, 3);
        let stats = mlm_sort(&pool, &mut v, 1 << 30, true);
        assert_eq!(stats.megachunks, 1);
        assert!(is_sorted(&v));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let pool = WorkPool::new(4);
        let mut v: Vec<i64> = vec![];
        mlm_sort(&pool, &mut v, 10, true);
        let mut v = vec![5i64];
        mlm_sort(&pool, &mut v, 10, false);
        assert_eq!(v, [5]);
        let mut v = vec![2i64, 1];
        mlm_sort(&pool, &mut v, 1, true);
        assert_eq!(v, [1, 2]);
    }

    #[test]
    fn ragged_megachunks_sort_correctly() {
        let pool = WorkPool::new(3);
        let mut v = generate_keys(10_007, InputOrder::Random, 9);
        let mut expect = v.clone();
        expect.sort_unstable();
        let stats = mlm_sort(&pool, &mut v, 3_000, true);
        assert_eq!(stats.megachunks, 4);
        assert_eq!(v, expect);
    }

    #[test]
    fn chunk_sort_count_matches_structure() {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(8_000, InputOrder::Random, 1);
        let stats = mlm_sort(&pool, &mut v, 2_000, true);
        assert_eq!(stats.megachunks, 4);
        assert_eq!(stats.chunk_sorts, 16, "4 megachunks x 4 pool threads");
    }

    #[test]
    fn duplicates_survive_all_variants() {
        let pool = WorkPool::new(4);
        for alg in SortAlgorithm::TABLE1 {
            let input: Vec<i64> = (0..9_999).map(|i| i % 13).collect();
            let twelves = input.iter().filter(|&&x| x == 12).count();
            let mut v = input;
            run_host_sort(&pool, alg, &mut v, 2_500);
            assert!(is_sorted(&v));
            assert_eq!(v.iter().filter(|&&x| x == 12).count(), twelves, "{alg:?}");
        }
    }

    #[test]
    fn buffered_variant_sorts_correctly() {
        let pool = WorkPool::new(4);
        for (n, mega) in [
            (50_000usize, 12_000usize),
            (10_007, 2_000),
            (1_000, 1 << 20),
        ] {
            for order in [InputOrder::Random, InputOrder::Reverse] {
                let mut v = generate_keys(n, order, 17);
                let mut expect = v.clone();
                expect.sort_unstable();
                let stats = mlm_sort_buffered(&pool, &mut v, mega);
                assert_eq!(v, expect, "n={n} mega={mega} {order:?}");
                assert_eq!(stats.megachunks, n.div_ceil(mega));
            }
        }
    }

    #[test]
    fn buffered_variant_matches_plain_mlm_sort() {
        let pool = WorkPool::new(6);
        let base = generate_keys(60_000, InputOrder::Random, 23);
        let mut a = base.clone();
        let mut b = base;
        mlm_sort(&pool, &mut a, 14_000, true);
        mlm_sort_buffered(&pool, &mut b, 14_000);
        assert_eq!(a, b);
    }

    #[test]
    fn plan_interpreter_handles_every_structure_directly() {
        let pool = WorkPool::new(4);
        for (structure, style) in [
            (SortStructure::Whole, ChunkSortStyle::Gnu),
            (SortStructure::Staged, ChunkSortStyle::Serial),
            (SortStructure::Staged, ChunkSortStyle::Gnu),
            (SortStructure::InPlace, ChunkSortStyle::Serial),
            (SortStructure::Buffered, ChunkSortStyle::Serial),
        ] {
            let mut v = generate_keys(10_007, InputOrder::Random, 31);
            let mut expect = v.clone();
            expect.sort_unstable();
            let plan = plan_sort(structure, style, v.len() as u64, 3_000);
            let stats = run_sort_plan(&pool, &plan, &mut v);
            assert_eq!(v, expect, "{structure:?}/{style:?}");
            assert_eq!(stats.megachunks, plan.megachunks);
        }
    }
}
