//! Real, correctness-checked implementations of the sort variants.
//!
//! Host memory has one level, so the explicit "copy to MCDRAM" steps
//! degenerate to buffer copies — but every algorithmic step (megachunk
//! split, per-thread serial sorts, multiway merges, final merge) runs for
//! real, which is what validates the sim builders' schedules and feeds the
//! native Criterion benchmarks.

use parsort::multiway::parallel_multiway_merge_into;
use parsort::parallel::{parallel_mergesort, sort_chunks_serial, split_borrows};
use parsort::pool::{split_range, WorkPool};

use super::SortAlgorithm;

/// Execution statistics of a host sort run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSortStats {
    /// Megachunks processed (1 when the megachunk covers the input).
    pub megachunks: usize,
    /// Serial chunk sorts performed.
    pub chunk_sorts: usize,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

/// Sort `data` with the MLM-sort structure (paper §4): split into
/// megachunks of at most `megachunk_elems`; within each, one serial sort
/// per pool thread followed by a parallel multiway merge; finally a
/// parallel multiway merge across megachunks.
///
/// `explicit_copy = true` mirrors MLM-sort (the megachunk is staged through
/// a separate buffer, as flat-mode MCDRAM requires); `false` mirrors
/// MLM-implicit / MLM-ddr (sort in place, merge through scratch).
pub fn mlm_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
    explicit_copy: bool,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let k = n.div_ceil(megachunk_elems);
    let p = pool.threads();
    let mut scratch = data.to_vec();
    let mut chunk_sorts = 0usize;

    for m in 0..k {
        let lo = m * megachunk_elems;
        let hi = ((m + 1) * megachunk_elems).min(n);
        let mega = hi - lo;
        let parts = p.min(mega);
        chunk_sorts += parts;
        if explicit_copy {
            // "Copy-in": stage the megachunk in the buffer, sort there,
            // merge back out to the original array (MCDRAM -> DDR).
            parallel_copy(pool, &data[lo..hi], &mut scratch[lo..hi]);
            sort_chunks_serial(pool, chunks_of(&mut scratch[lo..hi], parts));
            let runs = split_borrows(&scratch[lo..hi], parts);
            parallel_multiway_merge_into(pool, &runs, &mut data[lo..hi]);
        } else {
            // Implicit: sort in place, merge through scratch, copy back.
            sort_chunks_serial(pool, chunks_of(&mut data[lo..hi], parts));
            let runs = split_borrows(&data[lo..hi], parts);
            parallel_multiway_merge_into(pool, &runs, &mut scratch[lo..hi]);
            parallel_copy(pool, &scratch[lo..hi], &mut data[lo..hi]);
        }
    }

    if k > 1 {
        // Final multiway merge of the sorted megachunk runs.
        let runs: Vec<&[T]> = (0..k)
            .map(|m| {
                let lo = m * megachunk_elems;
                let hi = ((m + 1) * megachunk_elems).min(n);
                &data[lo..hi]
            })
            .collect();
        parallel_multiway_merge_into(pool, &runs, &mut scratch);
        parallel_copy(pool, &scratch, data);
    }

    HostSortStats {
        megachunks: k,
        chunk_sorts,
        elapsed: start.elapsed(),
    }
}

/// The "basic algorithm" of §4: megachunks sorted with the *parallel*
/// mergesort (Bender et al.'s scheme), then a final multiway merge.
pub fn basic_chunked_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let k = n.div_ceil(megachunk_elems);
    for m in 0..k {
        let lo = m * megachunk_elems;
        let hi = ((m + 1) * megachunk_elems).min(n);
        parallel_mergesort(pool, &mut data[lo..hi]);
    }
    if k > 1 {
        let mut scratch = data.to_vec();
        let runs: Vec<&[T]> = (0..k)
            .map(|m| &data[m * megachunk_elems..((m + 1) * megachunk_elems).min(n)])
            .collect();
        parallel_multiway_merge_into(pool, &runs, &mut scratch);
        parallel_copy(pool, &scratch, data);
    }
    HostSortStats {
        megachunks: k,
        chunk_sorts: 0,
        elapsed: start.elapsed(),
    }
}

/// MLM-sort with double-buffered megachunks (the paper's §6 future work):
/// while the pool sorts the chunks of megachunk `m` (staged in buffer
/// `m % 2`), it concurrently copies megachunk `m + 1` into the other
/// buffer, hiding the copy-in latency behind the sort phase.
pub fn mlm_sort_buffered<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    let start = std::time::Instant::now();
    let n = data.len();
    assert!(megachunk_elems > 0, "megachunk must be positive");
    if n < 2 {
        return HostSortStats {
            megachunks: n.min(1),
            chunk_sorts: 0,
            elapsed: start.elapsed(),
        };
    }
    let k = n.div_ceil(megachunk_elems);
    let p = pool.threads();
    let mut chunk_sorts = 0usize;

    let bounds =
        |m: usize| -> (usize, usize) { (m * megachunk_elems, ((m + 1) * megachunk_elems).min(n)) };

    // Two staging buffers ("the two halves of MCDRAM").
    let mut bufs: [Vec<T>; 2] = [Vec::new(), Vec::new()];
    {
        // Prime: stage megachunk 0.
        let (lo, hi) = bounds(0);
        bufs[0].clear();
        bufs[0].extend_from_slice(&data[lo..hi]);
    }

    for m in 0..k {
        let (lo, hi) = bounds(m);
        let mega = hi - lo;
        let parts = p.min(mega);
        chunk_sorts += parts;

        // Split the two buffers so the copy-in of m+1 and the chunk sorts
        // of m can run in one scoped batch.
        let (cur, next) = {
            let (a, b) = bufs.split_at_mut(1);
            if m % 2 == 0 {
                (&mut a[0], &mut b[0])
            } else {
                (&mut b[0], &mut a[0])
            }
        };

        // Prepare the prefetch destination.
        let prefetch_src = if m + 1 < k {
            let (nlo, nhi) = bounds(m + 1);
            next.clear();
            next.resize(nhi - nlo, data[0]);
            Some(&data[nlo..nhi])
        } else {
            None
        };

        {
            // One batch: sort tasks on `cur` + copy tasks into `next`.
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for chunk in chunks_of(cur, parts) {
                tasks.push(Box::new(move || parsort::serial::introsort(chunk)));
            }
            if let Some(src) = prefetch_src {
                let copy_parts = 4.min(src.len()).max(1);
                let mut rest: &mut [T] = next;
                for t in 0..copy_parts {
                    let (s, e) = split_range(src.len(), copy_parts, t);
                    let (head, tail) = rest.split_at_mut(e - s);
                    rest = tail;
                    let sr = &src[s..e];
                    tasks.push(Box::new(move || head.copy_from_slice(sr)));
                }
            }
            pool.scoped(tasks);
        }

        // Merge the sorted chunk runs of `cur` out to the original array.
        let runs = split_borrows(cur, parts);
        parallel_multiway_merge_into(pool, &runs, &mut data[lo..hi]);
    }

    if k > 1 {
        let mut scratch = data.to_vec();
        let runs: Vec<&[T]> = (0..k)
            .map(|m| {
                let (lo, hi) = bounds(m);
                &data[lo..hi]
            })
            .collect();
        parallel_multiway_merge_into(pool, &runs, &mut scratch);
        parallel_copy(pool, &scratch, data);
    }

    HostSortStats {
        megachunks: k,
        chunk_sorts,
        elapsed: start.elapsed(),
    }
}

/// Dispatch a host-scale run of any Table-1 variant. The MCDRAM
/// *placement* differences vanish on the host (one memory level); the
/// *algorithmic* differences — GNU vs MLM structure, explicit staging vs
/// in-place — are preserved.
pub fn run_host_sort<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    alg: SortAlgorithm,
    data: &mut [T],
    megachunk_elems: usize,
) -> HostSortStats {
    match alg {
        SortAlgorithm::GnuFlat | SortAlgorithm::GnuCache | SortAlgorithm::GnuNumactl => {
            let start = std::time::Instant::now();
            parallel_mergesort(pool, data);
            HostSortStats {
                megachunks: 1,
                chunk_sorts: 0,
                elapsed: start.elapsed(),
            }
        }
        SortAlgorithm::MlmDdr | SortAlgorithm::MlmImplicit => {
            mlm_sort(pool, data, megachunk_elems, false)
        }
        SortAlgorithm::MlmSort => mlm_sort(pool, data, megachunk_elems, true),
        SortAlgorithm::BasicChunked => basic_chunked_sort(pool, data, megachunk_elems),
        SortAlgorithm::MlmSortBuffered => mlm_sort_buffered(pool, data, megachunk_elems),
    }
}

/// Split a slice into `parts` near-equal mutable chunks.
fn chunks_of<T>(data: &mut [T], parts: usize) -> Vec<&mut [T]> {
    let len = data.len();
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    for i in 0..parts {
        let (s, e) = split_range(len, parts, i);
        let (head, tail) = rest.split_at_mut(e - s);
        out.push(head);
        rest = tail;
    }
    out
}

/// Copy `src` to `dst` using every pool thread (the host stand-in for the
/// copy-in / copy-out pools).
pub fn parallel_copy<T: Copy + Send + Sync>(pool: &WorkPool, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len());
    if src.is_empty() {
        return;
    }
    let parts = pool.threads().min(src.len());
    let len = src.len();
    let mut rest = dst;
    let mut tasks = Vec::with_capacity(parts);
    for t in 0..parts {
        let (s, e) = split_range(len, parts, t);
        let (head, tail) = rest.split_at_mut(e - s);
        rest = tail;
        let sr = &src[s..e];
        tasks.push(move || head.copy_from_slice(sr));
    }
    pool.scoped(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_keys, InputOrder};
    use parsort::serial::is_sorted;

    fn check_full_sort(alg: SortAlgorithm, n: usize, mega: usize, order: InputOrder) {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(n, order, 42);
        let mut expect = v.clone();
        expect.sort_unstable();
        let stats = run_host_sort(&pool, alg, &mut v, mega);
        assert_eq!(v, expect, "{alg:?} n={n} mega={mega} {order:?}");
        assert!(stats.elapsed.as_nanos() > 0 || n < 2);
    }

    #[test]
    fn every_variant_sorts_random_input() {
        for alg in SortAlgorithm::TABLE1 {
            check_full_sort(alg, 10_000, 3_000, InputOrder::Random);
        }
        check_full_sort(
            SortAlgorithm::BasicChunked,
            10_000,
            3_000,
            InputOrder::Random,
        );
    }

    #[test]
    fn every_variant_sorts_reverse_input() {
        for alg in SortAlgorithm::TABLE1 {
            check_full_sort(alg, 8_192, 1_000, InputOrder::Reverse);
        }
    }

    #[test]
    fn mlm_sort_explicit_and_implicit_agree() {
        let pool = WorkPool::new(4);
        let base = generate_keys(50_000, InputOrder::Random, 7);
        let mut a = base.clone();
        let mut b = base.clone();
        mlm_sort(&pool, &mut a, 12_000, true);
        mlm_sort(&pool, &mut b, 12_000, false);
        assert_eq!(a, b);
        assert!(is_sorted(&a));
    }

    #[test]
    fn megachunk_equal_to_input_is_single_chunk() {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(5_000, InputOrder::Random, 3);
        let stats = mlm_sort(&pool, &mut v, 5_000, false);
        assert_eq!(stats.megachunks, 1);
        assert!(is_sorted(&v));
    }

    #[test]
    fn megachunk_larger_than_input_is_fine() {
        let pool = WorkPool::new(2);
        let mut v = generate_keys(1_000, InputOrder::Random, 3);
        let stats = mlm_sort(&pool, &mut v, 1 << 30, true);
        assert_eq!(stats.megachunks, 1);
        assert!(is_sorted(&v));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let pool = WorkPool::new(4);
        let mut v: Vec<i64> = vec![];
        mlm_sort(&pool, &mut v, 10, true);
        let mut v = vec![5i64];
        mlm_sort(&pool, &mut v, 10, false);
        assert_eq!(v, [5]);
        let mut v = vec![2i64, 1];
        mlm_sort(&pool, &mut v, 1, true);
        assert_eq!(v, [1, 2]);
    }

    #[test]
    fn ragged_megachunks_sort_correctly() {
        let pool = WorkPool::new(3);
        let mut v = generate_keys(10_007, InputOrder::Random, 9);
        let mut expect = v.clone();
        expect.sort_unstable();
        let stats = mlm_sort(&pool, &mut v, 3_000, true);
        assert_eq!(stats.megachunks, 4);
        assert_eq!(v, expect);
    }

    #[test]
    fn chunk_sort_count_matches_structure() {
        let pool = WorkPool::new(4);
        let mut v = generate_keys(8_000, InputOrder::Random, 1);
        let stats = mlm_sort(&pool, &mut v, 2_000, true);
        assert_eq!(stats.megachunks, 4);
        assert_eq!(stats.chunk_sorts, 16, "4 megachunks x 4 pool threads");
    }

    #[test]
    fn duplicates_survive_all_variants() {
        let pool = WorkPool::new(4);
        for alg in SortAlgorithm::TABLE1 {
            let input: Vec<i64> = (0..9_999).map(|i| i % 13).collect();
            let twelves = input.iter().filter(|&&x| x == 12).count();
            let mut v = input;
            run_host_sort(&pool, alg, &mut v, 2_500);
            assert!(is_sorted(&v));
            assert_eq!(v.iter().filter(|&&x| x == 12).count(), twelves, "{alg:?}");
        }
    }

    #[test]
    fn buffered_variant_sorts_correctly() {
        let pool = WorkPool::new(4);
        for (n, mega) in [
            (50_000usize, 12_000usize),
            (10_007, 2_000),
            (1_000, 1 << 20),
        ] {
            for order in [InputOrder::Random, InputOrder::Reverse] {
                let mut v = generate_keys(n, order, 17);
                let mut expect = v.clone();
                expect.sort_unstable();
                let stats = mlm_sort_buffered(&pool, &mut v, mega);
                assert_eq!(v, expect, "n={n} mega={mega} {order:?}");
                assert_eq!(stats.megachunks, n.div_ceil(mega));
            }
        }
    }

    #[test]
    fn buffered_variant_matches_plain_mlm_sort() {
        let pool = WorkPool::new(6);
        let base = generate_keys(60_000, InputOrder::Random, 23);
        let mut a = base.clone();
        let mut b = base;
        mlm_sort(&pool, &mut a, 14_000, true);
        mlm_sort_buffered(&pool, &mut b, 14_000);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_copy_is_exact() {
        let pool = WorkPool::new(4);
        let src: Vec<i64> = (0..12_345).collect();
        let mut dst = vec![0i64; 12_345];
        parallel_copy(&pool, &src, &mut dst);
        assert_eq!(src, dst);
    }
}
