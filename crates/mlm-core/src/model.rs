//! The paper's copy-thread model (§3.2, Equations 1–5), implemented
//! verbatim.
//!
//! The model predicts the execution time of a buffered chunking algorithm
//! from five machine/problem parameters (paper Table 2) and the thread-pool
//! split, and from it the near-optimal number of copy threads.
//!
//! Equation numbers in the code refer to the paper:
//!
//! * Eq. 1: `T_total = max(T_copy, T_comp)`
//! * Eq. 2: `T_copy = 2·B / ((p_in + p_out)·C_copy)`
//! * Eq. 3: `C_copy = S_copy` until DDR saturates, then the DDR share
//! * Eq. 4: `T_comp = 2·B·passes / (p_comp·C_comp)`
//! * Eq. 5: `C_comp = S_comp` until MCDRAM saturates, then the leftover
//!   MCDRAM share

use serde::{Deserialize, Serialize};

/// Inputs to the model — the paper's Table 2 plus the thread budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Data set size `B_copy` in bytes (Table 2: 14.9 GB).
    pub b_copy: f64,
    /// Peak DDR bandwidth in bytes/s (Table 2: 90 GB/s).
    pub ddr_max: f64,
    /// Peak MCDRAM bandwidth in bytes/s (Table 2: 400 GB/s).
    pub mcdram_max: f64,
    /// Per-thread copy rate `S_copy` in bytes/s (Table 2: 4.8 GB/s).
    pub s_copy: f64,
    /// Per-thread compute rate `S_comp` in bytes/s (Table 2: 6.78 GB/s).
    pub s_comp: f64,
    /// Total hardware threads to divide among the three pools (paper: 256).
    pub total_threads: usize,
}

/// A concrete three-pool thread assignment derived from the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSplit {
    /// Copy-in pool size.
    pub p_in: usize,
    /// Copy-out pool size.
    pub p_out: usize,
    /// Compute pool size.
    pub p_comp: usize,
}

impl ThreadSplit {
    /// Total threads the split occupies.
    pub fn total(&self) -> usize {
        self.p_in + self.p_out + self.p_comp
    }
}

impl ModelParams {
    /// The paper's Table 2 values.
    pub fn paper_table2() -> Self {
        ModelParams {
            b_copy: 14.9e9,
            ddr_max: 90e9,
            mcdram_max: 400e9,
            s_copy: 4.8e9,
            s_comp: 6.78e9,
            total_threads: 256,
        }
    }

    /// Eq. 3: effective per-thread copy rate for `p_in + p_out` copy
    /// threads.
    pub fn c_copy(&self, p_in: usize, p_out: usize) -> f64 {
        let p = (p_in + p_out) as f64;
        if p * self.s_copy <= self.ddr_max {
            self.s_copy
        } else {
            self.ddr_max / p
        }
    }

    /// Eq. 2: time to copy the data set into MCDRAM and back out.
    pub fn t_copy(&self, p_in: usize, p_out: usize) -> f64 {
        let p = (p_in + p_out) as f64;
        if p == 0.0 {
            return f64::INFINITY;
        }
        2.0 * self.b_copy / (p * self.c_copy(p_in, p_out))
    }

    /// Eq. 5: effective per-thread compute rate for `p_comp` compute
    /// threads sharing MCDRAM with `p_in + p_out` copy threads.
    pub fn c_comp(&self, p_comp: usize, p_in: usize, p_out: usize) -> f64 {
        let pc = p_comp as f64;
        let demand = pc * self.s_comp + (p_in + p_out) as f64 * self.s_copy;
        if demand <= self.mcdram_max {
            self.s_comp
        } else {
            let copy_share = (p_in + p_out) as f64 * self.c_copy(p_in, p_out);
            ((self.mcdram_max - copy_share) / pc).max(0.0)
        }
    }

    /// Eq. 4: compute time for `passes` read+write passes over the data.
    pub fn t_comp(&self, p_comp: usize, p_in: usize, p_out: usize, passes: u32) -> f64 {
        if p_comp == 0 {
            return f64::INFINITY;
        }
        let c = self.c_comp(p_comp, p_in, p_out);
        if c <= 0.0 {
            return f64::INFINITY;
        }
        2.0 * self.b_copy * f64::from(passes) / (p_comp as f64 * c)
    }

    /// Eq. 1: predicted total time with `p_in = p_out = copy_threads` and
    /// the remaining threads computing.
    ///
    /// Returns `None` when the split is infeasible (no compute threads
    /// left).
    pub fn t_total(&self, copy_threads: usize, passes: u32) -> Option<f64> {
        let used = 2 * copy_threads;
        if copy_threads == 0 || used >= self.total_threads {
            return None;
        }
        let p_comp = self.total_threads - used;
        Some(self.t_copy(copy_threads, copy_threads).max(self.t_comp(
            p_comp,
            copy_threads,
            copy_threads,
            passes,
        )))
    }

    /// Scan all feasible symmetric splits and return
    /// `(best copy-in threads, predicted seconds)` for the given number of
    /// compute passes (the merge benchmark's `repeats`).
    pub fn optimal_copy_threads(&self, passes: u32) -> (usize, f64) {
        let mut best = (1, f64::INFINITY);
        let mut p = 1;
        while 2 * p < self.total_threads {
            if let Some(t) = self.t_total(p, passes) {
                // Strict improvement beyond float noise: plateaus (e.g. the
                // DDR-saturated regime, where T_copy is analytically
                // constant in p) resolve to the smallest thread count.
                if t < best.1 * (1.0 - 1e-9) {
                    best = (p, t);
                }
            }
            p += 1;
        }
        best
    }

    /// Predicted time for an *asymmetric* split `p_in != p_out` — the
    /// paper's model assumes the pools equal ("the copy-in and copy-out
    /// pools are equal in size and have equivalent workloads"); this
    /// generalisation lets that assumption be checked rather than taken.
    /// Each pool moves `B` bytes, so the copy phase ends when the slower
    /// pool finishes; both share DDR.
    pub fn t_total_asymmetric(&self, p_in: usize, p_out: usize, passes: u32) -> Option<f64> {
        let used = p_in + p_out;
        if p_in == 0 || p_out == 0 || used >= self.total_threads {
            return None;
        }
        let c = self.c_copy(p_in, p_out);
        // The slower (smaller) pool bounds the copy phase.
        let t_copy = self.b_copy / (p_in.min(p_out) as f64 * c);
        let p_comp = self.total_threads - used;
        Some(t_copy.max(self.t_comp(p_comp, p_in, p_out, passes)))
    }

    /// Search all asymmetric splits; returns `(p_in, p_out, seconds)`.
    pub fn optimal_asymmetric(&self, passes: u32) -> (usize, usize, f64) {
        let mut best = (1, 1, f64::INFINITY);
        for p_in in 1..self.total_threads {
            for p_out in 1..(self.total_threads - p_in) {
                if p_in + p_out >= self.total_threads {
                    break;
                }
                if let Some(t) = self.t_total_asymmetric(p_in, p_out, passes) {
                    if t < best.2 * (1.0 - 1e-9) {
                        best = (p_in, p_out, t);
                    }
                }
            }
        }
        best
    }

    /// The same model under a different thread budget — how a scheduler
    /// re-poses the single-job question when a job is granted only a slice
    /// of the machine.
    pub fn with_total_threads(mut self, threads: usize) -> Self {
        self.total_threads = threads;
        self
    }

    /// The Eqs. 1–5 optimum as a concrete pool assignment under the
    /// current thread budget: symmetric copy pools from
    /// [`Self::optimal_copy_threads`], every remaining thread computing.
    ///
    /// Returns `None` when the budget cannot host all three pools
    /// (`total_threads < 3`). This is the per-job tuner a multi-tenant
    /// scheduler calls each time the co-resident job set — and with it each
    /// job's thread budget — changes.
    pub fn optimal_split(&self, passes: u32) -> Option<ThreadSplit> {
        if self.total_threads < 3 {
            return None;
        }
        let (p, t) = self.optimal_copy_threads(passes);
        if !t.is_finite() {
            return None;
        }
        Some(ThreadSplit {
            p_in: p,
            p_out: p,
            p_comp: self.total_threads - 2 * p,
        })
    }

    /// Like [`Self::optimal_copy_threads`] but restricted to the candidate
    /// set the paper's empirical sweep used (powers of two up to 32).
    pub fn optimal_copy_threads_pow2(&self, passes: u32) -> (usize, f64) {
        let mut best = (1, f64::INFINITY);
        for p in [1usize, 2, 4, 8, 16, 32] {
            if 2 * p >= self.total_threads {
                break;
            }
            if let Some(t) = self.t_total(p, passes) {
                if t < best.1 * (1.0 - 1e-9) {
                    best = (p, t);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelParams {
        ModelParams::paper_table2()
    }

    #[test]
    fn c_copy_saturates_at_ddr() {
        let m = m();
        // 9 in + 9 out = 18 threads * 4.8 = 86.4 < 90: unsaturated.
        assert_eq!(m.c_copy(9, 9), 4.8e9);
        // 10 + 10 = 20 threads * 4.8 = 96 > 90: saturated share.
        let c = m.c_copy(10, 10);
        assert!((c - 90e9 / 20.0).abs() < 1.0);
        // Aggregate copy bandwidth never exceeds DDR_max.
        for p in 1..=64 {
            let agg = 2.0 * p as f64 * m.c_copy(p, p);
            assert!(agg <= 90e9 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn t_copy_matches_closed_form() {
        let m = m();
        // Below saturation: 2*14.9 GB / (16 * 4.8 GB/s).
        let t = m.t_copy(8, 8);
        assert!((t - 2.0 * 14.9e9 / (16.0 * 4.8e9)).abs() < 1e-9);
        // Above saturation: 2*B / DDR_max.
        let t = m.t_copy(32, 32);
        assert!((t - 2.0 * 14.9e9 / 90e9).abs() < 1e-9);
    }

    #[test]
    fn c_comp_shares_leftover_mcdram() {
        let m = m();
        // 224 compute threads want 1518 GB/s >> 400: saturated. The 32
        // copy threads are themselves DDR-saturated, so their MCDRAM share
        // is DDR_max, not 32 x S_copy (Eq. 3 feeding Eq. 5).
        let c = m.c_comp(224, 16, 16);
        let copy_share = 90e9;
        assert!((c - (400e9 - copy_share) / 224.0).abs() < 1.0);
        // Below DDR saturation the share really is p x S_copy.
        let c = m.c_comp(224, 8, 8);
        assert!((c - (400e9 - 16.0 * 4.8e9) / 224.0).abs() < 1.0);
        // Few compute threads: unsaturated.
        assert_eq!(m.c_comp(16, 8, 8), 6.78e9);
    }

    #[test]
    fn more_repeats_need_fewer_copy_threads() {
        let m = m();
        let mut prev = usize::MAX;
        for repeats in [1u32, 2, 4, 8, 16, 32, 64] {
            let (p, t) = m.optimal_copy_threads(repeats);
            assert!(t.is_finite());
            assert!(
                p <= prev,
                "optimal copy threads must be non-increasing in repeats: {p} > {prev}"
            );
            prev = p;
        }
    }

    /// The paper's Table 3 model column: repeats → optimal copy threads
    /// {1:10, 2:10, 4:10, 8:8, 16:3, 32:2, 64:1}. Our implementation of
    /// Eqs. 1–5 reproduces the asymptotes exactly (10 at low repeats, 1 at
    /// high) and lands within ±3 everywhere (the paper's 8-repeat point is
    /// a near-tie plateau; see EXPERIMENTS.md).
    #[test]
    fn model_reproduces_table3_shape() {
        let m = m();
        let expect = [
            (1u32, 10usize),
            (2, 10),
            (4, 10),
            (8, 8),
            (16, 3),
            (32, 2),
            (64, 1),
        ];
        for (repeats, want) in expect {
            let (got, _) = m.optimal_copy_threads(repeats);
            assert!(
                (got as i64 - want as i64).unsigned_abs() <= 3,
                "repeats={repeats}: model says {got}, paper Table 3 says {want}"
            );
        }
        assert_eq!(m.optimal_copy_threads(1).0, 10);
        assert_eq!(m.optimal_copy_threads(2).0, 10);
        // High-repeat asymptote is exactly one copy thread.
        assert_eq!(m.optimal_copy_threads(64).0, 1);
        assert_eq!(m.optimal_copy_threads(128).0, 1);
    }

    #[test]
    fn t_total_infeasible_splits() {
        let m = m();
        assert!(m.t_total(0, 1).is_none());
        assert!(m.t_total(128, 1).is_none(), "no compute threads left");
    }

    #[test]
    fn pow2_restriction_is_never_better() {
        let m = m();
        for repeats in [1u32, 4, 16, 64] {
            let (_, free) = m.optimal_copy_threads(repeats);
            let (_, pow2) = m.optimal_copy_threads_pow2(repeats);
            assert!(pow2 >= free - 1e-12);
        }
    }

    /// The paper's symmetric-pools assumption is justified by its own
    /// model: the asymmetric optimum is (near-)symmetric because both
    /// pools move the same number of bytes.
    #[test]
    fn asymmetric_optimum_is_symmetric() {
        let m = m();
        for passes in [1u32, 8, 64] {
            let (p_in, p_out, t_asym) = m.optimal_asymmetric(passes);
            assert_eq!(p_in, p_out, "passes={passes}: optimum {p_in}/{p_out}");
            let (p_sym, t_sym) = m.optimal_copy_threads(passes);
            assert_eq!(p_in, p_sym);
            assert!((t_asym - t_sym).abs() < 1e-9 * t_sym.max(1.0));
        }
        // And a lopsided split is strictly worse than its balanced peer.
        let balanced = m.t_total_asymmetric(8, 8, 4).unwrap();
        let lopsided = m.t_total_asymmetric(2, 14, 4).unwrap();
        assert!(lopsided > balanced);
    }

    #[test]
    fn optimal_split_covers_the_budget() {
        for budget in [3usize, 4, 8, 16, 64, 256] {
            let m = m().with_total_threads(budget);
            for passes in [1u32, 4, 16] {
                let s = m.optimal_split(passes).unwrap();
                assert_eq!(s.total(), budget, "budget {budget}, passes {passes}");
                assert_eq!(s.p_in, s.p_out);
                assert!(s.p_comp >= 1);
                // The split is exactly the symmetric optimum's.
                assert_eq!(s.p_in, m.optimal_copy_threads(passes).0);
            }
        }
    }

    #[test]
    fn optimal_split_needs_three_threads() {
        assert!(m().with_total_threads(2).optimal_split(1).is_none());
        assert!(m().with_total_threads(0).optimal_split(1).is_none());
        let s = m().with_total_threads(3).optimal_split(64).unwrap();
        assert_eq!((s.p_in, s.p_out, s.p_comp), (1, 1, 1));
    }

    #[test]
    fn t_total_is_max_of_copy_and_compute() {
        let m = m();
        let p = 8;
        let t = m.t_total(p, 4).unwrap();
        let tc = m.t_copy(p, p);
        let tm = m.t_comp(m.total_threads - 2 * p, p, p, 4);
        assert_eq!(t, tc.max(tm));
    }
}
