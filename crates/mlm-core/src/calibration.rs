//! Calibration constants tying the simulator to measured KNL behaviour.
//!
//! The paper measures its machine-dependent constants with STREAM and the
//! merge benchmark (its Table 2). We adopt those four numbers verbatim
//! (`DDR_max`, `MCDRAM_max`, `S_copy`, `S_comp` live in
//! [`knl_sim::MachineConfig`]) and add the handful of constants the paper
//! does not tabulate but its results imply — per-thread serial-sort and
//! multiway-merge throughputs, the MCDRAM service-rate advantage, and the
//! GNU parallel mode's thread-scalability penalty. Defaults were fitted
//! once against the *GNU-flat random* anchor rows of the paper's Table 1
//! (see `mlm-bench --bin calibrate`); every other row and figure is an
//! emergent prediction.
//!
//! All rates are per *hardware thread* (the paper runs 256 SMT threads on
//! 68 cores, so these are SMT-degraded rates) in traffic bytes per second:
//! a pass that reads and writes one megabyte counts as two megabytes of
//! traffic.

use serde::{Deserialize, Serialize};

/// Machine- and software-dependent throughput constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Per-thread traffic rate of serial introsort's *memory-visible*
    /// passes (partition scans) on uniformly random keys, in bytes/s.
    /// Scans are streaming and fast per thread — at 256 threads they
    /// saturate whichever bus serves the block, so at scale this phase is
    /// bandwidth-bound and its cost depends on the memory level, while
    /// the [`Calibration::incache_random`] component does not. That split
    /// is what produces both the cache-mode speedups and the paper's
    /// preference for large chunks (Fig. 7): halving the chunk removes a
    /// cheap bus-bound pass but adds an expensive high-fan-in final merge.
    pub s_sort_random: f64,
    /// Same, on reverse-sorted keys (scans are order-insensitive, so this
    /// equals the random rate by default; the reverse-input speedup of
    /// Table 1 comes from the in-cache component).
    pub s_sort_reverse: f64,
    /// Seconds per element of cache-resident introsort work on random
    /// keys (the recursion levels below [`Calibration::cache_resident_elems`]
    /// plus the insertion-sort base cases). This is the per-thread compute
    /// bulk of a serial sort.
    pub incache_random: f64,
    /// Same, on reverse-sorted keys. Branch-predictable partitioning makes
    /// this ~3x faster (Table 1's MLM-ddr rows: 9.28 s vs 4.79 s).
    pub incache_reverse: f64,
    /// Per-thread traffic rate of the k-way (loser-tree) merge at k = 2,
    /// in bytes/s. Larger k pays a `log2(k)` comparison penalty
    /// (see [`Calibration::multiway_rate`]).
    pub s_multiway: f64,
    /// Rate multiplier for multiway merges over runs produced from
    /// reverse-sorted input: such runs cover disjoint key ranges, so the
    /// loser tree's winner rarely changes and its branches predict
    /// perfectly.
    pub multiway_reverse_boost: f64,
    /// Service-rate advantage of MCDRAM-resident streaming over
    /// DDR-resident streaming for the *same* thread, below saturation.
    /// MCDRAM's 8 stacks sustain more outstanding requests per thread than
    /// the 6 DDR channels (Ramos & Hoefler characterize this asymmetry);
    /// it is what gives cache mode its benefit for compute-bound phases.
    pub mcdram_boost: f64,
    /// Multiplier (< 1) on per-thread rates inside the GNU parallel-mode
    /// baseline, accounting for its synchronization and load-imbalance
    /// overheads at 256 threads — the paper's motivation for MLM-sort's
    /// serial chunk sorts ("MLM-sort does not rely on thread-scalability
    /// of multithreaded algorithms").
    pub gnu_efficiency: f64,
    /// Per-thread traffic rate of the §5 merge-benchmark kernel at full
    /// 256-thread SMT occupancy, in bytes/s. The paper's Table 2 value
    /// (`S_comp` = 6.78 GB/s) was measured "when not bandwidth-limited",
    /// i.e. at low concurrency; with four threads per core the sustainable
    /// per-thread rate is ~4x lower, and it is this value that makes the
    /// empirical copy-thread optimum (Table 3) sensitive to the compute
    /// pool's size.
    pub s_merge_bench: f64,
    /// Per-thread traffic rate of one LSD radix-sort pass (count +
    /// scatter), in bytes/s. Radix sort has no cache-resident recursion —
    /// every pass streams the whole block, and its 256-bucket scatter is
    /// prefetch-friendly — so at 256 threads the aggregate demand
    /// (256 x 2 GB/s = 512 GB/s) exceeds even MCDRAM: the kernel is
    /// bus-bound wherever it runs, which is its defining property.
    pub s_radix: f64,
    /// Fixed virtual-time cost of a fork/join phase boundary, in seconds.
    pub phase_overhead: f64,
    /// Elements below which introsort recursion stays in the core's private
    /// caches and generates no memory traffic (KNL: 1 MiB L2 per tile).
    pub cache_resident_elems: usize,
    /// Smallest subproblem counted as a full memory pass, in elements
    /// (introsort's insertion-sort threshold).
    pub base_case_elems: usize,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            s_sort_random: 2.0e9,
            s_sort_reverse: 2.0e9,
            incache_random: 7.34e-7,
            incache_reverse: 2.2e-7,
            s_multiway: 0.70e9,
            multiway_reverse_boost: 2.0,
            mcdram_boost: 1.3,
            gnu_efficiency: 0.82,
            s_merge_bench: 1.4e9,
            s_radix: 2.0e9,
            phase_overhead: 2e-3,
            cache_resident_elems: 64 * 1024,
            base_case_elems: 24,
        }
    }
}

impl Calibration {
    /// Number of *memory-visible* passes serial introsort makes over an
    /// `n`-element range: one per recursion level until subproblems fit in
    /// the core-private cache.
    ///
    /// Levels below [`Self::cache_resident_elems`] are served from L2 and
    /// charged no memory traffic; the in-cache work is folded into the
    /// per-pass rate (which was measured end-to-end).
    pub fn sort_passes(&self, n: usize) -> u32 {
        if n <= self.cache_resident_elems {
            // Entirely cache-resident sorts still stream the data in and
            // out of memory once.
            return 1;
        }
        let ratio = n as f64 / self.cache_resident_elems as f64;
        ratio.log2().ceil() as u32 + 1
    }

    /// Memory traffic (bytes) of one serial introsort over `n` elements of
    /// `elem_bytes` each: read + write per memory-visible pass.
    pub fn sort_traffic(&self, n: usize, elem_bytes: usize) -> u64 {
        2 * (n as u64) * (elem_bytes as u64) * u64::from(self.sort_passes(n))
    }

    /// Per-thread memory-pass rate of serial sorting for the given order.
    pub fn sort_rate(&self, order: crate::workload::InputOrder) -> f64 {
        match order {
            crate::workload::InputOrder::Random => self.s_sort_random,
            crate::workload::InputOrder::Reverse => self.s_sort_reverse,
            crate::workload::InputOrder::Sorted => self.s_sort_reverse,
        }
    }

    /// Seconds of cache-resident compute per element of serial sorting.
    pub fn incache_time(&self, order: crate::workload::InputOrder) -> f64 {
        match order {
            crate::workload::InputOrder::Random => self.incache_random,
            crate::workload::InputOrder::Reverse => self.incache_reverse,
            crate::workload::InputOrder::Sorted => self.incache_reverse,
        }
    }

    /// Per-thread k-way merge rate: `s_multiway / log2(k)` for `k >= 2`
    /// (one tournament level per output element per log2 of fan-in).
    pub fn multiway_rate(&self, k: usize) -> f64 {
        let k = k.max(2) as f64;
        self.s_multiway / k.log2().max(1.0)
    }

    /// K-way merge rate adjusted for the input order the runs came from.
    pub fn multiway_rate_ordered(&self, k: usize, order: crate::workload::InputOrder) -> f64 {
        let base = self.multiway_rate(k);
        match order {
            crate::workload::InputOrder::Random => base,
            _ => base * self.multiway_reverse_boost,
        }
    }

    /// Validate the constants.
    pub fn validate(&self) -> Result<(), String> {
        let pos = [
            ("s_sort_random", self.s_sort_random),
            ("s_sort_reverse", self.s_sort_reverse),
            ("s_multiway", self.s_multiway),
            ("mcdram_boost", self.mcdram_boost),
            ("multiway_reverse_boost", self.multiway_reverse_boost),
            ("gnu_efficiency", self.gnu_efficiency),
            ("s_merge_bench", self.s_merge_bench),
            ("s_radix", self.s_radix),
        ];
        if self.incache_random < 0.0 || self.incache_reverse < 0.0 {
            return Err("in-cache times must be >= 0".into());
        }
        for (name, v) in pos {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.gnu_efficiency > 1.0 {
            return Err("gnu_efficiency must be <= 1".into());
        }
        if self.phase_overhead < 0.0 {
            return Err("phase_overhead must be >= 0".into());
        }
        if self.cache_resident_elems == 0 || self.base_case_elems == 0 {
            return Err("element thresholds must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::InputOrder;

    #[test]
    fn defaults_validate() {
        Calibration::default().validate().unwrap();
    }

    #[test]
    fn sort_passes_grow_logarithmically() {
        let c = Calibration::default();
        let small = c.sort_passes(1000);
        assert_eq!(small, 1, "cache-resident sorts make one pass");
        let a = c.sort_passes(1 << 20);
        let b = c.sort_passes(1 << 22);
        assert_eq!(b, a + 2, "each doubling adds one pass");
        // 7.8M-element GNU block on the paper's machine: ~8 passes.
        let p = c.sort_passes(7_812_500);
        assert!((6..=9).contains(&p), "got {p}");
    }

    #[test]
    fn sort_traffic_counts_read_and_write() {
        let c = Calibration::default();
        let n = 1 << 20;
        let passes = c.sort_passes(n) as u64;
        assert_eq!(c.sort_traffic(n, 8), 2 * 8 * (n as u64) * passes);
    }

    #[test]
    fn reverse_is_faster_than_random() {
        let c = Calibration::default();
        // Scan passes are order-insensitive; the reverse advantage lives in
        // the cache-resident compute component.
        assert!(c.sort_rate(InputOrder::Reverse) >= c.sort_rate(InputOrder::Random));
        assert!(c.incache_time(InputOrder::Reverse) < c.incache_time(InputOrder::Random));
        assert!(c.incache_time(InputOrder::Sorted) <= c.incache_time(InputOrder::Reverse));
    }

    #[test]
    fn multiway_rate_decreases_with_fanin() {
        let c = Calibration::default();
        assert_eq!(c.multiway_rate(2), c.s_multiway);
        assert!(c.multiway_rate(4) < c.multiway_rate(2));
        assert!(c.multiway_rate(256) < c.multiway_rate(16));
        // k < 2 clamps to k = 2.
        assert_eq!(c.multiway_rate(1), c.multiway_rate(2));
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            Calibration {
                s_multiway: 0.0,
                ..Calibration::default()
            },
            Calibration {
                gnu_efficiency: 1.5,
                ..Calibration::default()
            },
            Calibration {
                phase_overhead: -1.0,
                ..Calibration::default()
            },
            Calibration {
                cache_resident_elems: 0,
                ..Calibration::default()
            },
            Calibration {
                incache_random: -1.0,
                ..Calibration::default()
            },
            Calibration {
                s_merge_bench: f64::NAN,
                ..Calibration::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }
}
