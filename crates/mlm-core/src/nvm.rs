//! Double-level chunking for a third memory tier (paper §6 future work).
//!
//! "Another level of memory is also conceivable, e.g., high capacity
//! storage based on non-volatile memory such as 3D-XPoint. [...] now there
//! may be double levels of chunking to consider."
//!
//! The data set lives in a high-capacity, low-bandwidth NVM tier; *outer*
//! chunks are staged NVM→DDR by an outer buffered pipeline, and each
//! resident outer chunk is processed by the paper's *inner* DDR→MCDRAM
//! pipeline. The engine models two bus resources, so the three-tier system
//! is simulated hierarchically:
//!
//! 1. the inner pipeline runs on the real KNL machine model, giving the
//!    per-outer-chunk compute time and its DDR traffic;
//! 2. the outer pipeline runs on a *synthetic* two-level machine whose
//!    "DDR" is the NVM tier and whose "MCDRAM" is the real DDR; the inner
//!    run appears as the outer compute stage, with its DDR traffic charged
//!    to the shared bus so outer staging and inner processing contend.
//!
//! This composition is exact when the inner pipeline's bottleneck is not
//! itself perturbed by the outer copies' DDR usage beyond bandwidth
//! sharing — the same locality assumption the paper's own model makes one
//! level down.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::ops::{Access, OpKind, Place, Program};
use knl_sim::{MemLevel, Simulator};
use serde::{Deserialize, Serialize};

use crate::pipeline::{sim, PipelineSpec, Placement, Workload};

/// The NVM tier's parameters (3D-XPoint-class defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Sustained NVM bandwidth in bytes/s (default 10 GB/s).
    pub bandwidth: f64,
    /// Capacity in bytes (default 1 TB).
    pub capacity: u64,
    /// Per-thread NVM↔DDR copy rate in bytes/s (default 1 GB/s).
    pub per_thread_copy_bw: f64,
}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig {
            bandwidth: 10e9,
            capacity: 1 << 40,
            per_thread_copy_bw: 1e9,
        }
    }
}

/// One double-chunking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleChunkSpec {
    /// Total bytes resident in NVM.
    pub total_bytes: u64,
    /// Outer (NVM→DDR) chunk size in bytes.
    pub outer_chunk: u64,
    /// Inner (DDR→MCDRAM) chunk size in bytes.
    pub inner_chunk: u64,
    /// Outer copy-in pool size (copy-out equal).
    pub outer_copy_threads: usize,
    /// Inner copy-in pool size (copy-out equal).
    pub inner_copy_threads: usize,
    /// Total hardware threads.
    pub total_threads: usize,
    /// Read+write passes the kernel makes per byte (in MCDRAM).
    pub compute_passes: u32,
    /// Per-thread kernel traffic rate, bytes/s.
    pub compute_rate: f64,
}

impl DoubleChunkSpec {
    /// A representative configuration: 100 GB data set, 8 GB outer chunks,
    /// 250 MB inner chunks, 256 threads.
    pub fn example(passes: u32) -> Self {
        DoubleChunkSpec {
            total_bytes: 100_000_000_000,
            outer_chunk: 8_000_000_000,
            inner_chunk: 250_000_000,
            outer_copy_threads: 8,
            inner_copy_threads: 8,
            total_threads: 256,
            compute_passes: passes,
            compute_rate: 1.4e9,
        }
    }
}

/// Result of a double-chunking simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleChunkReport {
    /// Virtual seconds for the full double-chunked execution.
    pub double_chunked: f64,
    /// Per-outer-chunk inner-pipeline time (the outer compute stage).
    pub inner_seconds: f64,
    /// Baseline A: *idealized* single-level chunking NVM→MCDRAM with no
    /// DDR hop. Not realizable on hardware (NVM DMA lands in DRAM first);
    /// it lower-bounds any staging scheme, so `double_chunked /
    /// single_level` measures how completely double chunking hides the
    /// mandatory middle tier.
    pub single_level: f64,
    /// Baseline B: no chunking at all; the kernel streams from NVM.
    pub unchunked: f64,
}

fn inner_spec(spec: &DoubleChunkSpec, knl: &MachineConfig) -> PipelineSpec {
    PipelineSpec {
        total_bytes: spec.outer_chunk,
        chunk_bytes: spec.inner_chunk,
        p_in: spec.inner_copy_threads,
        p_out: spec.inner_copy_threads,
        p_comp: spec
            .total_threads
            .saturating_sub(2 * spec.inner_copy_threads + 2 * spec.outer_copy_threads)
            .max(1),
        compute_passes: spec.compute_passes,
        compute_rate: spec.compute_rate,
        copy_rate: knl.per_thread_copy_bw,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    }
}

/// Synthetic outer machine: "DDR" bus = NVM, "MCDRAM" bus = real DDR.
fn outer_machine(knl: &MachineConfig, nvm: &NvmConfig) -> MachineConfig {
    let mut m = knl.clone();
    m.mode = MemMode::Flat;
    m.ddr_bandwidth = nvm.bandwidth;
    m.ddr_capacity = nvm.capacity;
    m.mcdram_bandwidth = knl.ddr_bandwidth;
    m.mcdram_capacity = knl.ddr_capacity;
    m.per_thread_copy_bw = nvm.per_thread_copy_bw;
    m
}

/// Validate and simulate a double-chunking run, with both baselines.
pub fn simulate_double_chunking(
    knl: &MachineConfig,
    nvm: &NvmConfig,
    spec: &DoubleChunkSpec,
) -> Result<DoubleChunkReport, String> {
    if spec.total_bytes == 0 || spec.outer_chunk == 0 || spec.inner_chunk == 0 {
        return Err("sizes must be positive".into());
    }
    if spec.inner_chunk > spec.outer_chunk || spec.outer_chunk > spec.total_bytes {
        return Err("need inner_chunk <= outer_chunk <= total_bytes".into());
    }
    if 3 * spec.inner_chunk > knl.addressable_mcdram() {
        return Err("three inner buffers must fit MCDRAM".into());
    }
    if 3 * spec.outer_chunk > knl.ddr_capacity {
        return Err("three outer buffers must fit DDR".into());
    }
    if spec.total_bytes > nvm.capacity {
        return Err("data set exceeds NVM capacity".into());
    }

    // Step 1: inner pipeline on the real KNL.
    let inner = inner_spec(spec, knl);
    let inner_prog = sim::build_program(&inner)?;
    let inner_report = Simulator::new(knl.clone())
        .run(&inner_prog)
        .map_err(|e| e.to_string())?;
    let inner_seconds = inner_report.makespan;
    // DDR traffic of one inner run, charged to the outer shared bus.
    let inner_ddr_traffic = inner_report.traffic_on(MemLevel::Ddr).total();

    // Step 2: outer pipeline on the synthetic machine. The compute stage
    // of outer chunk `c` is one Stream op per compute thread whose
    // duration (unsaturated) equals the inner makespan and whose traffic
    // on the shared bus equals the inner run's DDR traffic.
    let om = outer_machine(knl, nvm);
    let p_out_copy = spec.outer_copy_threads;
    let p_comp = 1usize; // the inner pipeline is represented as one macro-op
    let n_outer = spec.total_bytes.div_ceil(spec.outer_chunk) as usize;
    let mut prog = Program::new(2 * p_out_copy + p_comp);
    let comp_thread = 2 * p_out_copy;
    let mut prev_step: Vec<knl_sim::OpId> = Vec::new();
    let mut comp_ops: Vec<knl_sim::OpId> = Vec::new();
    let mut copyin: Vec<Vec<knl_sim::OpId>> = vec![Vec::new(); n_outer];
    #[allow(clippy::needless_range_loop)] // c indexes both sizes and copyin
    for c in 0..n_outer {
        let bytes = spec
            .outer_chunk
            .min(spec.total_bytes - c as u64 * spec.outer_chunk);
        // Outer copy-in of chunk c (NVM -> DDR).
        for t in 0..p_out_copy {
            let share =
                bytes / p_out_copy as u64 + u64::from((t as u64) < bytes % p_out_copy as u64);
            if share == 0 {
                continue;
            }
            let deps = if c >= 3 {
                prev_step.clone()
            } else {
                Vec::new()
            };
            copyin[c].push(prog.push(
                t,
                OpKind::Copy {
                    src: Place::Ddr,    // = NVM on the outer machine
                    dst: Place::Mcdram, // = DDR on the outer machine
                    bytes: share,
                    rate_cap: nvm.per_thread_copy_bw,
                },
                &deps,
            ));
        }
        // Inner pipeline as the compute macro-op.
        if inner_ddr_traffic > 0 {
            let rate = inner_ddr_traffic as f64 / inner_seconds.max(1e-12);
            let id = prog.push(
                comp_thread,
                OpKind::Stream {
                    accesses: vec![Access::read(Place::Mcdram, inner_ddr_traffic)],
                    rate_cap: rate,
                },
                &copyin[c],
            );
            comp_ops.push(id);
            prev_step = copyin[c].clone();
        }
        // Outer copy-out of chunk c (DDR -> NVM), after its compute.
        let comp_dep = vec![*comp_ops.last().unwrap()];
        for t in 0..p_out_copy {
            let share =
                bytes / p_out_copy as u64 + u64::from((t as u64) < bytes % p_out_copy as u64);
            if share == 0 {
                continue;
            }
            prog.push(
                p_out_copy + t,
                OpKind::Copy {
                    src: Place::Mcdram,
                    dst: Place::Ddr,
                    bytes: share,
                    rate_cap: nvm.per_thread_copy_bw,
                },
                &comp_dep,
            );
        }
    }
    let outer_report = Simulator::new(om.clone())
        .run(&prog)
        .map_err(|e| e.to_string())?;
    let double_chunked = outer_report.makespan;

    // Baseline A: single-level chunking NVM -> MCDRAM, inner-sized chunks.
    // Same pipeline shape, but the staging bus is NVM.
    let mut single_machine = knl.clone();
    single_machine.ddr_bandwidth = nvm.bandwidth;
    single_machine.ddr_capacity = nvm.capacity;
    single_machine.per_thread_copy_bw = nvm.per_thread_copy_bw;
    let mut single = inner_spec(spec, &single_machine);
    single.total_bytes = spec.total_bytes;
    single.copy_rate = nvm.per_thread_copy_bw;
    let single_prog = sim::build_program(&single)?;
    let single_level = Simulator::new(single_machine)
        .run(&single_prog)
        .map_err(|e| e.to_string())?
        .makespan;

    // Baseline B: unchunked — the kernel streams straight from NVM.
    let traffic = 2 * spec.total_bytes * u64::from(spec.compute_passes);
    let unchunked =
        traffic as f64 / (spec.total_threads as f64 * spec.compute_rate).min(nvm.bandwidth);

    Ok(DoubleChunkReport {
        double_chunked,
        inner_seconds,
        single_level,
        unchunked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knl() -> MachineConfig {
        MachineConfig::knl_7250(MemMode::Flat)
    }

    #[test]
    fn example_spec_is_feasible() {
        let spec = DoubleChunkSpec::example(8);
        let r = simulate_double_chunking(&knl(), &NvmConfig::default(), &spec).unwrap();
        assert!(r.double_chunked > 0.0 && r.double_chunked.is_finite());
        assert!(r.inner_seconds > 0.0);
    }

    /// The point of the extension: with a slow NVM tier, double chunking
    /// beats the unchunked stream, and stays within a few percent of the
    /// (unrealizable) direct-staging lower bound — the mandatory DDR hop
    /// is almost fully hidden.
    #[test]
    fn double_chunking_beats_unchunked_nvm_stream() {
        let spec = DoubleChunkSpec::example(8);
        let r = simulate_double_chunking(&knl(), &NvmConfig::default(), &spec).unwrap();
        assert!(
            r.double_chunked < r.unchunked,
            "double {:.2} !< unchunked {:.2}",
            r.double_chunked,
            r.unchunked
        );
        assert!(
            r.double_chunked < r.single_level * 1.10,
            "DDR hop poorly hidden: double {:.2} vs ideal {:.2}",
            r.double_chunked,
            r.single_level
        );
    }

    #[test]
    fn compute_heavy_runs_hide_the_nvm_tier_entirely() {
        // With enough passes per byte, the outer copies hide behind the
        // inner pipeline: total time approaches n_outer x inner time.
        let spec = DoubleChunkSpec::example(64);
        let r = simulate_double_chunking(&knl(), &NvmConfig::default(), &spec).unwrap();
        let n_outer = spec.total_bytes.div_ceil(spec.outer_chunk) as f64;
        let floor = n_outer * r.inner_seconds;
        assert!(
            r.double_chunked < 1.25 * floor,
            "double {:.2} vs compute floor {:.2}",
            r.double_chunked,
            floor
        );
    }

    #[test]
    fn faster_nvm_shrinks_the_gap() {
        let spec = DoubleChunkSpec::example(2);
        let slow = simulate_double_chunking(
            &knl(),
            &NvmConfig {
                bandwidth: 5e9,
                ..NvmConfig::default()
            },
            &spec,
        )
        .unwrap();
        let fast = simulate_double_chunking(
            &knl(),
            &NvmConfig {
                bandwidth: 40e9,
                ..NvmConfig::default()
            },
            &spec,
        )
        .unwrap();
        assert!(fast.double_chunked < slow.double_chunked);
    }

    #[test]
    fn infeasible_specs_are_rejected() {
        let nvm = NvmConfig::default();
        let mut s = DoubleChunkSpec::example(1);
        s.inner_chunk = s.outer_chunk + 1;
        assert!(simulate_double_chunking(&knl(), &nvm, &s).is_err());

        let mut s = DoubleChunkSpec::example(1);
        s.inner_chunk = 8_000_000_000; // 3 x 8 GB > MCDRAM
        assert!(simulate_double_chunking(&knl(), &nvm, &s).is_err());

        let mut s = DoubleChunkSpec::example(1);
        s.outer_chunk = 50_000_000_000; // 3 x 50 GB > 96 GiB DDR
        s.inner_chunk = 250_000_000;
        assert!(simulate_double_chunking(&knl(), &nvm, &s).is_err());

        let mut s = DoubleChunkSpec::example(1);
        s.total_bytes = 2 << 40;
        assert!(simulate_double_chunking(&knl(), &nvm, &s).is_err());
    }
}
