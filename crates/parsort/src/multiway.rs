//! K-way merging: loser-tree merge, multisequence selection, and the
//! parallel multiway merge built from both.
//!
//! This is the stand-in for the GNU parallel mode's `multiway_merge`
//! (Singler et al., MCSTL): the output is partitioned among threads at
//! exact global ranks found by multisequence selection, and each thread
//! merges its slice of every run with a tournament (loser) tree.

use crate::pool::{split_range, WorkPool};

/// Tournament tree over `k` sorted runs yielding the global minimum on each
/// [`LoserTree::pop`]. Uses the classic implicit layout: internal nodes
/// `1..k` hold losers, leaves are the run heads, the overall winner is
/// tracked separately.
pub struct LoserTree<'a, T> {
    runs: Vec<&'a [T]>,
    /// Cursor into each run.
    pos: Vec<usize>,
    /// `tree[j]` = run index of the loser parked at internal node `j`.
    tree: Vec<usize>,
    winner: usize,
    remaining: usize,
}

impl<'a, T: Ord> LoserTree<'a, T> {
    /// Build a tree over the given sorted runs (empty runs are fine).
    ///
    /// # Panics
    /// Panics if `runs` is empty.
    pub fn new(runs: Vec<&'a [T]>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let k = runs.len();
        let remaining = runs.iter().map(|r| r.len()).sum();
        let mut lt = LoserTree {
            pos: vec![0; k],
            tree: vec![usize::MAX; k],
            winner: usize::MAX,
            remaining,
            runs,
        };
        lt.winner = lt.build(1);
        lt
    }

    /// Current element of run `r`, `None` when exhausted (= +infinity).
    #[inline]
    fn head(&self, r: usize) -> Option<&T> {
        self.runs[r].get(self.pos[r])
    }

    /// True if run `a`'s head sorts before run `b`'s head (exhausted runs
    /// sort last; ties break toward the lower run index for determinism).
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Recursively play the tournament below internal node `node`,
    /// returning the winning run and parking losers.
    fn build(&mut self, node: usize) -> usize {
        let k = self.runs.len();
        if node >= k {
            return node - k; // leaf: run index
        }
        let left = self.build(2 * node);
        let right = self.build(2 * node + 1);
        let (win, lose) = if self.beats(left, right) {
            (left, right)
        } else {
            (right, left)
        };
        self.tree[node] = lose;
        win
    }

    /// Total elements left across all runs.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Remove and return (a reference to) the smallest remaining element.
    pub fn pop(&mut self) -> Option<&'a T> {
        if self.remaining == 0 {
            return None;
        }
        let w = self.winner;
        let item = &self.runs[w][self.pos[w]];
        self.pos[w] += 1;
        self.remaining -= 1;

        // Replay from the winner's leaf to the root.
        let k = self.runs.len();
        let mut winner = w;
        let mut node = (k + w) / 2;
        while node >= 1 {
            let challenger = self.tree[node];
            if challenger != usize::MAX && self.beats(challenger, winner) {
                self.tree[node] = winner;
                winner = challenger;
            }
            node /= 2;
        }
        self.winner = winner;
        Some(item)
    }
}

/// Merge `runs` (each sorted) into `out` with a loser tree.
///
/// # Panics
/// Panics if `out.len()` differs from the total input length.
pub fn multiway_merge_into<T: Ord + Copy>(runs: &[&[T]], out: &mut [T]) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output size mismatch");
    if total == 0 {
        return;
    }
    if runs.len() == 1 {
        out.copy_from_slice(runs[0]);
        return;
    }
    let mut lt = LoserTree::new(runs.to_vec());
    for slot in out.iter_mut() {
        *slot = *lt.pop().expect("tree drained early");
    }
    debug_assert!(lt.pop().is_none());
}

/// Multisequence selection: given sorted `seqs` and a global rank `r`,
/// return split positions `s[i]` with `sum(s) == r` such that every element
/// before a split is `<=` every element after any split.
///
/// This is the partitioning primitive that lets the parallel multiway merge
/// hand each thread an exact, independent slice of the output.
///
/// # Panics
/// Panics if `r` exceeds the total number of elements.
pub fn multiseq_select<T: Ord + Copy>(seqs: &[&[T]], r: usize) -> Vec<usize> {
    let total: usize = seqs.iter().map(|s| s.len()).sum();
    assert!(r <= total, "rank {r} > total {total}");
    let k = seqs.len();
    if r == 0 {
        return vec![0; k];
    }
    if r == total {
        return seqs.iter().map(|s| s.len()).collect();
    }

    // Search ranges per sequence.
    let mut lo = vec![0usize; k];
    let mut hi: Vec<usize> = seqs.iter().map(|s| s.len()).collect();

    loop {
        // Pick a pivot from the sequence with the widest remaining range.
        let (widest, width) = (0..k)
            .map(|i| (i, hi[i] - lo[i]))
            .max_by_key(|&(_, w)| w)
            .unwrap();
        if width == 0 {
            // Fully narrowed: lo is a valid split summing to r by invariant.
            debug_assert_eq!(lo.iter().sum::<usize>(), r);
            return lo;
        }
        let mid = lo[widest] + width / 2;
        let pivot = seqs[widest][mid];

        // Global ranks of the pivot value.
        let less: usize = seqs.iter().map(|s| s.partition_point(|x| *x < pivot)).sum();
        let less_eq: usize = seqs
            .iter()
            .map(|s| s.partition_point(|x| *x <= pivot))
            .sum();

        if less <= r && r <= less_eq {
            // Take everything < pivot, then pad with ties up to r.
            let mut split: Vec<usize> = seqs
                .iter()
                .map(|s| s.partition_point(|x| *x < pivot))
                .collect();
            let mut need = r - less;
            for (i, s) in seqs.iter().enumerate() {
                if need == 0 {
                    break;
                }
                let ties = s.partition_point(|x| *x <= pivot) - split[i];
                let take = ties.min(need);
                split[i] += take;
                need -= take;
            }
            debug_assert_eq!(need, 0);
            return split;
        } else if less_eq < r {
            // Pivot too small: splits lie at or beyond each seq's `<= pivot`
            // boundary. This at least halves the widest range because
            // pp(seqs[widest], <= pivot) > mid.
            for i in 0..k {
                lo[i] = lo[i]
                    .max(seqs[i].partition_point(|x| *x <= pivot))
                    .min(hi[i]);
            }
        } else {
            // less > r: pivot too large.
            for i in 0..k {
                hi[i] = hi[i]
                    .min(seqs[i].partition_point(|x| *x < pivot))
                    .max(lo[i]);
            }
        }
    }
}

/// Merge `runs` into `out` using every thread of `pool`: the output is cut
/// at exact global ranks via [`multiseq_select`]; each thread loser-tree
/// merges its share.
///
/// # Panics
/// Panics if `out.len()` differs from the total input length.
pub fn parallel_multiway_merge_into<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    runs: &[&[T]],
    out: &mut [T],
) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output size mismatch");
    if total == 0 {
        return;
    }
    let parts = pool.threads().min(total);
    if parts == 1 || runs.len() == 1 {
        multiway_merge_into(runs, out);
        return;
    }

    // Split positions per part boundary.
    let mut boundaries = Vec::with_capacity(parts + 1);
    for p in 0..parts {
        let (start, _) = split_range(total, parts, p);
        boundaries.push(multiseq_select(runs, start));
    }
    boundaries.push(runs.iter().map(|r| r.len()).collect());

    let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(parts);
    let mut rest = out;
    for p in 0..parts {
        let (start, end) = split_range(total, parts, p);
        let (head, tail) = rest.split_at_mut(end - start);
        out_parts.push(head);
        rest = tail;
    }

    pool.scoped(out_parts.into_iter().enumerate().map(|(p, out_part)| {
        let sub_runs: Vec<&[T]> = runs
            .iter()
            .enumerate()
            .map(|(i, r)| &r[boundaries[p][i]..boundaries[p + 1][i]])
            .collect();
        move || multiway_merge_into(&sub_runs, out_part)
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::is_sorted;

    fn reference_merge(runs: &[&[i64]]) -> Vec<i64> {
        let mut all: Vec<i64> = runs.iter().flat_map(|r| r.iter().copied()).collect();
        all.sort_unstable();
        all
    }

    fn rng_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut state = seed | 1;
        let mut v: Vec<i64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 24) % 1000) as i64
            })
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn loser_tree_merges_three_runs() {
        let a = [1i64, 4, 7];
        let b = [2i64, 5, 8];
        let c = [3i64, 6, 9];
        let mut lt = LoserTree::new(vec![&a[..], &b[..], &c[..]]);
        let mut got = Vec::new();
        while let Some(x) = lt.pop() {
            got.push(*x);
        }
        assert_eq!(got, (1..=9).collect::<Vec<i64>>());
    }

    #[test]
    fn loser_tree_single_run() {
        let a = [1i64, 2, 3];
        let mut lt = LoserTree::new(vec![&a[..]]);
        assert_eq!(lt.remaining(), 3);
        assert_eq!(*lt.pop().unwrap(), 1);
        assert_eq!(*lt.pop().unwrap(), 2);
        assert_eq!(*lt.pop().unwrap(), 3);
        assert!(lt.pop().is_none());
    }

    #[test]
    fn loser_tree_handles_empty_runs() {
        let a: [i64; 0] = [];
        let b = [5i64];
        let c: [i64; 0] = [];
        let mut lt = LoserTree::new(vec![&a[..], &b[..], &c[..]]);
        assert_eq!(*lt.pop().unwrap(), 5);
        assert!(lt.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn loser_tree_rejects_no_runs() {
        let _ = LoserTree::<i64>::new(vec![]);
    }

    #[test]
    fn multiway_merge_various_shapes() {
        for &(k, n) in &[
            (1usize, 10usize),
            (2, 100),
            (3, 33),
            (7, 50),
            (16, 8),
            (5, 0),
        ] {
            let runs_owned: Vec<Vec<i64>> = (0..k)
                .map(|i| rng_vec(n + i, (i as u64 + 1) * 7919))
                .collect();
            let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
            let expect = reference_merge(&runs);
            let mut out = vec![0i64; expect.len()];
            multiway_merge_into(&runs, &mut out);
            assert_eq!(out, expect, "k={k} n={n}");
        }
    }

    #[test]
    fn multiseq_select_invariants() {
        let runs_owned: Vec<Vec<i64>> = vec![
            rng_vec(57, 1),
            rng_vec(91, 2),
            rng_vec(3, 3),
            vec![],
            rng_vec(40, 4),
        ];
        let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        for r in [0, 1, 2, total / 3, total / 2, total - 1, total] {
            let split = multiseq_select(&runs, r);
            assert_eq!(split.iter().sum::<usize>(), r, "rank {r}");
            let max_before = runs
                .iter()
                .zip(&split)
                .flat_map(|(s, &c)| s[..c].iter())
                .max();
            let min_after = runs
                .iter()
                .zip(&split)
                .flat_map(|(s, &c)| s[c..].iter())
                .min();
            if let (Some(mb), Some(ma)) = (max_before, min_after) {
                assert!(mb <= ma, "rank {r}: {mb} > {ma}");
            }
        }
    }

    #[test]
    fn multiseq_select_all_duplicates() {
        let a = vec![5i64; 100];
        let b = vec![5i64; 50];
        let runs: Vec<&[i64]> = vec![&a, &b];
        for r in [0usize, 1, 75, 149, 150] {
            let split = multiseq_select(&runs, r);
            assert_eq!(split.iter().sum::<usize>(), r);
        }
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn multiseq_select_rank_out_of_range() {
        let a = [1i64, 2];
        multiseq_select(&[&a[..]], 3);
    }

    #[test]
    fn parallel_multiway_matches_serial() {
        let pool = WorkPool::new(4);
        for &(k, n) in &[(2usize, 1000usize), (4, 997), (8, 250), (3, 1)] {
            let runs_owned: Vec<Vec<i64>> = (0..k)
                .map(|i| rng_vec(n, (i as u64 + 1) * 104729))
                .collect();
            let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
            let expect = reference_merge(&runs);
            let mut out = vec![0i64; expect.len()];
            parallel_multiway_merge_into(&pool, &runs, &mut out);
            assert_eq!(out, expect, "k={k} n={n}");
            assert!(is_sorted(&out));
        }
    }

    #[test]
    fn parallel_multiway_empty_input() {
        let pool = WorkPool::new(4);
        let runs: Vec<&[i64]> = vec![&[], &[]];
        let mut out: Vec<i64> = vec![];
        parallel_multiway_merge_into(&pool, &runs, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_multiway_skewed_runs() {
        let pool = WorkPool::new(4);
        let a = rng_vec(10_000, 11);
        let b = rng_vec(3, 13);
        let c = rng_vec(500, 17);
        let runs: Vec<&[i64]> = vec![&a, &b, &c];
        let expect = reference_merge(&runs);
        let mut out = vec![0i64; expect.len()];
        parallel_multiway_merge_into(&pool, &runs, &mut out);
        assert_eq!(out, expect);
    }
}
