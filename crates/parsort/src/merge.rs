//! Two-way merges: serial and parallel (rank-splitting).
//!
//! The parallel merge divides the *output* into near-equal parts and finds
//! the matching split point in each input with a dual binary search — the
//! same co-ranking technique MCSTL (the GNU parallel mode) uses. Each part
//! is then merged serially and independently.

use crate::pool::{split_range, WorkPool};

/// Merge sorted `a` and `b` into `out`.
///
/// # Panics
/// Panics if `out.len() != a.len() + b.len()`.
pub fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        // Take from `a` on ties for stability with respect to input order.
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Find the *co-rank*: the pair `(i, j)` with `i + j == k`, `i <= a.len()`,
/// `j <= b.len()` such that merging the first `i` elements of `a` with the
/// first `j` of `b` yields the first `k` elements of `merge(a, b)`.
///
/// Standard dual binary search; O(log(min(k, |a|, |b|))).
pub fn co_rank<T: Ord>(k: usize, a: &[T], b: &[T]) -> (usize, usize) {
    debug_assert!(k <= a.len() + b.len());
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = k - i;
        // Invariants: i < hi <= a.len(), j >= 1 when we inspect b[j - 1].
        if j > 0 && a[i] < b[j - 1] {
            // Too few from `a`.
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, k - lo)
}

/// Merge sorted `a` and `b` into `out` using every thread of `pool`.
///
/// # Panics
/// Panics if `out.len() != a.len() + b.len()`.
pub fn parallel_merge_into<T: Ord + Copy + Send + Sync>(
    pool: &WorkPool,
    a: &[T],
    b: &[T],
    out: &mut [T],
) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    let total = out.len();
    if total == 0 {
        return;
    }
    let parts = pool.threads().min(total);
    if parts == 1 {
        merge_into(a, b, out);
        return;
    }

    // Pre-compute the co-rank at each output split point.
    let mut splits = Vec::with_capacity(parts + 1);
    for p in 0..parts {
        let (start, _) = split_range(total, parts, p);
        splits.push(co_rank(start, a, b));
    }
    splits.push((a.len(), b.len()));

    let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(parts);
    let mut rest = out;
    for p in 0..parts {
        let (start, end) = split_range(total, parts, p);
        let (head, tail) = rest.split_at_mut(end - start);
        out_parts.push(head);
        rest = tail;
    }

    pool.scoped(out_parts.into_iter().enumerate().map(|(p, out_part)| {
        let (ai, bi) = splits[p];
        let (aj, bj) = splits[p + 1];
        let a_part = &a[ai..aj];
        let b_part = &b[bi..bj];
        move || merge_into(a_part, b_part, out_part)
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::is_sorted;

    #[test]
    fn merges_basic() {
        let a = [1i64, 3, 5];
        let b = [2i64, 4, 6];
        let mut out = [0i64; 6];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merges_empty_sides() {
        let mut out = [0i64; 3];
        merge_into(&[], &[1, 2, 3], &mut out);
        assert_eq!(out, [1, 2, 3]);
        merge_into(&[1, 2, 3], &[], &mut out);
        assert_eq!(out, [1, 2, 3]);
        let mut empty: [i64; 0] = [];
        merge_into(&[], &[], &mut empty);
    }

    #[test]
    fn merge_prefers_a_on_ties() {
        // With i64 we can't observe stability directly; use pairs ordered by key.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct Tagged(i64, u8);
        impl PartialOrd for Tagged {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Tagged {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0) // compare keys only
            }
        }
        let a = [Tagged(1, 0), Tagged(2, 0)];
        let b = [Tagged(1, 1), Tagged(2, 1)];
        let mut out = [Tagged(0, 9); 4];
        merge_into(&a, &b, &mut out);
        assert_eq!(
            out,
            [Tagged(1, 0), Tagged(1, 1), Tagged(2, 0), Tagged(2, 1)]
        );
    }

    #[test]
    #[should_panic(expected = "output size mismatch")]
    fn merge_size_mismatch_panics() {
        let mut out = [0i64; 2];
        merge_into(&[1], &[2, 3], &mut out);
    }

    #[test]
    fn co_rank_properties() {
        let a = [1i64, 3, 5, 7, 9];
        let b = [2i64, 4, 6, 8];
        let mut merged = vec![0i64; 9];
        merge_into(&a, &b, &mut merged);
        for k in 0..=merged.len() {
            let (i, j) = co_rank(k, &a, &b);
            assert_eq!(i + j, k);
            // Elements before the split are all <= elements after it.
            let max_before = a[..i].iter().chain(b[..j].iter()).max();
            let min_after = a[i..].iter().chain(b[j..].iter()).min();
            if let (Some(mb), Some(ma)) = (max_before, min_after) {
                assert!(mb <= ma, "k={k}: {mb} > {ma}");
            }
        }
    }

    #[test]
    fn co_rank_with_duplicates() {
        let a = [2i64, 2, 2, 2];
        let b = [2i64, 2, 2];
        for k in 0..=7 {
            let (i, j) = co_rank(k, &a, &b);
            assert_eq!(i + j, k);
            assert!(i <= 4 && j <= 3);
        }
    }

    #[test]
    fn co_rank_extremes() {
        let a = [1i64, 2];
        let b = [3i64, 4];
        assert_eq!(co_rank(0, &a, &b), (0, 0));
        assert_eq!(co_rank(4, &a, &b), (2, 2));
        assert_eq!(co_rank(2, &a, &b), (2, 0));
    }

    #[test]
    fn parallel_merge_matches_serial() {
        let pool = WorkPool::new(4);
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as i64
        };
        for (na, nb) in [
            (0, 0),
            (1, 0),
            (0, 1),
            (100, 1),
            (1, 100),
            (1000, 1000),
            (997, 1003),
        ] {
            let mut a: Vec<i64> = (0..na).map(|_| next()).collect();
            let mut b: Vec<i64> = (0..nb).map(|_| next()).collect();
            a.sort_unstable();
            b.sort_unstable();
            let mut expect = vec![0i64; na + nb];
            merge_into(&a, &b, &mut expect);
            let mut got = vec![0i64; na + nb];
            parallel_merge_into(&pool, &a, &b, &mut got);
            assert_eq!(got, expect, "na={na} nb={nb}");
            assert!(is_sorted(&got));
        }
    }

    #[test]
    fn parallel_merge_all_duplicates() {
        let pool = WorkPool::new(8);
        let a = vec![7i64; 1000];
        let b = vec![7i64; 500];
        let mut out = vec![0i64; 1500];
        parallel_merge_into(&pool, &a, &b, &mut out);
        assert!(out.iter().all(|&x| x == 7));
    }
}
