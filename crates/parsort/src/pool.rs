//! A fixed-size work pool with scoped execution.
//!
//! The paper's buffering scheme partitions hardware threads into dedicated
//! pools (copy-in / copy-out / compute). This module provides the host-side
//! equivalent: a [`WorkPool`] owns `n` OS threads for its lifetime and
//! executes batches of borrowed closures to completion ([`WorkPool::scoped`]).
//!
//! The scoped API is built the way such primitives are built in production
//! runtimes: tasks are type-erased through a raw pointer, and a completion
//! latch (atomic counter + `parking_lot` condvar) guarantees every borrowed
//! closure has finished before `scoped` returns, which is what makes the
//! lifetime erasure sound. Worker panics are captured and propagated to the
//! caller.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

type Task = Box<dyn FnOnce() + Send>;
type PanicPayload = Box<dyn Any + Send>;

enum Message {
    Run(Task),
    Shutdown,
}

struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    condvar: Condvar,
    panicked: AtomicUsize,
    /// First panic payload observed, kept so `scoped` can rethrow the
    /// original panic (message included) instead of a generic one.
    payload: Mutex<Option<PanicPayload>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
            panicked: AtomicUsize::new(0),
            payload: Mutex::new(None),
        }
    }

    fn count_down(&self, panic: Option<PanicPayload>) {
        if let Some(p) = panic {
            self.panicked.fetch_add(1, Ordering::Relaxed);
            let mut slot = self.payload.lock();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        // Release ordering pairs with the Acquire in `wait` so task side
        // effects are visible to the caller after `scoped` returns.
        //
        // Audit note: the notify is taken under `mutex` so it cannot slip
        // into the window between `wait`'s predicate check and its park —
        // the same lost-wakeup discipline mlm-verify's `models::condvar`
        // checks for the pipeline ring (`PoisonSkipLock` is the variant
        // that skips the lock and deadlocks).
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.mutex.lock();
            self.condvar.notify_all();
        }
    }

    fn wait(&self) -> Option<PanicPayload> {
        let mut guard = self.mutex.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.condvar.wait(&mut guard);
        }
        if self.panicked.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(
            self.payload
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("pool task panicked")),
        )
    }
}

/// A pool of `n` persistent worker threads.
///
/// ```
/// use parsort::pool::WorkPool;
/// let pool = WorkPool::new(4);
/// let mut data = vec![0usize; 4];
/// pool.scoped(data.iter_mut().enumerate().map(|(i, slot)| {
///     move || *slot = i * i
/// }));
/// assert_eq!(data, [0, 1, 4, 9]);
/// ```
pub struct WorkPool {
    sender: Sender<Message>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkPool {
    /// Spawn a pool of `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Message>();
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("parsort-worker-{i}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Message::Run(task) => task(),
                                Message::Shutdown => break,
                            }
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        WorkPool {
            sender,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every closure in `tasks` on the pool and block until all have
    /// finished. Closures may borrow from the caller's stack: the latch
    /// guarantees they are dead before this function returns.
    ///
    /// # Panics
    /// If any task panicked, rethrows the first captured panic payload
    /// (after all tasks have finished), so the original panic message
    /// reaches the caller.
    pub fn scoped<'scope, I, F>(&self, tasks: I)
    where
        I: IntoIterator<Item = F>,
        F: FnOnce() + Send + 'scope,
    {
        let tasks: Vec<F> = tasks.into_iter().collect();
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        for task in tasks {
            let latch = Arc::clone(&latch);
            let wrapped = move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                latch.count_down(result.err());
            };
            // SAFETY: `wrapped` borrows data with lifetime 'scope. We erase
            // the lifetime to send it through the 'static channel. This is
            // sound because `scoped` does not return until the latch has
            // counted every task down, i.e. until every erased closure has
            // been dropped; no borrow outlives the caller's frame. Panics
            // inside the task are caught before the latch decrement, so a
            // panicking task still counts down and cannot leak a borrow.
            let erased: Task = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'scope>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(Box::new(wrapped))
            };
            self.sender
                .send(Message::Run(erased))
                .expect("worker channel closed while pool alive");
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
    }

    /// Split `0..len` into at most `self.threads()` contiguous ranges of
    /// near-equal size and run `f(range_index, start, end)` for each in
    /// parallel.
    pub fn parallel_ranges<F>(&self, len: usize, f: F)
    where
        F: Fn(usize, usize, usize) + Send + Sync,
    {
        if len == 0 {
            return;
        }
        let parts = self.threads.min(len);
        let f = &f;
        self.scoped((0..parts).map(move |i| {
            let (start, end) = split_range(len, parts, i);
            move || f(i, start, end)
        }));
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        for _ in 0..self.handles.len() {
            let _ = self.sender.send(Message::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A dedicated pipeline-stage pool: a [`WorkPool`] that additionally
/// accounts the cumulative execution time of its tasks.
///
/// The paper's framework dedicates disjoint thread pools to copy-in,
/// compute, and copy-out. When those stages run decoupled (dataflow
/// scheduling instead of lockstep steps), per-stage busy time is the
/// quantity that tells you which stage is the bottleneck — so this pool
/// wraps every task with a timer and accumulates the total.
///
/// Accounting notes: `busy` is summed across worker threads (so with `n`
/// threads it can approach `n x` wall-clock), and a panicking task's time
/// is not recorded (the panic propagates through [`StagePool::scoped`]).
pub struct StagePool {
    pool: WorkPool,
    busy_nanos: AtomicU64,
}

impl StagePool {
    /// Spawn a stage pool of `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        StagePool {
            pool: WorkPool::new(threads),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Cumulative task execution time since creation or the last
    /// [`StagePool::reset_busy`].
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    /// Zero the busy counter (call between runs when reusing the pool).
    pub fn reset_busy(&self) {
        self.busy_nanos.store(0, Ordering::Relaxed);
    }

    /// [`WorkPool::scoped`], with each task's execution time added to the
    /// stage's busy counter.
    pub fn scoped<'scope, I, F>(&self, tasks: I)
    where
        I: IntoIterator<Item = F>,
        F: FnOnce() + Send + 'scope,
    {
        let busy = &self.busy_nanos;
        self.pool.scoped(tasks.into_iter().map(|task| {
            move || {
                let t0 = Instant::now();
                task();
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }));
    }
}

/// Copy `src` into `dst` split across up to `parts_max` pool tasks.
pub fn copy_split<T: Copy + Send + Sync>(
    pool: &StagePool,
    parts_max: usize,
    src: &[T],
    dst: &mut [T],
) {
    debug_assert_eq!(src.len(), dst.len());
    let parts = parts_max.min(src.len()).max(1);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(parts);
    let mut rest = dst;
    for t in 0..parts {
        let (ss, se) = split_range(src.len(), parts, t);
        let (head, tail) = rest.split_at_mut(se - ss);
        rest = tail;
        let s_slice = &src[ss..se];
        tasks.push(Box::new(move || head.copy_from_slice(s_slice)));
    }
    pool.scoped(tasks);
}

/// Copy `src` to `dst` using every pool thread (the host stand-in for the
/// copy-in / copy-out pools).
pub fn parallel_copy<T: Copy + Send + Sync>(pool: &WorkPool, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len());
    if src.is_empty() {
        return;
    }
    let parts = pool.threads().min(src.len());
    let len = src.len();
    let mut rest = dst;
    let mut tasks = Vec::with_capacity(parts);
    for t in 0..parts {
        let (s, e) = split_range(len, parts, t);
        let (head, tail) = rest.split_at_mut(e - s);
        rest = tail;
        let sr = &src[s..e];
        tasks.push(move || head.copy_from_slice(sr));
    }
    pool.scoped(tasks);
}

/// The bounds of part `i` of `parts` near-equal contiguous parts of `0..len`.
///
/// The first `len % parts` parts get one extra element, so sizes differ by
/// at most one.
pub fn split_range(len: usize, parts: usize, i: usize) -> (usize, usize) {
    assert!(parts > 0 && i < parts);
    let base = len / parts;
    let extra = len % parts;
    let start = i * base + i.min(extra);
    let size = base + usize::from(i < extra);
    (start, start + size)
}

/// Split a mutable slice into `parts` near-equal contiguous chunks.
pub fn split_mut<T>(data: &mut [T], parts: usize) -> Vec<&mut [T]> {
    assert!(parts > 0);
    let len = data.len();
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    for i in 0..parts {
        let (start, end) = split_range(len, parts, i);
        let (head, tail) = rest.split_at_mut(end - start);
        out.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_tasks() {
        let pool = WorkPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scoped((0..100).map(|_| {
            || {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn borrows_stack_data_mutably() {
        let pool = WorkPool::new(3);
        let mut data = vec![0u64; 10];
        pool.scoped(
            data.chunks_mut(4)
                .enumerate()
                .map(|(i, chunk)| move || chunk.iter_mut().for_each(|x| *x = i as u64)),
        );
        assert_eq!(data, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let pool = WorkPool::new(2);
        pool.scoped(std::iter::empty::<fn()>());
    }

    #[test]
    fn more_tasks_than_threads() {
        let pool = WorkPool::new(2);
        let counter = AtomicU64::new(0);
        pool.scoped((0..64).map(|i| {
            let counter = &counter;
            move || {
                counter.fetch_add(i, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        let pool = WorkPool::new(2);
        pool.scoped((0..4).map(|i| {
            move || {
                if i == 2 {
                    panic!("boom");
                }
            }
        }));
    }

    #[test]
    fn panic_payload_message_survives() {
        let pool = WorkPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped([42u32].map(|code| move || panic!("task failed with code {code}")));
        }));
        let payload = result.expect_err("the task's panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload should be the original panic message");
        assert_eq!(msg, "task failed with code 42");
    }

    #[test]
    fn first_of_many_panics_is_rethrown() {
        // All tasks panic; the rethrown payload must be one of the
        // original messages, not a synthesized summary.
        let pool = WorkPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped((0..4).map(|i| move || panic!("worker {i} exploded")));
        }));
        let payload = result.expect_err("panics must propagate");
        let msg = payload.downcast_ref::<String>().expect("original payload");
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
    }

    #[test]
    fn stage_pool_accounts_busy_time() {
        let pool = StagePool::new(2);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.busy(), Duration::ZERO);
        let counter = AtomicU64::new(0);
        pool.scoped((0..8).map(|_| {
            || {
                std::thread::sleep(Duration::from_millis(2));
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        // 8 tasks x 2ms each, summed across workers.
        assert!(
            pool.busy() >= Duration::from_millis(16),
            "busy = {:?}",
            pool.busy()
        );
        pool.reset_busy();
        assert_eq!(pool.busy(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "stage boom")]
    fn stage_pool_propagates_panics() {
        let pool = StagePool::new(2);
        pool.scoped([|| panic!("stage boom")]);
    }

    #[test]
    fn pool_survives_task_panic() {
        let pool = WorkPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(
                [|| panic!("first batch dies")]
                    .into_iter()
                    .map(|f| f as fn()),
            );
        }));
        assert!(result.is_err());
        // Pool still works afterwards.
        let counter = AtomicU64::new(0);
        pool.scoped((0..8).map(|_| {
            || {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = WorkPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicU64::new(0);
        pool.scoped((0..3).map(|_| {
            || {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn split_range_covers_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..parts {
                    let (s, e) = split_range(len, parts, i);
                    assert_eq!(s, prev_end);
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len);
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn split_range_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..7)
            .map(|i| {
                let (s, e) = split_range(100, 7, i);
                e - s
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn split_mut_partitions_slice() {
        let mut v: Vec<u32> = (0..10).collect();
        let parts = split_mut(&mut v, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2, 3]);
        assert_eq!(parts[1], &[4, 5, 6]);
        assert_eq!(parts[2], &[7, 8, 9]);
    }

    #[test]
    fn parallel_ranges_visits_everything() {
        let pool = WorkPool::new(4);
        let flags: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_ranges(97, |_i, s, e| {
            for f in &flags[s..e] {
                f.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_ranges_zero_len() {
        let pool = WorkPool::new(4);
        pool.parallel_ranges(0, |_, _, _| panic!("must not run"));
    }

    #[test]
    fn parallel_copy_is_exact() {
        let pool = WorkPool::new(4);
        let src: Vec<u64> = (0..10_001).collect();
        let mut dst = vec![0u64; 10_001];
        parallel_copy(&pool, &src, &mut dst);
        assert_eq!(src, dst);
        parallel_copy::<u64>(&pool, &[], &mut []);
    }

    #[test]
    fn copy_split_is_exact_for_any_parts() {
        let pool = StagePool::new(3);
        let src: Vec<u64> = (0..997).collect();
        for parts in [1usize, 2, 5, 2000] {
            let mut dst = vec![0u64; src.len()];
            copy_split(&pool, parts, &src, &mut dst);
            assert_eq!(src, dst);
        }
    }
}
