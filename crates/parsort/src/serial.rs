//! Serial sorting algorithms: insertion sort, heapsort, and introsort.
//!
//! MLM-sort's key design decision (paper §4) is to sort each thread's chunk
//! with the best available *serial* algorithm rather than relying on
//! multithreaded sort scalability. The paper used `std::sort` (a quicksort
//! variant); this module provides the equivalent: median-of-three introsort
//! with an insertion-sort base case and a heapsort depth-limit fallback,
//! implemented from scratch.

/// Below this length introsort switches to insertion sort.
pub const INSERTION_THRESHOLD: usize = 24;

/// Sort `data` in place with binary-search-free insertion sort.
/// O(n²) worst case; the fastest choice for tiny slices.
pub fn insertion_sort<T: Ord>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j - 1] > data[j] {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Sort `data` in place with bottom-up heapsort. O(n log n) worst case,
/// used as introsort's fallback when quicksort recursion degenerates.
pub fn heapsort<T: Ord>(data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    // Heapify.
    for start in (0..n / 2).rev() {
        sift_down(data, start, n);
    }
    // Pop max to the end repeatedly.
    for end in (1..n).rev() {
        data.swap(0, end);
        sift_down(data, 0, end);
    }
}

fn sift_down<T: Ord>(heap: &mut [T], mut root: usize, end: usize) {
    loop {
        let left = 2 * root + 1;
        if left >= end {
            return;
        }
        let right = left + 1;
        let mut largest = root;
        if heap[left] > heap[largest] {
            largest = left;
        }
        if right < end && heap[right] > heap[largest] {
            largest = right;
        }
        if largest == root {
            return;
        }
        heap.swap(root, largest);
        root = largest;
    }
}

/// Sort `data` in place with introsort (the `std::sort` stand-in).
///
/// Median-of-three quicksort; recursion deeper than `2·log2(n)` falls back
/// to heapsort; slices shorter than [`INSERTION_THRESHOLD`] use insertion
/// sort. Like `std::sort_unstable` this is not stable.
pub fn introsort<T: Ord>(data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let depth_limit = 2 * (usize::BITS - n.leading_zeros()) as usize;
    introsort_rec(data, depth_limit);
}

fn introsort_rec<T: Ord>(data: &mut [T], depth_limit: usize) {
    let mut data = data;
    let mut depth_limit = depth_limit;
    // Tail-recursion elimination on the larger half keeps stack depth
    // logarithmic even before the heapsort fallback triggers.
    loop {
        let n = data.len();
        if n <= INSERTION_THRESHOLD {
            insertion_sort(data);
            return;
        }
        if depth_limit == 0 {
            heapsort(data);
            return;
        }
        depth_limit -= 1;
        let pivot_idx = median_of_three(data);
        let mid = partition(data, pivot_idx);
        let (lo, hi) = data.split_at_mut(mid);
        // hi[0] is the pivot in its final position.
        let hi = &mut hi[1..];
        if lo.len() < hi.len() {
            introsort_rec(lo, depth_limit);
            data = hi;
        } else {
            introsort_rec(hi, depth_limit);
            data = lo;
        }
    }
}

/// Index of the median of `data[1]`, `data[mid]`, `data[len-2]`.
///
/// The end positions are excluded deliberately (as libstdc++'s
/// `__move_median_to_first(first+1, mid, last-1)` does): partitioning
/// rotated patterns such as reverse-sorted input repeatedly parks the
/// displaced extremum at the boundary, and a median that samples the
/// boundary then degenerates to peeling one element per level.
fn median_of_three<T: Ord>(data: &[T]) -> usize {
    debug_assert!(data.len() >= 4);
    let (a, b, c) = (1, data.len() / 2, data.len() - 2);
    let (va, vb, vc) = (&data[a], &data[b], &data[c]);
    if va < vb {
        if vb < vc {
            b
        } else if va < vc {
            c
        } else {
            a
        }
    } else if va < vc {
        a
    } else if vb < vc {
        c
    } else {
        b
    }
}

/// Hoare/Sedgewick partition around `data[pivot_idx]`; returns the pivot's
/// final index. All elements left of it are `<=` pivot, all right are `>=`
/// pivot. The symmetric `>=`/`<=` scan conditions swap equal keys across
/// the pivot, which keeps constant-key arrays balanced (no Lomuto-style
/// O(n²) degeneration) and makes reverse-sorted input branch-predictable —
/// the structural advantage the paper's reverse-input runs exploit.
fn partition<T: Ord>(data: &mut [T], pivot_idx: usize) -> usize {
    let n = data.len();
    debug_assert!(n >= 2);
    data.swap(0, pivot_idx);
    let mut i = 0usize;
    let mut j = n;
    loop {
        // Scan right for an element >= pivot.
        loop {
            i += 1;
            if i >= n || data[i] >= data[0] {
                break;
            }
        }
        // Scan left for an element <= pivot; stops at 0 (the pivot) at worst.
        loop {
            j -= 1;
            if data[j] <= data[0] {
                break;
            }
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
    }
    data.swap(0, j);
    j
}

/// True if `data` is sorted non-decreasingly.
pub fn is_sorted<T: Ord>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorts(mut v: Vec<i64>) {
        let mut expect = v.clone();
        expect.sort_unstable();

        let mut a = v.clone();
        insertion_sort(&mut a);
        assert_eq!(a, expect, "insertion_sort");

        let mut b = v.clone();
        heapsort(&mut b);
        assert_eq!(b, expect, "heapsort");

        introsort(&mut v);
        assert_eq!(v, expect, "introsort");
    }

    #[test]
    fn sorts_empty_and_singleton() {
        check_sorts(vec![]);
        check_sorts(vec![42]);
    }

    #[test]
    fn sorts_small_patterns() {
        check_sorts(vec![2, 1]);
        check_sorts(vec![1, 2, 3]);
        check_sorts(vec![3, 2, 1]);
        check_sorts(vec![1, 1, 1, 1]);
        check_sorts(vec![5, 1, 4, 2, 3]);
    }

    #[test]
    fn sorts_random_large() {
        // Deterministic LCG so the test needs no rand dependency here.
        let mut state = 0x243F6A8885A308D3u64;
        let v: Vec<i64> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) as i64
            })
            .collect();
        check_sorts(v);
    }

    #[test]
    fn sorts_adversarial_patterns() {
        let n = 4096i64;
        check_sorts((0..n).collect()); // already sorted
        check_sorts((0..n).rev().collect()); // reversed
        check_sorts((0..n).map(|i| i % 7).collect()); // few distinct
        check_sorts((0..n).map(|i| if i % 2 == 0 { i } else { n - i }).collect()); // organ pipe-ish
        check_sorts(std::iter::repeat_n(9, 1000).collect()); // constant
                                                             // Sawtooth — classic quicksort killer for naive pivots.
        check_sorts((0..n).map(|i| i % 64).collect());
    }

    #[test]
    fn introsort_survives_quicksort_killer() {
        // Median-of-three killer sequence degrades quicksort to O(n^2);
        // the depth limit must engage heapsort rather than blowing the stack.
        let n = 1 << 14;
        let mut v: Vec<i64> = (0..n).collect();
        // Interleave in a pattern hostile to median-of-3.
        let killer: Vec<i64> = (0..n)
            .map(|i| if i % 2 == 0 { i / 2 } else { n / 2 + i / 2 })
            .collect();
        let mut k = killer.clone();
        introsort(&mut k);
        v.sort_unstable();
        let mut expect = killer;
        expect.sort_unstable();
        assert_eq!(k, expect);
    }

    #[test]
    fn partition_places_pivot_correctly() {
        let mut v = vec![9i64, 1, 8, 2, 7, 3, 6, 4, 5];
        let p = partition(&mut v, 8); // pivot value 5
        assert_eq!(v[p], 5);
        assert!(v[..p].iter().all(|&x| x <= 5));
        assert!(v[p + 1..].iter().all(|&x| x >= 5));

        // Constant arrays stay balanced (the Lomuto failure mode).
        let mut v = vec![7i64; 64];
        let p = partition(&mut v, 32);
        assert!(p > 8 && p < 56, "balanced split on equal keys, got {p}");
    }

    #[test]
    fn median_of_three_picks_median_of_interior_samples() {
        // Samples are data[1], data[mid], data[len-2].
        assert_eq!(median_of_three(&[9, 1, 2, 3, 9]), 2); // median(1,2,3) = 2 at idx 2
        assert_eq!(median_of_three(&[9, 3, 2, 1, 9]), 2);
        assert_eq!(median_of_three(&[9, 2, 1, 3, 9]), 1);
        assert_eq!(median_of_three(&[9, 1, 3, 2, 9]), 3);
    }

    #[test]
    fn is_sorted_detects_order() {
        assert!(is_sorted::<i64>(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
    }

    #[test]
    fn sorts_strings_too() {
        let mut v = vec!["pear", "apple", "orange", "banana", "apple"];
        introsort(&mut v);
        assert_eq!(v, ["apple", "apple", "banana", "orange", "pear"]);
    }
}
