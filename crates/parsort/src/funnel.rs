//! A simplified (lazy) funnelsort — the cache-oblivious alternative the
//! paper's §2.1 discusses (Frigo et al.; Brodal/Fagerberg/Vinther's
//! engineered "Lazy Funnelsort").
//!
//! The paper conjectures that cache-oblivious versions of its chunked
//! algorithms "might eventually perform as well without requiring tuning
//! per machine". This module provides the comparison point: a recursive
//! k-way mergesort with `k ≈ n^(1/3)` whose recursion adapts to every
//! cache level without knowing any cache size — in contrast to MLM-sort's
//! explicitly MCDRAM-sized megachunks.
//!
//! Simplifications relative to the engineered original (documented for
//! honesty): merging uses the loser tree from [`crate::multiway`] with a
//! contiguous output buffer rather than a van Emde Boas-laid-out funnel
//! with per-node buffers. The recursion *shape* (and therefore the
//! cache-obliviousness of its locality) is preserved; the constant factors
//! of the true funnel data structure are not.

use crate::multiway::multiway_merge_into;
use crate::serial::{insertion_sort, introsort};

/// Below this size, fall back to introsort (the base case).
const FUNNEL_BASE: usize = 4096;

/// Sort `data` in place with the simplified funnelsort.
pub fn funnelsort<T: Ord + Copy>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut scratch = data.to_vec();
    funnelsort_rec(data, &mut scratch);
}

fn funnelsort_rec<T: Ord + Copy>(data: &mut [T], scratch: &mut [T]) {
    let n = data.len();
    if n <= 32 {
        insertion_sort(data);
        return;
    }
    if n <= FUNNEL_BASE {
        introsort(data);
        return;
    }
    // k = ceil(n^(1/3)) segments of ~n^(2/3) elements each.
    let k = ((n as f64).cbrt().ceil() as usize).clamp(2, 128);
    let seg = n.div_ceil(k);

    // Recursively sort each segment.
    {
        let mut rest_d: &mut [T] = data;
        let mut rest_s: &mut [T] = scratch;
        while !rest_d.is_empty() {
            let take = seg.min(rest_d.len());
            let (d, dt) = rest_d.split_at_mut(take);
            let (s, st) = rest_s.split_at_mut(take);
            funnelsort_rec(d, s);
            rest_d = dt;
            rest_s = st;
        }
    }

    // k-way merge the sorted segments through the scratch buffer.
    {
        let runs: Vec<&[T]> = data.chunks(seg).collect();
        multiway_merge_into(&runs, scratch);
    }
    data.copy_from_slice(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::is_sorted;

    fn check(mut v: Vec<i64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        funnelsort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_trivial_inputs() {
        check(vec![]);
        check(vec![1]);
        check(vec![2, 1]);
        check(vec![3, 1, 2]);
    }

    #[test]
    fn sorts_base_case_sizes() {
        check((0..32).rev().collect());
        check((0..FUNNEL_BASE as i64).rev().collect());
        check((0..FUNNEL_BASE as i64 + 1).rev().collect());
    }

    #[test]
    fn sorts_large_random() {
        let mut state = 777u64;
        let v: Vec<i64> = (0..200_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 13) as i64
            })
            .collect();
        check(v);
    }

    #[test]
    fn sorts_structured_inputs() {
        let n = 100_000i64;
        check((0..n).collect());
        check((0..n).rev().collect());
        check((0..n).map(|i| i % 17).collect());
        check(vec![42; 50_000]);
    }

    #[test]
    fn recursion_uses_cube_root_fanin() {
        // Indirect check: a 10^6-element sort must complete and be correct
        // (k ~ 100, segments ~ 10^4, one further recursion level).
        let mut v: Vec<i64> = (0..1_000_000).rev().collect();
        funnelsort(&mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], 0);
        assert_eq!(v[999_999], 999_999);
    }
}
