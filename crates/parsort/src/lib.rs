//! # parsort — from-scratch parallel sorting for the KNL reproduction
//!
//! The paper (Butcher et al., ICPP 2018) builds MLM-sort on two library
//! components it treats as state of the art:
//!
//! * the GNU libstdc++ **parallel mode sort** (MCSTL's multiway mergesort),
//!   used as the `GNU-flat` / `GNU-cache` baselines, and
//! * **`std::sort`** (serial introsort), used for MLM-sort's per-thread
//!   chunk sorts.
//!
//! Neither is available to a pure-Rust reproduction, so this crate
//! implements both from scratch with the same algorithmic structure:
//!
//! * [`serial::introsort`] — median-of-three quicksort, heapsort fallback,
//!   insertion-sort base case;
//! * [`merge`] — serial and co-rank-splitting parallel two-way merges;
//! * [`multiway`] — loser-tree k-way merge, multisequence selection, and
//!   the parallel multiway merge built from them;
//! * [`parallel::parallel_mergesort`] — block sort + parallel multiway
//!   merge, the GNU parallel sort stand-in;
//! * [`pool::WorkPool`] — a fixed-size thread pool with scoped execution,
//!   matching the paper's dedicated copy/compute thread-pool structure;
//! * [`funnel::funnelsort`] — a simplified cache-oblivious funnelsort, the
//!   §2.1 alternative the paper contrasts its cache-aware design against;
//! * [`radix::radix_sort`] — LSD radix sort, the purely bandwidth-bound
//!   kernel the paper's §6 "more benchmarks" future work points toward.
//!
//! ```
//! use parsort::{pool::WorkPool, parallel::parallel_mergesort, serial::is_sorted};
//!
//! let pool = WorkPool::new(4);
//! let mut data: Vec<i64> = (0..10_000).rev().collect();
//! parallel_mergesort(&pool, &mut data);
//! assert!(is_sorted(&data));
//! ```

pub mod funnel;
pub mod merge;
pub mod multiway;
pub mod parallel;
pub mod pool;
pub mod radix;
pub mod serial;

pub use funnel::funnelsort;
pub use merge::{merge_into, parallel_merge_into};
pub use multiway::{multiway_merge_into, parallel_multiway_merge_into, LoserTree};
pub use parallel::parallel_mergesort;
pub use pool::WorkPool;
pub use radix::{parallel_radix_sort, radix_sort};
pub use serial::{introsort, is_sorted};
