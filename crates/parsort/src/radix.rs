//! LSD radix sort for integer keys — the canonical *bandwidth-bound*
//! sorting algorithm, added as the paper's §6 "more complex benchmarks"
//! extension point.
//!
//! Where introsort's cost is dominated by comparisons (the in-cache
//! component of the calibration), radix sort is almost pure streaming:
//! eight counting passes over the data, each reading every element and
//! writing it to its bucket. That makes it the sort most sensitive to the
//! memory level it runs in — exactly the regime where the paper's chunking
//! pays most — and the natural next kernel for an MLM treatment.

use crate::pool::{split_range, WorkPool};

/// Keys that radix sort can process: mapped to `u64` preserving order.
pub trait RadixKey: Copy {
    /// Order-preserving map into `u64` (two's-complement bias for signed).
    fn to_bits(self) -> u64;
}

impl RadixKey for u64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self
    }
}

impl RadixKey for i64 {
    #[inline]
    fn to_bits(self) -> u64 {
        (self as u64) ^ (1 << 63)
    }
}

impl RadixKey for u32 {
    #[inline]
    fn to_bits(self) -> u64 {
        u64::from(self)
    }
}

impl RadixKey for i32 {
    #[inline]
    fn to_bits(self) -> u64 {
        u64::from((self as u32) ^ (1 << 31))
    }
}

const RADIX_BITS: usize = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Sort `data` with serial LSD radix sort (8-bit digits, stable).
pub fn radix_sort<T: RadixKey>(data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let digits = needed_digits(data);
    let mut scratch: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    for d in 0..digits {
        let shift = d * RADIX_BITS;
        let (src, dst): (&[T], &mut [T]) = if src_is_data {
            (&*data, &mut scratch[..])
        } else {
            (&*scratch, &mut data[..])
        };
        let mut counts = [0usize; BUCKETS];
        for k in src {
            counts[((k.to_bits() >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        let mut offsets = [0usize; BUCKETS];
        let mut acc = 0;
        for (o, c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        for k in src {
            let b = ((k.to_bits() >> shift) as usize) & (BUCKETS - 1);
            dst[offsets[b]] = *k;
            offsets[b] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

/// Number of 8-bit digit passes needed to cover the key range actually
/// present (skipping passes where every key shares the digit).
fn needed_digits<T: RadixKey>(data: &[T]) -> usize {
    let mut or_all = 0u64;
    let mut and_all = u64::MAX;
    for k in data {
        let b = k.to_bits();
        or_all |= b;
        and_all &= b;
    }
    // Bits that differ between any two keys.
    let varying = or_all ^ and_all;
    if varying == 0 {
        return 0;
    }
    let top = 63 - varying.leading_zeros() as usize;
    top / RADIX_BITS + 1
}

/// Parallel radix sort: each pool thread radix-sorts a block, then a
/// parallel multiway merge combines the runs — the same structure as
/// [`crate::parallel::parallel_mergesort`] with radix locals, i.e. an
/// MLM-sort-shaped use of a pure streaming kernel.
pub fn parallel_radix_sort<T: RadixKey + Ord + Send + Sync>(pool: &WorkPool, data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let parts = pool.threads().min(n);
    {
        let mut rest: &mut [T] = data;
        let mut blocks = Vec::with_capacity(parts);
        for i in 0..parts {
            let (s, e) = split_range(n, parts, i);
            let (head, tail) = rest.split_at_mut(e - s);
            blocks.push(head);
            rest = tail;
        }
        pool.scoped(blocks.into_iter().map(|b| move || radix_sort(b)));
    }
    let mut buf = data.to_vec();
    {
        let runs: Vec<&[T]> = (0..parts)
            .map(|i| {
                let (s, e) = split_range(n, parts, i);
                &data[s..e]
            })
            .collect();
        crate::multiway::parallel_multiway_merge_into(pool, &runs, &mut buf);
    }
    data.copy_from_slice(&buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::is_sorted;

    fn check<T: RadixKey + Ord + std::fmt::Debug + Send + Sync>(mut v: Vec<T>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut par = v.clone();
        radix_sort(&mut v);
        assert_eq!(v, expect, "serial radix");
        let pool = WorkPool::new(4);
        parallel_radix_sort(&pool, &mut par);
        assert_eq!(par, expect, "parallel radix");
    }

    #[test]
    fn sorts_unsigned() {
        check::<u64>(vec![]);
        check::<u64>(vec![5]);
        check::<u64>(vec![3, 1, 2]);
        check(vec![u64::MAX, 0, u64::MAX / 2, 1, u64::MAX - 1]);
    }

    #[test]
    fn sorts_signed_with_negatives() {
        check(vec![-1i64, 1, 0, i64::MIN, i64::MAX, -42, 42]);
        check((-500i64..500).rev().collect::<Vec<_>>());
        check(vec![-3i32, 7, i32::MIN, i32::MAX, 0]);
        check(vec![7u32, 3, u32::MAX, 0]);
    }

    #[test]
    fn sorts_large_random() {
        let mut state = 0xDEADBEEFu64;
        let v: Vec<i64> = (0..100_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state as i64
            })
            .collect();
        check(v);
    }

    #[test]
    fn constant_and_narrow_ranges_short_circuit() {
        check(vec![9u64; 10_000]);
        // Only the low byte varies: one pass suffices; result still sorted.
        let v: Vec<u64> = (0..10_000).map(|i| 0xAB00 + (i % 256)).collect();
        check(v);
        assert_eq!(needed_digits(&[0xABu64, 0xCD]), 1);
        assert_eq!(needed_digits(&[0xAB00u64, 0xCD00]), 2);
        assert_eq!(needed_digits(&[7u64, 7]), 0);
    }

    #[test]
    fn stability_of_serial_radix() {
        // Keys equal on the sorted digit keep their relative order; check
        // via full sortedness on many duplicates.
        let v: Vec<i64> = (0..50_000).map(|i| (i * 7919) % 13).collect();
        let mut s = v.clone();
        radix_sort(&mut s);
        assert!(is_sorted(&s));
        assert_eq!(
            s.iter().filter(|&&x| x == 5).count(),
            v.iter().filter(|&&x| x == 5).count()
        );
    }
}
