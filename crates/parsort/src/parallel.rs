//! Parallel sorts: the multiway mergesort that stands in for GNU parallel
//! mode's `__gnu_parallel::sort`, plus helpers shared by MLM-sort.
//!
//! Structure (identical to MCSTL's): split the input into one block per
//! thread, sort blocks independently with serial introsort, then perform a
//! single parallel multiway merge of the sorted blocks through a temporary
//! buffer.

use crate::multiway::parallel_multiway_merge_into;
use crate::pool::{split_mut, WorkPool};
use crate::serial::introsort;

/// Sort `data` in place with every thread of `pool` (GNU parallel sort
/// stand-in).
///
/// Allocates a temporary buffer of the same size for the merge step, like
/// the out-of-place merge in the GNU implementation.
pub fn parallel_mergesort<T: Ord + Copy + Send + Sync>(pool: &WorkPool, data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let parts = pool.threads().min(n);

    // Phase 1: sort one contiguous block per thread.
    {
        let blocks = split_mut(data, parts);
        pool.scoped(blocks.into_iter().map(|b| move || introsort(b)));
    }

    // Phase 2: multiway merge the sorted blocks through a temp buffer.
    let mut buf = data.to_vec();
    {
        let runs: Vec<&[T]> = split_borrows(data, parts);
        parallel_multiway_merge_into(pool, &runs, &mut buf);
    }
    data.copy_from_slice(&buf);
}

/// Sort each of `chunks` independently and in parallel, one serial sort per
/// pool thread at a time (MLM-sort's per-thread serial sort phase).
pub fn sort_chunks_serial<T: Ord + Send>(pool: &WorkPool, chunks: Vec<&mut [T]>) {
    pool.scoped(chunks.into_iter().map(|c| move || introsort(c)));
}

/// Borrow `data` as `parts` near-equal contiguous immutable runs.
pub fn split_borrows<T>(data: &[T], parts: usize) -> Vec<&[T]> {
    let len = data.len();
    (0..parts)
        .map(|i| {
            let (s, e) = crate::pool::split_range(len, parts, i);
            &data[s..e]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::is_sorted;

    fn rng_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 17) as i64
            })
            .collect()
    }

    #[test]
    fn parallel_sort_matches_std() {
        let pool = WorkPool::new(4);
        for n in [0usize, 1, 2, 10, 1000, 4096, 100_003] {
            let mut v = rng_vec(n, n as u64 + 5);
            let mut expect = v.clone();
            expect.sort_unstable();
            parallel_mergesort(&pool, &mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn parallel_sort_reverse_input() {
        let pool = WorkPool::new(8);
        let mut v: Vec<i64> = (0..50_000).rev().collect();
        parallel_mergesort(&pool, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], 0);
        assert_eq!(v[49_999], 49_999);
    }

    #[test]
    fn parallel_sort_duplicates() {
        let pool = WorkPool::new(4);
        let mut v: Vec<i64> = (0..10_000).map(|i| i % 5).collect();
        parallel_mergesort(&pool, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(v.iter().filter(|&&x| x == 3).count(), 2000);
    }

    #[test]
    fn parallel_sort_single_thread_pool() {
        let pool = WorkPool::new(1);
        let mut v = rng_vec(5000, 77);
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_mergesort(&pool, &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sort_chunks_sorts_each_independently() {
        let pool = WorkPool::new(4);
        let mut v = rng_vec(1000, 42);
        let expect: Vec<Vec<i64>> = v
            .chunks(250)
            .map(|c| {
                let mut c = c.to_vec();
                c.sort_unstable();
                c
            })
            .collect();
        sort_chunks_serial(&pool, v.chunks_mut(250).collect());
        for (got, want) in v.chunks(250).zip(&expect) {
            assert_eq!(got, want.as_slice());
        }
    }

    #[test]
    fn split_borrows_covers_input() {
        let v: Vec<i64> = (0..10).collect();
        let runs = split_borrows(&v, 3);
        assert_eq!(runs.len(), 3);
        let flat: Vec<i64> = runs.iter().flat_map(|r| r.iter().copied()).collect();
        assert_eq!(flat, v);
    }
}
