//! Property-based tests for the sorting substrate.

use parsort::funnel::funnelsort;
use parsort::merge::{co_rank, merge_into, parallel_merge_into};
use parsort::multiway::{multiseq_select, multiway_merge_into, parallel_multiway_merge_into};
use parsort::pool::{split_range, WorkPool};
use parsort::radix::{parallel_radix_sort, radix_sort};
use parsort::serial::{heapsort, insertion_sort, introsort, is_sorted};
use proptest::prelude::*;

proptest! {
    #[test]
    fn introsort_equals_std(mut v in proptest::collection::vec(any::<i64>(), 0..3000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        introsort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn heapsort_equals_std(mut v in proptest::collection::vec(any::<i32>(), 0..1500)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        heapsort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn insertion_sort_equals_std(mut v in proptest::collection::vec(any::<i16>(), 0..300)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        insertion_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn funnelsort_equals_std(mut v in proptest::collection::vec(any::<i64>(), 0..10_000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        funnelsort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn radix_sort_equals_std(mut v in proptest::collection::vec(any::<i64>(), 0..5000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn parallel_radix_equals_std(
        mut v in proptest::collection::vec(any::<i64>(), 0..5000),
        threads in 1usize..6,
    ) {
        let pool = WorkPool::new(threads);
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_radix_sort(&pool, &mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn radix_sorts_u32_i32(
        mut a in proptest::collection::vec(any::<u32>(), 0..2000),
        mut b in proptest::collection::vec(any::<i32>(), 0..2000),
    ) {
        let mut ea = a.clone();
        ea.sort_unstable();
        radix_sort(&mut a);
        prop_assert_eq!(a, ea);
        let mut eb = b.clone();
        eb.sort_unstable();
        radix_sort(&mut b);
        prop_assert_eq!(b, eb);
    }

    #[test]
    fn merge_of_sorted_inputs_is_sorted(
        mut a in proptest::collection::vec(any::<i64>(), 0..500),
        mut b in proptest::collection::vec(any::<i64>(), 0..500),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0i64; a.len() + b.len()];
        merge_into(&a, &b, &mut out);
        prop_assert!(is_sorted(&out));
        // Multiset preservation.
        let mut all: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(out, all);
    }

    #[test]
    fn co_rank_splits_are_consistent(
        mut a in proptest::collection::vec(any::<i32>(), 0..300),
        mut b in proptest::collection::vec(any::<i32>(), 0..300),
        k_frac in 0.0f64..=1.0,
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let k = ((a.len() + b.len()) as f64 * k_frac) as usize;
        let (i, j) = co_rank(k, &a, &b);
        prop_assert_eq!(i + j, k);
        let max_before = a[..i].iter().chain(b[..j].iter()).max();
        let min_after = a[i..].iter().chain(b[j..].iter()).min();
        if let (Some(mb), Some(ma)) = (max_before, min_after) {
            prop_assert!(mb <= ma);
        }
    }

    #[test]
    fn parallel_merge_equals_serial(
        mut a in proptest::collection::vec(any::<i64>(), 0..800),
        mut b in proptest::collection::vec(any::<i64>(), 0..800),
        threads in 1usize..6,
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let pool = WorkPool::new(threads);
        let mut expect = vec![0i64; a.len() + b.len()];
        merge_into(&a, &b, &mut expect);
        let mut got = vec![0i64; a.len() + b.len()];
        parallel_merge_into(&pool, &a, &b, &mut got);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn multiway_merge_equals_concat_sort(
        runs_raw in proptest::collection::vec(
            proptest::collection::vec(any::<i64>(), 0..200), 1..8),
    ) {
        let runs_owned: Vec<Vec<i64>> = runs_raw
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r
            })
            .collect();
        let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let mut expect: Vec<i64> = runs_owned.iter().flatten().copied().collect();
        expect.sort_unstable();
        let mut out = vec![0i64; expect.len()];
        multiway_merge_into(&runs, &mut out);
        prop_assert_eq!(&out, &expect);

        let pool = WorkPool::new(4);
        let mut out_p = vec![0i64; expect.len()];
        parallel_multiway_merge_into(&pool, &runs, &mut out_p);
        prop_assert_eq!(out_p, expect);
    }

    #[test]
    fn multiseq_select_partitions_correctly(
        runs_raw in proptest::collection::vec(
            proptest::collection::vec(-50i64..50, 0..150), 1..6),
        r_frac in 0.0f64..=1.0,
    ) {
        let runs_owned: Vec<Vec<i64>> = runs_raw
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r
            })
            .collect();
        let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let rank = (total as f64 * r_frac) as usize;
        let split = multiseq_select(&runs, rank);
        prop_assert_eq!(split.iter().sum::<usize>(), rank);
        let max_before = runs
            .iter()
            .zip(&split)
            .flat_map(|(s, &c)| s[..c].iter())
            .max();
        let min_after = runs
            .iter()
            .zip(&split)
            .flat_map(|(s, &c)| s[c..].iter())
            .min();
        if let (Some(mb), Some(ma)) = (max_before, min_after) {
            prop_assert!(mb <= ma);
        }
    }

    #[test]
    fn split_range_partitions(len in 0usize..10_000, parts in 1usize..64) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for i in 0..parts {
            let (s, e) = split_range(len, parts, i);
            prop_assert_eq!(s, prev_end);
            covered += e - s;
            prev_end = e;
        }
        prop_assert_eq!(covered, len);
    }

    #[test]
    fn parallel_mergesort_equals_std(
        mut v in proptest::collection::vec(any::<i64>(), 0..5000),
        threads in 1usize..8,
    ) {
        let pool = WorkPool::new(threads);
        let mut expect = v.clone();
        expect.sort_unstable();
        parsort::parallel::parallel_mergesort(&pool, &mut v);
        prop_assert_eq!(v, expect);
    }
}
