//! Virtual-time scaling model for the distributed sort.
//!
//! Paper-scale strong scaling: each node's local phases (MLM-sort of its
//! shard, final merge of received fragments) are simulated on the
//! [`knl_sim`] KNL model; the all-to-all exchange rides an interconnect
//! model. The composition exposes the two regimes the multi-node future
//! work is about: memory-bound at small node counts, network-bound once
//! the per-node shard shrinks below what the links can ship faster than
//! MCDRAM can sort.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_core::sort::sim::build_sort_program;
use mlm_core::{Calibration, InputOrder, SortAlgorithm, SortWorkload};
use serde::{Deserialize, Serialize};

use crate::ClusterConfig;

/// Per-phase breakdown of one simulated distributed sort.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSimReport {
    /// Nodes used.
    pub nodes: usize,
    /// Elements per node.
    pub shard_elems: u64,
    /// Local MLM-sort of the shard, virtual seconds.
    pub local_sort: f64,
    /// All-to-all exchange, virtual seconds.
    pub exchange: f64,
    /// Final node-local multiway merge of received fragments, seconds.
    pub final_merge: f64,
    /// Total (phases are globally synchronous, as in PSRS).
    pub total: f64,
}

impl ClusterSimReport {
    /// Strong-scaling speedup relative to a single-node run.
    pub fn speedup_over(&self, single: &ClusterSimReport) -> f64 {
        single.total / self.total
    }
}

/// Simulate a PSRS-style distributed MLM-sort of `n` int64 keys.
///
/// `megachunk_elems` bounds the per-node MLM-sort megachunk (clamped to
/// the shard and to MCDRAM).
pub fn simulate_cluster_sort(
    cluster: &ClusterConfig,
    cal: &Calibration,
    n: u64,
    order: InputOrder,
    megachunk_elems: u64,
    threads_per_node: usize,
) -> Result<ClusterSimReport, String> {
    cluster.validate()?;
    if n == 0 {
        return Err("empty workload".into());
    }
    let nodes = cluster.nodes as u64;
    let shard = n.div_ceil(nodes);
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let elem = 8u64;
    let mega = megachunk_elems
        .min(shard)
        .min(machine.addressable_mcdram() / elem)
        .max(1);

    // Phase 1: local MLM-sort of the shard (identical on every node).
    let w = SortWorkload::int64(shard, order);
    let prog = build_sort_program(
        &machine,
        cal,
        w,
        SortAlgorithm::MlmSort,
        mega,
        threads_per_node,
    )?;
    let local_sort = Simulator::new(machine.clone())
        .run(&prog)
        .map_err(|e| e.to_string())?
        .makespan;

    // Phase 2 (sampling) is latency-bound and tiny: 2 link latencies.
    let sampling = 2.0 * cluster.link_latency;

    // Phase 3: all-to-all. Each node sends and receives a (nodes-1)/nodes
    // fraction of its shard; links are full duplex, so the bound is the
    // one-directional volume over min(link, DDR) — received fragments land
    // in DDR.
    let exchange = if cluster.nodes == 1 {
        0.0
    } else {
        let bytes = shard * elem * (nodes - 1) / nodes;
        let effective = cluster.link_bandwidth.min(machine.ddr_bandwidth);
        bytes as f64 / effective + cluster.link_latency
    };

    // Phase 4: merge the `nodes` received (sorted) fragments. Reuse the
    // calibrated multiway rate; the merge streams shard bytes in and out
    // of DDR, so it is also bounded by DDR bandwidth.
    let final_merge = if cluster.nodes == 1 {
        0.0 // single node already fully sorted in phase 1
    } else {
        let traffic = 2 * shard * elem;
        let rate_bound =
            threads_per_node as f64 * cal.multiway_rate_ordered(cluster.nodes.max(2), order);
        traffic as f64 / rate_bound.min(machine.ddr_bandwidth)
    };

    Ok(ClusterSimReport {
        nodes: cluster.nodes,
        shard_elems: shard,
        local_sort,
        exchange,
        final_merge,
        total: local_sort + sampling + exchange + final_merge,
    })
}

/// Strong-scaling sweep over node counts for a fixed problem size.
pub fn strong_scaling(
    cal: &Calibration,
    n: u64,
    order: InputOrder,
    node_counts: &[usize],
    threads_per_node: usize,
) -> Result<Vec<ClusterSimReport>, String> {
    node_counts
        .iter()
        .map(|&nodes| {
            let cluster = ClusterConfig::omnipath(nodes);
            simulate_cluster_sort(&cluster, cal, n, order, 1_000_000_000, threads_per_node)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 8_000_000_000;

    fn report(nodes: usize) -> ClusterSimReport {
        simulate_cluster_sort(
            &ClusterConfig::omnipath(nodes),
            &Calibration::default(),
            N,
            InputOrder::Random,
            1_000_000_000,
            256,
        )
        .unwrap()
    }

    #[test]
    fn single_node_has_no_communication() {
        let r = report(1);
        assert_eq!(r.exchange, 0.0);
        assert_eq!(r.final_merge, 0.0);
        assert!(r.local_sort > 0.0);
    }

    #[test]
    fn strong_scaling_helps_with_bounded_efficiency() {
        let counts = [1usize, 2, 4, 8, 16, 64];
        let cal = Calibration::default();
        let reports = strong_scaling(&cal, N, InputOrder::Random, &counts, 256).unwrap();
        // More nodes never slows the local sort, and total time falls.
        for w in reports.windows(2) {
            assert!(w[1].local_sort <= w[0].local_sort * 1.001);
            assert!(w[1].total < w[0].total, "{:?} -> {:?}", w[0], w[1]);
        }
        // Speedup at 8 nodes is substantial but sublinear (network tax).
        let s8 = reports[0].total / reports[3].total;
        assert!((2.0..8.0).contains(&s8), "8-node speedup {s8}");
        // Parallel efficiency stays physical: (0.5, 1.1). It is not
        // strictly monotone because shrinking shards also drop whole
        // megachunk phases (superlinear local effects).
        for r in &reports {
            let eff = reports[0].total / r.total / r.nodes as f64;
            assert!(
                (0.5..1.1).contains(&eff),
                "nodes {}: efficiency {eff}",
                r.nodes
            );
        }
    }

    #[test]
    fn communication_fraction_grows_with_node_count() {
        // On a full-bisection Omni-Path fabric the exchange never
        // dominates at these scales, but its share of the runtime grows
        // steadily — the trend that makes the multi-node extension a
        // communication problem.
        let mut prev = 0.0f64;
        for nodes in [2usize, 4, 8, 16, 64] {
            let r = report(nodes);
            let frac = r.exchange / r.total;
            assert!(frac > prev, "nodes {nodes}: fraction {frac} !> {prev}");
            prev = frac;
        }
    }

    #[test]
    fn slow_links_flip_the_bottleneck_to_the_network() {
        // With gigabit-class links the crossover arrives within 64 nodes.
        let cal = Calibration::default();
        let slow = simulate_cluster_sort(
            &ClusterConfig {
                nodes: 64,
                link_bandwidth: 1e9,
                link_latency: 2e-6,
            },
            &cal,
            N,
            InputOrder::Random,
            1_000_000_000,
            256,
        )
        .unwrap();
        assert!(
            slow.exchange > slow.local_sort,
            "slow network must dominate: {slow:?}"
        );
        let fast = report(64);
        assert!(
            fast.local_sort > fast.exchange,
            "fast network must not: {fast:?}"
        );
    }

    #[test]
    fn faster_links_shrink_exchange_only() {
        let cal = Calibration::default();
        let slow = simulate_cluster_sort(
            &ClusterConfig {
                nodes: 8,
                link_bandwidth: 5e9,
                link_latency: 2e-6,
            },
            &cal,
            N,
            InputOrder::Random,
            1_000_000_000,
            256,
        )
        .unwrap();
        let fast = simulate_cluster_sort(
            &ClusterConfig {
                nodes: 8,
                link_bandwidth: 50e9,
                link_latency: 2e-6,
            },
            &cal,
            N,
            InputOrder::Random,
            1_000_000_000,
            256,
        )
        .unwrap();
        assert!(fast.exchange < slow.exchange);
        assert_eq!(fast.local_sort, slow.local_sort);
    }

    #[test]
    fn rejects_empty_workload() {
        let r = simulate_cluster_sort(
            &ClusterConfig::omnipath(2),
            &Calibration::default(),
            0,
            InputOrder::Random,
            1,
            256,
        );
        assert!(r.is_err());
    }
}
