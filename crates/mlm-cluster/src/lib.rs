//! # mlm-cluster — distributed MLM-sort across multiple KNL nodes
//!
//! The paper's §6 names its first piece of future work: "this work
//! considers different MCDRAM usage models in a single KNL node ...
//! Future work will extend this to multiple KNL nodes." This crate is that
//! extension, in the same two-backend style as the rest of the
//! reproduction:
//!
//! * [`host`] — a real, message-passing **Parallel Sorting by Regular
//!   Sampling** (PSRS) implementation whose per-node local sort is
//!   MLM-sort. Node shards exchange partitions over `crossbeam` channels;
//!   correctness is validated against `sort_unstable` at host scale.
//! * [`sim`] — a virtual-time composition for paper-scale problems: local
//!   phases run on the [`knl_sim`] KNL model, the all-to-all exchange on an
//!   interconnect model, producing strong-scaling curves and the
//!   network-vs-memory crossover.
//!
//! Neither backend spells out the local sort itself: both call into
//! `mlm_core::sort`, whose host executor and sim lowering interpret the
//! same `mlm_exec` sort plan — this crate only adds the exchange phases
//! around it.
//!
//! PSRS maps naturally onto the paper's framing of MLM-sort as "primarily
//! a *distributed* rather than a multithreaded algorithm" (§4): the serial
//! chunk sorts inside each node and the node-local sorts inside the
//! cluster play the same role at two scales.

pub mod host;
pub mod sim;

use serde::{Deserialize, Serialize};

/// Interconnect + node-count description of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of KNL nodes.
    pub nodes: usize,
    /// Per-node injection bandwidth in bytes/s, full duplex (Omni-Path on
    /// the KNL generation: ~12.5 GB/s per direction).
    pub link_bandwidth: f64,
    /// Per-message latency in seconds (used once per exchange phase —
    /// messages are large, so bandwidth dominates).
    pub link_latency: f64,
}

impl ClusterConfig {
    /// An Omni-Path-class cluster of `nodes` KNLs.
    pub fn omnipath(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            link_bandwidth: 12.5e9,
            link_latency: 2e-6,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("need at least one node".into());
        }
        if !self.link_bandwidth.is_finite() || self.link_bandwidth <= 0.0 {
            return Err("link bandwidth must be positive".into());
        }
        if !self.link_latency.is_finite() || self.link_latency < 0.0 {
            return Err("link latency must be >= 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omnipath_preset_validates() {
        for n in [1usize, 2, 8, 64] {
            ClusterConfig::omnipath(n).validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(ClusterConfig {
            nodes: 0,
            link_bandwidth: 1.0,
            link_latency: 0.0
        }
        .validate()
        .is_err());
        assert!(ClusterConfig {
            nodes: 2,
            link_bandwidth: 0.0,
            link_latency: 0.0
        }
        .validate()
        .is_err());
        assert!(ClusterConfig {
            nodes: 2,
            link_bandwidth: 1.0,
            link_latency: -1.0
        }
        .validate()
        .is_err());
        assert!(ClusterConfig {
            nodes: 2,
            link_bandwidth: f64::NAN,
            link_latency: 0.0
        }
        .validate()
        .is_err());
    }
}
