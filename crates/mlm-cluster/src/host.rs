//! Message-passing PSRS with MLM-sort node-local phases, executed for real.
//!
//! Each simulated "node" is a worker thread owning a shard of the keys.
//! The four classic PSRS phases run with genuine message passing
//! (`crossbeam` channels), so the exchange is a real all-to-all, not an
//! array shuffle:
//!
//! 1. local sort — MLM-sort over the shard (each node uses a private
//!    [`WorkPool`] for its chunk sorts, standing in for the node's 256
//!    hardware threads);
//! 2. regular sampling — every node sends `nodes` samples to node 0, which
//!    sorts them and broadcasts `nodes - 1` splitters;
//! 3. all-to-all — every node partitions its sorted shard by the splitters
//!    and sends partition `j` to node `j`;
//! 4. local multiway merge of the received (sorted) fragments.
//!
//! The result is gathered in node order; the concatenation is globally
//! sorted.

use crossbeam::channel::{unbounded, Receiver, Sender};
use mlm_core::sort::host::mlm_sort;
use parsort::multiway::multiway_merge_into;
use parsort::pool::WorkPool;

use crate::ClusterConfig;

/// Statistics of one distributed sort.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSortStats {
    /// Nodes that participated.
    pub nodes: usize,
    /// Elements each node ended up owning after the exchange (load
    /// balance check; PSRS guarantees < 2x the ideal share).
    pub received_per_node: Vec<usize>,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

enum NodeMsg<T> {
    Samples(Vec<T>),
    Splitters(Vec<T>),
    Partition(Vec<T>),
    /// End-of-exchange marker: every node sends exactly one partition to
    /// every other node, so `nodes` partitions (incl. its own) terminate
    /// the receive loop without needing counts up front.
    Done,
}

/// Sort `data` across `cfg.nodes` message-passing nodes and return the
/// globally sorted result plus statistics.
///
/// `threads_per_node` sizes each node's local [`WorkPool`] (its "hardware
/// threads"); `megachunk_elems` is MLM-sort's megachunk within a node.
pub fn cluster_sort<T: Ord + Copy + Send + Sync>(
    cfg: &ClusterConfig,
    data: &[T],
    threads_per_node: usize,
    megachunk_elems: usize,
) -> (Vec<T>, ClusterSortStats) {
    cfg.validate().expect("invalid cluster config");
    let n = cfg.nodes;
    let start = std::time::Instant::now();
    if data.is_empty() || n == 1 {
        // Single node: plain MLM-sort.
        let pool = WorkPool::new(threads_per_node);
        let mut v = data.to_vec();
        mlm_sort(&pool, &mut v, megachunk_elems.max(1), true);
        let stats = ClusterSortStats {
            nodes: 1,
            received_per_node: vec![v.len()],
            elapsed: start.elapsed(),
        };
        return (v, stats);
    }

    // Channel mesh: inboxes[i] receives everything addressed to node i.
    let mut senders: Vec<Sender<NodeMsg<T>>> = Vec::with_capacity(n);
    let mut inboxes: Vec<Option<Receiver<NodeMsg<T>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        inboxes.push(Some(rx));
    }

    // Shard the input.
    let shard_size = data.len().div_ceil(n);
    let shards: Vec<&[T]> = (0..n)
        .map(|i| {
            let lo = (i * shard_size).min(data.len());
            let hi = ((i + 1) * shard_size).min(data.len());
            &data[lo..hi]
        })
        .collect();

    let mut results: Vec<Vec<T>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (node, shard) in shards.iter().enumerate() {
            let senders = senders.clone();
            let inbox = inboxes[node].take().expect("inbox taken once");
            handles.push(scope.spawn(move || {
                run_node(
                    node,
                    n,
                    shard,
                    inbox,
                    &senders,
                    threads_per_node,
                    megachunk_elems,
                )
            }));
        }
        for h in handles {
            results.push(h.join().expect("node thread panicked"));
        }
    });

    let received_per_node: Vec<usize> = results.iter().map(|r| r.len()).collect();
    let out: Vec<T> = results.into_iter().flatten().collect();
    let stats = ClusterSortStats {
        nodes: n,
        received_per_node,
        elapsed: start.elapsed(),
    };
    (out, stats)
}

fn run_node<T: Ord + Copy + Send + Sync>(
    node: usize,
    n: usize,
    shard: &[T],
    inbox: Receiver<NodeMsg<T>>,
    senders: &[Sender<NodeMsg<T>>],
    threads_per_node: usize,
    megachunk_elems: usize,
) -> Vec<T> {
    let pool = WorkPool::new(threads_per_node);
    // Messages can arrive ahead of the phase that consumes them: node 0
    // broadcasts splitters to peers one at a time, so a peer that got its
    // splitters early can deliver exchange partitions to a node still
    // waiting on its own splitters. Such messages are deferred here and
    // drained by the exchange loop instead of aborting the phase.
    let mut deferred: std::collections::VecDeque<NodeMsg<T>> = std::collections::VecDeque::new();

    // Phase 1: local MLM-sort.
    let mut local = shard.to_vec();
    if local.len() > 1 {
        mlm_sort(&pool, &mut local, megachunk_elems.max(1), true);
    }

    // Phase 2: regular sampling. Every node (including 0) sends n samples
    // at regular offsets to node 0.
    let samples: Vec<T> = (0..n)
        .filter_map(|k| {
            if local.is_empty() {
                None
            } else {
                Some(local[(k * local.len()) / n])
            }
        })
        .collect();
    senders[0]
        .send(NodeMsg::Samples(samples))
        .expect("node 0 alive");

    let splitters: Vec<T> = if node == 0 {
        // Gather n sample sets, sort, pick every n-th as a splitter.
        let mut all = Vec::with_capacity(n * n);
        let mut sets = 0;
        while sets < n {
            match inbox.recv().expect("mesh alive") {
                NodeMsg::Samples(s) => {
                    all.extend(s);
                    sets += 1;
                }
                NodeMsg::Splitters(_) => {
                    unreachable!("splitters are broadcast by node 0, never sent to it")
                }
                other => deferred.push_back(other),
            }
        }
        all.sort_unstable();
        let splitters: Vec<T> = (1..n)
            .filter_map(|k| all.get(k * all.len() / n).copied())
            .collect();
        for s in senders.iter().skip(1) {
            s.send(NodeMsg::Splitters(splitters.clone()))
                .expect("mesh alive");
        }
        splitters
    } else {
        loop {
            match inbox.recv().expect("mesh alive") {
                NodeMsg::Splitters(s) => break s,
                NodeMsg::Samples(_) => unreachable!("samples are addressed to node 0"),
                other => deferred.push_back(other),
            }
        }
    };

    // Phase 3: partition by splitters and exchange. Partition j goes to
    // node j; splitters has n-1 entries.
    let mut cut = 0usize;
    for (j, sender) in senders.iter().enumerate() {
        let hi = if j < splitters.len() {
            local.partition_point(|x| *x <= splitters[j]).max(cut)
        } else {
            local.len()
        };
        sender
            .send(NodeMsg::Partition(local[cut..hi].to_vec()))
            .expect("mesh alive");
        sender.send(NodeMsg::Done).expect("mesh alive");
        cut = hi;
    }

    // Phase 4: receive n partitions (one per peer, possibly empty) and
    // multiway merge them. `Done` markers count peers.
    let mut fragments: Vec<Vec<T>> = Vec::with_capacity(n);
    let mut done = 0usize;
    while done < n {
        let msg = deferred
            .pop_front()
            .unwrap_or_else(|| inbox.recv().expect("mesh alive"));
        match msg {
            NodeMsg::Partition(p) => fragments.push(p),
            NodeMsg::Done => done += 1,
            NodeMsg::Samples(_) | NodeMsg::Splitters(_) => {
                unreachable!("sampling finished before the exchange")
            }
        }
    }
    let total: usize = fragments.iter().map(|f| f.len()).sum();
    if total == 0 {
        return Vec::new();
    }
    let fill = fragments
        .iter()
        .find_map(|f| f.first().copied())
        .expect("total > 0 implies a nonempty fragment");
    let mut merged = vec![fill; total];
    let runs: Vec<&[T]> = fragments.iter().map(|f| f.as_slice()).collect();
    multiway_merge_into(&runs, &mut merged);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlm_core::workload::{generate_keys, InputOrder};
    use parsort::serial::is_sorted;

    fn check(nodes: usize, n: usize, order: InputOrder) {
        let cfg = ClusterConfig::omnipath(nodes);
        let data = generate_keys(n, order, 31);
        let mut expect = data.clone();
        expect.sort_unstable();
        let (got, stats) = cluster_sort(&cfg, &data, 2, (n / 4).max(1));
        assert_eq!(got, expect, "nodes={nodes} n={n} {order:?}");
        assert_eq!(stats.nodes, nodes.max(1));
        assert_eq!(stats.received_per_node.iter().sum::<usize>(), n);
    }

    #[test]
    fn sorts_across_node_counts() {
        for nodes in [1usize, 2, 3, 4, 8] {
            check(nodes, 40_000, InputOrder::Random);
        }
    }

    #[test]
    fn sorts_structured_inputs() {
        check(4, 30_000, InputOrder::Reverse);
        check(4, 30_000, InputOrder::Sorted);
    }

    #[test]
    fn handles_duplicates_and_tiny_inputs() {
        let cfg = ClusterConfig::omnipath(4);
        let data = vec![7i64; 10_000];
        let (got, _) = cluster_sort(&cfg, &data, 2, 1000);
        assert_eq!(got, data);

        let (got, _) = cluster_sort::<i64>(&cfg, &[], 2, 10);
        assert!(got.is_empty());

        let (got, _) = cluster_sort(&cfg, &[3i64, 1, 2], 2, 10);
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn psrs_load_balance_bound_holds() {
        // PSRS with regular sampling bounds each node's final share by
        // ~2x the ideal. Check a looser 3x bound on random data.
        let cfg = ClusterConfig::omnipath(8);
        let n = 160_000;
        let data = generate_keys(n, InputOrder::Random, 5);
        let (got, stats) = cluster_sort(&cfg, &data, 2, 10_000);
        assert!(is_sorted(&got));
        let ideal = n / 8;
        for (i, &r) in stats.received_per_node.iter().enumerate() {
            assert!(r < 3 * ideal, "node {i} got {r} of ideal {ideal}");
        }
    }

    #[test]
    fn skewed_input_still_sorts() {
        // Heavy skew: 90% of keys identical, the rest random.
        let mut data = vec![5i64; 45_000];
        data.extend(generate_keys(5_000, InputOrder::Random, 2));
        let mut expect = data.clone();
        expect.sort_unstable();
        let cfg = ClusterConfig::omnipath(4);
        let (got, _) = cluster_sort(&cfg, &data, 2, 10_000);
        assert_eq!(got, expect);
    }
}
