//! Benchmarks of the k-way merge machinery, including the loser-tree vs
//! repeated-two-way ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlm_core::workload::SplitMix64;
use parsort::merge::merge_into;
use parsort::multiway::{multiseq_select, multiway_merge_into, parallel_multiway_merge_into};
use parsort::pool::WorkPool;
use std::hint::black_box;

const TOTAL: usize = 1 << 20;

fn sorted_runs(k: usize) -> Vec<Vec<i64>> {
    let mut rng = SplitMix64::new(9);
    (0..k)
        .map(|_| {
            let mut v: Vec<i64> = (0..TOTAL / k).map(|_| rng.next_i64() % 1_000_000).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_loser_tree_fanin(c: &mut Criterion) {
    let mut g = c.benchmark_group("loser_tree_fanin");
    g.throughput(Throughput::Elements(TOTAL as u64));
    g.sample_size(10);
    for k in [2usize, 8, 32, 256] {
        let runs_owned = sorted_runs(k);
        g.bench_with_input(
            BenchmarkId::from_parameter(k),
            &runs_owned,
            |b, runs_owned| {
                let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
                let total: usize = runs.iter().map(|r| r.len()).sum();
                let mut out = vec![0i64; total];
                b.iter(|| {
                    multiway_merge_into(black_box(&runs), black_box(&mut out));
                    black_box(out.len())
                })
            },
        );
    }
    g.finish();
}

/// Ablation: one k-way loser-tree merge vs a binary tree of two-way merges.
fn bench_ablation_multiway_vs_cascade(c: &mut Criterion) {
    let k = 32usize;
    let runs_owned = sorted_runs(k);
    let total: usize = runs_owned.iter().map(|r| r.len()).sum();
    let mut g = c.benchmark_group("ablation_kway_merge");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);

    g.bench_function("loser_tree_single_pass", |b| {
        let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0i64; total];
        b.iter(|| {
            multiway_merge_into(black_box(&runs), black_box(&mut out));
            black_box(out.len())
        })
    });

    g.bench_function("cascaded_two_way", |b| {
        b.iter(|| {
            // log2(k) passes of pairwise merges.
            let mut layer: Vec<Vec<i64>> = runs_owned.clone();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                let mut it = layer.chunks(2);
                for pair in &mut it {
                    if pair.len() == 2 {
                        let mut out = vec![0i64; pair[0].len() + pair[1].len()];
                        merge_into(&pair[0], &pair[1], &mut out);
                        next.push(out);
                    } else {
                        next.push(pair[0].clone());
                    }
                }
                layer = next;
            }
            black_box(layer[0].len())
        })
    });
    g.finish();
}

fn bench_parallel_multiway(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let runs_owned = sorted_runs(16);
    let total: usize = runs_owned.iter().map(|r| r.len()).sum();
    let mut g = c.benchmark_group("parallel_multiway_merge");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);
    g.bench_function("16_runs", |b| {
        let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![0i64; total];
        b.iter(|| {
            parallel_multiway_merge_into(&pool, black_box(&runs), black_box(&mut out));
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_multiseq_select(c: &mut Criterion) {
    let runs_owned = sorted_runs(64);
    let runs: Vec<&[i64]> = runs_owned.iter().map(|r| r.as_slice()).collect();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    c.bench_function("multiseq_select_median", |b| {
        b.iter(|| black_box(multiseq_select(black_box(&runs), total / 2)))
    });
}

criterion_group!(
    benches,
    bench_loser_tree_fanin,
    bench_ablation_multiway_vs_cascade,
    bench_parallel_multiway,
    bench_multiseq_select
);
criterion_main!(benches);
