//! Ablation benchmarks over the *simulated* machine for the design choices
//! DESIGN.md calls out: lockstep vs dataflow pipelines, serial vs parallel
//! chunk sorts, explicit copies vs implicit caching, and hybrid-mode
//! chunk-size limits.

use criterion::{criterion_group, criterion_main, Criterion};
use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_core::pipeline::{sim::build_program, Placement, PipelineSpec};
use mlm_core::sort::sim::build_sort_program;
use mlm_core::{Calibration, InputOrder, SortAlgorithm, SortWorkload};
use std::hint::black_box;

fn pipeline_spec(lockstep: bool) -> PipelineSpec {
    PipelineSpec {
        total_bytes: 14_900_000_000,
        chunk_bytes: 250_000_000,
        p_in: 8,
        p_out: 8,
        p_comp: 240,
        compute_passes: 4,
        compute_rate: 1.4e9,
        copy_rate: 4.8e9,
        placement: Placement::Hbw,
        lockstep,
        data_addr: 0,
    }
}

/// The paper leaves non-lockstep ("a slightly different approach might
/// allow hiding the copy-in latency") as future work; measure both.
fn bench_lockstep_vs_dataflow(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let sim = Simulator::new(machine);
    let mut g = c.benchmark_group("ablation_lockstep");
    g.sample_size(10);
    for (name, lockstep) in [("lockstep", true), ("dataflow", false)] {
        let prog = build_program(&pipeline_spec(lockstep)).unwrap();
        g.bench_function(name, |b| b.iter(|| black_box(sim.run(&prog).unwrap().makespan)));
    }
    // Also report the virtual-time outcomes once, as the actual ablation.
    for (name, lockstep) in [("lockstep", true), ("dataflow", false)] {
        let prog = build_program(&pipeline_spec(lockstep)).unwrap();
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_lockstep/{name}: {t:.3} virtual s");
    }
    g.finish();
}

/// MLM-sort's serial chunk sorts vs the basic algorithm's parallel sort.
fn bench_serial_vs_parallel_chunks(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let cal = Calibration::default();
    let w = SortWorkload::int64(2_000_000_000, InputOrder::Random);
    let sim = Simulator::new(machine.clone());
    let mut g = c.benchmark_group("ablation_chunk_sort_style");
    g.sample_size(10);
    for (name, alg) in [
        ("mlm_serial_chunks", SortAlgorithm::MlmSort),
        ("basic_parallel_chunks", SortAlgorithm::BasicChunked),
    ] {
        let prog = build_sort_program(&machine, &cal, w, alg, 1_000_000_000, 256).unwrap();
        g.bench_function(name, |b| b.iter(|| black_box(sim.run(&prog).unwrap().makespan)));
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_chunk_sort_style/{name}: {t:.3} virtual s");
    }
    g.finish();
}

/// Explicit staging vs implicit caching at equal megachunk size.
fn bench_explicit_vs_implicit(c: &mut Criterion) {
    let cal = Calibration::default();
    let w = SortWorkload::int64(2_000_000_000, InputOrder::Random);
    let mut g = c.benchmark_group("ablation_explicit_vs_implicit");
    g.sample_size(10);
    for (name, alg, mode) in [
        ("explicit_flat", SortAlgorithm::MlmSort, MemMode::Flat),
        ("implicit_cache", SortAlgorithm::MlmImplicit, MemMode::Cache),
    ] {
        let machine = MachineConfig::knl_7250(mode);
        let prog = build_sort_program(&machine, &cal, w, alg, 1_000_000_000, 256).unwrap();
        let sim = Simulator::new(machine);
        g.bench_function(name, |b| b.iter(|| black_box(sim.run(&prog).unwrap().makespan)));
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_explicit_vs_implicit/{name}: {t:.3} virtual s");
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lockstep_vs_dataflow,
    bench_serial_vs_parallel_chunks,
    bench_explicit_vs_implicit
);
criterion_main!(benches);
