//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! lockstep vs dataflow pipelines (both on the simulated machine and on
//! real host threads), serial vs parallel chunk sorts, explicit copies vs
//! implicit caching, and hybrid-mode chunk-size limits.

use criterion::{criterion_group, criterion_main, Criterion};
use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_core::merge_bench::merge_kernel;
use mlm_core::pipeline::host::{run_host_pipeline, run_host_pipeline_dataflow, HostStagePools};
use mlm_core::pipeline::{PipelineSpec, Placement, Workload};
use mlm_core::sort::sim::build_sort_program;
use mlm_core::workload::generate_keys;
use mlm_core::{Calibration, InputOrder, SortAlgorithm, SortWorkload};
use parsort::pool::WorkPool;
use std::hint::black_box;

fn pipeline_spec(lockstep: bool) -> PipelineSpec {
    PipelineSpec {
        total_bytes: 14_900_000_000,
        chunk_bytes: 250_000_000,
        p_in: 8,
        p_out: 8,
        p_comp: 240,
        compute_passes: 4,
        compute_rate: 1.4e9,
        copy_rate: 4.8e9,
        placement: Placement::Hbw,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    }
}

/// A copy-bound variant of the same spec: one compute pass and few copy
/// threads, so each lockstep step pays for its copies and the decoupling
/// has latency to hide.
fn copy_bound_spec(lockstep: bool) -> PipelineSpec {
    PipelineSpec {
        p_in: 2,
        p_out: 2,
        compute_passes: 1,
        ..pipeline_spec(lockstep)
    }
}

/// Lint the spec against the bench machine and lower it — a bad sweep
/// fails here with structured diagnostics, not deep inside the engine.
fn checked(spec: &PipelineSpec, sim: &Simulator) -> knl_sim::Program {
    let (prog, _report) =
        mlm_verify::checked_program(&mlm_verify::VerifyTarget::new(spec, sim.config()))
            .expect("bench spec rejected by mlm-verify");
    prog
}

/// The paper leaves non-lockstep ("a slightly different approach might
/// allow hiding the copy-in latency") as future work; measure both.
fn bench_lockstep_vs_dataflow(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let sim = Simulator::new(machine);
    let mut g = c.benchmark_group("ablation_lockstep");
    g.sample_size(10);
    for (name, lockstep) in [("lockstep", true), ("dataflow", false)] {
        let prog = checked(&pipeline_spec(lockstep), &sim);
        g.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(&prog).unwrap().makespan))
        });
    }
    // Also report the virtual-time outcomes once, as the actual ablation —
    // on the compute-bound paper spec and on a copy-bound variant, where
    // decoupling the stages actually has copy latency to hide.
    for (name, lockstep) in [("lockstep", true), ("dataflow", false)] {
        let prog = checked(&pipeline_spec(lockstep), &sim);
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_lockstep/{name}: {t:.3} virtual s");
    }
    for (name, lockstep) in [("lockstep", true), ("dataflow", false)] {
        let prog = checked(&copy_bound_spec(lockstep), &sim);
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_lockstep/copy_bound_{name}: {t:.3} virtual s");
    }
    g.finish();
}

/// The same lockstep-vs-dataflow ablation on *real* host threads: a
/// copy-bound spec (cheap kernel, so the copy stages dominate) where the
/// decoupled stage pools can hide copy latency that lockstep's per-step
/// barrier exposes. Per-stage busy/wait times from `HostRunStats` are
/// printed once after the timed runs.
fn bench_host_lockstep_vs_dataflow(c: &mut Criterion) {
    const N: usize = 1 << 21;
    let (p_in, p_out, p_comp) = (2usize, 2usize, 4usize);
    let spec = |lockstep: bool| PipelineSpec {
        total_bytes: (N * 8) as u64,
        chunk_bytes: (N * 8 / 8) as u64,
        p_in,
        p_out,
        p_comp,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    };
    // Both schedules run the same spec; gate it once before any work.
    mlm_bench::verify::lint_host_spec(&spec(true));
    let data = generate_keys(N, InputOrder::Random, 11);
    let shared = WorkPool::new(p_in + p_out + p_comp);
    let pools = HostStagePools::new(p_in, p_comp, p_out);
    // One pass of the merge kernel keeps compute light: copy-bound.
    let kernel = |slice: &mut [i64], _: mlm_core::pipeline::host::KernelCtx| merge_kernel(slice, 1);

    let mut g = c.benchmark_group("ablation_host_lockstep");
    g.sample_size(10);
    g.bench_function("lockstep", |b| {
        let mut out = vec![0i64; N];
        let s = spec(true);
        b.iter(|| {
            run_host_pipeline(&shared, &s, black_box(&data), black_box(&mut out), kernel);
            black_box(out.len())
        })
    });
    g.bench_function("dataflow", |b| {
        let mut out = vec![0i64; N];
        let s = spec(false);
        b.iter(|| {
            run_host_pipeline_dataflow(&pools, &s, black_box(&data), black_box(&mut out), kernel);
            black_box(out.len())
        })
    });
    // Report the per-stage accounting once, as the actual ablation.
    let mut out = vec![0i64; N];
    let lock = run_host_pipeline(&shared, &spec(true), &data, &mut out, kernel);
    let flow = run_host_pipeline_dataflow(&pools, &spec(false), &data, &mut out, kernel);
    for (name, stats) in [("lockstep", lock), ("dataflow", flow)] {
        eprintln!(
            "ablation_host_lockstep/{name}: {:.2} ms | occupancy in {:.2} comp {:.2} out {:.2} \
             | wait in {:.1} ms comp {:.1} ms out {:.1} ms",
            stats.elapsed.as_secs_f64() * 1e3,
            stats.copy_in.occupancy(stats.elapsed),
            stats.compute.occupancy(stats.elapsed),
            stats.copy_out.occupancy(stats.elapsed),
            stats.copy_in.wait.as_secs_f64() * 1e3,
            stats.compute.wait.as_secs_f64() * 1e3,
            stats.copy_out.wait.as_secs_f64() * 1e3,
        );
    }
    g.finish();
}

/// MLM-sort's serial chunk sorts vs the basic algorithm's parallel sort.
fn bench_serial_vs_parallel_chunks(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let cal = Calibration::default();
    let w = SortWorkload::int64(2_000_000_000, InputOrder::Random);
    let sim = Simulator::new(machine.clone());
    let mut g = c.benchmark_group("ablation_chunk_sort_style");
    g.sample_size(10);
    for (name, alg) in [
        ("mlm_serial_chunks", SortAlgorithm::MlmSort),
        ("basic_parallel_chunks", SortAlgorithm::BasicChunked),
    ] {
        let prog = build_sort_program(&machine, &cal, w, alg, 1_000_000_000, 256).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(&prog).unwrap().makespan))
        });
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_chunk_sort_style/{name}: {t:.3} virtual s");
    }
    g.finish();
}

/// Explicit staging vs implicit caching at equal megachunk size.
fn bench_explicit_vs_implicit(c: &mut Criterion) {
    let cal = Calibration::default();
    let w = SortWorkload::int64(2_000_000_000, InputOrder::Random);
    let mut g = c.benchmark_group("ablation_explicit_vs_implicit");
    g.sample_size(10);
    for (name, alg, mode) in [
        ("explicit_flat", SortAlgorithm::MlmSort, MemMode::Flat),
        ("implicit_cache", SortAlgorithm::MlmImplicit, MemMode::Cache),
    ] {
        let machine = MachineConfig::knl_7250(mode);
        let prog = build_sort_program(&machine, &cal, w, alg, 1_000_000_000, 256).unwrap();
        let sim = Simulator::new(machine);
        g.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(&prog).unwrap().makespan))
        });
        let t = sim.run(&prog).unwrap().makespan;
        eprintln!("ablation_explicit_vs_implicit/{name}: {t:.3} virtual s");
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lockstep_vs_dataflow,
    bench_host_lockstep_vs_dataflow,
    bench_serial_vs_parallel_chunks,
    bench_explicit_vs_implicit
);
criterion_main!(benches);
