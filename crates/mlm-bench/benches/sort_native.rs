//! Native benchmarks of the sorting substrate: serial introsort on the
//! paper's two input orders, the GNU-stand-in parallel mergesort, and the
//! MLM-sort variants (host backend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlm_core::sort::host::{mlm_sort, run_host_sort};
use mlm_core::workload::{generate_keys, InputOrder};
use mlm_core::SortAlgorithm;
use parsort::funnel::funnelsort;
use parsort::parallel::parallel_mergesort;
use parsort::pool::WorkPool;
use parsort::radix::radix_sort;
use parsort::serial::introsort;
use std::hint::black_box;

const N: usize = 1 << 20;

fn bench_serial_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_introsort");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for order in [InputOrder::Random, InputOrder::Reverse, InputOrder::Sorted] {
        let keys = generate_keys(N, order, 42);
        g.bench_with_input(
            BenchmarkId::from_parameter(order.label()),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut v = keys.clone();
                    introsort(black_box(&mut v));
                    black_box(v.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_parallel_sort(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let mut g = c.benchmark_group("parallel_mergesort");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for order in [InputOrder::Random, InputOrder::Reverse] {
        let keys = generate_keys(N, order, 42);
        g.bench_with_input(
            BenchmarkId::from_parameter(order.label()),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut v = keys.clone();
                    parallel_mergesort(&pool, black_box(&mut v));
                    black_box(v.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_sort_variants(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let keys = generate_keys(N, InputOrder::Random, 42);
    let mut g = c.benchmark_group("table1_variants_host");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for alg in SortAlgorithm::TABLE1 {
        g.bench_with_input(
            BenchmarkId::from_parameter(alg.label()),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut v = keys.clone();
                    run_host_sort(&pool, alg, black_box(&mut v), N / 4);
                    black_box(v.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_megachunk_sweep(c: &mut Criterion) {
    // Host-scale analogue of Figure 7: MLM-sort time vs megachunk size.
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let keys = generate_keys(N, InputOrder::Random, 42);
    let mut g = c.benchmark_group("fig7_host_megachunk");
    g.sample_size(10);
    for mega in [N / 16, N / 4, N] {
        g.bench_with_input(BenchmarkId::from_parameter(mega), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                mlm_sort(&pool, black_box(&mut v), mega, true);
                black_box(v.len())
            })
        });
    }
    g.finish();
}

/// §2.1 ablation: the cache-aware introsort (what MLM-sort tunes per
/// machine) vs the cache-oblivious funnelsort (what Frigo et al. suggest
/// needs no tuning).
fn bench_cache_aware_vs_oblivious(c: &mut Criterion) {
    let keys = generate_keys(N, InputOrder::Random, 42);
    let mut g = c.benchmark_group("ablation_cache_obliviousness");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("introsort_cache_aware", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            introsort(black_box(&mut v));
            black_box(v.len())
        })
    });
    g.bench_function("funnelsort_cache_oblivious", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            funnelsort(black_box(&mut v));
            black_box(v.len())
        })
    });
    g.bench_function("radix_bandwidth_bound", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            radix_sort(black_box(&mut v));
            black_box(v.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_serial_sort,
    bench_parallel_sort,
    bench_sort_variants,
    bench_megachunk_sweep,
    bench_cache_aware_vs_oblivious
);
criterion_main!(benches);
