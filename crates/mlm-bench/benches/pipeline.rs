//! Host-pipeline benchmarks: chunked triple-buffered streaming vs an
//! unchunked pass, and the copy-thread split.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlm_core::merge_bench::merge_kernel;
use mlm_core::pipeline::host::{run_host_pipeline, run_host_pipeline_dataflow, HostStagePools};
use mlm_core::pipeline::{PipelineSpec, Placement, Workload};
use mlm_core::workload::generate_keys;
use parsort::pool::WorkPool;
use std::hint::black_box;

const N: usize = 1 << 21;

fn spec(p_copy: usize, p_comp: usize, placement: Placement) -> PipelineSpec {
    PipelineSpec {
        total_bytes: (N * 8) as u64,
        chunk_bytes: (N * 8 / 8) as u64,
        p_in: p_copy,
        p_out: p_copy,
        p_comp,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn bench_pipeline_vs_direct(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let data = generate_keys(N, mlm_core::InputOrder::Random, 3);
    let mut g = c.benchmark_group("host_pipeline");
    g.throughput(Throughput::Bytes((N * 8) as u64));
    g.sample_size(10);

    g.bench_function("chunked_triple_buffered", |b| {
        let mut out = vec![0i64; N];
        let s = spec(1.max(threads / 4), 1.max(threads / 2), Placement::Hbw);
        mlm_bench::verify::lint_host_spec(&s);
        b.iter(|| {
            run_host_pipeline(
                &pool,
                &s,
                black_box(&data),
                black_box(&mut out),
                |slice, _| merge_kernel(slice, 1),
            );
            black_box(out.len())
        })
    });

    g.bench_function("chunked_dataflow_stage_pools", |b| {
        let mut out = vec![0i64; N];
        let mut s = spec(1.max(threads / 4), 1.max(threads / 2), Placement::Hbw);
        s.lockstep = false;
        mlm_bench::verify::lint_host_spec(&s);
        // Persistent stage pools, as a long-lived dataflow caller would use.
        let pools = HostStagePools::for_spec(&s);
        b.iter(|| {
            let stats = run_host_pipeline_dataflow(
                &pools,
                &s,
                black_box(&data),
                black_box(&mut out),
                |slice, _| merge_kernel(slice, 1),
            );
            black_box((out.len(), stats.compute.busy))
        })
    });

    g.bench_function("implicit_no_copies", |b| {
        let mut out = vec![0i64; N];
        let mut s = spec(0, threads, Placement::Implicit);
        s.p_in = 0;
        s.p_out = 0;
        mlm_bench::verify::lint_host_spec(&s);
        b.iter(|| {
            run_host_pipeline(
                &pool,
                &s,
                black_box(&data),
                black_box(&mut out),
                |slice, _| merge_kernel(slice, 1),
            );
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_copy_thread_split(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let data = generate_keys(N, mlm_core::InputOrder::Random, 3);
    let mut g = c.benchmark_group("copy_thread_split");
    g.throughput(Throughput::Bytes((N * 8) as u64));
    g.sample_size(10);
    for p_copy in [1usize, 2, 4] {
        if 2 * p_copy >= threads {
            continue;
        }
        let s = spec(p_copy, threads - 2 * p_copy, Placement::Hbw);
        mlm_bench::verify::lint_host_spec(&s);
        g.bench_with_input(BenchmarkId::from_parameter(p_copy), &s, |b, s| {
            let mut out = vec![0i64; N];
            b.iter(|| {
                run_host_pipeline(
                    &pool,
                    s,
                    black_box(&data),
                    black_box(&mut out),
                    |slice, _| merge_kernel(slice, 4),
                );
                black_box(out.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline_vs_direct, bench_copy_thread_split);
criterion_main!(benches);
