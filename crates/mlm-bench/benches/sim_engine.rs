//! Simulator performance: how fast the DES regenerates paper experiments,
//! plus the bandwidth-arbiter microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knl_sim::bandwidth::{allocate_rates, FlowSpec};
use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_bench::experiments::simulate_sort;
use mlm_bench::sim_bench::{build_program, Family};
use mlm_core::merge_bench::{merge_bench_program, MergeBenchParams};
use mlm_core::{Calibration, InputOrder, SortAlgorithm};
use std::hint::black_box;

fn bench_water_filling(c: &mut Criterion) {
    let mut g = c.benchmark_group("bandwidth_arbiter");
    for n in [16usize, 64, 256] {
        let flows: Vec<FlowSpec> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    FlowSpec {
                        demand: vec![(0, 1.0), (1, 1.0)],
                        cap: 4.8e9,
                    }
                } else {
                    FlowSpec::single(1, 1.0, 6.78e9)
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, flows| {
            b.iter(|| black_box(allocate_rates(&[90e9, 400e9], black_box(flows))))
        });
    }
    g.finish();
}

fn bench_table1_cell(c: &mut Criterion) {
    let cal = Calibration::default();
    let mut g = c.benchmark_group("sim_table1_cell");
    g.sample_size(10);
    for alg in [
        SortAlgorithm::GnuFlat,
        SortAlgorithm::MlmSort,
        SortAlgorithm::MlmImplicit,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(alg.label()), &alg, |b, &alg| {
            b.iter(|| {
                black_box(simulate_sort(&cal, 2_000_000_000, InputOrder::Random, alg).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_merge_bench_run(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let cal = Calibration::default();
    let mut g = c.benchmark_group("sim_merge_bench");
    g.sample_size(10);
    g.bench_function("16copy_8repeats", |b| {
        let params = MergeBenchParams::paper(16, 8);
        let prog = merge_bench_program(&machine, &cal, &params).unwrap();
        let sim = Simulator::new(machine.clone());
        b.iter(|| black_box(sim.run(&prog).unwrap().makespan))
    });
    g.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let sim = Simulator::new(MachineConfig::knl_7250(MemMode::Flat));
    let mut g = c.benchmark_group("sim_engine_throughput");
    g.sample_size(10);
    for (family, threads, ops) in [
        (Family::Fanout, 64, 100),
        (Family::Pipeline, 48, 60),
        (Family::BarrierStorm, 64, 100),
    ] {
        let prog = build_program(family, threads, ops);
        let label = format!("{}-{}x{}", family.name(), threads, ops);
        g.bench_function(&label, |b| {
            b.iter(|| black_box(sim.run(black_box(&prog)).unwrap().makespan))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_water_filling,
    bench_table1_cell,
    bench_merge_bench_run,
    bench_engine_throughput
);
criterion_main!(benches);
