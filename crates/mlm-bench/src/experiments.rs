//! Drivers that regenerate every table and figure of the evaluation.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{MemLevel, Simulator};
use mlm_core::merge_bench::{
    empirical_optimal_copy_threads, merge_kernel, simulate_merge_bench, MergeBenchParams,
};
use mlm_core::model::ModelParams;
use mlm_core::pipeline::host::{run_host_pipeline, HostRunStats};
use mlm_core::pipeline::Workload;
use mlm_core::pipeline::{PipelineSpec, Placement};
use mlm_core::sort::sim::build_sort_program;
use mlm_core::workload::generate_keys;
use mlm_core::{Calibration, InputOrder, SortAlgorithm, SortWorkload};
use parsort::pool::WorkPool;

use crate::paper::{self, paper_megachunk};
use crate::{BILLION, PAPER_THREADS};

/// One simulated Table 1 cell, paired with the paper's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Problem size in elements.
    pub elements: u64,
    /// Input ordering.
    pub order: InputOrder,
    /// Algorithm variant.
    pub algorithm: SortAlgorithm,
    /// Simulated virtual seconds.
    pub sim_seconds: f64,
    /// The paper's measured mean, seconds.
    pub paper_mean: f64,
    /// The paper's standard deviation, seconds.
    pub paper_std: f64,
}

/// The machine mode each Table-1 variant runs under.
pub fn machine_for(algorithm: SortAlgorithm) -> MachineConfig {
    let mode = if algorithm.needs_cache_mode() {
        MemMode::Cache
    } else {
        MemMode::Flat
    };
    MachineConfig::knl_7250(mode)
}

/// The megachunk each variant uses at problem size `n` (§4.1: MLM-implicit
/// uses megachunk = problem size; the others use the 1 B / 1.5 B rule; the
/// GNU baselines are unchunked, so the value is inert for them).
pub fn megachunk_for(algorithm: SortAlgorithm, n: u64) -> u64 {
    match algorithm {
        SortAlgorithm::MlmImplicit => n,
        SortAlgorithm::BasicChunked => paper_megachunk(n).min(BILLION), // must fit MCDRAM/2
        _ => paper_megachunk(n),
    }
}

/// Simulate one Table-1 cell.
pub fn simulate_sort(
    cal: &Calibration,
    n: u64,
    order: InputOrder,
    algorithm: SortAlgorithm,
) -> Result<f64, String> {
    let machine = machine_for(algorithm);
    let w = SortWorkload::int64(n, order);
    let prog = build_sort_program(
        &machine,
        cal,
        w,
        algorithm,
        megachunk_for(algorithm, n),
        PAPER_THREADS,
    )?;
    let report = Simulator::new(machine)
        .run(&prog)
        .map_err(|e| e.to_string())?;
    Ok(report.makespan)
}

/// Regenerate Table 1: all 30 (size, order, algorithm) cells.
pub fn table1(cal: &Calibration) -> Result<Vec<Table1Row>, String> {
    let mut rows = Vec::with_capacity(30);
    for &n in &[2 * BILLION, 4 * BILLION, 6 * BILLION] {
        for order in InputOrder::PAPER {
            for algorithm in SortAlgorithm::TABLE1 {
                let sim_seconds = simulate_sort(cal, n, order, algorithm)?;
                let p = paper::table1_row(n, order, algorithm)
                    .ok_or_else(|| format!("no paper row for {n} {order:?} {algorithm:?}"))?;
                rows.push(Table1Row {
                    elements: n,
                    order,
                    algorithm,
                    sim_seconds,
                    paper_mean: p.mean,
                    paper_std: p.std_dev,
                });
            }
        }
    }
    Ok(rows)
}

/// One Figure-6 bar: speedup of a variant over GNU-flat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Bar {
    /// Problem size in elements.
    pub elements: u64,
    /// Input ordering (panel a = random, panel b = reverse).
    pub order: InputOrder,
    /// Algorithm variant (GNU-flat itself is the 1.0 baseline).
    pub algorithm: SortAlgorithm,
    /// Simulated speedup over GNU-flat.
    pub sim_speedup: f64,
    /// The paper's speedup (from its Table 1 means).
    pub paper_speedup: f64,
}

/// Regenerate Figure 6 from Table-1 rows (both panels).
pub fn fig6(rows: &[Table1Row]) -> Vec<Fig6Bar> {
    let mut bars = Vec::new();
    for &n in &[2 * BILLION, 4 * BILLION, 6 * BILLION] {
        for order in InputOrder::PAPER {
            let base = rows
                .iter()
                .find(|r| {
                    r.elements == n && r.order == order && r.algorithm == SortAlgorithm::GnuFlat
                })
                .expect("GNU-flat row present");
            for r in rows.iter().filter(|r| r.elements == n && r.order == order) {
                bars.push(Fig6Bar {
                    elements: n,
                    order,
                    algorithm: r.algorithm,
                    sim_speedup: base.sim_seconds / r.sim_seconds,
                    paper_speedup: base.paper_mean / r.paper_mean,
                });
            }
        }
    }
    bars
}

/// One Figure-7 point: chunked sort time at a given megachunk size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Point {
    /// Variant (MLM-sort in flat mode or MLM-implicit in cache mode).
    pub algorithm: SortAlgorithm,
    /// Megachunk size in elements.
    pub megachunk_elems: u64,
    /// Simulated seconds (None when infeasible, e.g. megachunk > MCDRAM in
    /// flat mode — the constraint Figure 7's caption highlights).
    pub seconds: Option<f64>,
}

/// Regenerate Figure 7: 6-billion-element sort, sweeping megachunk size.
/// MLM-implicit keeps improving past the MCDRAM capacity boundary where
/// MLM-sort becomes infeasible.
pub fn fig7(cal: &Calibration) -> Vec<Fig7Point> {
    let n = 6 * BILLION;
    let sweep: [u64; 8] = [
        BILLION / 8,
        BILLION / 4,
        BILLION / 2,
        BILLION,
        3 * BILLION / 2,
        2 * BILLION,
        3 * BILLION,
        6 * BILLION,
    ];
    let mut points = Vec::new();
    for alg in [SortAlgorithm::MlmSort, SortAlgorithm::MlmImplicit] {
        for &mega in &sweep {
            let machine = machine_for(alg);
            let w = SortWorkload::int64(n, InputOrder::Random);
            let seconds = build_sort_program(&machine, cal, w, alg, mega, PAPER_THREADS)
                .ok()
                .and_then(|prog| Simulator::new(machine).run(&prog).ok())
                .map(|r| r.makespan);
            points.push(Fig7Point {
                algorithm: alg,
                megachunk_elems: mega,
                seconds,
            });
        }
    }
    points
}

/// One Figure-8 series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Merge repetitions.
    pub repeats: u32,
    /// Copy-in threads (= copy-out threads).
    pub copy_threads: usize,
    /// Model-predicted seconds (panel a).
    pub model_seconds: Option<f64>,
    /// Simulated "empirical" seconds (panel b).
    pub sim_seconds: f64,
}

/// Regenerate Figure 8: model (a) and simulated-empirical (b) times for
/// repeats 1..64 and copy threads 1..32.
pub fn fig8(cal: &Calibration) -> Result<Vec<Fig8Point>, String> {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let model = ModelParams::paper_table2();
    let mut points = Vec::new();
    for &repeats in &[1u32, 2, 4, 8, 16, 32, 64] {
        for &ct in &[1usize, 2, 4, 8, 16, 32] {
            let params = MergeBenchParams::paper(ct, repeats);
            let sim_seconds = simulate_merge_bench(&machine, cal, &params)?;
            points.push(Fig8Point {
                repeats,
                copy_threads: ct,
                model_seconds: model.t_total(ct, repeats),
                sim_seconds,
            });
        }
    }
    Ok(points)
}

/// One Table-3 row: optimal copy threads by three methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Merge repetitions.
    pub repeats: u32,
    /// Our model's optimum (free search over all splits).
    pub model: usize,
    /// Our simulated empirical optimum (powers of two, like the paper).
    pub empirical: usize,
    /// The paper's model column.
    pub paper_model: usize,
    /// The paper's empirical column.
    pub paper_empirical: usize,
}

/// Regenerate Table 3.
pub fn table3(cal: &Calibration) -> Result<Vec<Table3Row>, String> {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let model = ModelParams::paper_table2();
    let candidates = [1usize, 2, 4, 8, 16, 32];
    paper::TABLE3
        .iter()
        .map(|&(repeats, paper_model, paper_empirical)| {
            let (m, _) = model.optimal_copy_threads(repeats);
            let base = MergeBenchParams::paper(1, repeats);
            let (e, _) = empirical_optimal_copy_threads(&machine, cal, &base, &candidates)?;
            Ok(Table3Row {
                repeats,
                model: m,
                empirical: e,
                paper_model,
                paper_empirical,
            })
        })
        .collect()
}

/// Simulated Table 2: the machine constants as measured on the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2 {
    /// Simulated STREAM DDR bandwidth, bytes/s.
    pub ddr_max: f64,
    /// Simulated STREAM MCDRAM bandwidth, bytes/s.
    pub mcdram_max: f64,
    /// Configured per-thread copy rate, bytes/s.
    pub s_copy: f64,
    /// Configured per-thread compute rate, bytes/s.
    pub s_comp: f64,
    /// Data size used by the merge benchmark, bytes.
    pub b_copy: f64,
}

/// Regenerate Table 2 on the simulated machine.
pub fn table2_sim() -> Result<Table2, String> {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let (ddr_max, mcdram_max) =
        mlm_stream::sim::sim_table2(&machine, 68).map_err(|e| e.to_string())?;
    Ok(Table2 {
        ddr_max,
        mcdram_max,
        s_copy: machine.per_thread_copy_bw,
        s_comp: machine.per_thread_compute_bw,
        b_copy: 14.9e9,
    })
}

/// Bender et al. corroboration (§2.3, §4): chunked sorting's speedup over
/// the unchunked baseline and its DDR-traffic reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenderCheck {
    /// Speedup of the basic chunked algorithm over GNU-flat (Bender et
    /// al. predicted ~30%, i.e. 1.3x).
    pub basic_speedup: f64,
    /// DDR traffic of GNU-flat divided by DDR traffic of MLM-sort (Bender
    /// et al. predicted ~2.5x).
    pub ddr_traffic_reduction: f64,
}

/// Run the corroboration experiment at 2 B random elements.
pub fn bender_check(cal: &Calibration) -> Result<BenderCheck, String> {
    let n = 2 * BILLION;
    let w = SortWorkload::int64(n, InputOrder::Random);

    let flat_machine = MachineConfig::knl_7250(MemMode::Flat);
    let gnu = build_sort_program(
        &flat_machine,
        cal,
        w,
        SortAlgorithm::GnuFlat,
        n,
        PAPER_THREADS,
    )?;
    let gnu_report = Simulator::new(flat_machine.clone())
        .run(&gnu)
        .map_err(|e| e.to_string())?;

    let basic = build_sort_program(
        &flat_machine,
        cal,
        w,
        SortAlgorithm::BasicChunked,
        BILLION,
        PAPER_THREADS,
    )?;
    let basic_report = Simulator::new(flat_machine.clone())
        .run(&basic)
        .map_err(|e| e.to_string())?;

    let mlm = build_sort_program(
        &flat_machine,
        cal,
        w,
        SortAlgorithm::MlmSort,
        BILLION,
        PAPER_THREADS,
    )?;
    let mlm_report = Simulator::new(flat_machine)
        .run(&mlm)
        .map_err(|e| e.to_string())?;

    Ok(BenderCheck {
        basic_speedup: gnu_report.makespan / basic_report.makespan,
        ddr_traffic_reduction: gnu_report.traffic_on(MemLevel::Ddr).total() as f64
            / mlm_report.traffic_on(MemLevel::Ddr).total() as f64,
    })
}

/// Agreement between the closed-form model (Eqs. 1–5) and the
/// discrete-event simulator over the Figure-8 grid — the quantitative
/// version of the paper's "use experimental evidence to demonstrate the
/// correctness of the model".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelValidation {
    /// Points compared.
    pub points: usize,
    /// Geometric mean of `max(model/sim, sim/model)` over all points.
    pub geo_mean_ratio: f64,
    /// Worst-case ratio.
    pub worst_ratio: f64,
    /// Fraction of (repeats) rows where model argmin and sim argmin agree
    /// within one power-of-two step.
    pub argmin_agreement: f64,
}

/// Quantify model-vs-simulator agreement on the merge benchmark.
pub fn model_validation(cal: &Calibration) -> Result<ModelValidation, String> {
    let points = fig8(cal)?;
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    let mut worst = 1.0f64;
    for p in &points {
        if let Some(m) = p.model_seconds {
            let ratio = (m / p.sim_seconds).max(p.sim_seconds / m);
            log_sum += ratio.ln();
            worst = worst.max(ratio);
            n += 1;
        }
    }
    // Per-repeats argmin agreement.
    let mut rows = 0usize;
    let mut agree = 0usize;
    for repeats in [1u32, 2, 4, 8, 16, 32, 64] {
        let row: Vec<&Fig8Point> = points.iter().filter(|p| p.repeats == repeats).collect();
        let sim_best = row
            .iter()
            .min_by(|a, b| a.sim_seconds.total_cmp(&b.sim_seconds))
            .map(|p| p.copy_threads)
            .unwrap_or(1);
        let model_best = row
            .iter()
            .filter(|p| p.model_seconds.is_some())
            .min_by(|a, b| {
                a.model_seconds
                    .unwrap()
                    .total_cmp(&b.model_seconds.unwrap())
            })
            .map(|p| p.copy_threads)
            .unwrap_or(1);
        rows += 1;
        let ratio = sim_best.max(model_best) as f64 / sim_best.min(model_best).max(1) as f64;
        if ratio <= 2.0 {
            agree += 1;
        }
    }
    Ok(ModelValidation {
        points: n,
        geo_mean_ratio: (log_sum / n.max(1) as f64).exp(),
        worst_ratio: worst,
        argmin_agreement: agree as f64 / rows as f64,
    })
}

/// One row of the §4.2 hybrid-mode study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPoint {
    /// Fraction of MCDRAM configured as cache (0 = flat).
    pub cache_fraction: f64,
    /// Largest feasible megachunk in elements.
    pub max_megachunk: u64,
    /// MLM-sort time at that megachunk (2 B random int64).
    pub seconds: f64,
    /// Flat-mode MLM-sort at the *same* megachunk — the paper's "given a
    /// chunk size" comparison.
    pub flat_same_chunk: f64,
}

/// §4.2: "hybrid mode shows near identical performance to flat, given a
/// chunk size. Since we prefer large chunk sizes, and the chunk size in
/// hybrid cannot be as large as the chunk size in flat mode, we obtain our
/// best results in either flat or implicit mode."
pub fn hybrid_study(cal: &Calibration) -> Result<Vec<HybridPoint>, String> {
    let n = 2 * BILLION;
    let w = SortWorkload::int64(n, InputOrder::Random);
    let mut out = Vec::new();
    let flat_machine = MachineConfig::knl_7250(MemMode::Flat);
    for &frac in &[0.0f64, 0.25, 0.5, 0.75] {
        let mode = if frac == 0.0 {
            MemMode::Flat
        } else {
            MemMode::Hybrid {
                cache_fraction: frac,
            }
        };
        let machine = MachineConfig::knl_7250(mode);
        let max_megachunk = (machine.addressable_mcdram() / 8).min(n).max(1);
        let prog = build_sort_program(
            &machine,
            cal,
            w,
            SortAlgorithm::MlmSort,
            max_megachunk,
            PAPER_THREADS,
        )?;
        let seconds = Simulator::new(machine)
            .run(&prog)
            .map_err(|e| e.to_string())?
            .makespan;
        let flat_prog = build_sort_program(
            &flat_machine,
            cal,
            w,
            SortAlgorithm::MlmSort,
            max_megachunk,
            PAPER_THREADS,
        )?;
        let flat_same_chunk = Simulator::new(flat_machine.clone())
            .run(&flat_prog)
            .map_err(|e| e.to_string())?
            .makespan;
        out.push(HybridPoint {
            cache_fraction: frac,
            max_megachunk,
            seconds,
            flat_same_chunk,
        });
    }
    Ok(out)
}

/// One row of the radix study: how much MCDRAM chunking is worth for the
/// purely bandwidth-bound radix sort vs the comparison-bound introsort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadixStudyRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// DDR-only time, seconds.
    pub ddr_seconds: f64,
    /// MCDRAM-chunked time, seconds.
    pub mlm_seconds: f64,
    /// Speedup from chunking.
    pub speedup: f64,
}

/// §6 "more benchmarks": LSD radix sort through the chunking framework.
///
/// Radix sort's eight passes are pure streams (no cache-resident
/// recursion), so its per-pass cost follows the serving bus directly —
/// chunking through MCDRAM buys far more for it than for introsort, which
/// is the paper's own closing expectation: "we expect that this will hold
/// for many bandwidth-bound algorithms", strengthened: *the more
/// bandwidth-bound, the more it holds*.
pub fn radix_study(cal: &Calibration) -> Result<Vec<RadixStudyRow>, String> {
    use knl_sim::ops::{Access, OpKind, Place, Program};
    let n = 2 * BILLION;
    let elem = 8u64;
    let mega = BILLION; // 8 GB megachunks, as in Table 1
    let threads = PAPER_THREADS;
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let digits = 8u64; // 64-bit uniform keys exercise all eight passes

    // Radix under the MLM structure: per megachunk, copy in, run the
    // radix passes in the given level, merge out; final multiway merge.
    let radix_time = |in_mcdram: bool| -> Result<f64, String> {
        let mut prog = Program::new(threads);
        let k = n.div_ceil(mega);
        let place = if in_mcdram { Place::Mcdram } else { Place::Ddr };
        let mut barrier: Vec<knl_sim::OpId> = Vec::new();
        for _ in 0..k {
            let bytes = mega * elem;
            let mut phase = Vec::new();
            if in_mcdram {
                // Copy in/out around the passes (out happens via the merge).
                for t in 0..threads {
                    let share =
                        bytes / threads as u64 + u64::from((t as u64) < bytes % threads as u64);
                    if share > 0 {
                        phase.push(prog.push(
                            t,
                            OpKind::copy(
                                Place::Ddr,
                                Place::Mcdram,
                                share,
                                machine.per_thread_copy_bw,
                            ),
                            &barrier,
                        ));
                    }
                }
                barrier = prog.barrier(0..threads, &phase);
                phase = Vec::new();
            }
            // The eight radix passes over each thread's block.
            let block = bytes / threads as u64;
            for t in 0..threads {
                let traffic = block * digits;
                phase.push(prog.push(
                    t,
                    OpKind::Stream {
                        accesses: vec![Access::read(place, traffic), Access::write(place, traffic)],
                        rate_cap: cal.s_radix,
                    },
                    &barrier,
                ));
            }
            barrier = prog.barrier(0..threads, &phase);
            // Merge the per-thread runs out to DDR.
            let rate = cal.multiway_rate(threads);
            let mut merge = Vec::new();
            for t in 0..threads {
                let share = bytes / threads as u64 + u64::from((t as u64) < bytes % threads as u64);
                if share > 0 {
                    merge.push(prog.push(
                        t,
                        OpKind::Stream {
                            accesses: vec![
                                Access::read(place, share),
                                Access::write(Place::Ddr, share),
                            ],
                            rate_cap: rate,
                        },
                        &barrier,
                    ));
                }
            }
            barrier = prog.barrier(0..threads, &merge);
        }
        if k > 1 {
            let rate = cal.multiway_rate(k as usize);
            let mut fin = Vec::new();
            for t in 0..threads {
                let share =
                    n * elem / threads as u64 + u64::from((t as u64) < (n * elem) % threads as u64);
                fin.push(prog.push(
                    t,
                    OpKind::Stream {
                        accesses: vec![
                            Access::read(Place::Ddr, share),
                            Access::write(Place::Ddr, share),
                        ],
                        rate_cap: rate,
                    },
                    &barrier,
                ));
            }
        }
        Ok(Simulator::new(machine.clone())
            .run(&prog)
            .map_err(|e| e.to_string())?
            .makespan)
    };

    let radix_ddr = radix_time(false)?;
    let radix_mlm = radix_time(true)?;
    let intro_ddr = simulate_sort(cal, n, InputOrder::Random, SortAlgorithm::MlmDdr)?;
    let intro_mlm = simulate_sort(cal, n, InputOrder::Random, SortAlgorithm::MlmSort)?;

    Ok(vec![
        RadixStudyRow {
            kernel: "introsort (comparison-bound)",
            ddr_seconds: intro_ddr,
            mlm_seconds: intro_mlm,
            speedup: intro_ddr / intro_mlm,
        },
        RadixStudyRow {
            kernel: "radix (bandwidth-bound)",
            ddr_seconds: radix_ddr,
            mlm_seconds: radix_mlm,
            speedup: radix_ddr / radix_mlm,
        },
    ])
}

/// One design point of the §6 exploration: a hypothetical machine with a
/// scaled near-memory, and how much the paper's algorithm gains on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Near-memory bandwidth as a multiple of DDR bandwidth.
    pub bw_ratio: f64,
    /// Near-memory capacity in GiB.
    pub capacity_gib: u64,
    /// Largest feasible megachunk (elements) on this machine.
    pub megachunk: u64,
    /// Simulated MLM-sort time, seconds.
    pub mlm_seconds: f64,
    /// Simulated GNU-flat time on the same machine, seconds.
    pub gnu_seconds: f64,
    /// Speedup of MLM-sort over GNU-flat.
    pub speedup: f64,
}

/// §6 design-space exploration: sweep the near-memory's bandwidth ratio
/// and capacity and measure what the chunked algorithm is worth on each
/// hypothetical machine (2 B random int64 workload).
///
/// The interesting outputs are the two asymptotes the paper anticipates:
/// at bandwidth ratio 1 the scratchpad is pointless (speedup ≈ the
/// restructuring gain alone), and past the point where compute saturates,
/// extra near-memory bandwidth buys nothing.
pub fn design_space(cal: &Calibration) -> Result<Vec<DesignPoint>, String> {
    let n = 2 * BILLION;
    let w = SortWorkload::int64(n, InputOrder::Random);
    let mut points = Vec::new();
    for &bw_ratio in &[1.0f64, 2.0, 4.44, 8.0] {
        for &capacity_gib in &[4u64, 16, 64] {
            let mut machine = MachineConfig::knl_7250(MemMode::Flat);
            machine.mcdram_bandwidth = machine.ddr_bandwidth * bw_ratio;
            machine.mcdram_capacity = capacity_gib << 30;
            // Largest power-of-two-billion megachunk that fits.
            let elem = 8u64;
            let max_elems = machine.addressable_mcdram() / elem;
            let megachunk = max_elems.min(n).max(1);

            let gnu =
                build_sort_program(&machine, cal, w, SortAlgorithm::GnuFlat, n, PAPER_THREADS)?;
            let gnu_seconds = Simulator::new(machine.clone())
                .run(&gnu)
                .map_err(|e| e.to_string())?
                .makespan;
            let mlm = build_sort_program(
                &machine,
                cal,
                w,
                SortAlgorithm::MlmSort,
                megachunk,
                PAPER_THREADS,
            )?;
            let mlm_seconds = Simulator::new(machine.clone())
                .run(&mlm)
                .map_err(|e| e.to_string())?
                .makespan;
            points.push(DesignPoint {
                bw_ratio,
                capacity_gib,
                megachunk,
                mlm_seconds,
                gnu_seconds,
                speedup: gnu_seconds / mlm_seconds,
            });
        }
    }
    Ok(points)
}

/// One row of the host-pipeline scheduling ablation: the same real
/// (host-executed) workload under the lockstep and dataflow schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostAblationRow {
    /// Workload label ("copy-bound", "balanced", "compute-bound").
    pub workload: &'static str,
    /// Merge-kernel repetitions (the compute-intensity knob).
    pub merge_repeats: u32,
    /// Best-of-`reps` lockstep wall-clock, seconds.
    pub lockstep_seconds: f64,
    /// Best-of-`reps` dataflow wall-clock, seconds.
    pub dataflow_seconds: f64,
    /// `lockstep_seconds / dataflow_seconds`.
    pub dataflow_speedup: f64,
    /// Copy-in stage occupancy of the best dataflow run.
    pub copy_in_occupancy: f64,
    /// Compute stage occupancy of the best dataflow run.
    pub compute_occupancy: f64,
    /// Copy-out stage occupancy of the best dataflow run.
    pub copy_out_occupancy: f64,
}

/// Host-pipeline scheduling ablation: lockstep steps vs decoupled stage
/// pools, on real threads and real buffers.
///
/// The paper's lockstep schedule pays `max(T_copy, T_comp)` per step; the
/// dataflow schedule lets whichever stage is the bottleneck run
/// back-to-back while the others wait on the buffer ring. The per-stage
/// occupancies (busy / (threads x elapsed), from [`HostRunStats`])
/// identify the bottleneck: under dataflow the bottleneck stage's
/// occupancy approaches 1 while the others idle on the ring.
///
/// `n_elems` int64 keys are streamed through 8 chunks; `reps` runs per
/// cell, best wall-clock kept (host timing, so noise is real — the
/// simulator's virtual-time ablation in `benches/ablations.rs` is the
/// noise-free counterpart).
pub fn host_pipeline_ablation(n_elems: usize, reps: usize) -> Vec<HostAblationRow> {
    let (p_in, p_out, p_comp) = (2usize, 2usize, 4usize);
    let shared = WorkPool::new(p_in + p_out + p_comp);
    let data = generate_keys(n_elems, InputOrder::Random, 7);
    let chunk_elems = (n_elems / 8).max(1);
    let spec_for = |lockstep: bool| PipelineSpec {
        total_bytes: (n_elems * 8) as u64,
        chunk_bytes: (chunk_elems * 8) as u64,
        p_in,
        p_out,
        p_comp,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    };

    // Both schedules run the same spec; gate it once before any work.
    crate::verify::lint_host_spec(&spec_for(true));

    let mut rows = Vec::new();
    for (workload, merge_repeats) in [("copy-bound", 1u32), ("balanced", 4), ("compute-bound", 16)]
    {
        let kernel = |slice: &mut [i64], _ctx: mlm_core::pipeline::host::KernelCtx| {
            merge_kernel(slice, merge_repeats)
        };
        let mut out = vec![0i64; n_elems];

        let mut lockstep_best: Option<HostRunStats> = None;
        let lock_spec = spec_for(true);
        for _ in 0..reps.max(1) {
            let stats = run_host_pipeline(&shared, &lock_spec, &data, &mut out, kernel);
            if lockstep_best.is_none_or(|b| stats.elapsed < b.elapsed) {
                lockstep_best = Some(stats);
            }
        }

        // Same entry point as lockstep: the spec's `lockstep: false` is
        // what selects the dataflow backend (dedicated stage pools are
        // sized from the spec inside the adapter).
        let mut dataflow_best: Option<HostRunStats> = None;
        let flow_spec = spec_for(false);
        for _ in 0..reps.max(1) {
            let stats = run_host_pipeline(&shared, &flow_spec, &data, &mut out, kernel);
            if dataflow_best.is_none_or(|b| stats.elapsed < b.elapsed) {
                dataflow_best = Some(stats);
            }
        }

        let lock = lockstep_best.expect("at least one lockstep run");
        let flow = dataflow_best.expect("at least one dataflow run");
        rows.push(HostAblationRow {
            workload,
            merge_repeats,
            lockstep_seconds: lock.elapsed.as_secs_f64(),
            dataflow_seconds: flow.elapsed.as_secs_f64(),
            dataflow_speedup: lock.elapsed.as_secs_f64() / flow.elapsed.as_secs_f64(),
            copy_in_occupancy: flow.copy_in.occupancy(flow.elapsed),
            compute_occupancy: flow.compute.occupancy(flow.elapsed),
            copy_out_occupancy: flow.copy_out.occupancy(flow.elapsed),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megachunk_rules() {
        assert_eq!(megachunk_for(SortAlgorithm::MlmSort, 2 * BILLION), BILLION);
        assert_eq!(
            megachunk_for(SortAlgorithm::MlmSort, 6 * BILLION),
            3 * BILLION / 2
        );
        assert_eq!(
            megachunk_for(SortAlgorithm::MlmImplicit, 6 * BILLION),
            6 * BILLION
        );
        assert_eq!(
            megachunk_for(SortAlgorithm::BasicChunked, 6 * BILLION),
            BILLION
        );
    }

    #[test]
    fn machine_modes_match_variants() {
        assert_eq!(machine_for(SortAlgorithm::GnuCache).mode, MemMode::Cache);
        assert_eq!(machine_for(SortAlgorithm::MlmImplicit).mode, MemMode::Cache);
        assert_eq!(machine_for(SortAlgorithm::MlmSort).mode, MemMode::Flat);
        assert_eq!(machine_for(SortAlgorithm::GnuFlat).mode, MemMode::Flat);
    }

    #[test]
    fn table2_sim_reproduces_configured_constants() {
        let t2 = table2_sim().unwrap();
        assert!((t2.ddr_max - 90e9).abs() < 1e6);
        assert!((t2.mcdram_max - 400e9).abs() < 1e6);
        assert_eq!(t2.s_copy, 4.8e9);
        assert_eq!(t2.s_comp, 6.78e9);
    }

    /// The paper's closing expectation, sharpened: the more bandwidth-bound
    /// the kernel, the more MCDRAM chunking is worth.
    #[test]
    fn radix_gains_more_from_chunking_than_introsort() {
        let rows = radix_study(&Calibration::default()).unwrap();
        assert_eq!(rows.len(), 2);
        let intro = rows[0];
        let radix = rows[1];
        assert!(intro.speedup > 1.0, "{intro:?}");
        assert!(radix.speedup > 1.5, "{radix:?}");
        assert!(
            radix.speedup > intro.speedup * 1.3,
            "bandwidth-bound kernel must gain more: {:.2} vs {:.2}",
            radix.speedup,
            intro.speedup
        );
    }

    #[test]
    fn model_tracks_simulator_closely() {
        let v = model_validation(&Calibration::default()).unwrap();
        assert_eq!(v.points, 42);
        assert!(
            v.geo_mean_ratio < 1.25,
            "geo-mean ratio {}",
            v.geo_mean_ratio
        );
        assert!(v.worst_ratio < 2.5, "worst ratio {}", v.worst_ratio);
        assert!(
            v.argmin_agreement >= 5.0 / 7.0,
            "argmin agreement {}",
            v.argmin_agreement
        );
    }

    #[test]
    fn hybrid_fills_the_gap_between_flat_and_nothing() {
        let points = hybrid_study(&Calibration::default()).unwrap();
        assert_eq!(points.len(), 4);
        // Capacity claim: the feasible chunk shrinks with the cache share.
        for w in points.windows(2) {
            assert!(w[1].max_megachunk < w[0].max_megachunk);
        }
        // §4.2: "hybrid mode shows near identical performance to flat,
        // given a chunk size" — each hybrid point within 10% of flat at
        // the SAME megachunk.
        for p in &points {
            assert!(
                (p.seconds / p.flat_same_chunk - 1.0).abs() < 0.10,
                "hybrid {:?} strays from same-chunk flat",
                p
            );
        }
        // "We obtain our best results in either flat or implicit mode":
        // no hybrid point beats flat at its maximal chunk.
        let flat_best = points[0].seconds;
        for p in &points[1..] {
            assert!(
                p.seconds >= flat_best * 0.99,
                "{p:?} beats flat {flat_best}"
            );
        }
    }

    #[test]
    fn design_space_has_sane_asymptotes() {
        let cal = Calibration::default();
        let points = design_space(&cal).unwrap();
        assert_eq!(points.len(), 12);
        for p in &points {
            assert!(p.speedup > 0.8, "{p:?}");
        }
        // More near-memory bandwidth never hurts (same capacity).
        for &cap in &[4u64, 16, 64] {
            let series: Vec<&DesignPoint> =
                points.iter().filter(|p| p.capacity_gib == cap).collect();
            for w in series.windows(2) {
                assert!(
                    w[1].mlm_seconds <= w[0].mlm_seconds * 1.001,
                    "bandwidth must not hurt: {:?} -> {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // At the KNL point (4.44x, 16 GiB) the speedup matches Table 1's.
        let knl = points
            .iter()
            .find(|p| (p.bw_ratio - 4.44).abs() < 1e-9 && p.capacity_gib == 16)
            .unwrap();
        assert!(
            (1.2..1.7).contains(&knl.speedup),
            "KNL point speedup {}",
            knl.speedup
        );
    }

    #[test]
    fn host_ablation_runs_and_reports_occupancies() {
        // Small problem: this checks plumbing, not performance.
        let rows = host_pipeline_ablation(1 << 14, 1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.lockstep_seconds > 0.0, "{r:?}");
            assert!(r.dataflow_seconds > 0.0, "{r:?}");
            assert!(r.dataflow_speedup > 0.0, "{r:?}");
            for occ in [
                r.copy_in_occupancy,
                r.compute_occupancy,
                r.copy_out_occupancy,
            ] {
                assert!((0.0..=1.0 + 1e-9).contains(&occ), "{r:?}");
            }
        }
        // More merge repeats cannot make compute cheaper.
        assert!(rows[2].merge_repeats > rows[0].merge_repeats);
    }

    #[test]
    fn fig6_normalizes_to_gnu_flat() {
        let cal = Calibration::default();
        // Use a single size to keep the test quick: synthesize rows.
        let rows: Vec<Table1Row> = table1(&cal).unwrap();
        let bars = fig6(&rows);
        for b in bars
            .iter()
            .filter(|b| b.algorithm == SortAlgorithm::GnuFlat)
        {
            assert!((b.sim_speedup - 1.0).abs() < 1e-12);
            assert!((b.paper_speedup - 1.0).abs() < 1e-12);
        }
        assert_eq!(bars.len(), 30);
    }
}
