//! Calibration: host measurements and fitting against the paper's anchors.
//!
//! Two jobs:
//!
//! 1. **Host characterisation** ([`measure_host`]): run STREAM and the
//!    serial sorts natively to measure the quantities the paper measured
//!    on its KNL — most importantly the *random vs reverse* introsort
//!    throughput ratio, which transfers across machines far better than
//!    absolute rates do.
//! 2. **Anchor fitting** ([`fit_to_anchor`]): choose a single global scale
//!    on the compute-rate constants so the simulated *GNU-flat, 2 B
//!    random* time matches the paper's 11.92 s. One scalar fitted against
//!    one anchor row; all 29 other cells and every figure stay emergent.

use mlm_core::{Calibration, InputOrder, SortAlgorithm};
use parsort::pool::WorkPool;
use parsort::serial::introsort;

use crate::experiments::simulate_sort;
use crate::BILLION;

/// Host measurements relevant to the calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMeasurement {
    /// Native introsort traffic rate on random keys, bytes/s (host scale).
    pub sort_rate_random: f64,
    /// Same on reverse-sorted keys.
    pub sort_rate_reverse: f64,
    /// `sort_rate_reverse / sort_rate_random`.
    pub reverse_ratio: f64,
    /// Native STREAM Triad bandwidth, bytes/s.
    pub triad_bandwidth: f64,
}

/// Measure the host: serial introsort rates on both orders, and STREAM.
pub fn measure_host(n: usize, threads: usize) -> HostMeasurement {
    let pool = WorkPool::new(threads);
    let triad = mlm_stream::host::run_kernel(&pool, mlm_stream::StreamKernel::Triad, n.max(1), 3);

    let cal = Calibration::default();
    let measure_order = |order: InputOrder| -> f64 {
        let mut keys = mlm_core::workload::generate_keys(n, order, 11);
        let start = std::time::Instant::now();
        introsort(&mut keys);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(&keys);
        cal.sort_traffic(n, 8) as f64 / secs
    };
    let sort_rate_random = measure_order(InputOrder::Random);
    let sort_rate_reverse = measure_order(InputOrder::Reverse);

    HostMeasurement {
        sort_rate_random,
        sort_rate_reverse,
        reverse_ratio: sort_rate_reverse / sort_rate_random,
        triad_bandwidth: triad.bandwidth,
    }
}

/// Scale `cal`'s three compute-rate constants by `factor`.
pub fn scale_compute_rates(cal: &Calibration, factor: f64) -> Calibration {
    Calibration {
        s_sort_random: cal.s_sort_random * factor,
        s_sort_reverse: cal.s_sort_reverse * factor,
        s_multiway: cal.s_multiway * factor,
        ..cal.clone()
    }
}

/// Fit the global compute-rate scale so the simulated GNU-flat / 2 B /
/// random time matches the paper's anchor (11.92 s), by bisection on the
/// (monotone) scale factor. Returns the fitted calibration and the
/// residual in seconds.
pub fn fit_to_anchor(base: &Calibration) -> Result<(Calibration, f64), String> {
    const ANCHOR_SECONDS: f64 = 11.92;
    let anchor = |cal: &Calibration| -> Result<f64, String> {
        simulate_sort(cal, 2 * BILLION, InputOrder::Random, SortAlgorithm::GnuFlat)
    };

    // Time decreases as rates increase: bracket the anchor.
    let mut lo = 0.25f64; // slower rates, longer time
    let mut hi = 4.0f64;
    let t_lo = anchor(&scale_compute_rates(base, lo))?;
    let t_hi = anchor(&scale_compute_rates(base, hi))?;
    if !(t_hi <= ANCHOR_SECONDS && ANCHOR_SECONDS <= t_lo) {
        return Err(format!(
            "anchor {ANCHOR_SECONDS} s not bracketed: [{t_hi}, {t_lo}] over scales [0.25, 4]"
        ));
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let t = anchor(&scale_compute_rates(base, mid))?;
        if t > ANCHOR_SECONDS {
            lo = mid; // still too slow: rates must grow
        } else {
            hi = mid;
        }
    }
    let fitted = scale_compute_rates(base, 0.5 * (lo + hi));
    let residual = anchor(&fitted)? - ANCHOR_SECONDS;
    Ok((fitted, residual))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_measurement_is_sane() {
        let m = measure_host(200_000, 2);
        assert!(m.sort_rate_random > 0.0);
        assert!(m.sort_rate_reverse > 0.0);
        assert!(m.triad_bandwidth > 0.0);
        // The structured-input advantage the paper exploits: reverse input
        // sorts meaningfully faster than random.
        assert!(m.reverse_ratio > 1.1, "reverse ratio {}", m.reverse_ratio);
    }

    #[test]
    fn scaling_preserves_other_fields() {
        let base = Calibration::default();
        let scaled = scale_compute_rates(&base, 2.0);
        assert_eq!(scaled.s_sort_random, base.s_sort_random * 2.0);
        assert_eq!(scaled.s_multiway, base.s_multiway * 2.0);
        assert_eq!(scaled.mcdram_boost, base.mcdram_boost);
        assert_eq!(scaled.gnu_efficiency, base.gnu_efficiency);
    }

    #[test]
    fn fit_converges_to_anchor() {
        let (fitted, residual) = fit_to_anchor(&Calibration::default()).unwrap();
        assert!(residual.abs() < 0.05, "residual {residual}");
        fitted.validate().unwrap();
        // The shipped defaults should already be close to the fit.
        let drift = fitted.s_sort_random / Calibration::default().s_sort_random;
        assert!(
            (0.7..1.4).contains(&drift),
            "default drifted {drift}x from fit"
        );
    }
}
