//! The paper's published numbers, embedded for side-by-side comparison.

use mlm_core::{InputOrder, SortAlgorithm};

/// One row of the paper's Table 1 (raw sorting performance, mean of 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable1Row {
    /// Problem size in elements.
    pub elements: u64,
    /// Input ordering.
    pub order: InputOrder,
    /// Algorithm variant.
    pub algorithm: SortAlgorithm,
    /// Mean seconds.
    pub mean: f64,
    /// Standard deviation, seconds.
    pub std_dev: f64,
}

/// The paper's Table 1, verbatim (30 rows).
///
/// Note: the paper's 6B-random MLM-ddr row reads 18.74 s — identical to
/// its 4B-random MLM-ddr row and inconsistent with the 2B→4B scaling; it
/// is flagged in EXPERIMENTS.md as a likely transcription slip in the
/// original and excluded from shape comparisons.
pub const TABLE1: [PaperTable1Row; 30] = {
    use InputOrder::{Random, Reverse};
    use SortAlgorithm::{GnuCache, GnuFlat, MlmDdr, MlmImplicit, MlmSort};
    const fn row(
        elements: u64,
        order: InputOrder,
        algorithm: SortAlgorithm,
        mean: f64,
        std_dev: f64,
    ) -> PaperTable1Row {
        PaperTable1Row {
            elements,
            order,
            algorithm,
            mean,
            std_dev,
        }
    }
    [
        row(2_000_000_000, Random, GnuFlat, 11.92, 0.1662),
        row(2_000_000_000, Random, GnuCache, 9.73, 0.1777),
        row(2_000_000_000, Random, MlmDdr, 9.28, 0.0043),
        row(2_000_000_000, Random, MlmSort, 8.09, 0.0072),
        row(2_000_000_000, Random, MlmImplicit, 7.37, 0.0186),
        row(4_000_000_000, Random, GnuFlat, 24.21, 0.1638),
        row(4_000_000_000, Random, GnuCache, 19.76, 0.1892),
        row(4_000_000_000, Random, MlmDdr, 18.74, 0.0113),
        row(4_000_000_000, Random, MlmSort, 16.28, 0.0080),
        row(4_000_000_000, Random, MlmImplicit, 14.56, 0.2288),
        row(6_000_000_000, Random, GnuFlat, 36.52, 0.2565),
        row(6_000_000_000, Random, GnuCache, 29.53, 0.3412),
        row(6_000_000_000, Random, MlmDdr, 18.74, 0.0113), // sic — see note
        row(6_000_000_000, Random, MlmSort, 22.71, 0.0099),
        row(6_000_000_000, Random, MlmImplicit, 21.66, 0.3154),
        row(2_000_000_000, Reverse, GnuFlat, 7.97, 0.2446),
        row(2_000_000_000, Reverse, GnuCache, 7.19, 0.2069),
        row(2_000_000_000, Reverse, MlmDdr, 4.79, 0.0049),
        row(2_000_000_000, Reverse, MlmSort, 4.46, 0.0128),
        row(2_000_000_000, Reverse, MlmImplicit, 4.10, 0.0183),
        row(4_000_000_000, Reverse, GnuFlat, 16.06, 0.3832),
        row(4_000_000_000, Reverse, GnuCache, 14.27, 0.1739),
        row(4_000_000_000, Reverse, MlmDdr, 9.53, 0.0130),
        row(4_000_000_000, Reverse, MlmSort, 9.02, 0.0129),
        row(4_000_000_000, Reverse, MlmImplicit, 8.31, 0.0098),
        row(6_000_000_000, Reverse, GnuFlat, 23.94, 0.5884),
        row(6_000_000_000, Reverse, GnuCache, 21.85, 0.3622),
        row(6_000_000_000, Reverse, MlmDdr, 14.48, 0.0200),
        row(6_000_000_000, Reverse, MlmSort, 12.56, 0.0086),
        row(6_000_000_000, Reverse, MlmImplicit, 12.76, 0.0159),
    ]
};

/// Look up a Table 1 row.
pub fn table1_row(
    elements: u64,
    order: InputOrder,
    algorithm: SortAlgorithm,
) -> Option<&'static PaperTable1Row> {
    TABLE1
        .iter()
        .find(|r| r.elements == elements && r.order == order && r.algorithm == algorithm)
}

/// The paper's Table 3: repeats → (model optimum, empirical optimum among
/// powers of two).
pub const TABLE3: [(u32, usize, usize); 7] = [
    (1, 10, 16),
    (2, 10, 16),
    (4, 10, 8),
    (8, 8, 4),
    (16, 3, 2),
    (32, 2, 2),
    (64, 1, 1),
];

/// The megachunk size the paper used for MLM-sort / MLM-ddr at a given
/// problem size (§4.1): 1.5 B elements for the 6 B runs, 1 B otherwise.
pub fn paper_megachunk(elements: u64) -> u64 {
    if elements >= 6_000_000_000 {
        1_500_000_000
    } else {
        1_000_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        assert_eq!(TABLE1.len(), 30);
        for &n in &[2_000_000_000u64, 4_000_000_000, 6_000_000_000] {
            for order in InputOrder::PAPER {
                for alg in SortAlgorithm::TABLE1 {
                    assert!(
                        table1_row(n, order, alg).is_some(),
                        "missing {n} {order:?} {alg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_speedup_band_holds_in_published_data() {
        // The abstract's 1.6-1.9x claim, checked against the paper's own
        // numbers (best MLM variant vs GNU-flat).
        for &n in &[2_000_000_000u64, 4_000_000_000, 6_000_000_000] {
            for order in InputOrder::PAPER {
                let flat = table1_row(n, order, SortAlgorithm::GnuFlat).unwrap().mean;
                let best = SortAlgorithm::TABLE1[3..]
                    .iter()
                    .map(|&a| table1_row(n, order, a).unwrap().mean)
                    .fold(f64::INFINITY, f64::min);
                let speedup = flat / best;
                assert!(
                    (1.5..2.0).contains(&speedup),
                    "{n} {order:?}: published speedup {speedup}"
                );
            }
        }
    }

    #[test]
    fn megachunk_rule_matches_section_4_1() {
        assert_eq!(paper_megachunk(2_000_000_000), 1_000_000_000);
        assert_eq!(paper_megachunk(4_000_000_000), 1_000_000_000);
        assert_eq!(paper_megachunk(6_000_000_000), 1_500_000_000);
    }

    #[test]
    fn table3_is_monotone_in_both_columns() {
        for w in TABLE3.windows(2) {
            assert!(w[1].1 <= w[0].1, "model column");
            assert!(w[1].2 <= w[0].2, "empirical column");
        }
    }
}
