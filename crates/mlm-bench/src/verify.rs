//! Lint gating for the harness: every `PipelineSpec` an experiment or
//! bench runs goes through the `mlm-verify` registry first, so a
//! mis-configured sweep fails with a structured diagnostic instead of a
//! panic deep inside the engine — or, worse, a silently wrong experiment.

use knl_sim::machine::{MachineConfig, MemMode};
use mlm_core::pipeline::PipelineSpec;
use mlm_verify::{lint_target, LintReport, VerifyTarget};

/// The machine host-side experiments are linted against: the paper's KNL
/// 7250, widened when the host has more parallelism than a KNL (host
/// benches size their pools from `available_parallelism`, and the
/// thread-fit lint must check the budget those pools actually draw from).
pub fn reference_machine(host_threads: usize) -> MachineConfig {
    let mut m = MachineConfig::knl_7250(MemMode::Flat);
    m.cores = m.cores.max(host_threads.div_ceil(m.threads_per_core));
    m
}

/// Lint `spec` against `machine` and statically verify the schedule it
/// emits (G-series: race/deadlock/occupancy proofs); panic with the full
/// diagnostic listing on any error-level finding and return the report
/// (warnings included) otherwise.
pub fn lint_spec(spec: &PipelineSpec, machine: &MachineConfig) -> LintReport {
    let report = lint_target(&VerifyTarget::new(spec, machine));
    assert!(
        !report.has_errors(),
        "experiment spec rejected by mlm-verify:\n{report}"
    );
    let graph = mlm_verify::graph::graph_report_for(spec, machine)
        .expect("experiment spec must be driveable");
    assert!(
        graph.is_safe(),
        "experiment schedule refuted by the static verifier:\n{graph}"
    );
    report
}

/// [`lint_spec`] against the host [`reference_machine`] — the gate for
/// experiments that run on real host threads rather than the simulator.
pub fn lint_host_spec(spec: &PipelineSpec) -> LintReport {
    let host = std::thread::available_parallelism().map_or(4, |p| p.get());
    lint_spec(spec, &reference_machine(host))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlm_core::pipeline::{Placement, Workload};

    fn spec() -> PipelineSpec {
        PipelineSpec {
            total_bytes: 8 << 20,
            chunk_bytes: 1 << 20,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 1,
            compute_rate: 1.4e9,
            copy_rate: 4.8e9,
            placement: Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn clean_spec_passes_the_gate() {
        lint_host_spec(&spec());
    }

    #[test]
    #[should_panic(expected = "rejected by mlm-verify")]
    fn bad_spec_panics_with_diagnostics() {
        let mut s = spec();
        s.chunk_bytes = 1031; // not a multiple of the element size
        lint_host_spec(&s);
    }

    #[test]
    fn reference_machine_covers_wide_hosts() {
        let m = reference_machine(1024);
        assert!(m.total_threads() >= 1024);
    }
}
