//! Plain-text table rendering and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// Render rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(
                out,
                "{:<w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(0)
            );
        }
        out.push('\n');
    }
    out
}

/// Write rows as CSV under `results/<name>.csv` (creating the directory),
/// returning the path written. Cells containing commas or quotes are
/// quoted per RFC 4180.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::new();
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    body.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    body.push('\n');
    for row in rows {
        body.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path.display().to_string())
}

/// Format seconds with 2 decimal places.
///
/// The value is quantized to a fixed 1 ns grid before `{:.2}` rounding.
/// Model outputs sit arbitrarily close to a rounding knife-edge (the
/// nvm_study Ideal-direct cell lands on exactly 20.025 s), where
/// ulp-level event-ordering noise between engine implementations
/// (~1e-13 relative) flips the printed cell between 20.02 and 20.03.
/// Snapping to the nanosecond grid first absorbs that noise — the grid
/// point is many orders of magnitude wider than the noise — so committed
/// CSVs are byte-stable across engine refactors.
pub fn secs(t: f64) -> String {
    format!("{:.2}", quantize(t))
}

/// Format a ratio with 2 decimal places and an `x` suffix.
pub fn ratio(r: f64) -> String {
    format!("{:.2}x", quantize(r))
}

/// Snap a model output to a stable 1e-9 grid (see [`secs`]).
fn quantize(t: f64) -> f64 {
    (t * 1e9).round() / 1e9
}

/// Format bytes/s as decimal GB/s.
pub fn gbps(b: f64) -> String {
    format!("{:.1} GB/s", b / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let t = render_table(
            &["alg", "time"],
            &[
                vec!["GNU-flat".into(), "11.92".into()],
                vec!["MLM".into(), "8.09".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("alg"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("GNU-flat"));
        // Columns align: "time" header starts at the same offset in all rows.
        let col = lines[0].find("time").unwrap();
        assert_eq!(&lines[2][col..col + 5], "11.92");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let dir = std::env::temp_dir().join(format!("mlmbench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_csv(
            "escape_test",
            &["a", "b"],
            &[vec!["x,y".into(), "he said \"hi\"".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.contains("\"he said \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(11.917), "11.92");
        assert_eq!(ratio(1.618), "1.62x");
        assert_eq!(gbps(90e9), "90.0 GB/s");
    }

    /// The nvm_study knife-edge: 20.025 s, which `{:.2}` alone renders
    /// differently depending on which side of the tie ulp noise lands.
    /// After nanosecond quantization, everything within the noise band
    /// around the knife-edge formats identically.
    #[test]
    fn knife_edge_values_format_stably() {
        let edge = 20.025_f64;
        // 2.7e-14 relative noise (PR 6's measured engine-order delta) in
        // both directions, plus a few wider margins well under 0.5 ns.
        for noise in [0.0, 2.7e-14 * edge, -2.7e-14 * edge, 1e-11, -1e-11] {
            assert_eq!(secs(edge + noise), "20.02", "noise {noise:e}");
        }
        // Values clearly off the edge still round normally.
        assert_eq!(secs(20.0251), "20.03");
        assert_eq!(secs(20.0249), "20.02");
    }
}
