//! Plain-text table rendering and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// Render rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(
                out,
                "{:<w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(0)
            );
        }
        out.push('\n');
    }
    out
}

/// Write rows as CSV under `results/<name>.csv` (creating the directory),
/// returning the path written. Cells containing commas or quotes are
/// quoted per RFC 4180.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::new();
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    body.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    body.push('\n');
    for row in rows {
        body.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path.display().to_string())
}

/// Format seconds with 2 decimal places.
pub fn secs(t: f64) -> String {
    format!("{t:.2}")
}

/// Format a ratio with 2 decimal places and an `x` suffix.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Format bytes/s as decimal GB/s.
pub fn gbps(b: f64) -> String {
    format!("{:.1} GB/s", b / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let t = render_table(
            &["alg", "time"],
            &[
                vec!["GNU-flat".into(), "11.92".into()],
                vec!["MLM".into(), "8.09".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("alg"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("GNU-flat"));
        // Columns align: "time" header starts at the same offset in all rows.
        let col = lines[0].find("time").unwrap();
        assert_eq!(&lines[2][col..col + 5], "11.92");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let dir = std::env::temp_dir().join(format!("mlmbench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_csv(
            "escape_test",
            &["a", "b"],
            &[vec!["x,y".into(), "he said \"hi\"".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.contains("\"he said \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(11.917), "11.92");
        assert_eq!(ratio(1.618), "1.62x");
        assert_eq!(gbps(90e9), "90.0 GB/s");
    }
}
