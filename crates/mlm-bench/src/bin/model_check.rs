//! Quantify model-vs-simulator agreement over the Figure-8 grid — the
//! paper's "we use experimental evidence to demonstrate the correctness
//! of the model", as a number.

use mlm_bench::experiments::model_validation;
use mlm_core::Calibration;

fn main() {
    let v = model_validation(&Calibration::default()).expect("validation failed");
    println!("Model (Eqs. 1-5) vs discrete-event simulator, Figure-8 grid");
    println!("  points compared:            {}", v.points);
    println!("  geometric-mean |ratio|:     {:.3}", v.geo_mean_ratio);
    println!("  worst-case ratio:           {:.3}", v.worst_ratio);
    println!(
        "  per-repeats argmin agreement within one pow2 step: {:.0}%",
        v.argmin_agreement * 100.0
    );
}
