//! Corroborate Bender et al. (paper §2.3/§4): the basic chunked algorithm
//! gains ~30% over unchunked sort, and MLM chunking cuts DDR traffic ~2.5x.

use mlm_bench::experiments::bender_check;
use mlm_bench::report::{ratio, render_table};
use mlm_core::Calibration;

fn main() {
    let cal = Calibration::default();
    let b = bender_check(&cal).expect("bender check failed");
    let headers = ["Claim", "Bender et al. predicted", "Simulated"];
    let body = vec![
        vec![
            "Basic chunked sort speedup over GNU-flat".into(),
            "~1.30x".into(),
            ratio(b.basic_speedup),
        ],
        vec![
            "DDR traffic reduction (GNU-flat / MLM-sort)".into(),
            "~2.5x".into(),
            ratio(b.ddr_traffic_reduction),
        ],
    ];
    println!("Bender et al. corroboration (2B random int64)\n");
    println!("{}", render_table(&headers, &body));
}
