//! Regenerate Figure 6: speedup over GNU-flat for every variant, random
//! input (panel a) and reverse-sorted input (panel b).

use mlm_bench::experiments::{fig6, table1};
use mlm_bench::report::{render_table, write_csv};
use mlm_core::{Calibration, InputOrder};

fn main() {
    let cal = Calibration::default();
    let rows = table1(&cal).expect("table1 simulation failed");
    let bars = fig6(&rows);

    for (panel, order) in [("a", InputOrder::Random), ("b", InputOrder::Reverse)] {
        let headers = ["Elements", "Algorithm", "Sim speedup", "Paper speedup"];
        let body: Vec<Vec<String>> = bars
            .iter()
            .filter(|b| b.order == order)
            .map(|b| {
                vec![
                    b.elements.to_string(),
                    b.algorithm.label().to_string(),
                    format!("{:.2}", b.sim_speedup),
                    format!("{:.2}", b.paper_speedup),
                ]
            })
            .collect();
        println!(
            "Figure 6{panel} — speedup over GNU-flat ({} input)\n",
            order.label()
        );
        println!("{}", render_table(&headers, &body));
        if let Ok(path) = write_csv(&format!("fig6{panel}"), &headers, &body) {
            println!("wrote {path}\n");
        }
    }
}
