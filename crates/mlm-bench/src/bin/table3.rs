//! Regenerate Table 3: optimal number of copy threads for the merge
//! benchmark — model vs (simulated) empirical, against the paper's two
//! columns.

use mlm_bench::experiments::table3;
use mlm_bench::report::{render_table, write_csv};
use mlm_core::Calibration;

fn main() {
    let cal = Calibration::default();
    let rows = table3(&cal).expect("table3 simulation failed");
    let headers = [
        "Repeats",
        "Model",
        "Empirical (pow2 sim)",
        "Paper model",
        "Paper empirical",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.repeats.to_string(),
                r.model.to_string(),
                r.empirical.to_string(),
                r.paper_model.to_string(),
                r.paper_empirical.to_string(),
            ]
        })
        .collect();
    println!("Table 3 — optimal copy threads for the merge benchmark\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("table3", &headers, &body) {
        println!("wrote {path}");
    }
}
