//! Characterise the host machine and re-fit the calibration against the
//! paper's GNU-flat anchor row. Run with --release for meaningful rates.

use mlm_bench::calibrate::{fit_to_anchor, measure_host};
use mlm_bench::report::{gbps, render_table};
use mlm_core::Calibration;

fn main() {
    println!("Host characterisation (native)...");
    let m = measure_host(
        4_000_000,
        std::thread::available_parallelism().map_or(4, |p| p.get()),
    );
    let headers = ["Quantity", "Value"];
    let body = vec![
        vec![
            "introsort rate, random keys".into(),
            gbps(m.sort_rate_random),
        ],
        vec![
            "introsort rate, reverse keys".into(),
            gbps(m.sort_rate_reverse),
        ],
        vec![
            "reverse / random ratio".into(),
            format!("{:.2}", m.reverse_ratio),
        ],
        vec!["STREAM Triad".into(), gbps(m.triad_bandwidth)],
    ];
    println!("{}", render_table(&headers, &body));

    println!("Fitting compute-rate scale to the paper's GNU-flat 2B random anchor (11.92 s)...");
    match fit_to_anchor(&Calibration::default()) {
        Ok((fitted, residual)) => {
            println!("  fitted s_sort_random  = {}", gbps(fitted.s_sort_random));
            println!("  fitted s_sort_reverse = {}", gbps(fitted.s_sort_reverse));
            println!("  fitted s_multiway     = {}", gbps(fitted.s_multiway));
            println!("  anchor residual       = {residual:+.3} s");
            let d = Calibration::default();
            println!(
                "  shipped default drift  = {:.3}x",
                fitted.s_sort_random / d.s_sort_random
            );
        }
        Err(e) => eprintln!("fit failed: {e}"),
    }
}
