//! §6 future work: a third memory level (NVM / 3D-XPoint) with double
//! levels of chunking. Sweeps compute intensity and NVM bandwidth.

use knl_sim::machine::{MachineConfig, MemMode};
use mlm_bench::report::{render_table, secs, write_csv};
use mlm_core::nvm::{simulate_double_chunking, DoubleChunkSpec, NvmConfig};

fn main() {
    let knl = MachineConfig::knl_7250(MemMode::Flat);
    let headers = [
        "Passes/byte",
        "NVM BW (GB/s)",
        "Double-chunked (s)",
        "Ideal direct (s)",
        "Unchunked (s)",
        "DDR-hop overhead",
    ];
    let mut body = Vec::new();
    for &passes in &[1u32, 4, 16, 64] {
        for &bw in &[5e9, 10e9, 40e9] {
            let nvm = NvmConfig {
                bandwidth: bw,
                ..NvmConfig::default()
            };
            let spec = DoubleChunkSpec::example(passes);
            match simulate_double_chunking(&knl, &nvm, &spec) {
                Ok(r) => {
                    // "Ideal direct" stages NVM -> MCDRAM with no DDR hop,
                    // which hardware cannot do; the last column shows how
                    // much of that mandatory hop double-chunking exposes.
                    let overhead = r.double_chunked / r.single_level - 1.0;
                    body.push(vec![
                        passes.to_string(),
                        format!("{:.0}", bw / 1e9),
                        secs(r.double_chunked),
                        secs(r.single_level),
                        secs(r.unchunked),
                        format!("{:+.1}%", overhead * 100.0),
                    ]);
                }
                Err(e) => eprintln!("passes={passes} bw={bw}: {e}"),
            }
        }
    }
    println!("Triple-level memory study — 100 GB data set in NVM, 256 threads");
    println!("(double chunking respects the mandatory NVM->DDR->MCDRAM path; the");
    println!(" ideal-direct column is an unrealizable lower bound)\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("nvm_study", &headers, &body) {
        println!("wrote {path}");
    }
}
