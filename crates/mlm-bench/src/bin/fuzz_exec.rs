//! `fuzz_exec` — the schedule-fuzzing harness for `mlm_exec::drive`.
//!
//! Runs the default fuzz corpus (every placement/schedule mode at several
//! chunk geometries) under seed-controlled adversarial schedules and
//! exits nonzero on any finding. Each finding prints as a committable
//! regression: the seed, the violation, and the shrunk decision trace.
//!
//! ```text
//! fuzz_exec                          # 1000 seeds per corpus case
//! fuzz_exec --seeds 100000          # soak run
//! fuzz_exec --base 7000             # different region of seed space
//! fuzz_exec --case hbw-dataflow     # substring filter on case names
//! fuzz_exec --construction notify-one   # must-FAIL mode: the buggy
//!                                   # construction must be caught on
//!                                   # every applicable case
//! fuzz_exec --panic-chunk 2         # inject a kernel panic (clean
//!                                   # poison-drain must still hold)
//! ```
//!
//! With `--construction` the exit-code sense inverts: the run fails if
//! any fuzzed case does *not* produce a finding, because a silent buggy
//! construction means the fuzzer lost its teeth. The first finding per
//! case is printed with its seed + shrunk trace — exactly what
//! `mlm-verify`'s committed regression seeds are made of.

use std::process::ExitCode;

use mlm_exec::fuzz::{default_corpus, fuzz_case, Construction, FuzzCase, Outcome};

fn main() -> ExitCode {
    let mut seeds: u64 = 1000;
    let mut base: u64 = 0;
    let mut filter: Option<String> = None;
    let mut construction = Construction::Correct;
    let mut panic_chunk: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--seeds" => {
                seeds = need(i).parse().expect("--seeds takes a count");
                i += 2;
            }
            "--base" => {
                base = need(i).parse().expect("--base takes a seed");
                i += 2;
            }
            "--case" => {
                filter = Some(need(i).to_string());
                i += 2;
            }
            "--construction" => {
                construction = parse_construction(need(i));
                i += 2;
            }
            "--panic-chunk" => {
                panic_chunk = Some(need(i).parse().expect("--panic-chunk takes a chunk"));
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fuzz_exec [--seeds N] [--base B] [--case SUBSTR] \
                     [--construction NAME] [--panic-chunk K]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let matching: Vec<FuzzCase> = default_corpus()
        .into_iter()
        .filter(|c| filter.as_deref().is_none_or(|f| c.name.contains(f)))
        .collect();
    let before = matching.len();
    let corpus: Vec<FuzzCase> = matching
        .into_iter()
        // A fault must address an action the schedule actually issues
        // (drive rejects it as DriveError::Spec otherwise), so a panic on
        // chunk K only applies to cases with more than K chunks.
        .filter(|c| panic_chunk.is_none_or(|k| c.spec.n_chunks() > k))
        .map(|mut c| {
            c.construction = construction;
            c.faults.kernel_panic = panic_chunk;
            c
        })
        .collect();
    if corpus.is_empty() {
        eprintln!("no corpus case matches the filter");
        return ExitCode::from(2);
    }
    if corpus.len() < before && panic_chunk.is_some() {
        println!(
            "skipping {} cases with too few chunks for --panic-chunk {}",
            before - corpus.len(),
            panic_chunk.unwrap_or_default()
        );
    }

    let must_fail = construction != Construction::Correct;
    println!(
        "fuzzing {} cases x {seeds} seeds (base {base}, construction {}{})",
        corpus.len(),
        construction.name(),
        if must_fail { ", must-fail" } else { "" },
    );

    let mut total_findings = 0usize;
    let mut silent_cases = 0usize;
    for case in &corpus {
        if must_fail {
            // One finding per case is the point; stop at the first.
            let mut found = None;
            for seed in base..base + seeds {
                let fs = match fuzz_case(case, seed, 1) {
                    Ok(fs) => fs,
                    Err(e) => {
                        eprintln!("{}: case is not driveable: {e}", case.name);
                        return ExitCode::from(2);
                    }
                };
                if let Some(f) = fs.into_iter().next() {
                    found = Some(f);
                    break;
                }
            }
            match found {
                Some(f) => {
                    total_findings += 1;
                    println!("\n{f}");
                }
                None => {
                    // Buggy constructions are schedule-shape specific:
                    // e.g. notify-one needs multi-dependent barriers, so
                    // dataflow cases legitimately stay silent. Only count
                    // complete silence across the corpus as a failure.
                    println!("  {}: no finding in {seeds} seeds", case.name);
                    silent_cases += 1;
                }
            }
        } else {
            let findings = match fuzz_case(case, base, seeds) {
                Ok(fs) => fs,
                Err(e) => {
                    eprintln!("{}: case is not driveable: {e}", case.name);
                    return ExitCode::from(2);
                }
            };
            if findings.is_empty() {
                println!("  ok  {} ({seeds} seeds)", case.name);
            } else {
                for f in &findings {
                    println!("\n{f}");
                }
                total_findings += findings.len();
            }
        }
    }

    if must_fail {
        if total_findings == 0 {
            println!(
                "\nFAIL: construction {} was never caught",
                construction.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "\nok: {} caught on {total_findings}/{} cases ({silent_cases} not applicable)",
            construction.name(),
            corpus.len()
        );
        return ExitCode::SUCCESS;
    }
    if total_findings > 0 {
        println!("\nFAIL: {total_findings} findings");
        return ExitCode::FAILURE;
    }
    println!("\nok: no findings");
    let _ = Outcome::Ok; // keep the variant name in scope for doc links
    ExitCode::SUCCESS
}

fn parse_construction(name: &str) -> Construction {
    match name {
        "correct" => Construction::Correct,
        "drop-recycle-dep" => Construction::DropRecycleDep,
        "poison-skip-lock" => Construction::PoisonSkipLock,
        "notify-one" => Construction::NotifyOne,
        "no-recheck" => Construction::NoRecheck,
        "drop-halo-dep" => Construction::DropHaloDep,
        other => {
            eprintln!(
                "unknown construction '{other}' (correct, drop-recycle-dep, \
                 poison-skip-lock, notify-one, no-recheck, drop-halo-dep)"
            );
            std::process::exit(2);
        }
    }
}
