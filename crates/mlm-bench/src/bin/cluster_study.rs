//! §6 future work: strong scaling of distributed MLM-sort across multiple
//! KNL nodes (PSRS with per-node MLM-sort, Omni-Path-class interconnect).

use mlm_bench::report::{render_table, secs, write_csv};
use mlm_cluster::sim::strong_scaling;
use mlm_core::{Calibration, InputOrder};

fn main() {
    let cal = Calibration::default();
    let n = 8_000_000_000u64;
    let counts = [1usize, 2, 4, 8, 16, 32, 64];
    let reports = strong_scaling(&cal, n, InputOrder::Random, &counts, 256).expect("scaling sweep");
    let single = reports[0];

    let headers = [
        "Nodes",
        "Shard (elems)",
        "Local sort (s)",
        "Exchange (s)",
        "Final merge (s)",
        "Total (s)",
        "Speedup",
        "Efficiency",
    ];
    let body: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.shard_elems.to_string(),
                secs(r.local_sort),
                secs(r.exchange),
                secs(r.final_merge),
                secs(r.total),
                format!("{:.2}x", r.speedup_over(&single)),
                format!("{:.0}%", r.speedup_over(&single) / r.nodes as f64 * 100.0),
            ]
        })
        .collect();
    println!("Distributed MLM-sort strong scaling — 8B random int64, Omni-Path links\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("cluster_study", &headers, &body) {
        println!("wrote {path}");
    }
}
