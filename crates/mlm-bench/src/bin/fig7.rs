//! Regenerate Figure 7: 6-billion-element sort time vs megachunk size for
//! MLM-sort (flat mode) and MLM-implicit (hardware cache mode). MLM-sort
//! becomes infeasible past the MCDRAM capacity; MLM-implicit keeps
//! improving.

use mlm_bench::experiments::fig7;
use mlm_bench::report::{render_table, write_csv};
use mlm_core::Calibration;

fn main() {
    let cal = Calibration::default();
    let points = fig7(&cal);

    let headers = ["Algorithm", "Megachunk (elements)", "Sim (s)"];
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.algorithm.label().to_string(),
                p.megachunk_elems.to_string(),
                p.seconds.map_or_else(
                    || "infeasible (exceeds MCDRAM)".into(),
                    |s| format!("{s:.2}"),
                ),
            ]
        })
        .collect();
    println!("Figure 7 — chunked sort of 6B int64 vs megachunk size\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("fig7", &headers, &body) {
        println!("wrote {path}");
    }
}
