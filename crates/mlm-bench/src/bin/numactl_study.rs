//! §2.4 comparison (Li et al.): `numactl --preferred` placement vs
//! chunking. Preferred placement is excellent while the data fits MCDRAM
//! and collapses beyond 2 B elements (16 GB); MLM-sort's chunking keeps
//! its margin at every size — the reason chunking exists.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_bench::paper::paper_megachunk;
use mlm_bench::report::{render_table, secs, write_csv};
use mlm_bench::{BILLION, PAPER_THREADS};
use mlm_core::sort::sim::build_sort_program;
use mlm_core::{Calibration, InputOrder, SortAlgorithm, SortWorkload};

fn sim(cal: &Calibration, n: u64, alg: SortAlgorithm, mega: u64) -> f64 {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let w = SortWorkload::int64(n, InputOrder::Random);
    let prog = build_sort_program(&machine, cal, w, alg, mega, PAPER_THREADS).unwrap();
    Simulator::new(machine).run(&prog).unwrap().makespan
}

fn main() {
    let cal = Calibration::default();
    let headers = [
        "Elements",
        "Fits MCDRAM?",
        "GNU-flat (s)",
        "GNU-numactl (s)",
        "MLM-sort (s)",
        "numactl gain",
        "MLM gain",
    ];
    let mut body = Vec::new();
    for &n in &[
        BILLION,
        3 * BILLION / 2,
        2 * BILLION,
        3 * BILLION,
        4 * BILLION,
        6 * BILLION,
    ] {
        let gnu = sim(&cal, n, SortAlgorithm::GnuFlat, n);
        let numactl = sim(&cal, n, SortAlgorithm::GnuNumactl, n);
        let mlm = sim(&cal, n, SortAlgorithm::MlmSort, paper_megachunk(n).min(n));
        let fits = 8 * n <= 16 * (1u64 << 30);
        body.push(vec![
            n.to_string(),
            if fits { "yes" } else { "no" }.to_string(),
            secs(gnu),
            secs(numactl),
            secs(mlm),
            format!("{:.2}x", gnu / numactl),
            format!("{:.2}x", gnu / mlm),
        ]);
    }
    println!("numactl-preferred vs chunking — random int64, 256 threads\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("numactl_study", &headers, &body) {
        println!("wrote {path}");
    }
}
