//! Event-engine throughput benchmark driver.
//!
//! Default mode runs the full scale grid (both engines) and writes
//! `BENCH_sim_engine.json` to the current directory — run it from the
//! repo root in release mode:
//!
//! ```text
//! cargo run --release -p mlm-bench --bin sim_bench
//! ```
//!
//! `--check` compares the fresh numbers against the committed
//! `BENCH_sim_engine.json` at two severities:
//!
//! * **hard failure** (nonzero exit, `::error::`) when any *family*'s
//!   optimized-vs-reference speedup falls below 1.0× — the optimized
//!   engine must never be slower than the naive loop it replaced (this
//!   locks in the barrier-storm fix) — or when the static schedule
//!   verifier fails to prove the largest committed spec safe in under
//!   100 ms (the `drive()` preflight budget);
//! * **warning** (`::warning::`, exit 0) when a scale's optimized
//!   events/sec drifts more than 20% below the committed baseline — perf
//!   drift on shared CI runners is a signal, not a gate.

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

use mlm_bench::sim_bench::{run_all, BenchReport};

const OUT: &str = "BENCH_sim_engine.json";
/// Warn when a scale's optimized events/sec falls below this fraction of
/// the committed baseline.
const REGRESSION_FLOOR: f64 = 0.80;

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");

    let baseline: Option<BenchReport> = if check {
        match fs::read_to_string(OUT) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(report) => Some(report),
                Err(e) => {
                    println!("::warning::{OUT} is unreadable ({e}); skipping comparison");
                    None
                }
            },
            Err(_) => {
                println!("::warning::no committed {OUT}; skipping comparison");
                None
            }
        }
    } else {
        None
    };

    let report = run_all();

    println!(
        "{:<22} {:>9} {:>14} {:>14} {:>9}",
        "scale", "events", "opt ev/s", "ref ev/s", "speedup"
    );
    for m in &report.scales {
        println!(
            "{:<22} {:>9} {:>14.0} {:>14.0} {:>8.2}x",
            m.name, m.events, m.optimized_events_per_sec, m.reference_events_per_sec, m.speedup
        );
    }
    println!(
        "largest-scale speedup: {:.2}x (acceptance floor: 5x)",
        report.largest_scale_speedup
    );
    let gv = &report.graph_verify;
    println!(
        "graph-verify: {} ({} chunks, {} nodes, {} edges) proved {} in {:.2} ms (budget: 100 ms)",
        gv.spec,
        gv.chunks,
        gv.nodes,
        gv.edges,
        if gv.safe { "safe" } else { "UNSAFE" },
        gv.best_millis
    );

    if check {
        // The static verifier is a drive() preflight: it must prove the
        // largest committed spec safe, and fast enough to sit in front of
        // every run.
        if !gv.safe {
            println!(
                "::error::static verifier refuted the committed spec {} — \
                 the schedule or the analyzer regressed",
                gv.spec
            );
            return ExitCode::FAILURE;
        }
        if gv.best_millis > 100.0 {
            println!(
                "::error::static verification of {} took {:.2} ms (> 100 ms \
                 preflight budget)",
                gv.spec, gv.best_millis
            );
            return ExitCode::FAILURE;
        }
        // Per-family floor: every scale of every family must hold >= 1.0x
        // over the reference engine, on the fresh measurement.
        let mut family_min: HashMap<String, f64> = HashMap::new();
        for m in &report.scales {
            let e = family_min.entry(m.family.clone()).or_insert(f64::INFINITY);
            *e = e.min(m.speedup);
        }
        let mut families: Vec<_> = family_min.into_iter().collect();
        families.sort_by(|a, b| a.0.cmp(&b.0));
        let mut failed = false;
        for (fam, min) in families {
            if min < 1.0 {
                failed = true;
                println!(
                    "::error::family {fam}: optimized engine is SLOWER than the \
                     reference ({min:.2}x < 1.0x)"
                );
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
    }

    if let Some(base) = baseline {
        let old: HashMap<&str, f64> = base
            .scales
            .iter()
            .map(|m| (m.name.as_str(), m.optimized_events_per_sec))
            .collect();
        for m in &report.scales {
            if let Some(&prev) = old.get(m.name.as_str()) {
                if prev > 0.0 && m.optimized_events_per_sec < REGRESSION_FLOOR * prev {
                    println!(
                        "::warning::sim_engine throughput regression at {}: \
                         {:.0} events/sec vs baseline {:.0} ({:+.1}%)",
                        m.name,
                        m.optimized_events_per_sec,
                        prev,
                        100.0 * (m.optimized_events_per_sec / prev - 1.0)
                    );
                }
            }
        }
        // Check mode never rewrites the committed baseline.
        return ExitCode::SUCCESS;
    }

    let json = serde_json::to_string(&report).expect("report serializes");
    fs::write(OUT, json + "\n").expect("write BENCH_sim_engine.json");
    println!("wrote {OUT}");
    ExitCode::SUCCESS
}
