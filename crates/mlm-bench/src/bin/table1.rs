//! Regenerate the paper's Table 1: raw sorting performance for all five
//! variants at 2/4/6 billion int64 elements, random and reverse input.

use mlm_bench::experiments::table1;
use mlm_bench::report::{render_table, secs, write_csv};
use mlm_core::Calibration;

fn main() {
    let cal = Calibration::default();
    let rows = table1(&cal).expect("table1 simulation failed");

    let headers = [
        "Elements",
        "Input Order",
        "Algorithm",
        "Sim (s)",
        "Paper Mean (s)",
        "Paper SD (s)",
        "Sim/Paper",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.elements.to_string(),
                r.order.label().to_string(),
                r.algorithm.label().to_string(),
                secs(r.sim_seconds),
                secs(r.paper_mean),
                format!("{:.4}", r.paper_std),
                format!("{:.2}", r.sim_seconds / r.paper_mean),
            ]
        })
        .collect();
    println!("Table 1 — raw sorting performance (simulated KNL vs paper)\n");
    println!("{}", render_table(&headers, &body));
    match write_csv("table1", &headers, &body) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
