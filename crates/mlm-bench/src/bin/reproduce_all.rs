//! Regenerate the paper's complete evaluation plus every extension in one
//! run: Tables 1–3, Figures 6–8, the Bender corroboration, and the §6
//! future-work studies. CSVs land under `results/`.

use mlm_core::Calibration;

fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(72));
    println!("== {title}");
    println!("{}", "=".repeat(72));
}

fn main() {
    let cal = Calibration::default();

    banner("Table 2 — machine constants");
    match mlm_bench::experiments::table2_sim() {
        Ok(t2) => println!(
            "DDR {:.0} GB/s | MCDRAM {:.0} GB/s | S_copy {:.1} | S_comp {:.2} (GB/s)",
            t2.ddr_max / 1e9,
            t2.mcdram_max / 1e9,
            t2.s_copy / 1e9,
            t2.s_comp / 1e9
        ),
        Err(e) => eprintln!("table2 failed: {e}"),
    }

    banner("Table 1 / Figure 6 — sort performance");
    match mlm_bench::experiments::table1(&cal) {
        Ok(rows) => {
            for r in &rows {
                println!(
                    "{:>11} {:<8} {:<13} sim {:>6.2}s  paper {:>6.2}s",
                    r.elements,
                    r.order.label(),
                    r.algorithm.label(),
                    r.sim_seconds,
                    r.paper_mean
                );
            }
            let bars = mlm_bench::experiments::fig6(&rows);
            let best = bars
                .iter()
                .filter(|b| b.algorithm != mlm_core::SortAlgorithm::GnuFlat)
                .map(|b| b.sim_speedup)
                .fold(0.0f64, f64::max);
            println!("peak speedup over GNU-flat: {best:.2}x (paper: up to 1.9x)");
        }
        Err(e) => eprintln!("table1 failed: {e}"),
    }

    banner("Figure 7 — chunk-size sweep (6B elements)");
    for p in mlm_bench::experiments::fig7(&cal) {
        println!(
            "{:<13} mega {:>10}: {}",
            p.algorithm.label(),
            p.megachunk_elems,
            p.seconds
                .map_or_else(|| "infeasible".into(), |s| format!("{s:.2}s"))
        );
    }

    banner("Table 3 — optimal copy threads");
    match mlm_bench::experiments::table3(&cal) {
        Ok(rows) => {
            for r in rows {
                println!(
                    "repeats {:>2}: model {:>2} (paper {:>2}) | empirical {:>2} (paper {:>2})",
                    r.repeats, r.model, r.paper_model, r.empirical, r.paper_empirical
                );
            }
        }
        Err(e) => eprintln!("table3 failed: {e}"),
    }

    banner("Model validation (Eqs. 1-5 vs simulator)");
    match mlm_bench::experiments::model_validation(&cal) {
        Ok(v) => println!(
            "{} points | geo-mean ratio {:.3} | worst {:.3} | argmin agreement {:.0}%",
            v.points,
            v.geo_mean_ratio,
            v.worst_ratio,
            v.argmin_agreement * 100.0
        ),
        Err(e) => eprintln!("validation failed: {e}"),
    }

    banner("Bender et al. corroboration");
    match mlm_bench::experiments::bender_check(&cal) {
        Ok(b) => println!(
            "basic chunked speedup {:.2}x (predicted ~1.3x) | DDR traffic reduction {:.2}x (predicted ~2.5x)",
            b.basic_speedup, b.ddr_traffic_reduction
        ),
        Err(e) => eprintln!("bender failed: {e}"),
    }

    banner("Hybrid-mode study (§4.2)");
    match mlm_bench::experiments::hybrid_study(&cal) {
        Ok(points) => {
            for p in points {
                println!(
                    "cache fraction {:.2}: {:>5.2}s vs flat@same-chunk {:>5.2}s (ratio {:.3})",
                    p.cache_fraction,
                    p.seconds,
                    p.flat_same_chunk,
                    p.seconds / p.flat_same_chunk
                );
            }
        }
        Err(e) => eprintln!("hybrid failed: {e}"),
    }

    banner("Design space (§6)");
    match mlm_bench::experiments::design_space(&cal) {
        Ok(points) => {
            for p in points {
                println!(
                    "bw {:>4.2}x cap {:>2} GiB: MLM {:>5.2}s vs GNU {:>5.2}s = {:.2}x",
                    p.bw_ratio, p.capacity_gib, p.mlm_seconds, p.gnu_seconds, p.speedup
                );
            }
        }
        Err(e) => eprintln!("design space failed: {e}"),
    }

    banner("Host scheduling ablation — lockstep vs dataflow stage pools");
    for r in mlm_bench::experiments::host_pipeline_ablation(1 << 20, 3) {
        println!(
            "{:<13} (repeats {:>2}): lockstep {:>7.2} ms | dataflow {:>7.2} ms ({:.2}x) \
             | occ in/comp/out {:.2}/{:.2}/{:.2}",
            r.workload,
            r.merge_repeats,
            r.lockstep_seconds * 1e3,
            r.dataflow_seconds * 1e3,
            r.dataflow_speedup,
            r.copy_in_occupancy,
            r.compute_occupancy,
            r.copy_out_occupancy
        );
    }

    banner("Multi-node strong scaling (§6)");
    match mlm_cluster::sim::strong_scaling(
        &cal,
        8_000_000_000,
        mlm_core::InputOrder::Random,
        &[1, 2, 4, 8, 16, 32, 64],
        256,
    ) {
        Ok(reports) => {
            let single = reports[0];
            for r in reports {
                println!(
                    "{:>3} nodes: total {:>6.2}s (speedup {:>5.2}x, exchange {:>4.1}%)",
                    r.nodes,
                    r.total,
                    r.speedup_over(&single),
                    r.exchange / r.total * 100.0
                );
            }
        }
        Err(e) => eprintln!("cluster failed: {e}"),
    }

    println!();
    println!("done — see results/*.csv for machine-readable outputs");
}
