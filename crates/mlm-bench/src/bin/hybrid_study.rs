//! §4.2's hybrid-mode observation, quantified: hybrid ≈ flat at equal
//! chunk size, but its smaller addressable MCDRAM caps the chunk, so the
//! best results come from flat (or implicit) mode.

use mlm_bench::experiments::hybrid_study;
use mlm_bench::report::{render_table, secs, write_csv};
use mlm_core::Calibration;

fn main() {
    let points = hybrid_study(&Calibration::default()).expect("hybrid study failed");
    let headers = [
        "Cache fraction",
        "Max megachunk (elems)",
        "MLM-sort (s)",
        "Flat @ same chunk (s)",
        "Ratio",
    ];
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.cache_fraction),
                p.max_megachunk.to_string(),
                secs(p.seconds),
                secs(p.flat_same_chunk),
                format!("{:.3}", p.seconds / p.flat_same_chunk),
            ]
        })
        .collect();
    println!("Hybrid-mode study — MLM-sort, 2B random int64, 256 threads\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("hybrid_study", &headers, &body) {
        println!("wrote {path}");
    }
}
