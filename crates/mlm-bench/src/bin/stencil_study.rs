//! Out-of-core stencil study: MCDRAM-staged vs DDR-only.
//!
//! The generic plan layer's proof workload ([`Workload::Stencil`]) swept
//! across data sizes on both sides of the 16 GiB MCDRAM boundary. Both
//! columns run the *same* [`WorkloadPlan`](mlm_exec::plan::WorkloadPlan)
//! through the op-level simulator — the only difference is where the
//! 4-slot double-buffered ring lives ([`Placement::Hbw`] vs
//! [`Placement::Ddr`]), so the speedup column isolates what explicit
//! MCDRAM staging buys the halo-exchange pipeline once the data itself
//! can no longer fit.
//!
//! Self-checking: past the MCDRAM capacity the staged pipeline must
//! still win, or the binary exits nonzero (CI runs it in the
//! results-drift job and also diffs `results/stencil_study.csv`).

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{Simulator, GIB};
use mlm_bench::report::{ratio, render_table, secs, write_csv};
use mlm_core::pipeline::sim::build_program;
use mlm_core::{PipelineSpec, Placement, Workload};

/// The paper-geometry stencil pipeline over `total` bytes: 1 GiB chunks,
/// 16 MiB halos per side, four sweeps, 8/8/64 thread split.
fn stencil_spec(total: u64, placement: Placement) -> PipelineSpec {
    PipelineSpec {
        total_bytes: total,
        chunk_bytes: GIB,
        p_in: 8,
        p_out: 8,
        p_comp: 64,
        compute_passes: 4,
        compute_rate: 6.78e9,
        copy_rate: 4.8e9,
        placement,
        lockstep: false,
        data_addr: 0,
        workload: Workload::Stencil {
            halo_bytes: GIB / 64,
        },
    }
}

fn run(spec: &PipelineSpec, machine: &MachineConfig) -> Result<f64, String> {
    let prog = build_program(spec)?;
    Ok(Simulator::new(machine.clone())
        .run(&prog)
        .map_err(|e| e.to_string())?
        .makespan)
}

fn main() {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let mcdram_gib = machine.addressable_mcdram() / GIB;
    let headers = [
        "Total (GiB)",
        "Ring (GiB)",
        "Fits MCDRAM",
        "MCDRAM-staged (s)",
        "DDR-only (s)",
        "Speedup",
    ];
    let mut body = Vec::new();
    let mut oversized_all_win = true;
    for &gib in &[4u64, 8, 16, 32, 64] {
        let total = gib * GIB;
        let staged = stencil_spec(total, Placement::Hbw);
        let ring_gib = staged.buffer_footprint(staged.ring_slots()) / GIB;
        let staged_s = run(&staged, &machine).expect("staged stencil must lower");
        let ddr_s = run(&stencil_spec(total, Placement::Ddr), &machine)
            .expect("DDR-only stencil must lower");
        let speedup = ddr_s / staged_s;
        if total > machine.addressable_mcdram() && speedup <= 1.0 {
            oversized_all_win = false;
        }
        body.push(vec![
            gib.to_string(),
            ring_gib.to_string(),
            if total <= machine.addressable_mcdram() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            secs(staged_s),
            secs(ddr_s),
            ratio(speedup),
        ]);
    }
    println!("Out-of-core stencil: MCDRAM-staged vs DDR-only (KNL 7250, flat mode)");
    println!("(same generic WorkloadPlan, 4-slot double-buffered ring, 16 MiB halos;");
    println!(" only the ring placement differs — {mcdram_gib} GiB of MCDRAM on the machine)\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("stencil_study", &headers, &body) {
        println!("wrote {path}");
    }
    assert!(
        oversized_all_win,
        "staged stencil must beat DDR-only past the {mcdram_gib} GiB MCDRAM capacity"
    );
}
