//! Host-pipeline scheduling ablation: the paper's lockstep steps vs the
//! decoupled dataflow schedule (dedicated stage pools + 3-slot buffer
//! ring), executed with real threads and real buffers. Per-stage
//! occupancies identify the bottleneck stage of each workload.

use mlm_bench::experiments::host_pipeline_ablation;
use mlm_bench::report::{ratio, render_table, write_csv};

fn main() {
    let n_elems = 1 << 22; // 32 MiB of int64 keys, 8 chunks
    let reps = 5;
    let rows = host_pipeline_ablation(n_elems, reps);
    let headers = [
        "Workload",
        "Merge repeats",
        "Lockstep (ms)",
        "Dataflow (ms)",
        "Dataflow speedup",
        "In occ",
        "Comp occ",
        "Out occ",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.merge_repeats.to_string(),
                format!("{:.2}", r.lockstep_seconds * 1e3),
                format!("{:.2}", r.dataflow_seconds * 1e3),
                ratio(r.dataflow_speedup),
                format!("{:.2}", r.copy_in_occupancy),
                format!("{:.2}", r.compute_occupancy),
                format!("{:.2}", r.copy_out_occupancy),
            ]
        })
        .collect();
    println!(
        "Host pipeline ablation — {n_elems} int64 keys, 8 chunks, best of {reps} \
         (p_in=2, p_comp=4, p_out=2)\n"
    );
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("host_ablation", &headers, &body) {
        println!("wrote {path}");
    }
}
