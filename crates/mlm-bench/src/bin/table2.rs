//! Regenerate Table 2: the model parameters, as measured on the simulated
//! machine (STREAM over the virtual buses + the configured per-thread
//! rates).

use mlm_bench::experiments::table2_sim;
use mlm_bench::report::{gbps, render_table, write_csv};

fn main() {
    let t2 = table2_sim().expect("table2 simulation failed");
    let headers = ["Parameter", "Simulated", "Paper", "Description"];
    let body = vec![
        vec![
            "B_copy".into(),
            format!("{:.1} GB", t2.b_copy / 1e9),
            "14.9 GB".into(),
            "Data size".into(),
        ],
        vec![
            "DDR_max".into(),
            gbps(t2.ddr_max),
            "90 GB/s".into(),
            "STREAM DDR bandwidth".into(),
        ],
        vec![
            "MCDRAM_max".into(),
            gbps(t2.mcdram_max),
            "400 GB/s".into(),
            "STREAM MCDRAM bandwidth".into(),
        ],
        vec![
            "S_copy".into(),
            gbps(t2.s_copy),
            "4.8 GB/s".into(),
            "Per-thread DDR<->MCDRAM copy rate".into(),
        ],
        vec![
            "S_comp".into(),
            gbps(t2.s_comp),
            "6.78 GB/s".into(),
            "Per-thread compute rate (unsaturated)".into(),
        ],
    ];
    println!("Table 2 — model parameters (simulated machine vs paper)\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("table2", &headers, &body) {
        println!("wrote {path}");
    }
}
